package ldpids_test

import (
	"math"
	"testing"

	"ldpids"
)

// TestPublicAPIQuickstart mirrors the package-doc example end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	root := ldpids.NewSource(42)
	n := 5000
	s := ldpids.NewBinaryStream(n, ldpids.DefaultSin(), root.Split())
	oracle := ldpids.NewGRR(2)
	m, err := ldpids.NewMechanism("LPA", ldpids.Params{
		Eps: 1, W: 20, N: n, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		t.Fatal(err)
	}
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := runner.Run(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	mre := ldpids.MRE(res.Released, res.True, 0)
	if mre <= 0 || math.IsNaN(mre) {
		t.Fatalf("MRE %v", mre)
	}
	if res.Comm.CFPU >= 1 {
		t.Fatalf("LPA CFPU %v should be far below 1", res.Comm.CFPU)
	}
}

func TestPublicAPIAllMechanismsWithAudit(t *testing.T) {
	for _, name := range ldpids.MechanismNames {
		root := ldpids.NewSource(7)
		n := 2000
		s := ldpids.NewBinaryStream(n, ldpids.DefaultLNS(root.Split()), root.Split())
		oracle := ldpids.NewGRR(2)
		m, err := ldpids.NewMechanism(name, ldpids.Params{
			Eps: 1, W: 10, N: n, Oracle: oracle, Src: root.Split(),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		acct := ldpids.NewAccountant(1, 10, n, root.Split())
		runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
		res, err := runner.Run(m, 30)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s violated w-event LDP: %v", name, res.Violations[0])
		}
	}
}

func TestPublicAPIOracles(t *testing.T) {
	for _, name := range []string{"GRR", "OUE", "SUE", "OLH"} {
		o, err := ldpids.NewOracle(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		if o.Domain() != 8 {
			t.Fatalf("%s domain %d", name, o.Domain())
		}
	}
	if ldpids.BestOracle(3, 1).Name() != "GRR" {
		t.Fatal("BestOracle small domain")
	}
}

func TestPublicAPITraces(t *testing.T) {
	src := ldpids.NewSource(11)
	for _, s := range []ldpids.Stream{
		ldpids.TaxiTrace(500, 5, src.Split()),
		ldpids.FoursquareTrace(500, 77, src.Split()),
		ldpids.TaobaoTrace(500, 117, src.Split()),
	} {
		vals, ok := s.Next(nil)
		if !ok || len(vals) != 500 {
			t.Fatal("trace stream broken")
		}
	}
}

func TestPublicAPIMonitoring(t *testing.T) {
	truth := [][]float64{{0.9, 0.1}, {0.2, 0.8}, {0.9, 0.1}}
	task := ldpids.ScalarMonitorTask(truth, truth, 1)
	if auc := task.AUC(); auc != 1 {
		t.Fatalf("perfect AUC %v", auc)
	}
	det := ldpids.NewDetector([]float64{0.5, 0.5})
	evs := det.Observe([]float64{0.6, 0.1})
	if len(evs) != 1 || evs[0].Element != 0 {
		t.Fatalf("detector events %v", evs)
	}
	if thr := ldpids.PaperThreshold([]float64{0, 1}); thr != 0.75 {
		t.Fatalf("threshold %v", thr)
	}
}

func TestPublicAPIStreamsAndMetrics(t *testing.T) {
	src := ldpids.NewSource(13)
	ds := ldpids.NewDistStream(100, 3, func(t int) []float64 { return []float64{0.5, 0.3, 0.2} }, src.Split())
	vals, _ := ds.Next(nil)
	h := ldpids.Histogram(vals, 3)
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatal("histogram not normalized")
	}
	lim := ldpids.LimitStream(ds, 2)
	cnt := 0
	for {
		if _, ok := lim.Next(nil); !ok {
			break
		}
		cnt++
	}
	if cnt != 2 {
		t.Fatalf("limit stream yielded %d", cnt)
	}
	ms := ldpids.NewMarkovStream(50, 4, 0.9,
		func(u int) int { return u % 4 },
		func(t, cur int) int { return (cur + 1) % 4 }, src.Split())
	if _, ok := ms.Next(nil); !ok {
		t.Fatal("markov stream broken")
	}
	if ldpids.MAE(truthPair()) < 0 || ldpids.MSE(truthPair()) < 0 {
		t.Fatal("negative error")
	}
	curve := ldpids.ROC([]float64{1, 0}, []bool{true, false})
	if ldpids.AUC(curve) != 1 {
		t.Fatal("ROC via facade")
	}
}

func truthPair() ([][]float64, [][]float64) {
	a := [][]float64{{0.5, 0.5}}
	b := [][]float64{{0.4, 0.6}}
	return a, b
}
