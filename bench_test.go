// Package-level benchmarks: one per table/figure of the paper's evaluation
// (§7), each running a scaled-down instance of the corresponding experiment
// through the same harness the CLI uses, plus per-mechanism micro-benches.
// Run the full-scale reproduction with cmd/ldpids-bench; these benches
// measure the harness and report the headline metric of each experiment via
// b.ReportMetric.
package ldpids_test

import (
	"testing"

	"ldpids/internal/experiment"
)

// benchConfig returns a small but non-degenerate configuration.
func benchConfig() *experiment.Config {
	return &experiment.Config{PopScale: 0.01, Seed: 7}
}

// reportMean reports the mean cell value of the produced tables under the
// given metric name.
func reportMean(b *testing.B, tables []experiment.Table, name string) {
	sum, cnt := 0.0, 0
	for _, t := range tables {
		for _, row := range t.Cells {
			for _, v := range row {
				sum += v
				cnt++
			}
		}
	}
	if cnt > 0 {
		b.ReportMetric(sum/float64(cnt), name)
	}
}

// BenchmarkFig4MREvsEps regenerates Figure 4 (MRE vs ε, w=20) on the Sin
// dataset.
func BenchmarkFig4MREvsEps(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"Sin"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkFig4AllDatasets regenerates Figure 4 across all six datasets.
func BenchmarkFig4AllDatasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkFig5MREvsW regenerates Figure 5 (MRE vs w, ε=1) on LNS.
func BenchmarkFig5MREvsW(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"LNS"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkFig6DatasetParams regenerates Figure 6 (population and
// fluctuation sweeps on LNS and Sin).
func BenchmarkFig6DatasetParams(b *testing.B) {
	cfg := benchConfig()
	cfg.Methods = []string{"LBU", "LBA", "LSP", "LPU", "LPA"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkFig7EventMonitoring regenerates Figure 7 (ROC AUC, ε=1, w=50)
// on Sin and Taxi.
func BenchmarkFig7EventMonitoring(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"Sin", "Taxi"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanAUC")
	}
}

// BenchmarkFig8CFPU regenerates Figure 8 (CFPU vs N, Q, ε, w on LNS).
func BenchmarkFig8CFPU(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanCFPU")
	}
}

// BenchmarkTable2CFPU regenerates Table 2 (CFPU at three (ε, w) combos) on
// Sin and Taxi.
func BenchmarkTable2CFPU(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"Sin", "Taxi"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Table2()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanCFPU")
	}
}

// BenchmarkAblationFO runs the frequency-oracle swap ablation.
func BenchmarkAblationFO(b *testing.B) {
	cfg := benchConfig()
	cfg.Datasets = []string{"Sin", "Taxi"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.AblationFO()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkAblationSplit runs the M1/M2 resource-split ablation.
func BenchmarkAblationSplit(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		tables, err := cfg.AblationSplit()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkGridSerial runs a Fig-4 grid (7 methods x 5 eps, 3 reps each)
// on one worker: the pre-parallelization baseline.
func BenchmarkGridSerial(b *testing.B) {
	benchmarkGrid(b, 1)
}

// BenchmarkGridParallel runs the identical grid on the full worker pool.
// The cells are independent seeded runs, so on an m-core machine this
// should approach m-times the serial throughput while producing
// bit-identical tables (asserted by TestParallelMatchesSerial).
func BenchmarkGridParallel(b *testing.B) {
	benchmarkGrid(b, 0)
}

func benchmarkGrid(b *testing.B, workers int) {
	cfg := benchConfig()
	cfg.Workers = workers
	cfg.Reps = 3
	cfg.Datasets = []string{"Sin"}
	for i := 0; i < b.N; i++ {
		tables, err := cfg.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		reportMean(b, tables, "meanMRE")
	}
}

// BenchmarkOracleWireFormat compares the full simulation cost and
// bytes-per-report of the byte-wise vs bit-packed OUE wire format on the
// largest-domain trace (Taobao, d=117).
func BenchmarkOracleWireFormat(b *testing.B) {
	for _, oracle := range []string{"OUE", "OUE-packed"} {
		b.Run(oracle, func(b *testing.B) {
			var out *experiment.Outcome
			var err error
			for i := 0; i < b.N; i++ {
				out, err = experiment.Execute(experiment.RunSpec{
					Stream: experiment.StreamSpec{Dataset: "Taobao", N: 2000, T: 20},
					Method: "LBU", Eps: 1, W: 5, Seed: uint64(i), Oracle: oracle,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(out.Comm.Bytes)/float64(out.Comm.Reports), "bytes/report")
		})
	}
}

// BenchmarkMechanismStep measures the per-timestamp cost of each mechanism
// on a 10k-user binary stream.
func BenchmarkMechanismStep(b *testing.B) {
	for _, method := range []string{"LBU", "LSP", "LBD", "LBA", "LPU", "LPD", "LPA"} {
		b.Run(method, func(b *testing.B) {
			out, err := experiment.Execute(experiment.RunSpec{
				Stream: experiment.StreamSpec{Dataset: "Sin", N: 10000, T: 50},
				Method: method, Eps: 1, W: 10, Seed: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			_ = out
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Execute(experiment.RunSpec{
					Stream: experiment.StreamSpec{Dataset: "Sin", N: 10000, T: 50},
					Method: method, Eps: 1, W: 10, Seed: uint64(i),
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(10000*50)/1e6, "Muser·ts/op")
		})
	}
}
