// Command ldpids-dump prints LDP-IDS log files in human-readable form.
//
// Without flags it reads a persisted release log (written by
// ldpids-gateway -out, package internal/store) and prints CSV: one row
// per timestamp, one column per histogram element.
//
// With -ingest it pretty-prints an ingestion history (written by
// ldpids-gateway -ingest-log, package internal/history) instead: one
// line per protocol event. The history is JSONL with one record per
// line; every record carries "kind" plus the kind's fields:
//
//	config  source, n, d, oracle, w, budget — the deployment parameters,
//	        always the first record
//	round   round, token, t, eps, numeric, all|users — one round
//	        announcement
//	batch   round, token, verdict, reason, status, folded, bytes,
//	        reports — one POST /v1/report outcome; accepted batches
//	        carry the full report payload, refusals the folded prefix
//	frame   round, token, verdict, reason, status, replica, lo, hi,
//	        frame — one replica counter-frame shipment outcome
//	close   round, t, ok, err|counters — the end of one round, with the
//	        sink's exported integer counters when it closed ok
//	release t, values — one published release
//
// ldpids-check replays the same records and proves the protocol
// invariants over them; ldpids-dump -ingest is the eyeball view.
//
// With -trace it merges one or more round-lifecycle trace logs (written
// by ldpids-gateway/-client -trace-log, package internal/obs) and prints
// Chrome trace-event JSON on stdout — load it in chrome://tracing or
// https://ui.perfetto.dev to see client posts, replica folds, shipments,
// and coordinator merges on one timeline, one process track per source.
//
// With -metrics it validates a saved /metrics scrape against the
// Prometheus text exposition format (histogram bucket ordering, reserved
// suffixes, duplicate series) and exits 1 on the first violation — CI
// pipes mid-stream scrapes through this.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ldpids/internal/history"
	"ldpids/internal/obs"
	"ldpids/internal/store"
)

func main() {
	ingest := flag.Bool("ingest", false, "treat the argument as an ingestion history (-ingest-log), not a release log")
	trace := flag.Bool("trace", false, "merge the arguments as trace logs (-trace-log) and print Chrome trace-event JSON")
	metrics := flag.Bool("metrics", false, "validate the argument as a Prometheus text /metrics scrape")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-ingest | -metrics | -trace] <releases.ldps | ingest.jsonl | metrics.txt | trace.jsonl...>\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if *trace {
		if flag.NArg() < 1 {
			flag.Usage()
			os.Exit(2)
		}
		dumpTrace(flag.Args())
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	switch {
	case *ingest:
		dumpIngest(flag.Arg(0))
	case *metrics:
		checkMetrics(flag.Arg(0))
	default:
		dumpReleases(flag.Arg(0))
	}
}

// dumpTrace merges the spans of every named trace log and prints them as
// Chrome trace-event JSON.
func dumpTrace(paths []string) {
	var spans []obs.SpanRecord
	for _, path := range paths {
		got, err := obs.ReadSpans(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		spans = append(spans, got...)
	}
	out, err := obs.ChromeTrace(spans)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := os.Stdout.Write(append(out, '\n')); err != nil {
		log.Fatal(err)
	}
}

// checkMetrics validates a saved /metrics scrape against the text
// exposition format, exiting 1 on the first violation.
func checkMetrics(path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := obs.CheckExposition(f); err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	fmt.Printf("%s: exposition format ok\n", path)
}

// dumpReleases prints a release log as CSV.
func dumpReleases(path string) {
	ts, hists, err := store.ReadAll(path)
	if err != nil {
		log.Fatal(err)
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if len(hists) == 0 {
		return
	}
	header := []string{"t"}
	for k := range hists[0] {
		header = append(header, fmt.Sprintf("f%d", k))
	}
	if err := w.Write(header); err != nil {
		log.Fatal(err)
	}
	for i, t := range ts {
		row := []string{strconv.Itoa(t)}
		for _, v := range hists[i] {
			row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
		}
		if err := w.Write(row); err != nil {
			log.Fatal(err)
		}
	}
}

// dumpIngest prints an ingestion history, one line per record.
func dumpIngest(path string) {
	recs, err := history.ReadAll(path)
	if err != nil {
		log.Fatal(err)
	}
	for i, rec := range recs {
		fmt.Printf("%4d  %s\n", i, formatRecord(rec))
	}
}

// formatRecord renders one history record for reading.
func formatRecord(rec history.Record) string {
	switch rec.Kind {
	case history.KindConfig:
		s := fmt.Sprintf("config  %s n=%d d=%d oracle=%s", rec.Source, rec.N, rec.D, rec.Oracle)
		if rec.W > 0 {
			s += fmt.Sprintf(" w=%d budget=%g", rec.W, rec.Budget)
		}
		return s
	case history.KindRound:
		who := fmt.Sprintf("%d users", len(rec.Users))
		if rec.All {
			who = "all users"
		}
		kind := ""
		if rec.Numeric {
			kind = " numeric"
		}
		return fmt.Sprintf("round   #%d t=%d eps=%g%s %s token=%s", rec.Round, rec.T, rec.Eps, kind, who, rec.Token)
	case history.KindBatch:
		s := fmt.Sprintf("batch   #%d %s", rec.Round, rec.Verdict)
		if rec.Reason != "" {
			s += " (" + rec.Reason + ")"
		}
		return s + fmt.Sprintf(" status=%d folded=%d reports=%d bytes=%d", rec.Status, rec.Folded, len(rec.Reports), rec.Bytes)
	case history.KindFrame:
		s := fmt.Sprintf("frame   #%d %s", rec.Round, rec.Verdict)
		if rec.Reason != "" {
			s += " (" + rec.Reason + ")"
		}
		if rec.Replica != "" {
			s += fmt.Sprintf(" %s [%d:%d)", rec.Replica, rec.Lo, rec.Hi)
		}
		if rec.Frame != nil {
			s += fmt.Sprintf(" %s n=%d", rec.Frame.Shape, rec.Frame.N)
		}
		if rec.Err != "" {
			s += " err=" + strconv.Quote(rec.Err)
		}
		return s
	case history.KindClose:
		if !rec.OK {
			return fmt.Sprintf("close   #%d t=%d FAILED err=%s", rec.Round, rec.T, strconv.Quote(rec.Err))
		}
		s := fmt.Sprintf("close   #%d t=%d ok", rec.Round, rec.T)
		if rec.Counters != nil {
			s += fmt.Sprintf(" %s n=%d counters=%d", rec.Counters.Shape, rec.Counters.N, len(rec.Counters.Counts))
		}
		return s
	case history.KindRelease:
		vals := make([]string, 0, len(rec.Values))
		for _, v := range rec.Values {
			vals = append(vals, strconv.FormatFloat(v, 'g', 6, 64))
		}
		return fmt.Sprintf("release t=%d [%s]", rec.T, strings.Join(vals, " "))
	default:
		return fmt.Sprintf("%-7s (unknown kind)", rec.Kind)
	}
}
