// Command ldpids-dump prints a persisted release log (written by
// ldpids-server -out, package internal/store) as CSV: one row per
// timestamp, one column per histogram element.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
)

import "ldpids/internal/store"

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s <releases.ldps>\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	ts, hists, err := store.ReadAll(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	if len(hists) == 0 {
		return
	}
	header := []string{"t"}
	for k := range hists[0] {
		header = append(header, fmt.Sprintf("f%d", k))
	}
	if err := w.Write(header); err != nil {
		log.Fatal(err)
	}
	for i, t := range ts {
		row := []string{strconv.Itoa(t)}
		for _, v := range hists[i] {
			row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
		}
		if err := w.Write(row); err != nil {
			log.Fatal(err)
		}
	}
}
