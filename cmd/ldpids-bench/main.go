// Command ldpids-bench regenerates the paper's evaluation: every figure
// and table of §7 plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	ldpids-bench -exp fig4                 # one experiment
//	ldpids-bench -exp all -scale 0.1       # the full evaluation, scaled
//	ldpids-bench -exp table2 -scale 1.0    # paper-size populations
//
// Populations default to 10% of the paper's sizes (-scale 0.1) so the full
// suite completes in minutes; shapes and orderings are population-invariant
// (Fig. 6 sweeps N explicitly). Pass -audit to run the w-event privacy
// accountant alongside every run.
//
// The -oracle flag accepts every name registered in the fo oracle
// registry (the usage text is derived from it, so it can never go stale):
// the bit-packed unary wire formats OUE-packed and SUE-packed (same
// estimates as OUE/SUE, ~8x smaller reports) and cohort-hashed OLH-C
// (O(1) server folds); ablation-fo compares all of them side by side, and
// ablation-olh times the OLH vs OLH-C server fold across domain sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ldpids/internal/experiment"
	"ldpids/internal/fo"
)

// experimentIDs returns the sorted ids of every registered experiment, so
// the -exp usage text always matches the registry.
func experimentIDs() []string {
	var ids []string
	for id := range (&experiment.Config{}).Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experimentIDs(), " ")+", or 'all'")
		scale    = flag.Float64("scale", 0.1, "population scale relative to the paper's sizes")
		reps     = flag.Int("reps", 1, "repetitions averaged per cell")
		seed     = flag.Uint64("seed", 1, "root random seed")
		oracle   = flag.String("oracle", "GRR", "frequency oracle: "+strings.Join(fo.Names(), " "))
		workers  = flag.Int("workers", 0, "experiment worker pool size (0 = one per CPU, 1 = serial; results are identical)")
		methods  = flag.String("methods", "", "comma-separated method subset (default all)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default all)")
		audit    = flag.Bool("audit", false, "run the w-event privacy accountant on every run")
		format   = flag.String("format", "text", "output format: text csv json")
	)
	flag.Parse()

	cfg := &experiment.Config{
		PopScale: *scale,
		Reps:     *reps,
		Seed:     *seed,
		Oracle:   *oracle,
		Audit:    *audit,
		Workers:  *workers,
	}
	if *methods != "" {
		cfg.Methods = strings.Split(*methods, ",")
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	registry := cfg.Experiments()
	var ids []string
	if *exp == "all" {
		for id := range registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if registry[id] == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; available:", id)
				for k := range registry {
					fmt.Fprintf(os.Stderr, " %s", k)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("=== %s (scale=%g, oracle=%s, reps=%d) ===\n\n", id, *scale, *oracle, *reps)
		tables, err := registry[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if err := experiment.Write(os.Stdout, tables, *format); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
