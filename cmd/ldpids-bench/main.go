// Command ldpids-bench regenerates the paper's evaluation: every figure
// and table of §7 plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	ldpids-bench -exp fig4                 # one experiment
//	ldpids-bench -exp all -scale 0.1       # the full evaluation, scaled
//	ldpids-bench -exp all -journal runs    # journal cells as they complete
//	ldpids-bench -exp all -journal runs -resume   # resume after interruption
//
// Populations default to 10% of the paper's sizes (-scale 0.1) so the full
// suite completes in minutes; shapes and orderings are population-invariant
// (Fig. 6 sweeps N explicitly). Pass -audit to run the w-event privacy
// accountant alongside every run.
//
// Every experiment is a declarative plan of content-hashed cells executed
// by one scheduler, so cells shared between figures run once per
// invocation. With -journal DIR, completed cells append to the
// crash-safe journal DIR/runlog.jsonl; re-running with -resume skips every
// journaled cell and produces bit-identical tables to an uninterrupted
// run. Live progress (cells done/total, cache hits, ETA) goes to stderr,
// as do the per-experiment banners and timing lines — stdout carries only
// the tables, so `ldpids-bench -format json > out.json` always parses.
//
// The -oracle flag accepts every name registered in the fo oracle
// registry (the usage text is derived from it, so it can never go stale):
// the bit-packed unary wire formats OUE-packed and SUE-packed (same
// estimates as OUE/SUE, ~8x smaller reports) and cohort-hashed OLH-C
// (O(1) server folds); ablation-fo compares all of them side by side, and
// ablation-olh times the OLH vs OLH-C server fold across domain sizes.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldpids/internal/experiment"
	"ldpids/internal/fo"
	"ldpids/internal/runlog"
)

// experimentIDs returns the sorted ids of every registered experiment, so
// the -exp usage text and the -exp all expansion always match the
// registry.
func experimentIDs() []string {
	return (&experiment.Config{}).PlanIDs()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id: "+strings.Join(experimentIDs(), " ")+", or 'all'")
		scale    = flag.Float64("scale", 0.1, "population scale relative to the paper's sizes")
		reps     = flag.Int("reps", 1, "repetitions averaged per cell")
		seed     = flag.Uint64("seed", 1, "root random seed")
		oracle   = flag.String("oracle", "GRR", "frequency oracle: "+strings.Join(fo.Names(), " "))
		workers  = flag.Int("workers", 0, "experiment worker pool size (0 = one per CPU, 1 = serial; results are identical)")
		methods  = flag.String("methods", "", "comma-separated method subset (default all)")
		datasets = flag.String("datasets", "", "comma-separated dataset subset (default all)")
		audit    = flag.Bool("audit", false, "run the w-event privacy accountant on every run")
		format   = flag.String("format", "text", "output format: text csv json")
		journal  = flag.String("journal", "", "directory for the append-only run journal (cells persist as they complete)")
		resume   = flag.Bool("resume", false, "reuse the journal's completed cells (requires -journal)")
	)
	flag.Parse()

	cfg := &experiment.Config{
		PopScale: *scale,
		Reps:     *reps,
		Seed:     *seed,
		Oracle:   *oracle,
		Audit:    *audit,
		Workers:  *workers,
	}
	if *methods != "" {
		cfg.Methods = strings.Split(*methods, ",")
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}

	builders := cfg.Plans()
	var ids []string
	if *exp == "all" {
		ids = experimentIDs()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			if builders[id] == nil {
				fatalf("unknown experiment %q; available: %s", id, strings.Join(experimentIDs(), " "))
			}
			ids = append(ids, id)
		}
	}

	j := openJournal(*journal, *resume)
	if j != nil {
		defer j.Close()
	}

	sched := cfg.NewScheduler(j)
	plans := make([]experiment.Plan, len(ids))
	for i, id := range ids {
		plans[i] = builders[id]()
	}
	sched.Announce(plans...)
	prog := newProgressPrinter(os.Stderr)
	sched.OnProgress = prog.update

	start := time.Now()
	var jsonTables []experiment.Table
	for i, id := range ids {
		fmt.Fprintf(os.Stderr, "=== %s (scale=%g, oracle=%s, reps=%d) ===\n", id, *scale, *oracle, *reps)
		idStart := time.Now()
		tables, err := sched.Run(plans[i])
		if err != nil {
			prog.clear()
			fatalf("%s: %v", id, err)
		}
		prog.clear()
		if *format == "json" {
			// One well-formed JSON document across all experiments.
			jsonTables = append(jsonTables, tables...)
		} else if err := experiment.Write(os.Stdout, tables, *format); err != nil {
			fatalf("%s: %v", id, err)
		}
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", id, time.Since(idStart).Round(time.Millisecond))
	}
	if *format == "json" {
		if err := experiment.Write(os.Stdout, jsonTables, "json"); err != nil {
			fatalf("json: %v", err)
		}
	}
	prog.finish(sched.Stats(), time.Since(start))
}

// openJournal opens the run journal under dir, guarding against silently
// clobbering (or silently reusing) a previous run's records: an existing
// non-empty journal requires an explicit -resume.
func openJournal(dir string, resume bool) *runlog.Journal {
	if dir == "" {
		if resume {
			fatalf("-resume requires -journal DIR")
		}
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatalf("journal: %v", err)
	}
	path := filepath.Join(dir, "runlog.jsonl")
	if !resume {
		if st, err := os.Stat(path); err == nil && st.Size() > 0 {
			fatalf("journal %s already holds records; pass -resume to reuse them or remove the file", path)
		}
	}
	j, err := runlog.Open(path)
	if err != nil {
		fatalf("journal: %v", err)
	}
	return j
}

// progressPrinter renders scheduler progress on stderr: a live rewritten
// line on terminals, throttled plain lines otherwise (CI logs).
type progressPrinter struct {
	w       *os.File
	tty     bool
	last    time.Time
	lastLen int
}

func newProgressPrinter(w *os.File) *progressPrinter {
	st, err := w.Stat()
	tty := err == nil && st.Mode()&os.ModeCharDevice != 0
	return &progressPrinter{w: w, tty: tty}
}

func formatProgress(p experiment.Progress) string {
	s := fmt.Sprintf("cells %d/%d (%d cached)", p.Done, p.Total, p.CacheHits)
	if p.ETA > 0 {
		s += fmt.Sprintf("  eta %v", p.ETA.Round(time.Second))
	}
	return s
}

// update is called by the scheduler after every completed run group.
func (pp *progressPrinter) update(p experiment.Progress) {
	line := formatProgress(p)
	if pp.tty {
		pad := pp.lastLen - len(line)
		if pad < 0 {
			pad = 0
		}
		fmt.Fprintf(pp.w, "\r%s%s", line, strings.Repeat(" ", pad))
		pp.lastLen = len(line)
		return
	}
	if time.Since(pp.last) < 2*time.Second && p.Done < p.Total {
		return
	}
	pp.last = time.Now()
	fmt.Fprintln(pp.w, line)
}

// clear ends a live progress line before other stderr output.
func (pp *progressPrinter) clear() {
	if pp.tty && pp.lastLen > 0 {
		fmt.Fprintf(pp.w, "\r%s\r", strings.Repeat(" ", pp.lastLen))
		pp.lastLen = 0
	}
}

// finish prints the invocation summary.
func (pp *progressPrinter) finish(p experiment.Progress, elapsed time.Duration) {
	pp.clear()
	fmt.Fprintf(pp.w, "done: %d cells (%d cached, %d runs) in %v\n",
		p.Done, p.CacheHits, p.RunsDone, elapsed.Round(time.Millisecond))
}
