// Command ldpids-doccheck is deprecated: the package-doc rule it enforced
// is now the pkgdoc analyzer inside ldpids-lint, which covers cmd/ and
// examples/ as well as internal/ and reports positions instead of bare
// directories. This wrapper keeps the old entry point (and its optional
// directory argument) alive for scripts; prefer
//
//	go run ./cmd/ldpids-lint -analyzers pkgdoc ./...
//
// Usage: go run ./cmd/ldpids-doccheck [dir]   (dir defaults to ".")
package main

import (
	"fmt"
	"os"

	"ldpids/internal/analysis"
	"ldpids/internal/analysis/driver"
	"ldpids/internal/analysis/passes/pkgdoc"
)

func main() {
	dir := ""
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	fmt.Fprintln(os.Stderr, "doccheck: deprecated; use `go run ./cmd/ldpids-lint -analyzers pkgdoc ./...`")
	pkgs, err := driver.Load(dir, "./...")
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	diags, err := driver.Run(pkgs, []*analysis.Analyzer{pkgdoc.Analyzer})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	fmt.Println("doccheck: every checked package has a package doc comment")
}
