// Command ldpids-doccheck enforces the repo's documentation floor: every
// package under internal/ (and the root package) must carry a package-level
// doc comment, so `go doc` reads as a coherent tour of the codebase. CI
// runs it in the docs job next to gofmt and go vet; it exits non-zero
// listing every package that lacks a comment.
//
// Usage: go run ./cmd/ldpids-doccheck [dir]   (dir defaults to ".")
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// hasPackageDoc reports whether any non-test Go file in dir carries a
// package doc comment.
func hasPackageDoc(dir string) (bool, error) {
	pkgs, err := parser.ParseDir(token.NewFileSet(), dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments|parser.PackageClauseOnly)
	if err != nil {
		return false, err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				return true, nil
			}
		}
	}
	return false, nil
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var missing []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		// Skip hidden trees (.git, .github) — but not the root itself,
		// which is "." when run with the default argument.
		if path != root && strings.HasPrefix(d.Name(), ".") {
			return fs.SkipDir
		}
		if globs, _ := filepath.Glob(filepath.Join(path, "*.go")); len(globs) == 0 {
			return nil
		}
		if path != root && !strings.HasPrefix(path, filepath.Join(root, "internal")) {
			return nil
		}
		ok, err := hasPackageDoc(path)
		if err != nil {
			return err
		}
		if !ok {
			missing = append(missing, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		for _, p := range missing {
			fmt.Fprintf(os.Stderr, "doccheck: package %s has no package doc comment\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("doccheck: every checked package has a package doc comment")
}
