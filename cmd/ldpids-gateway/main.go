// Command ldpids-gateway runs LDP-IDS as a long-running HTTP service: a
// registry mechanism (LBD, LBA, LPA, ...) drives collection rounds over
// the internal/serve ingestion backend, publishing every release into a
// versioned snapshot store that powers the live query endpoints.
//
// Endpoints:
//
//	POST /v1/report    batched, bit-packed perturbed reports (clients)
//	GET  /v1/round     long-poll for the next collection round (clients)
//	GET  /v1/estimate  the current released histogram/mean as JSON
//	GET  /v1/stream    Server-Sent Events, one event per release
//	GET  /metrics      Prometheus-style counters (reports folded, bytes
//	                   in, round latency, releases)
//
// With -backend sim the gateway hosts the simulated device population
// in-process instead of collecting over HTTP (the query endpoints still
// serve); seeds derive identically in both modes, so an HTTP run driven by
// ldpids-client -transport http produces a bit-identical release log to a
// sim run with the same -seed/-client-seed — CI's gateway-smoke job diffs
// exactly that. SIGINT/SIGTERM shut the gateway down gracefully: the
// current round finishes (or is pruned), the release log is flushed, and
// the communication bill is printed.
//
// Demo (two shells):
//
//	ldpids-gateway -addr 127.0.0.1:8080 -n 200 -d 8 -method LPA -T 100 -interval 500ms
//	ldpids-client -transport http -addr http://127.0.0.1:8080 -n 200 -d 8
//	curl -s http://127.0.0.1:8080/v1/estimate
//	curl -sN http://127.0.0.1:8080/v1/stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/device"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/numeric"
	"ldpids/internal/serve"
	"ldpids/internal/store"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		backend    = flag.String("backend", "http", "collection backend: http (remote clients) or sim (in-process devices)")
		n          = flag.Int("n", 100, "user population size")
		d          = flag.Int("d", 5, "domain size")
		method     = flag.String("method", "LPA", "mechanism: "+strings.Join(mechanism.Names, " ")+" (with -numeric: LPU LPA)")
		w          = flag.Int("w", 10, "window size")
		eps        = flag.Float64("eps", 1.0, "privacy budget per window")
		T          = flag.Int("T", 0, "timestamps to run (0 = until SIGINT/SIGTERM)")
		oracleName = flag.String("oracle", "GRR", "frequency oracle: "+strings.Join(fo.Names(), " "))
		seed       = flag.Uint64("seed", 1, "server-side random seed (mechanism sampling)")
		clientSeed = flag.Uint64("client-seed", 99, "device seed for -backend sim (must match ldpids-client -seed to compare runs)")
		timeout    = flag.Duration("round-timeout", serve.DefaultTimeout, "per-round collection deadline (slow/dead clients are pruned)")
		interval   = flag.Duration("interval", 0, "pause between timestamps (gives live queries something to watch)")
		isMean     = flag.Bool("numeric", false, "run a streaming mean mechanism instead of a frequency mechanism")
		out        = flag.String("out", "", "optional path to persist releases as an append-only log")
	)
	flag.Parse()
	if *n < 1 || *d < 1 {
		log.Fatalf("population and domain must be positive, got -n %d -d %d", *n, *d)
	}

	snaps := serve.NewSnapshots()
	metrics := &serve.Metrics{}
	snaps.Metrics = metrics

	// The collection backend: remote HTTP clients, or an in-process
	// simulated device population with the same seed derivation.
	var (
		collector collect.Collector
		ingest    *serve.Backend
	)
	switch *backend {
	case "http":
		b, err := serve.NewBackend(*n)
		if err != nil {
			log.Fatal(err)
		}
		b.Timeout = *timeout
		b.Metrics = metrics
		collector, ingest = b, b
	case "sim":
		pop := device.NewPopulation(*clientSeed, 0, *n, *d)
		o, err := fo.New(*oracleName, *d)
		if err != nil {
			log.Fatal(err)
		}
		collector = &collect.Sim{Users: *n, Report: pop.Report(o), NumericReport: pop.NumericReport()}
	default:
		log.Fatalf("unknown -backend %q (want http or sim)", *backend)
	}

	// The HTTP front door: ingestion (http backend only), live queries,
	// metrics.
	mux := http.NewServeMux()
	if ingest != nil {
		mux.Handle("/v1/round", ingest)
		mux.Handle("/v1/report", ingest)
	}
	mux.Handle("/v1/estimate", snaps)
	mux.Handle("/v1/stream", snaps)
	mux.Handle("/metrics", metrics)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("http server: %v", err)
		}
	}()
	log.Printf("gateway listening on http://%s (backend %s, n=%d, d=%d, method %s)",
		ln.Addr(), *backend, *n, *d, *method)

	// The release log.
	var logW *store.Writer
	if *out != "" {
		logD := *d
		if *isMean {
			logD = 1
		}
		logW, err = store.Create(*out, logD)
		if err != nil {
			log.Fatal(err)
		}
	}
	persist := func(t int, release []float64) {
		if logW == nil {
			return
		}
		if err := logW.Append(t, release); err != nil {
			log.Fatalf("persisting release at t=%d: %v", t, err)
		}
	}

	// Graceful shutdown: finish (or prune) the current round, then stop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := collect.NewEnv(collector)
	if err := run(ctx, env, runConfig{
		method: *method, oracle: *oracleName, d: *d, eps: *eps, w: *w,
		n: *n, T: *T, seed: *seed, numeric: *isMean, interval: *interval,
	}, snaps, persist); err != nil {
		log.Printf("stream ended: %v", err)
	}

	// Drain: refuse new rounds, let in-flight requests finish, flush the
	// log, and present the bill.
	if ingest != nil {
		ingest.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if logW != nil {
		if err := logW.Close(); err != nil {
			log.Printf("closing release log: %v", err)
		}
	}
	fmt.Printf("communication: %s\n", env.Stats())
}

// runConfig carries the stream parameters into run.
type runConfig struct {
	method, oracle string
	d, w, n, T     int
	eps            float64
	seed           uint64
	numeric        bool
	interval       time.Duration
}

// run drives the mechanism until T timestamps have released, the context
// is cancelled, or a round fails terminally.
func run(ctx context.Context, env *collect.Env, cfg runConfig, snaps *serve.Snapshots, persist func(int, []float64)) error {
	if cfg.numeric {
		return runMean(ctx, env, cfg, snaps, persist)
	}
	o, err := fo.New(cfg.oracle, cfg.d)
	if err != nil {
		return err
	}
	m, err := mechanism.New(cfg.method, mechanism.Params{
		Eps: cfg.eps, W: cfg.w, N: cfg.n, Oracle: o, Src: ldprand.New(cfg.seed),
	})
	if err != nil {
		return err
	}
	// The round-close release hook: every successful Step publishes into
	// the snapshot store (live queries, SSE) and the durable log.
	hooked := mechanism.Hooked{Mechanism: m, OnRelease: func(t int, release []float64) {
		snaps.Publish(t, release)
		persist(t, release)
	}}
	for t := 1; cfg.T == 0 || t <= cfg.T; t++ {
		if ctx.Err() != nil {
			log.Printf("shutdown requested; stopping before t=%d", t)
			return nil
		}
		env.Advance(t)
		if _, err := hooked.Step(env); err != nil {
			if ctx.Err() != nil {
				log.Printf("shutdown requested mid-round at t=%d: %v", t, err)
				return nil
			}
			return fmt.Errorf("t=%d: %w", t, err)
		}
		log.Printf("t=%-4d released (v%d)", t, currentVersion(snaps))
		if !sleep(ctx, cfg.interval) {
			return nil
		}
	}
	return nil
}

// runMean is run's numeric sibling: a streaming mean mechanism whose
// one-element releases flow through the same snapshot store and log.
func runMean(ctx context.Context, env *collect.Env, cfg runConfig, snaps *serve.Snapshots, persist func(int, []float64)) error {
	p := numeric.MeanParams{Eps: cfg.eps, W: cfg.w, N: cfg.n, Src: ldprand.New(cfg.seed)}
	var (
		m   numeric.MeanMechanism
		err error
	)
	switch cfg.method {
	case "LPU", "Mean-LPU":
		m, err = numeric.NewMeanLPU(p)
	case "LPA", "Mean-LPA":
		m, err = numeric.NewMeanLPA(p)
	default:
		return fmt.Errorf("unknown numeric method %q (want LPU or LPA)", cfg.method)
	}
	if err != nil {
		return err
	}
	for t := 1; cfg.T == 0 || t <= cfg.T; t++ {
		if ctx.Err() != nil {
			log.Printf("shutdown requested; stopping before t=%d", t)
			return nil
		}
		env.Advance(t)
		mean, err := m.Step(env)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("shutdown requested mid-round at t=%d: %v", t, err)
				return nil
			}
			return fmt.Errorf("t=%d: %w", t, err)
		}
		release := []float64{mean}
		snaps.Publish(t, release)
		persist(t, release)
		log.Printf("t=%-4d released mean %.4f", t, mean)
		if !sleep(ctx, cfg.interval) {
			return nil
		}
	}
	return nil
}

// currentVersion reads the snapshot store's latest version for progress
// logging.
func currentVersion(snaps *serve.Snapshots) int64 {
	snap, ok := snaps.Latest()
	if !ok {
		return 0
	}
	return snap.Version
}

// sleep pauses for d, returning false if the context was cancelled first.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
