// Command ldpids-gateway runs LDP-IDS as a long-running HTTP service: a
// registry mechanism (LBD, LBA, LPA, ...) drives collection rounds over
// the internal/serve ingestion backend, publishing every release into a
// versioned snapshot store that powers the live query endpoints.
//
// Endpoints:
//
//	POST /v1/report    batched, bit-packed perturbed reports (clients)
//	GET  /v1/round     long-poll for the next collection round (clients)
//	GET  /v1/healthz   readiness probe (503 until the first round opens)
//	GET  /v1/estimate  the current released histogram/mean as JSON
//	GET  /v1/stream    Server-Sent Events, one event per release
//	GET  /metrics      Prometheus text exposition (reports folded, bytes
//	                   in, per-stage latency histograms, refusals by
//	                   reason, releases; cluster membership and frame
//	                   counters on a coordinator; Go runtime gauges)
//
// Observability: -trace-log appends one JSON line per round-lifecycle
// span (round, batch, ship, merge, client post) to a crash-safe log;
// ldpids-dump -trace renders one or more such logs as Chrome trace-event
// JSON for chrome://tracing or Perfetto. -debug-addr starts a second,
// private listener serving /debug/pprof/ (CPU/heap profiles, execution
// traces) so production profiling never shares a port with ingestion.
// All telemetry is observe-only: trace ids come from crypto/rand and
// never touch the seeded report streams, so a traced run's release log
// is byte-identical to an untraced one.
//
// With -backend sim the gateway hosts the simulated device population
// in-process instead of collecting over HTTP (the query endpoints still
// serve); seeds derive identically in both modes, so an HTTP run driven by
// ldpids-client -transport http produces a bit-identical release log to a
// sim run with the same -seed/-client-seed — CI's gateway-smoke job diffs
// exactly that. SIGINT/SIGTERM shut the gateway down gracefully: the
// current round finishes (or is pruned), the release log is flushed, and
// the communication bill is printed.
//
// Distributed ingestion (-role): one coordinator process owns the
// mechanism, the round sequence, and the release stream; N replica
// processes each ingest a contiguous user shard and ship merged integer
// counters back per round (internal/cluster). Frequency aggregation is
// commutative integer counting, so the cluster's release log is
// byte-identical to a single process over the same seeds — CI's
// cluster-smoke job diffs exactly that, across a mid-stream replica
// restart.
//
// Cluster quickstart (three shells, population split 2x150):
//
//	ldpids-gateway -role coordinator -addr 127.0.0.1:7900 -n 300 -d 8 -method LPA -T 100
//	ldpids-gateway -role replica -addr 127.0.0.1:7901 -peers http://127.0.0.1:7900 -shard 0:150 -n 300 -d 8
//	ldpids-gateway -role replica -addr 127.0.0.1:7902 -peers http://127.0.0.1:7900 -shard 150:300 -n 300 -d 8
//	ldpids-client -transport http -addr 127.0.0.1:7901 -n 150 -first 0   -d 8
//	ldpids-client -transport http -addr 127.0.0.1:7902 -n 150 -first 150 -d 8
//	curl -s http://127.0.0.1:7900/v1/estimate
//
// Single-process demo (two shells):
//
//	ldpids-gateway -addr 127.0.0.1:8080 -n 200 -d 8 -method LPA -T 100 -interval 500ms
//	ldpids-client -transport http -addr http://127.0.0.1:8080 -n 200 -d 8
//	curl -s http://127.0.0.1:8080/v1/estimate
//	curl -sN http://127.0.0.1:8080/v1/stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ldpids/internal/cluster"
	"ldpids/internal/collect"
	"ldpids/internal/device"
	"ldpids/internal/fo"
	"ldpids/internal/history"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/numeric"
	"ldpids/internal/obs"
	"ldpids/internal/serve"
	"ldpids/internal/store"
)

// gatewayFlags carries the parsed command line into the role runners.
type gatewayFlags struct {
	addr, backend, method, oracleName string
	role, peers, shard, name, out     string
	ingestLog, wire                   string
	traceLog, debugAddr               string
	n, d, w, T                        int
	eps                               float64
	seed, clientSeed                  uint64
	timeout, interval                 time.Duration
	isMean                            bool
}

// parseWire resolves the -wire flag, fataling on unknown values.
func (f gatewayFlags) parseWire() serve.Wire {
	w, err := serve.ParseWire(f.wire)
	if err != nil {
		log.Fatal(err)
	}
	return w
}

func main() {
	var f gatewayFlags
	flag.StringVar(&f.addr, "addr", "127.0.0.1:8080", "HTTP listen address")
	flag.StringVar(&f.backend, "backend", "http", "collection backend for -role single: http (remote clients) or sim (in-process devices)")
	flag.IntVar(&f.n, "n", 100, "user population size (the whole population, in every role)")
	flag.IntVar(&f.d, "d", 5, "domain size")
	flag.StringVar(&f.method, "method", "LPA", "mechanism: "+strings.Join(mechanism.Names, " ")+" (with -numeric: LPU LPA)")
	flag.IntVar(&f.w, "w", 10, "window size")
	flag.Float64Var(&f.eps, "eps", 1.0, "privacy budget per window")
	flag.IntVar(&f.T, "T", 0, "timestamps to run (0 = until SIGINT/SIGTERM)")
	flag.StringVar(&f.oracleName, "oracle", "GRR", "frequency oracle: "+strings.Join(fo.Names(), " "))
	flag.Uint64Var(&f.seed, "seed", 1, "server-side random seed (mechanism sampling)")
	flag.Uint64Var(&f.clientSeed, "client-seed", 99, "device seed for -backend sim (must match ldpids-client -seed to compare runs)")
	flag.DurationVar(&f.timeout, "round-timeout", serve.DefaultTimeout, "per-round collection deadline (slow/dead clients are pruned)")
	flag.DurationVar(&f.interval, "interval", 0, "pause between timestamps (gives live queries something to watch)")
	flag.BoolVar(&f.isMean, "numeric", false, "run a streaming mean mechanism instead of a frequency mechanism")
	flag.StringVar(&f.out, "out", "", "optional path to persist releases as an append-only log")
	flag.StringVar(&f.ingestLog, "ingest-log", "", "optional path for the append-only ingestion history (audited offline by ldpids-check)")
	flag.StringVar(&f.role, "role", "single", "deployment role: single (all-in-one), coordinator (cluster rounds + releases), or replica (cluster ingestion shard)")
	flag.StringVar(&f.peers, "peers", "", "coordinator base URL for -role replica, e.g. http://127.0.0.1:7900")
	flag.StringVar(&f.shard, "shard", "", "user shard lo:hi for -role replica")
	flag.StringVar(&f.name, "name", "", "replica name, stable across restarts (-role replica; default replica-<lo>-<hi>)")
	flag.StringVar(&f.wire, "wire", "json", "report-batch encoding this deployment's clients post: json or binary (the server accepts both; this sets the byte accounting)")
	flag.StringVar(&f.traceLog, "trace-log", "", "optional path for the append-only round-lifecycle trace log (render with ldpids-dump -trace)")
	flag.StringVar(&f.debugAddr, "debug-addr", "", "optional second listen address serving /debug/pprof/ (keep it private)")
	flag.Parse()
	if f.n < 1 || f.d < 1 {
		log.Fatalf("population and domain must be positive, got -n %d -d %d", f.n, f.d)
	}

	switch f.role {
	case "single":
		runSingle(f)
	case "coordinator":
		runCoordinator(f)
	case "replica":
		runReplica(f)
	default:
		log.Fatalf("unknown -role %q (want single, coordinator, or replica)", f.role)
	}
}

// listenAndServe starts the HTTP front door, fataling on listen errors.
func listenAndServe(addr string, mux *http.ServeMux) (net.Listener, *http.Server) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("http server: %v", err)
		}
	}()
	return ln, srv
}

// shutdown drains the HTTP server.
func shutdown(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}

// openTracer opens the round-lifecycle trace log (when -trace-log is set)
// and returns a tracer stamping src on every span, plus a closer. A nil
// tracer (no -trace-log) disables tracing at zero cost.
func openTracer(f gatewayFlags, src string) (*obs.Tracer, func()) {
	if f.traceLog == "" {
		return nil, func() {}
	}
	tlog, err := obs.CreateTraceLog(f.traceLog)
	if err != nil {
		log.Fatal(err)
	}
	return obs.NewTracer(src, tlog), func() {
		if err := tlog.Close(); err != nil {
			log.Printf("closing trace log: %v", err)
		}
	}
}

// newMetrics builds the role's metric registry: the gateway families
// labeled with the deployment's oracle and wire, plus the Go runtime
// gauges, all on one registry so a single /metrics endpoint serves
// everything mounted later.
func newMetrics(f gatewayFlags, wire serve.Wire) *serve.Metrics {
	metrics := serve.NewMetrics(nil)
	metrics.SetLabels(f.oracleName, wire)
	obs.RegisterRuntimeGauges(metrics.Registry())
	return metrics
}

// serveDebug starts the private observability listener (when -debug-addr
// is set): net/http/pprof profiles and nothing else, mounted explicitly so
// the ingestion mux never inherits them. Returns a closer.
func serveDebug(f gatewayFlags) func() {
	if f.debugAddr == "" {
		return func() {}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, srv := listenAndServe(f.debugAddr, mux)
	log.Printf("debug listener on http://%s/debug/pprof/", ln.Addr())
	return func() { shutdown(srv) }
}

// releaseLog opens the append-only release log (when -out is set) and
// returns the per-release persist hook plus a closer.
func releaseLog(f gatewayFlags) (persist func(int, []float64), closeLog func()) {
	if f.out == "" {
		return func(int, []float64) {}, func() {}
	}
	logD := f.d
	if f.isMean {
		logD = 1
	}
	logW, err := store.Create(f.out, logD)
	if err != nil {
		log.Fatal(err)
	}
	persist = func(t int, release []float64) {
		if err := logW.Append(t, release); err != nil {
			log.Fatalf("persisting release at t=%d: %v", t, err)
		}
	}
	closeLog = func() {
		if err := logW.Close(); err != nil {
			log.Printf("closing release log: %v", err)
		}
	}
	return persist, closeLog
}

// openIngestLog opens the append-only ingestion history (when -ingest-log
// is set) and writes its config record. source names the emitting role in
// the record ("gateway", "coordinator", "replica"). Replicas log a zero
// window/budget: a shard cannot know the deployment's privacy window, so
// ldpids-check skips the budget invariant on replica histories and proves
// it on the coordinator's instead.
func openIngestLog(f gatewayFlags, source string) (*history.Log, func()) {
	if f.ingestLog == "" {
		return nil, func() {}
	}
	h, err := history.Create(f.ingestLog)
	if err != nil {
		log.Fatal(err)
	}
	cfg := history.Record{Kind: history.KindConfig, Source: source,
		N: f.n, D: f.d, Oracle: f.oracleName}
	if source != "replica" {
		cfg.W = f.w
		cfg.Budget = f.eps
	}
	h.Append(cfg)
	return h, func() {
		if err := h.Close(); err != nil {
			log.Printf("closing ingest log: %v", err)
		}
	}
}

// recordReleases wraps the release persist hook to also journal every
// release into the ingestion history, so ldpids-check can prove release
// coherence (each release reachable from its round's accepted reports,
// failed rounds republishing the previous release verbatim).
func recordReleases(h *history.Log, persist func(int, []float64)) func(int, []float64) {
	if h == nil {
		return persist
	}
	return func(t int, release []float64) {
		h.Append(history.Record{Kind: history.KindRelease, T: t, Values: release})
		persist(t, release)
	}
}

// runSingle is the all-in-one deployment: ingestion (HTTP or sim),
// mechanism, and query layer in one process.
func runSingle(f gatewayFlags) {
	wire := f.parseWire()
	snaps := serve.NewSnapshots()
	metrics := newMetrics(f, wire)
	snaps.Metrics = metrics
	health := &serve.Health{}
	tracer, closeTrace := openTracer(f, "gateway")
	closeDebug := serveDebug(f)

	// The collection backend: remote HTTP clients, or an in-process
	// simulated device population with the same seed derivation.
	var (
		collector collect.Collector
		ingest    *serve.Backend
	)
	switch f.backend {
	case "http":
		b, err := serve.NewBackend(f.n)
		if err != nil {
			log.Fatal(err)
		}
		b.Timeout = f.timeout
		b.Metrics = metrics
		b.Health = health
		b.Wire = wire
		b.Tracer = tracer
		collector, ingest = b, b
	case "sim":
		if f.ingestLog != "" {
			log.Fatal("-ingest-log needs -backend http: the sim backend has no ingestion protocol to journal")
		}
		pop := device.NewPopulation(f.clientSeed, 0, f.n, f.d)
		o, err := fo.New(f.oracleName, f.d)
		if err != nil {
			log.Fatal(err)
		}
		collector = &collect.Sim{Users: f.n, Report: pop.Report(o), NumericReport: pop.NumericReport()}
	default:
		log.Fatalf("unknown -backend %q (want http or sim)", f.backend)
	}

	// The HTTP front door: ingestion (http backend only), live queries,
	// health, metrics.
	mux := http.NewServeMux()
	if ingest != nil {
		mux.Handle("/v1/round", ingest)
		mux.Handle("/v1/report", ingest)
	}
	mux.Handle("/v1/healthz", health)
	mux.Handle("/v1/estimate", snaps)
	mux.Handle("/v1/stream", snaps)
	mux.Handle("/metrics", metrics)
	ln, srv := listenAndServe(f.addr, mux)
	log.Printf("gateway listening on http://%s (backend %s, n=%d, d=%d, method %s)",
		ln.Addr(), f.backend, f.n, f.d, f.method)

	hist, closeHist := openIngestLog(f, "gateway")
	if ingest != nil {
		ingest.History = hist
	}
	persist, closeLog := releaseLog(f)
	persist = recordReleases(hist, persist)

	// Graceful shutdown: finish (or prune) the current round, then stop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := collect.NewEnv(collector)
	// The sim backend has no announce path; its probe flips on the first
	// mechanism step instead (the HTTP backend marks it at announce).
	if ingest == nil {
		health.MarkReady()
	}
	if err := run(ctx, env, runConfig{
		method: f.method, oracle: f.oracleName, d: f.d, eps: f.eps, w: f.w,
		n: f.n, T: f.T, seed: f.seed, numeric: f.isMean, interval: f.interval,
	}, snaps, persist); err != nil {
		log.Printf("stream ended: %v", err)
	}

	// Drain: refuse new rounds, let in-flight requests finish, flush the
	// log, and present the bill.
	if ingest != nil {
		ingest.Close()
	}
	shutdown(srv)
	closeDebug()
	closeLog()
	closeHist()
	closeTrace()
	fmt.Printf("communication: %s\n", env.Stats())
}

// runCoordinator owns the cluster's round sequence and release stream:
// the mechanism runs here, each Collect fans out to the registered
// replicas, and their merged counter frames flow back into the round
// sink. The release log is byte-identical to a single-process run over
// the same seeds.
func runCoordinator(f gatewayFlags) {
	if f.isMean {
		log.Fatal("-numeric is not supported with -role coordinator: float accumulation does not commute bit-identically across shards")
	}
	snaps := serve.NewSnapshots()
	metrics := newMetrics(f, f.parseWire())
	snaps.Metrics = metrics
	// One registry: the cluster families mount next to the gateway ones,
	// so a single conformant /metrics endpoint serves both.
	clusterMetrics := cluster.NewMetrics(metrics.Registry())
	health := &serve.Health{}
	tracer, closeTrace := openTracer(f, "coordinator")
	closeDebug := serveDebug(f)

	coord, err := cluster.NewCoordinator(f.n, f.oracleName, f.d)
	if err != nil {
		log.Fatal(err)
	}
	// Replica-side rounds are bounded by -round-timeout; the grace covers
	// shipping, so the replica's own deadline (with its precise missing
	//-user diagnosis) fires first.
	coord.Timeout = f.timeout + 15*time.Second
	coord.Metrics = clusterMetrics
	coord.Health = health
	coord.Tracer = tracer

	mux := http.NewServeMux()
	mux.Handle("/cluster/v1/", coord)
	mux.Handle("/v1/healthz", health)
	mux.Handle("/v1/estimate", snaps)
	mux.Handle("/v1/stream", snaps)
	mux.Handle("/metrics", metrics)
	ln, srv := listenAndServe(f.addr, mux)
	log.Printf("coordinator listening on http://%s (n=%d, d=%d, method %s, oracle %s)",
		ln.Addr(), f.n, f.d, f.method, f.oracleName)

	hist, closeHist := openIngestLog(f, "coordinator")
	coord.History = hist
	persist, closeLog := releaseLog(f)
	persist = recordReleases(hist, persist)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	env := collect.NewEnv(coord)
	if err := run(ctx, env, runConfig{
		method: f.method, oracle: f.oracleName, d: f.d, eps: f.eps, w: f.w,
		n: f.n, T: f.T, seed: f.seed, interval: f.interval,
	}, snaps, persist); err != nil {
		log.Printf("stream ended: %v", err)
	}

	coord.Close()
	shutdown(srv)
	closeDebug()
	closeLog()
	closeHist()
	closeTrace()
	fmt.Printf("communication: %s\n", env.Stats())
}

// runReplica runs one ingestion shard: a serve.Backend for the shard's
// device clients, wrapped in a cluster.Replica loop that registers with
// the coordinator, re-announces its rounds, and ships merged counters.
func runReplica(f gatewayFlags) {
	if f.peers == "" {
		log.Fatal("-role replica needs -peers (the coordinator's base URL)")
	}
	peers := f.peers
	if !strings.Contains(peers, "://") {
		peers = "http://" + peers
	}
	lo, hi, err := parseShard(f.shard)
	if err != nil {
		log.Fatal(err)
	}
	name := f.name
	if name == "" {
		name = fmt.Sprintf("replica-%d-%d", lo, hi)
	}

	wire := f.parseWire()
	metrics := newMetrics(f, wire)
	// The replica's ship-stage histogram mounts on the same registry as
	// its gateway families; the coordinator-only families render as zeros.
	repMetrics := cluster.NewMetrics(metrics.Registry())
	health := &serve.Health{}
	tracer, closeTrace := openTracer(f, name)
	closeDebug := serveDebug(f)
	b, err := serve.NewBackend(f.n)
	if err != nil {
		log.Fatal(err)
	}
	b.Timeout = f.timeout
	b.Metrics = metrics
	b.Health = health
	b.Tracer = tracer
	hist, closeHist := openIngestLog(f, "replica")
	b.History = hist

	mux := http.NewServeMux()
	mux.Handle("/v1/round", b)
	mux.Handle("/v1/report", b)
	mux.Handle("/v1/healthz", b)
	mux.Handle("/metrics", metrics)
	ln, srv := listenAndServe(f.addr, mux)
	log.Printf("replica %s listening on http://%s (shard [%d:%d) of %d), coordinator %s",
		name, ln.Addr(), lo, hi, f.n, peers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep := &cluster.Replica{
		Coordinator: peers,
		Name:        name,
		Lo:          lo,
		Hi:          hi,
		Backend:     b,
		Wire:        wire,
		Metrics:     repMetrics,
		Tracer:      tracer,
		Logf:        log.Printf,
	}
	if err := rep.Run(ctx); err != nil {
		log.Printf("replica stopped: %v", err)
	} else {
		log.Printf("replica %s stopped", name)
	}
	b.Close()
	shutdown(srv)
	closeDebug()
	closeHist()
	closeTrace()
}

// parseShard parses a -shard lo:hi bound pair.
func parseShard(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, errors.New("-role replica needs -shard lo:hi")
	}
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want lo:hi): %w", s, err)
	}
	if lo < 0 || hi <= lo {
		return 0, 0, fmt.Errorf("bad -shard %q: want 0 <= lo < hi", s)
	}
	return lo, hi, nil
}

// runConfig carries the stream parameters into run.
type runConfig struct {
	method, oracle string
	d, w, n, T     int
	eps            float64
	seed           uint64
	numeric        bool
	interval       time.Duration
}

// run drives the mechanism until T timestamps have released, the context
// is cancelled, or a round fails terminally.
func run(ctx context.Context, env *collect.Env, cfg runConfig, snaps *serve.Snapshots, persist func(int, []float64)) error {
	if cfg.numeric {
		return runMean(ctx, env, cfg, snaps, persist)
	}
	o, err := fo.New(cfg.oracle, cfg.d)
	if err != nil {
		return err
	}
	m, err := mechanism.New(cfg.method, mechanism.Params{
		Eps: cfg.eps, W: cfg.w, N: cfg.n, Oracle: o, Src: ldprand.New(cfg.seed),
	})
	if err != nil {
		return err
	}
	// The round-close release hook: every successful Step publishes into
	// the snapshot store (live queries, SSE) and the durable log, timed
	// as the release stage.
	hooked := mechanism.Hooked{Mechanism: m, OnRelease: func(t int, release []float64) {
		start := time.Now()
		snaps.Publish(t, release)
		persist(t, release)
		snaps.Metrics.ObserveRelease(time.Since(start))
	}}
	for t := 1; cfg.T == 0 || t <= cfg.T; t++ {
		if ctx.Err() != nil {
			log.Printf("shutdown requested; stopping before t=%d", t)
			return nil
		}
		env.Advance(t)
		if _, err := hooked.Step(env); err != nil {
			if ctx.Err() != nil {
				log.Printf("shutdown requested mid-round at t=%d: %v", t, err)
				return nil
			}
			return fmt.Errorf("t=%d: %w", t, err)
		}
		log.Printf("t=%-4d released (v%d)", t, currentVersion(snaps))
		if !sleep(ctx, cfg.interval) {
			return nil
		}
	}
	return nil
}

// runMean is run's numeric sibling: a streaming mean mechanism whose
// one-element releases flow through the same snapshot store and log.
func runMean(ctx context.Context, env *collect.Env, cfg runConfig, snaps *serve.Snapshots, persist func(int, []float64)) error {
	p := numeric.MeanParams{Eps: cfg.eps, W: cfg.w, N: cfg.n, Src: ldprand.New(cfg.seed)}
	var (
		m   numeric.MeanMechanism
		err error
	)
	switch cfg.method {
	case "LPU", "Mean-LPU":
		m, err = numeric.NewMeanLPU(p)
	case "LPA", "Mean-LPA":
		m, err = numeric.NewMeanLPA(p)
	default:
		return fmt.Errorf("unknown numeric method %q (want LPU or LPA)", cfg.method)
	}
	if err != nil {
		return err
	}
	for t := 1; cfg.T == 0 || t <= cfg.T; t++ {
		if ctx.Err() != nil {
			log.Printf("shutdown requested; stopping before t=%d", t)
			return nil
		}
		env.Advance(t)
		mean, err := m.Step(env)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("shutdown requested mid-round at t=%d: %v", t, err)
				return nil
			}
			return fmt.Errorf("t=%d: %w", t, err)
		}
		release := []float64{mean}
		start := time.Now()
		snaps.Publish(t, release)
		persist(t, release)
		snaps.Metrics.ObserveRelease(time.Since(start))
		log.Printf("t=%-4d released mean %.4f", t, mean)
		if !sleep(ctx, cfg.interval) {
			return nil
		}
	}
	return nil
}

// currentVersion reads the snapshot store's latest version for progress
// logging.
func currentVersion(snaps *serve.Snapshots) int64 {
	snap, ok := snaps.Latest()
	if !ok {
		return 0
	}
	return snap.Version
}

// sleep pauses for d, returning false if the context was cancelled first.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}
