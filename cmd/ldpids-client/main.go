// Command ldpids-client simulates -n user devices connecting to an
// aggregator — the TCP ldpids-server (-transport tcp, the default) or the
// HTTP ldpids-gateway (-transport http). The users are sharded across
// -conns connections (default 1), each hosting a contiguous id batch. Each
// simulated device holds a private value stream (a sticky Markov chain
// over the domain, and a clamped random walk in [-1, 1] for -numeric mean
// rounds; see internal/device) and answers report requests by perturbing
// locally — raw values never leave this process.
//
// Identical seeds produce identical report streams over every transport
// and in the gateway's in-process -backend sim mode, which is how CI's
// gateway-smoke job diffs an HTTP run against an in-process one.
// -trace-log (http transport only) appends one span per report post to a
// crash-safe JSONL log; render it together with the gateway's logs via
// ldpids-dump -trace. Tracing is observe-only and never perturbs the
// seeded report streams.
package main

import (
	"flag"
	"log"
	"strings"
	"sync"

	"ldpids/internal/device"
	"ldpids/internal/fo"
	"ldpids/internal/obs"
	"ldpids/internal/serve"
	"ldpids/internal/transport"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "aggregator address (host:port for tcp, base URL for http)")
		mode        = flag.String("transport", "tcp", "aggregator transport: tcp (ldpids-server) or http (ldpids-gateway)")
		n           = flag.Int("n", 100, "number of simulated users")
		d           = flag.Int("d", 5, "domain size")
		oracle      = flag.String("oracle", "GRR", "frequency oracle (must match server): "+strings.Join(fo.Names(), " "))
		seed        = flag.Uint64("seed", 99, "client-side random seed")
		first       = flag.Int("first", 0, "first user id (for sharding users across processes)")
		conns       = flag.Int("conns", 1, "connections to shard the users across")
		numericMode = flag.Bool("numeric", false, "answer numeric mean rounds in addition to frequency rounds")
		wireName    = flag.String("wire", "json", "report-batch encoding for -transport http: json or binary (binary falls back to json on a 415)")
		traceLog    = flag.String("trace-log", "", "optional path for the append-only post-span trace log (-transport http; render with ldpids-dump -trace)")
	)
	flag.Parse()
	if *conns < 1 || *conns > *n {
		log.Fatalf("-conns must be in [1, %d], got %d", *n, *conns)
	}
	wire, err := serve.ParseWire(*wireName)
	if err != nil {
		log.Fatal(err)
	}
	if wire != serve.WireJSON && *mode != "http" {
		log.Fatalf("-wire %s needs -transport http; the tcp transport has its own framing", wire)
	}
	var tracer *obs.Tracer
	if *traceLog != "" {
		if *mode != "http" {
			log.Fatal("-trace-log needs -transport http; the tcp transport has no trace propagation")
		}
		tlog, err := obs.CreateTraceLog(*traceLog)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := tlog.Close(); err != nil {
				log.Printf("closing trace log: %v", err)
			}
		}()
		tracer = obs.NewTracer("client", tlog)
	}

	o, err := fo.New(*oracle, *d)
	if err != nil {
		log.Fatal(err)
	}
	pop := device.NewPopulation(*seed, *first, *n, *d)
	report := pop.Report(o)
	var numericReport func(id, t int, eps float64) float64
	if *numericMode {
		numericReport = pop.NumericReport()
	}

	var wg sync.WaitGroup
	per := *n / *conns
	extra := *n % *conns
	start := *first
	for i := 0; i < *conns; i++ {
		count := per
		if i < extra {
			count++
		}
		if count == 0 {
			continue
		}
		serveConn, err := connect(*mode, *addr, wire, tracer, start, count, report, numericReport)
		if err != nil {
			log.Fatalf("users [%d,%d): %v", start, start+count, err)
		}
		wg.Add(1)
		go func(firstID, count int, serveConn func() error) {
			defer wg.Done()
			if err := serveConn(); err != nil {
				log.Printf("users [%d,%d) disconnected: %v", firstID, firstID+count, err)
			}
		}(start, count, serveConn)
		start += count
	}
	log.Printf("%d users connected to %s over %d %s connections; serving report requests", *n, *addr, *conns, *mode)
	wg.Wait()
}

// connect registers users [first, first+count) with the aggregator over
// the chosen transport and returns the connection's serve loop.
func connect(mode, addr string, wire serve.Wire, tracer *obs.Tracer, first, count int, report func(int, int, float64) fo.Report, numericReport func(int, int, float64) float64) (func() error, error) {
	switch mode {
	case "tcp":
		c, err := transport.NewClient(addr, first, count, transport.Funcs{
			Report:        report,
			NumericReport: numericReport,
		})
		if err != nil {
			return nil, err
		}
		return c.Serve, nil
	case "http":
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		c, err := serve.NewClient(base, first, count, serve.Funcs{
			Report:        report,
			NumericReport: numericReport,
		})
		if err != nil {
			return nil, err
		}
		c.Wire = wire
		c.Tracer = tracer
		return c.Serve, nil
	default:
		log.Fatalf("unknown -transport %q (want tcp or http)", mode)
		return nil, nil
	}
}
