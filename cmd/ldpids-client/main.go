// Command ldpids-client simulates -n user devices connecting to an
// ldpids-server aggregator. The users are sharded across -conns TCP
// connections (default 1), each hosting a contiguous id batch — the server
// sends one batched request per connection per round. Each simulated user
// holds a private value stream (a sticky Markov chain over the domain, and
// a clamped random walk in [-1, 1] for -numeric mean rounds) and answers
// report requests by perturbing locally — raw values never leave this
// process.
package main

import (
	"flag"
	"log"
	"strings"
	"sync"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/numeric"
	"ldpids/internal/transport"
)

// user is one simulated device's private state.
type user struct {
	src      *ldprand.Source
	valueSrc *ldprand.Source
	cur      int
	walk     float64
	lastT    int
	d        int
}

// value advances the sticky Markov chain (and the numeric walk) to t and
// returns the current categorical value.
func (u *user) value(t int) int {
	for u.lastT < t {
		if !u.valueSrc.Bernoulli(0.9) {
			u.cur = u.valueSrc.Intn(u.d)
		}
		u.walk += u.valueSrc.NormalScaled(0, 0.05)
		if u.walk > 1 {
			u.walk = 1
		}
		if u.walk < -1 {
			u.walk = -1
		}
		u.lastT++
	}
	return u.cur
}

// numericValue advances to t and returns the current walk value.
func (u *user) numericValue(t int) float64 {
	u.value(t)
	return u.walk
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "aggregator address")
		n           = flag.Int("n", 100, "number of simulated users")
		d           = flag.Int("d", 5, "domain size")
		oracle      = flag.String("oracle", "GRR", "frequency oracle (must match server): "+strings.Join(fo.Names(), " "))
		seed        = flag.Uint64("seed", 99, "client-side random seed")
		first       = flag.Int("first", 0, "first user id (for sharding users across processes)")
		conns       = flag.Int("conns", 1, "TCP connections to shard the users across")
		numericMode = flag.Bool("numeric", false, "answer numeric mean rounds in addition to frequency rounds")
	)
	flag.Parse()
	if *conns < 1 || *conns > *n {
		log.Fatalf("-conns must be in [1, %d], got %d", *n, *conns)
	}

	o, err := fo.New(*oracle, *d)
	if err != nil {
		log.Fatal(err)
	}
	root := ldprand.New(*seed)
	users := make(map[int]*user, *n)
	for i := 0; i < *n; i++ {
		u := &user{src: root.Split(), valueSrc: root.Split(), d: *d}
		u.cur = u.valueSrc.Intn(*d)
		users[*first+i] = u
	}
	fns := transport.Funcs{
		Report: func(id, t int, eps float64) fo.Report {
			u := users[id]
			return o.Perturb(u.value(t), eps, u.src)
		},
	}
	if *numericMode {
		fns.NumericReport = func(id, t int, eps float64) float64 {
			u := users[id]
			return numeric.BestPerturber(eps).Perturb(u.numericValue(t), eps, u.src)
		}
	}

	var wg sync.WaitGroup
	per := *n / *conns
	extra := *n % *conns
	start := *first
	for i := 0; i < *conns; i++ {
		count := per
		if i < extra {
			count++
		}
		if count == 0 {
			continue
		}
		c, err := transport.NewClient(*addr, start, count, fns)
		if err != nil {
			log.Fatalf("users [%d,%d): %v", start, start+count, err)
		}
		wg.Add(1)
		go func(firstID, count int) {
			defer wg.Done()
			if err := c.Serve(); err != nil {
				log.Printf("users [%d,%d) disconnected: %v", firstID, firstID+count, err)
			}
		}(start, count)
		start += count
	}
	log.Printf("%d users connected to %s over %d connections; serving report requests", *n, *addr, *conns)
	wg.Wait()
}
