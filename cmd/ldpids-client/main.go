// Command ldpids-client simulates -n user devices connecting to an
// ldpids-server aggregator. Each simulated user holds a private value
// stream (a sticky Markov chain over the domain) and answers report
// requests by perturbing its current value locally via the frequency
// oracle — raw values never leave this process.
package main

import (
	"flag"
	"log"
	"sync"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/transport"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7788", "aggregator address")
		n      = flag.Int("n", 100, "number of simulated users")
		d      = flag.Int("d", 5, "domain size")
		oracle = flag.String("oracle", "GRR", "frequency oracle (must match server)")
		seed   = flag.Uint64("seed", 99, "client-side random seed")
		first  = flag.Int("first", 0, "first user id (for sharding users across processes)")
	)
	flag.Parse()

	o, err := fo.New(*oracle, *d)
	if err != nil {
		log.Fatal(err)
	}
	root := ldprand.New(*seed)
	var wg sync.WaitGroup
	for i := 0; i < *n; i++ {
		id := *first + i
		src := root.Split()
		valueSrc := root.Split()
		// The user's private value stream: sticky Markov chain.
		cur := valueSrc.Intn(*d)
		lastT := 0
		value := func(t int) int {
			for lastT < t {
				if !valueSrc.Bernoulli(0.9) {
					cur = valueSrc.Intn(*d)
				}
				lastT++
			}
			return cur
		}
		perturb := func(v int, eps float64) fo.Report { return o.Perturb(v, eps, src) }
		c, err := transport.NewClient(*addr, id, value, perturb)
		if err != nil {
			log.Fatalf("user %d: %v", id, err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := c.Serve(); err != nil {
				log.Printf("user %d disconnected: %v", id, err)
			}
		}(id)
	}
	log.Printf("%d users connected to %s; serving report requests", *n, *addr)
	wg.Wait()
}
