// Command ldpids-check replays ingestion histories written by
// ldpids-gateway -ingest-log and proves the protocol invariants offline
// (black-box checking): round tokens are fresh and never accepted twice
// or across rounds, no user exceeds the ε budget in any W-window, every
// ok round's counters are bit-identical to re-folding its accepted
// report multiset (or re-merging its accepted shard frames, which must
// exactly partition [0, n)), refused requests never influenced counters,
// and releases cohere with round outcomes. See internal/history for the
// record schema and the full invariant list.
//
// Usage:
//
//	ldpids-check [-releases store.ldps] [-v] history.jsonl...
//
// Each argument is checked independently and summarized; -releases
// additionally cross-checks the first history's release records
// bit-exactly against a release log written with -out. The exit status
// is 0 only if every history is structurally readable and violation-free,
// so a corrupted or tampered log fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ldpids/internal/history"
	"ldpids/internal/store"
)

func main() {
	releases := flag.String("releases", "", "release log (-out) to cross-check the first history's releases against")
	verbose := flag.Bool("v", false, "print per-reason refusal counts")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: ldpids-check [-releases store.ldps] [-v] history.jsonl...")
		os.Exit(2)
	}

	failed := false
	for i, path := range flag.Args() {
		recs, err := history.ReadAll(path)
		if err != nil {
			fmt.Printf("%s: FAIL: %v\n", path, err)
			failed = true
			continue
		}
		res := history.Check(recs)
		printResult(path, res, *verbose)
		if !res.OK() {
			failed = true
		}
		if i == 0 && *releases != "" && !crossCheck(path, recs, *releases) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printResult renders one history's verdict.
func printResult(path string, res *history.Result, verbose bool) {
	s := res.Summary
	verdict := "ok"
	if !res.OK() {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
	}
	fmt.Printf("%s: %s: %d/%d rounds ok, %d batches accepted (%d reports folded), %d refused, %d/%d/%d frames accepted/refused/failed, %d releases\n",
		path, verdict, s.OKRounds, s.Rounds, s.AcceptedBatches, s.FoldedReports,
		s.RefusedBatches, s.AcceptedFrames, s.RefusedFrames, s.FailedFrames, s.Releases)
	if verbose && len(s.Refusals) > 0 {
		reasons := make([]string, 0, len(s.Refusals))
		for r := range s.Refusals {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("  refused %-14s %d\n", r, s.Refusals[r])
		}
	}
	for _, v := range res.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
}

// crossCheck proves the history's release records match the durable
// release log bit-for-bit: same timestamps in the same order, identical
// values. Both are written by the same release hook, so any divergence
// means one of the logs was tampered with or lost a record.
func crossCheck(histPath string, recs []history.Record, storePath string) bool {
	ts, hists, err := store.ReadAll(storePath)
	if err != nil {
		fmt.Printf("%s: FAIL: release log %s: %v\n", histPath, storePath, err)
		return false
	}
	var rels []history.Record
	for _, rec := range recs {
		if rec.Kind == history.KindRelease {
			rels = append(rels, rec)
		}
	}
	if len(rels) != len(ts) {
		fmt.Printf("%s: FAIL: history has %d releases, release log %s has %d\n",
			histPath, len(rels), storePath, len(ts))
		return false
	}
	for i, rel := range rels {
		if rel.T != ts[i] {
			fmt.Printf("%s: FAIL: release %d is t=%d in the history but t=%d in %s\n",
				histPath, i, rel.T, ts[i], storePath)
			return false
		}
		if !equalValues(rel.Values, hists[i]) {
			fmt.Printf("%s: FAIL: release t=%d differs between the history and %s\n",
				histPath, rel.T, storePath)
			return false
		}
	}
	fmt.Printf("%s: releases match %s (%d releases)\n", histPath, storePath, len(rels))
	return true
}

// equalValues compares two releases bit-exactly (== per element, so a
// NaN would fail — released histograms are never NaN).
func equalValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
