// Command ldpids-server runs the aggregator side of the LDP-IDS protocol
// over TCP: it waits for -n user clients (see cmd/ldpids-client), then
// drives the chosen mechanism for -T timestamps, printing each released
// histogram and the final communication statistics.
//
// Demo (two shells):
//
//	ldpids-server -addr :7788 -n 200 -d 5 -method LPA -w 10 -eps 1 -T 50
//	ldpids-client -addr 127.0.0.1:7788 -n 200 -d 5
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/store"
	"ldpids/internal/transport"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7788", "listen address")
		n      = flag.Int("n", 100, "expected number of user clients")
		d      = flag.Int("d", 5, "domain size")
		method = flag.String("method", "LPA", "mechanism: LBU LSP LBD LBA LPU LPD LPA")
		w      = flag.Int("w", 10, "window size")
		eps    = flag.Float64("eps", 1.0, "privacy budget per window")
		T      = flag.Int("T", 50, "timestamps to run")
		oracle = flag.String("oracle", "GRR", "frequency oracle")
		seed   = flag.Uint64("seed", 1, "server-side random seed")
		wait   = flag.Duration("wait", 2*time.Minute, "registration timeout")
		out    = flag.String("out", "", "optional path to persist releases as an append-only log")
	)
	flag.Parse()

	o, err := fo.New(*oracle, *d)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := transport.NewServer(*addr, o, *n)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("listening on %s, waiting for %d users...", srv.Addr(), *n)
	if err := srv.WaitReady(*wait); err != nil {
		log.Fatal(err)
	}
	log.Printf("all %d users registered", *n)

	m, err := mechanism.New(*method, mechanism.Params{
		Eps: *eps, W: *w, N: *n, Oracle: o, Src: ldprand.New(*seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	var logW *store.Writer
	if *out != "" {
		logW, err = store.Create(*out, *d)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := logW.Close(); err != nil {
				log.Printf("closing release log: %v", err)
			}
		}()
	}
	for t := 1; t <= *T; t++ {
		srv.Advance(t)
		release, err := m.Step(srv)
		if err != nil {
			log.Fatalf("t=%d: %v", t, err)
		}
		if logW != nil {
			if err := logW.Append(t, release); err != nil {
				log.Fatalf("persisting release at t=%d: %v", t, err)
			}
		}
		fmt.Printf("t=%-4d r_t = [", t)
		for k, v := range release {
			if k > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.4f", v)
		}
		fmt.Println("]")
	}
	fmt.Printf("\ncommunication: %s\n", srv.CommStats())
}
