// Command ldpids-server runs the aggregator side of the LDP-IDS protocol
// over TCP: it waits for -n users (hosted by one or more ldpids-client
// processes, each holding a batch of users on a single connection), then
// drives the chosen mechanism for -T timestamps through the pluggable
// collection layer, printing each release and the final communication
// statistics.
//
// With -numeric, the server runs a streaming mean mechanism (Mean-LPU or
// Mean-LPA) instead of a frequency mechanism; clients must be started with
// -numeric too.
//
// Demo (two shells):
//
//	ldpids-server -addr :7788 -n 200 -d 5 -method LPA -w 10 -eps 1 -T 50
//	ldpids-client -addr 127.0.0.1:7788 -n 200 -d 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/numeric"
	"ldpids/internal/store"
	"ldpids/internal/transport"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7788", "listen address")
		n       = flag.Int("n", 100, "expected number of users across all client processes")
		d       = flag.Int("d", 5, "domain size")
		method  = flag.String("method", "LPA", "mechanism: LBU LSP LBD LBA LPU LPD LPA (with -numeric: LPU LPA)")
		w       = flag.Int("w", 10, "window size")
		eps     = flag.Float64("eps", 1.0, "privacy budget per window")
		T       = flag.Int("T", 50, "timestamps to run")
		oracle  = flag.String("oracle", "GRR", "frequency oracle: "+strings.Join(fo.Names(), " "))
		seed    = flag.Uint64("seed", 1, "server-side random seed")
		wait    = flag.Duration("wait", 2*time.Minute, "registration timeout")
		timeout = flag.Duration("timeout", transport.DefaultTimeout, "per-round request timeout")
		isMean  = flag.Bool("numeric", false, "run a streaming mean mechanism instead of a frequency mechanism")
		out     = flag.String("out", "", "optional path to persist releases as an append-only log")
	)
	flag.Parse()

	srv, err := transport.NewServer(*addr, *n)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.Timeout = *timeout
	log.Printf("listening on %s, waiting for %d users...", srv.Addr(), *n)
	if err := srv.WaitReady(*wait); err != nil {
		log.Fatal(err)
	}
	log.Printf("all %d users registered", *n)

	env := collect.NewEnv(srv)
	var logW *store.Writer
	if *out != "" {
		logD := *d
		if *isMean {
			logD = 1
		}
		logW, err = store.Create(*out, logD)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := logW.Close(); err != nil {
				log.Printf("closing release log: %v", err)
			}
		}()
	}
	persist := func(t int, release []float64) {
		if logW == nil {
			return
		}
		if err := logW.Append(t, release); err != nil {
			log.Fatalf("persisting release at t=%d: %v", t, err)
		}
	}

	if *isMean {
		runMean(env, *method, *eps, *w, *n, *T, *seed, persist)
	} else {
		runFrequency(env, *method, *oracle, *d, *eps, *w, *n, *T, *seed, persist)
	}
	fmt.Printf("\ncommunication: %s\n", env.Stats())
}

func runFrequency(env *collect.Env, method, oracleName string, d int, eps float64, w, n, T int, seed uint64, persist func(int, []float64)) {
	o, err := fo.New(oracleName, d)
	if err != nil {
		log.Fatal(err)
	}
	m, err := mechanism.New(method, mechanism.Params{
		Eps: eps, W: w, N: n, Oracle: o, Src: ldprand.New(seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	for t := 1; t <= T; t++ {
		env.Advance(t)
		release, err := m.Step(env)
		if err != nil {
			log.Fatalf("t=%d: %v", t, err)
		}
		persist(t, release)
		fmt.Printf("t=%-4d r_t = [", t)
		for k, v := range release {
			if k > 0 {
				fmt.Print(" ")
			}
			fmt.Printf("%.4f", v)
		}
		fmt.Println("]")
	}
}

func runMean(env *collect.Env, method string, eps float64, w, n, T int, seed uint64, persist func(int, []float64)) {
	p := numeric.MeanParams{Eps: eps, W: w, N: n, Src: ldprand.New(seed)}
	var (
		m   numeric.MeanMechanism
		err error
	)
	switch method {
	case "LPU", "Mean-LPU":
		m, err = numeric.NewMeanLPU(p)
	case "LPA", "Mean-LPA":
		m, err = numeric.NewMeanLPA(p)
	default:
		log.Fatalf("unknown numeric method %q (want LPU or LPA)", method)
	}
	if err != nil {
		log.Fatal(err)
	}
	for t := 1; t <= T; t++ {
		env.Advance(t)
		mean, err := m.Step(env)
		if err != nil {
			log.Fatalf("t=%d: %v", t, err)
		}
		persist(t, []float64{mean})
		fmt.Printf("t=%-4d mean = %.4f\n", t, mean)
	}
}
