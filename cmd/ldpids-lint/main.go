// Command ldpids-lint machine-checks the repo's domain invariants: the
// determinism, privacy-budget, kind-exhaustiveness, lock-discipline, HTTP,
// metric-naming, and documentation rules that ordinary vet cannot know
// about. It runs
// every analyzer in internal/analysis/passes over the requested packages
// (default ./...) and exits 1 if any diagnostic is reported, 2 if the
// packages fail to load, so CI can distinguish findings from breakage.
//
// Usage:
//
//	go run ./cmd/ldpids-lint [flags] [packages]
//	  -list             print the analyzers and exit
//	  -analyzers a,b    run only the named analyzers
//
// Diagnostics print one per line as position: message [analyzer], the way
// go vet does. See internal/analysis for the framework and each pass's
// documentation for the invariant it encodes and its escape hatches.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ldpids/internal/analysis"
	"ldpids/internal/analysis/driver"
	"ldpids/internal/analysis/passes/determinism"
	"ldpids/internal/analysis/passes/epsbudget"
	"ldpids/internal/analysis/passes/httpdiscipline"
	"ldpids/internal/analysis/passes/kindswitch"
	"ldpids/internal/analysis/passes/metricnames"
	"ldpids/internal/analysis/passes/pkgdoc"
	"ldpids/internal/analysis/passes/stripelock"
)

// all registers every domain analyzer, in report order.
var all = []*analysis.Analyzer{
	determinism.Analyzer,
	epsbudget.Analyzer,
	httpdiscipline.Analyzer,
	kindswitch.Analyzer,
	metricnames.Analyzer,
	pkgdoc.Analyzer,
	stripelock.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "print the registered analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run")
	flag.Parse()

	if *list {
		for _, a := range all {
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%-15s %s\n", a.Name, summary)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ldpids-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := driver.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldpids-lint: %v\n", err)
		os.Exit(2)
	}
	diags, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ldpids-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
