package ldpids_test

import (
	"fmt"

	"ldpids"
)

// Example runs the LPA mechanism over a small binary stream and reports
// the communication cost — the package's minimal end-to-end flow.
func Example() {
	root := ldpids.NewSource(1)
	n := 1000
	s := ldpids.NewBinaryStream(n, ldpids.NewSin(0, 0, 0.1), root.Split())
	oracle := ldpids.NewGRR(2)
	m, err := ldpids.NewMechanism("LPA", ldpids.Params{
		Eps: 1, W: 10, N: n, Oracle: oracle, Src: root.Split(),
	})
	if err != nil {
		panic(err)
	}
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := runner.Run(m, 30)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released %d timestamps\n", len(res.Released))
	fmt.Printf("CFPU below 1/w: %v\n", res.Comm.CFPU <= 0.1)
	// Output:
	// released 30 timestamps
	// CFPU below 1/w: true
}

// ExampleNewAccountant shows runtime w-event auditing: the accountant
// confirms no user exceeded the window budget.
func ExampleNewAccountant() {
	root := ldpids.NewSource(2)
	n := 500
	s := ldpids.NewBinaryStream(n, ldpids.DefaultSin(), root.Split())
	oracle := ldpids.NewGRR(2)
	m, _ := ldpids.NewMechanism("LBA", ldpids.Params{
		Eps: 1, W: 5, N: n, Oracle: oracle, Src: root.Split(),
	})
	acct := ldpids.NewAccountant(1, 5, n, root.Split())
	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, _ := runner.Run(m, 20)
	fmt.Printf("w-event violations: %d\n", len(res.Violations))
	// Output:
	// w-event violations: 0
}

// ExampleBestOracle picks the variance-optimal frequency oracle by domain
// size.
func ExampleBestOracle() {
	fmt.Println(ldpids.BestOracle(2, 1.0).Name())
	fmt.Println(ldpids.BestOracle(100, 1.0).Name())
	// Output:
	// GRR
	// OUE
}

// ExamplePaperThreshold computes the paper's event-monitoring threshold.
func ExamplePaperThreshold() {
	series := []float64{0.1, 0.5, 0.3, 0.9}
	fmt.Printf("%.2f\n", ldpids.PaperThreshold(series))
	// Output:
	// 0.70
}

// ExampleNewDetector watches a released stream for threshold crossings.
func ExampleNewDetector() {
	det := ldpids.NewDetector([]float64{0.5})
	for _, release := range [][]float64{{0.3}, {0.6}, {0.7}, {0.2}, {0.8}} {
		for _, ev := range det.Observe(release) {
			fmt.Printf("crossing at t=%d value=%.1f\n", ev.T, ev.Value)
		}
	}
	// Output:
	// crossing at t=2 value=0.6
	// crossing at t=5 value=0.8
}
