module ldpids

go 1.21
