// Package ldpids is a Go implementation of LDP-IDS (Ren et al., SIGMOD
// 2022): local differential privacy for infinite data streams under
// w-event privacy.
//
// A population of user devices each holds a categorical value per
// timestamp; an untrusted aggregator continuously releases an estimated
// frequency histogram while every user is guaranteed ε-LDP over any window
// of w consecutive timestamps. The package provides the paper's seven
// mechanisms —
//
//	budget division:     LBU, LSP, LBD, LBA
//	population division: LPU, LPD, LPA
//
// — together with the frequency oracles they are built on (GRR, OUE, SUE,
// OLH), synthetic and simulated-trace stream generators, evaluation
// metrics (MRE, ROC/AUC event monitoring, CFPU communication cost), a
// runtime w-event privacy auditor, and a pluggable collection layer:
// mechanisms step through a CollectEnv over any Collector backend — the
// in-process simulation, the in-memory channel backend (one goroutine per
// user device), the TCP transport for real processes, or the HTTP
// ingestion backend behind cmd/ldpids-gateway — all producing
// bit-identical estimates from identical seeds.
//
// # Quick start
//
//	root := ldpids.NewSource(42)
//	s := ldpids.NewBinaryStream(10000, ldpids.DefaultSin(), root.Split())
//	oracle := ldpids.NewGRR(2)
//	m, _ := ldpids.NewMechanism("LPA", ldpids.Params{
//		Eps: 1, W: 20, N: 10000, Oracle: oracle, Src: root.Split(),
//	})
//	runner := &ldpids.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
//	res, _ := runner.Run(m, 100)
//	fmt.Println("MRE:", ldpids.MRE(res.Released, res.True, 0))
//
// See the examples directory for complete programs and cmd/ldpids-bench
// for the full reproduction of the paper's evaluation.
package ldpids

import (
	"ldpids/internal/collect"
	"ldpids/internal/comm"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/metrics"
	"ldpids/internal/monitor"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
	"ldpids/internal/trace"
)

// ---------------------------------------------------------------------------
// Randomness.
// ---------------------------------------------------------------------------

// Source is a deterministic, splittable randomness source; all stochastic
// components consume one.
type Source = ldprand.Source

// NewSource returns a Source seeded from seed.
func NewSource(seed uint64) *Source { return ldprand.New(seed) }

// ---------------------------------------------------------------------------
// Frequency oracles.
// ---------------------------------------------------------------------------

// Oracle is an LDP frequency-oracle protocol (client-side randomizer plus
// server-side unbiased estimator).
type Oracle = fo.Oracle

// Report is one user's perturbed contribution.
type Report = fo.Report

// ReportKind identifies a report's wire format (value, unary, packed,
// hash).
type ReportKind = fo.Kind

// Aggregator folds perturbed reports into O(d) server-side counters as
// they arrive; streaming and batch aggregation yield identical estimates.
type Aggregator = fo.Aggregator

// ShardedAggregator fans report folding across parallel shard goroutines;
// estimates are bit-identical to the plain Aggregator.
type ShardedAggregator = fo.ShardedAggregator

// NewShardedAggregator returns a parallel aggregator for the oracle at
// budget eps across the given shard count (< 1 selects one per CPU).
func NewShardedAggregator(o Oracle, eps float64, shards int) (*ShardedAggregator, error) {
	return fo.NewShardedAggregator(o, eps, shards)
}

// StripedAggregator is the concurrent shard fold entry point: already-
// concurrent producers (HTTP handlers, device goroutines) fold reports
// into per-stripe locked counters; estimates are bit-identical to the
// plain Aggregator.
type StripedAggregator = fo.StripedAggregator

// NewStripedAggregator returns a concurrent aggregator for the oracle at
// budget eps across the given stripe count (< 1 selects one per CPU).
func NewStripedAggregator(o Oracle, eps float64, stripes int) (*StripedAggregator, error) {
	return fo.NewStripedAggregator(o, eps, stripes)
}

// NewGRR returns the Generalized Randomized Response oracle for domain
// size d.
func NewGRR(d int) Oracle { return fo.NewGRR(d) }

// NewOUE returns the Optimized Unary Encoding oracle for domain size d.
func NewOUE(d int) Oracle { return fo.NewOUE(d) }

// NewSUE returns the Symmetric Unary Encoding (basic RAPPOR) oracle.
func NewSUE(d int) Oracle { return fo.NewSUE(d) }

// NewOLH returns the Optimized Local Hashing oracle for domain size d.
func NewOLH(d int) Oracle { return fo.NewOLH(d) }

// NewOLHC returns the cohort-hashed Optimized Local Hashing oracle
// ("OLH-C") for domain size d: same privacy and variance as OLH, but the
// server folds each report in O(1) instead of O(d), making large-domain
// rounds O(n + k·d) instead of O(n·d).
func NewOLHC(d int) Oracle { return fo.NewOLHC(d) }

// NewOLHCCohorts is NewOLHC with an explicit public cohort count k.
func NewOLHCCohorts(d, k int) Oracle { return fo.NewOLHCCohorts(d, k) }

// NewOUEPacked returns an OUE oracle emitting the bit-packed wire format:
// 8x smaller reports, identical estimates.
func NewOUEPacked(d int) Oracle { return fo.NewOUEPacked(d) }

// NewSUEPacked returns an SUE oracle emitting the bit-packed wire format.
func NewSUEPacked(d int) Oracle { return fo.NewSUEPacked(d) }

// NewOracle constructs an oracle by registry name (see OracleNames).
func NewOracle(name string, d int) (Oracle, error) { return fo.New(name, d) }

// OracleNames lists every registered oracle name accepted by NewOracle.
func OracleNames() []string { return fo.Names() }

// BestOracle returns the lower-variance choice between GRR and OUE for the
// given domain size and budget.
func BestOracle(d int, eps float64) Oracle { return fo.Best(d, eps) }

// ---------------------------------------------------------------------------
// Streams.
// ---------------------------------------------------------------------------

// Stream produces each user's true value per timestamp.
type Stream = stream.Stream

// Process is a scalar probability sequence driving a binary stream.
type Process = stream.Process

// NewBinaryStream realizes a probability process over n users on the
// binary domain {0, 1}.
func NewBinaryStream(n int, proc Process, src *Source) Stream {
	return stream.NewBinaryStream(n, proc, src)
}

// NewLNS returns the paper's LNS Gaussian-walk process.
func NewLNS(p0, std float64, src *Source) Process { return stream.NewLNS(p0, std, src) }

// DefaultLNS returns the paper-default LNS process.
func DefaultLNS(src *Source) Process { return stream.DefaultLNS(src) }

// NewSin returns the paper's sine process A·sin(b·t)+h.
func NewSin(a, b, h float64) Process { return stream.NewSin(a, b, h) }

// DefaultSin returns the paper-default Sin process.
func DefaultSin() Process { return stream.DefaultSin() }

// NewLog returns the paper's logistic process A/(1+e^{-b·t}).
func NewLog(a, b float64) Process { return stream.NewLog(a, b) }

// DefaultLog returns the paper-default Log process.
func DefaultLog() Process { return stream.DefaultLog() }

// NewDistStream draws each user IID from a time-varying distribution.
func NewDistStream(n, d int, dist func(t int) []float64, src *Source) Stream {
	return stream.NewDistStream(n, d, dist, src)
}

// NewMarkovStream gives each user an independent sticky Markov chain over
// the domain.
func NewMarkovStream(n, d int, stay float64, init func(u int) int, jump func(t, cur int) int, src *Source) Stream {
	return stream.NewMarkovStream(n, d, stay, init, jump, src)
}

// LimitStream truncates a stream after T timestamps.
func LimitStream(s Stream, T int) Stream { return stream.Limit(s, T) }

// Histogram computes the frequency vector of vals over domain size d.
func Histogram(vals []int, d int) []float64 { return stream.Histogram(vals, d) }

// MaterializeStream snapshots the first T timestamps of a stream as
// per-timestamp value slices — handy for backends whose users answer from
// a fixed script.
func MaterializeStream(s Stream, T int) [][]int { return stream.Materialize(s, T) }

// Histograms computes the ground-truth histogram of every snapshot.
func Histograms(snaps [][]int, d int) [][]float64 { return stream.Histograms(snaps, d) }

// TaxiTrace returns the simulated T-Drive-like mobility stream (see
// DESIGN.md §4 for the substitution rationale).
func TaxiTrace(n, d int, src *Source) Stream { return trace.Taxi(n, d, src) }

// FoursquareTrace returns the simulated check-in stream.
func FoursquareTrace(n, d int, src *Source) Stream { return trace.Foursquare(n, d, src) }

// TaobaoTrace returns the simulated ad-click stream.
func TaobaoTrace(n, d int, src *Source) Stream { return trace.Taobao(n, d, src) }

// ---------------------------------------------------------------------------
// Mechanisms.
// ---------------------------------------------------------------------------

// Mechanism releases one histogram per timestamp under w-event ε-LDP.
type Mechanism = mechanism.Mechanism

// Params configures a mechanism.
type Params = mechanism.Params

// Env is the world a mechanism steps through (population + oracle access).
type Env = mechanism.Env

// StreamEnv is an optional Env extension whose implementations fold each
// report into a streaming Aggregator instead of buffering a report slice;
// CollectEnv implements it for every backend.
type StreamEnv = mechanism.StreamEnv

// ---------------------------------------------------------------------------
// Pluggable collection backends.
// ---------------------------------------------------------------------------

// Collector is a pluggable ingestion backend: it gathers one round of
// perturbed contributions from the user population and folds them into a
// sink. Backends include the in-process SimBackend, the in-memory
// ChannelBackend (one goroutine per user "process"), and the TCP transport
// in internal/transport; all produce bit-identical estimates from
// identical seeds (see internal/collect/collecttest).
type Collector = collect.Collector

// Sink folds one collection round's contributions into aggregate state.
type Sink = collect.Sink

// Contribution is one user's perturbed datum: a frequency-oracle report or
// a perturbed numeric value.
type Contribution = collect.Contribution

// CollectRequest describes one collection round against a Collector.
type CollectRequest = collect.Request

// CollectEnv drives any Collector one timestamp at a time, layering
// communication accounting and an optional observer; it satisfies Env,
// StreamEnv, and MeanEnv, so both histogram and mean mechanisms step
// through it unchanged.
type CollectEnv = collect.Env

// NewCollectEnv returns a CollectEnv over the given backend. Call Advance
// once per timestamp before the mechanism's Step.
func NewCollectEnv(c Collector) *CollectEnv { return collect.NewEnv(c) }

// SimBackend is the in-process simulation backend: report closures run
// synchronously in request order.
type SimBackend = collect.Sim

// ChannelBackend is the in-memory queue backend: every user is a goroutine
// answering report requests through its own inbox channel.
type ChannelBackend = collect.Channel

// NewChannelBackend starts n user goroutines answering frequency rounds
// via report and numeric rounds via numeric (either may be nil). Close the
// backend to release the goroutines.
func NewChannelBackend(n int, report func(u, t int, eps float64) Report, numeric func(u, t int, eps float64) float64) *ChannelBackend {
	return collect.NewChannel(n, report, numeric)
}

// Runner drives a mechanism over a stream in-process.
type Runner = mechanism.Runner

// RunResult holds a run's releases, ground truth, communication stats and
// audit findings.
type RunResult = mechanism.RunResult

// MechanismNames lists all seven methods in the paper's order.
var MechanismNames = mechanism.Names

// NewMechanism constructs a mechanism by its paper name (LBU, LSP, LBD,
// LBA, LPU, LPD, LPA).
func NewMechanism(name string, p Params) (Mechanism, error) { return mechanism.New(name, p) }

// ---------------------------------------------------------------------------
// Privacy auditing.
// ---------------------------------------------------------------------------

// Accountant audits per-user w-event privacy loss at runtime.
type Accountant = privacy.Accountant

// Violation is a detected w-event budget overrun.
type Violation = privacy.Violation

// NewAccountant returns an accountant for budget eps per window of w over
// n users.
func NewAccountant(eps float64, w, n int, src *Source) *Accountant {
	return privacy.NewAccountant(eps, w, n, src)
}

// ---------------------------------------------------------------------------
// Metrics and monitoring.
// ---------------------------------------------------------------------------

// CommStats summarizes communication cost (CFPU et al.).
type CommStats = comm.Stats

// ROCPoint is one operating point of a detector.
type ROCPoint = metrics.ROCPoint

// MRE returns the mean relative error between released and true streams.
func MRE(released, truth [][]float64, bound float64) float64 {
	return metrics.MRE(released, truth, bound)
}

// MAE returns the mean absolute error between released and true streams.
func MAE(released, truth [][]float64) float64 { return metrics.MAE(released, truth) }

// MSE returns the mean squared error between released and true streams.
func MSE(released, truth [][]float64) float64 { return metrics.MSE(released, truth) }

// ROC computes a detector's ROC curve from scores and ground-truth labels.
func ROC(scores []float64, labels []bool) []ROCPoint { return metrics.ROC(scores, labels) }

// AUC integrates a ROC curve.
func AUC(curve []ROCPoint) float64 { return metrics.AUC(curve) }

// PaperThreshold computes the paper's event threshold
// δ = 0.75·(max−min)+min over a series.
func PaperThreshold(series []float64) float64 { return metrics.PaperThreshold(series) }

// MonitorTask is an above-threshold detection instance.
type MonitorTask = monitor.Task

// MonitorEvent is a detected threshold crossing.
type MonitorEvent = monitor.Event

// Detector watches a released stream online for threshold crossings.
type Detector = monitor.Detector

// NewDetector returns a detector with one threshold per histogram element.
func NewDetector(thresholds []float64) *Detector { return monitor.NewDetector(thresholds) }

// ScalarMonitorTask builds the event-monitoring task over one histogram
// element.
func ScalarMonitorTask(released, truth [][]float64, k int) MonitorTask {
	return monitor.ScalarTask(released, truth, k)
}

// PooledMonitorTask builds the event-monitoring task pooled over all
// histogram dimensions.
func PooledMonitorTask(released, truth [][]float64) MonitorTask {
	return monitor.PooledTask(released, truth)
}
