package cdp

import (
	"math"
	"testing"

	"ldpids/internal/ldprand"
	"ldpids/internal/metrics"
	"ldpids/internal/stream"
)

func params(eps float64, w, n int, seed uint64) Params {
	return Params{Eps: eps, W: w, N: n, Src: ldprand.New(seed)}
}

// truthStream builds T true histograms from a Sin binary stream.
func truthStream(n, T int, seed uint64) [][]float64 {
	src := ldprand.New(seed)
	s := stream.NewBinaryStream(n, stream.DefaultSin(), src)
	return stream.Histograms(stream.Materialize(s, T), 2)
}

func TestUniformUnbiasedAndNoisy(t *testing.T) {
	truth := truthStream(10000, 50, 31)
	rel := Run(NewUniform(params(1, 10, 10000, 32)), truth)
	if len(rel) != 50 {
		t.Fatal("release length")
	}
	// Releases should differ from truth (noise present) but track it.
	if metrics.MAE(rel, truth) == 0 {
		t.Fatal("uniform CDP released exact truth")
	}
	if metrics.MAE(rel, truth) > 0.05 {
		t.Fatalf("uniform CDP error implausibly large: %v", metrics.MAE(rel, truth))
	}
}

func TestSampleApproximatesBetweenSamples(t *testing.T) {
	truth := truthStream(5000, 20, 33)
	rel := Run(NewSample(params(1, 5, 5000, 34)), truth)
	for ts := 0; ts < 20; ts++ {
		if ts%5 == 0 {
			continue
		}
		for k := range rel[ts] {
			if rel[ts][k] != rel[ts-1][k] {
				t.Fatalf("sample changed release at non-sampling t=%d", ts)
			}
		}
	}
}

func TestBDAndBATrackTruth(t *testing.T) {
	truth := truthStream(20000, 100, 35)
	for _, m := range []Mechanism{
		NewBD(params(1, 10, 20000, 36)),
		NewBA(params(1, 10, 20000, 37)),
	} {
		rel := Run(m, truth)
		mae := metrics.MAE(rel, truth)
		if mae > 0.05 {
			t.Errorf("%s MAE %v too large", m.Name(), mae)
		}
	}
}

func TestAdaptiveBeatsUniformOnFlatStreamCDP(t *testing.T) {
	// A flat stream rewards approximation: BA should beat Uniform.
	src := ldprand.New(38)
	s := stream.NewBinaryStream(20000, stream.NewSin(0.0005, 0.01, 0.1), src)
	truth := stream.Histograms(stream.Materialize(s, 120), 2)
	uni := metrics.MSE(Run(NewUniform(params(1, 20, 20000, 39)), truth), truth)
	ba := metrics.MSE(Run(NewBA(params(1, 20, 20000, 40)), truth), truth)
	if ba >= uni {
		t.Fatalf("BA MSE %v not below Uniform %v on flat stream", ba, uni)
	}
}

func TestCDPBeatsLDPAtSameBudget(t *testing.T) {
	// Sanity cross-check of the trust models: CDP noise is much smaller
	// than LDP noise at the same eps. Compare per-element MSE of a
	// single uniform release step.
	n := 10000
	truth := truthStream(n, 30, 41)
	cdpRel := Run(NewUniform(params(1, 10, n, 42)), truth)
	cdpMSE := metrics.MSE(cdpRel, truth)
	// LDP GRR at eps/w=0.1 with n users: variance ~ (e^0.1)/(n(e^0.1-1)^2).
	e := math.Exp(0.1)
	ldpVar := e / (float64(n) * (e - 1) * (e - 1))
	if cdpMSE >= ldpVar {
		t.Fatalf("CDP MSE %v not below LDP variance %v", cdpMSE, ldpVar)
	}
}

func TestLaplaceReleaseScale(t *testing.T) {
	// Empirical std of the release noise must match sqrt(2)·scale.
	src := ldprand.New(43)
	c := make([]float64, 10000)
	rel := laplaceRelease(c, 0.5, 0.01, src)
	sum, sumsq := 0.0, 0.0
	for _, v := range rel {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(len(rel))
	variance := sumsq/float64(len(rel)) - mean*mean
	want := 2 * (0.01 / 0.5) * (0.01 / 0.5)
	if math.Abs(variance-want)/want > 0.1 {
		t.Fatalf("laplace release variance %v want %v", variance, want)
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid params accepted")
		}
	}()
	NewUniform(Params{Eps: -1, W: 1, N: 1, Src: ldprand.New(1)})
}
