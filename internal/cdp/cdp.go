// Package cdp implements the centralized w-event DP baselines the paper
// builds on (§3.2): the Laplace mechanism over histogram releases, the
// uniform and sampling baselines, and Kellaris et al.'s Budget Distribution
// (BD) and Budget Absorption (BA). They serve as references for comparing
// the LDP mechanisms against the trusted-aggregator setting and for
// ablation benches; the paper's own experiments are LDP-only.
//
// All mechanisms operate on frequency histograms over n users. A histogram
// release with budget ε adds Laplace noise of scale 2/(n·ε) per element
// (one user's change moves at most two elements by 1/n each, so the L1
// sensitivity of the frequency histogram is 2/n).
package cdp

import (
	"fmt"

	"ldpids/internal/ldprand"
	"ldpids/internal/window"
)

// Mechanism releases a private histogram per timestamp from the TRUE
// histogram (centralized trust model). Step must be called once per
// timestamp, in order.
type Mechanism interface {
	// Name returns the method's short name.
	Name() string
	// Step consumes the true histogram c_t and returns the release r_t.
	Step(c []float64) []float64
}

// Params configures a CDP mechanism.
type Params struct {
	// Eps is the total budget per window of size W.
	Eps float64
	// W is the window size.
	W int
	// N is the population size (sets the frequency-domain sensitivity).
	N int
	// Src provides Laplace noise.
	Src *ldprand.Source
}

func (p *Params) validate() {
	if p.Eps <= 0 || p.W < 1 || p.N < 1 || p.Src == nil {
		panic(fmt.Sprintf("cdp: invalid params %+v", p))
	}
}

// sensitivity is the L1 sensitivity of the frequency histogram.
func (p *Params) sensitivity() float64 { return 2 / float64(p.N) }

// laplaceRelease perturbs c with budget eps.
func laplaceRelease(c []float64, eps, sens float64, src *ldprand.Source) []float64 {
	out := make([]float64, len(c))
	scale := sens / eps
	for k, v := range c {
		out[k] = v + src.Laplace(scale)
	}
	return out
}

// expectedAbsError is the expected absolute Laplace error per element for
// the given budget: E|Lap(b)| = b.
func expectedAbsError(eps, sens float64) float64 { return sens / eps }

// meanAbsDiff is the mean absolute difference between histograms.
func meanAbsDiff(a, b []float64) float64 {
	sum := 0.0
	for k := range a {
		d := a[k] - b[k]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}

// ---------------------------------------------------------------------------
// Uniform baseline.
// ---------------------------------------------------------------------------

// Uniform releases a fresh Laplace histogram with ε/w at every timestamp.
type Uniform struct{ p Params }

// NewUniform constructs the uniform CDP baseline.
func NewUniform(p Params) *Uniform {
	p.validate()
	return &Uniform{p: p}
}

// Name implements Mechanism.
func (m *Uniform) Name() string { return "CDP-Uniform" }

// Step implements Mechanism.
func (m *Uniform) Step(c []float64) []float64 {
	return laplaceRelease(c, m.p.Eps/float64(m.p.W), m.p.sensitivity(), m.p.Src)
}

// ---------------------------------------------------------------------------
// Sampling baseline.
// ---------------------------------------------------------------------------

// Sample spends the whole ε at one timestamp per window and approximates
// the rest with the last release.
type Sample struct {
	p    Params
	last []float64
	t    int
}

// NewSample constructs the sampling CDP baseline.
func NewSample(p Params) *Sample {
	p.validate()
	return &Sample{p: p}
}

// Name implements Mechanism.
func (m *Sample) Name() string { return "CDP-Sample" }

// Step implements Mechanism.
func (m *Sample) Step(c []float64) []float64 {
	m.t++
	if (m.t-1)%m.p.W == 0 || m.last == nil {
		m.last = laplaceRelease(c, m.p.Eps, m.p.sensitivity(), m.p.Src)
	}
	out := make([]float64, len(m.last))
	copy(out, m.last)
	return out
}

// ---------------------------------------------------------------------------
// BD: Budget Distribution (Kellaris et al. 2014).
// ---------------------------------------------------------------------------

// BD adaptively publishes or approximates; publications claim half of the
// remaining publication budget in the active window (exponential decay).
type BD struct {
	p      Params
	pubLed *window.Ledger
	last   []float64
}

// NewBD constructs the budget-distribution mechanism.
func NewBD(p Params) *BD {
	p.validate()
	lw := p.W - 1
	if lw < 1 {
		lw = 1
	}
	return &BD{p: p, pubLed: window.NewLedger(lw)}
}

// Name implements Mechanism.
func (m *BD) Name() string { return "CDP-BD" }

// Step implements Mechanism.
func (m *BD) Step(c []float64) []float64 {
	sens := m.p.sensitivity()
	if m.last == nil {
		m.last = make([]float64, len(c))
	}
	// Private dissimilarity with ε/(2w): dis sensitivity is sens/d per
	// element averaged, i.e. 2/(n·d); use sens for a conservative bound.
	eps1 := m.p.Eps / (2 * float64(m.p.W))
	dis := meanAbsDiff(c, m.last) + m.p.Src.Laplace(sens/eps1)

	epsRM := m.pubLed.Remaining(m.p.Eps / 2)
	eps2 := epsRM / 2
	pubErr := expectedAbsError(eps2, sens)
	if eps2 > 0 && dis > pubErr {
		m.last = laplaceRelease(c, eps2, sens, m.p.Src)
		m.pubLed.Append(eps2)
	} else {
		m.pubLed.Append(0)
	}
	out := make([]float64, len(m.last))
	copy(out, m.last)
	return out
}

// ---------------------------------------------------------------------------
// BA: Budget Absorption (Kellaris et al. 2014).
// ---------------------------------------------------------------------------

// BA uniformly earmarks ε/(2w) per timestamp; publications absorb unused
// earmarks and nullify succeeding ones.
type BA struct {
	p       Params
	last    []float64
	t       int
	lastPub int
	epsPub  float64
}

// NewBA constructs the budget-absorption mechanism.
func NewBA(p Params) *BA {
	p.validate()
	return &BA{p: p}
}

// Name implements Mechanism.
func (m *BA) Name() string { return "CDP-BA" }

// Step implements Mechanism.
func (m *BA) Step(c []float64) []float64 {
	m.t++
	sens := m.p.sensitivity()
	if m.last == nil {
		m.last = make([]float64, len(c))
	}
	unit := m.p.Eps / (2 * float64(m.p.W))
	dis := meanAbsDiff(c, m.last) + m.p.Src.Laplace(sens/unit)

	tN := 0
	if m.epsPub > 0 {
		tN = int(m.epsPub/unit) - 1
	}
	copyOut := func() []float64 {
		out := make([]float64, len(m.last))
		copy(out, m.last)
		return out
	}
	if m.lastPub > 0 && m.t-m.lastPub <= tN {
		return copyOut()
	}
	tA := m.t - (m.lastPub + tN)
	if tA > m.p.W {
		tA = m.p.W
	}
	eps2 := unit * float64(tA)
	if dis > expectedAbsError(eps2, sens) {
		m.last = laplaceRelease(c, eps2, sens, m.p.Src)
		m.lastPub = m.t
		m.epsPub = eps2
	}
	return copyOut()
}

// Run drives a CDP mechanism over a sequence of true histograms.
func Run(m Mechanism, truth [][]float64) [][]float64 {
	out := make([][]float64, len(truth))
	for t, c := range truth {
		out[t] = m.Step(c)
	}
	return out
}
