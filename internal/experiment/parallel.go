package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment engine fans independent work items — averaged-run
// repetitions and experiment-plan run groups — across a bounded worker
// pool.
// Determinism is preserved by construction: every item derives its own
// seeds from the spec alone (never from execution order), each worker
// writes only its own result slot, and any reduction over the slots
// happens in item order afterwards. Parallel runs are therefore
// bit-identical to serial ones.

// defaultWorkers is the worker count used when a Config leaves Workers at
// zero: one worker per available CPU.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workers returns the effective worker-pool size (1 = serial).
func (c *Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return defaultWorkers()
}

// parallelFor runs fn(0), ..., fn(n-1) on up to workers goroutines
// (workers <= 0 means defaultWorkers; workers == 1 runs inline). Once any
// item fails, not-yet-started items are skipped (in-flight ones finish);
// the lowest-index recorded failure is returned.
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if errs[i] = fn(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
