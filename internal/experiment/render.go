package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: methods as rows, a swept
// parameter as columns.
type Table struct {
	// Title names the figure/table and its fixed parameters.
	Title string
	// XLabel names the swept parameter.
	XLabel string
	// ColHeads are the column labels (x values).
	ColHeads []string
	// RowHeads are the row labels (methods).
	RowHeads []string
	// Cells[r][c] is the measured value for row r, column c.
	Cells [][]float64
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	colw := 10
	for _, h := range t.ColHeads {
		if len(h)+2 > colw {
			colw = len(h) + 2
		}
	}
	for _, row := range t.Cells {
		for _, v := range row {
			if w := len(fmt.Sprintf("%.4f", v)) + 2; w > colw {
				colw = w
			}
		}
	}
	roww := len(t.XLabel)
	for _, h := range t.RowHeads {
		if len(h) > roww {
			roww = len(h)
		}
	}
	fmt.Fprintf(w, "%-*s", roww+2, t.XLabel)
	for _, h := range t.ColHeads {
		fmt.Fprintf(w, "%*s", colw, h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", roww+2+colw*len(t.ColHeads)))
	for r, rh := range t.RowHeads {
		fmt.Fprintf(w, "%-*s", roww+2, rh)
		for c := range t.ColHeads {
			fmt.Fprintf(w, "%*.4f", colw, t.Cells[r][c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderAll writes a sequence of tables.
func RenderAll(w io.Writer, tables []Table) {
	for i := range tables {
		tables[i].Render(w)
	}
}
