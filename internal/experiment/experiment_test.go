package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps harness tests fast: small populations, short streams.
func tinyConfig() *Config {
	return &Config{PopScale: 0.01, Seed: 99, Audit: true}
}

func TestStreamSpecDefaults(t *testing.T) {
	for _, ds := range DatasetNames {
		sp := StreamSpec{Dataset: ds}
		n, T, err := sp.defaults()
		if err != nil {
			t.Fatalf("%s: %v", ds, err)
		}
		if n <= 0 || T <= 0 {
			t.Fatalf("%s: bad defaults n=%d T=%d", ds, n, T)
		}
	}
	if _, _, err := (StreamSpec{Dataset: "bogus"}).defaults(); err == nil {
		t.Fatal("bogus dataset accepted")
	}
}

func TestStreamSpecOverrides(t *testing.T) {
	sp := StreamSpec{Dataset: "LNS", N: 1234, T: 77}
	n, T, err := sp.defaults()
	if err != nil || n != 1234 || T != 77 {
		t.Fatalf("overrides ignored: n=%d T=%d err=%v", n, T, err)
	}
	sp = StreamSpec{Dataset: "LNS", PopScale: 0.01}
	n, _, _ = sp.defaults()
	if n != SyntheticN/100 {
		t.Fatalf("pop scale gave n=%d", n)
	}
	// Floor guard.
	sp = StreamSpec{Dataset: "LNS", PopScale: 0.00001}
	n, _, _ = sp.defaults()
	if n < 100 {
		t.Fatalf("pop floor violated: %d", n)
	}
}

func TestExecuteBasics(t *testing.T) {
	out, err := Execute(RunSpec{
		Stream: StreamSpec{Dataset: "Sin", N: 2000, T: 40},
		Method: "LPA", Eps: 1, W: 10, Seed: 5, Audit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.T != 40 || out.N != 2000 {
		t.Fatalf("outcome shape N=%d T=%d", out.N, out.T)
	}
	if out.MRE <= 0 || out.MSE <= 0 {
		t.Fatalf("suspicious zero error: MRE=%v MSE=%v", out.MRE, out.MSE)
	}
	if out.CFPU <= 0 || out.CFPU > 1.1/10 {
		t.Fatalf("LPA CFPU %v implausible", out.CFPU)
	}
	if out.PrivacyViolations != 0 {
		t.Fatalf("privacy violations: %d", out.PrivacyViolations)
	}
	if out.AUC < 0 || out.AUC > 1 {
		t.Fatalf("AUC %v", out.AUC)
	}
}

func TestExecuteUnknownInputs(t *testing.T) {
	if _, err := Execute(RunSpec{Stream: StreamSpec{Dataset: "zzz"}, Method: "LPA", Eps: 1, W: 5}); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := Execute(RunSpec{Stream: StreamSpec{Dataset: "Sin", N: 500, T: 5}, Method: "zzz", Eps: 1, W: 5}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Execute(RunSpec{Stream: StreamSpec{Dataset: "Sin", N: 500, T: 5}, Method: "LPA", Eps: 1, W: 5, Oracle: "zzz"}); err == nil {
		t.Fatal("unknown oracle accepted")
	}
}

func TestExecuteAveragedReducesVariance(t *testing.T) {
	spec := RunSpec{
		Stream: StreamSpec{Dataset: "Sin", N: 1000, T: 30},
		Method: "LPU", Eps: 1, W: 10, Seed: 42,
	}
	single, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := ExecuteAveraged(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if avg.MRE <= 0 || single.MRE <= 0 {
		t.Fatal("zero MREs")
	}
	// Averaged outcome must carry the last run's streams.
	if len(avg.Released) != 30 {
		t.Fatalf("averaged outcome missing streams: %d", len(avg.Released))
	}
}

// TestParallelMatchesSerial is the determinism acceptance test: the
// worker-pool executor must produce bit-identical metrics to the serial
// path, both for averaged repetitions and for a whole figure grid.
func TestParallelMatchesSerial(t *testing.T) {
	spec := RunSpec{
		Stream: StreamSpec{Dataset: "Sin", N: 1500, T: 30},
		Method: "LPA", Eps: 1, W: 10, Seed: 11,
	}
	serial, err := ExecuteAveragedWorkers(spec, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ExecuteAveragedWorkers(spec, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.MRE != parallel.MRE || serial.MAE != parallel.MAE ||
		serial.MSE != parallel.MSE || serial.CFPU != parallel.CFPU ||
		serial.AUC != parallel.AUC || serial.PrivacyViolations != parallel.PrivacyViolations {
		t.Fatalf("parallel averaged outcome differs from serial:\n%+v\nvs\n%+v", parallel, serial)
	}

	grid := func(workers int) []Table {
		c := tinyConfig()
		c.Workers = workers
		c.Datasets = []string{"Sin"}
		c.Methods = []string{"LBU", "LPU", "LPA"}
		tables, err := c.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		return tables
	}
	a, b := grid(1), grid(4)
	for ti := range a {
		for r := range a[ti].Cells {
			for col := range a[ti].Cells[r] {
				if a[ti].Cells[r][col] != b[ti].Cells[r][col] {
					t.Fatalf("grid cell [%d][%d][%d]: serial %v != parallel %v",
						ti, r, col, a[ti].Cells[r][col], b[ti].Cells[r][col])
				}
			}
		}
	}
}

// TestPrivacyViolationsTotalAcrossReps pins the accumulation contract: the
// EventLevel baseline deliberately overspends every w-window, and the
// averaged outcome must report the TOTAL violation count across reps, not
// a per-rep average.
func TestPrivacyViolationsTotalAcrossReps(t *testing.T) {
	spec := RunSpec{
		Stream: StreamSpec{Dataset: "Sin", N: 300, T: 15},
		Method: "EventLevel", Eps: 1, W: 5, Seed: 8, Audit: true,
	}
	single, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if single.PrivacyViolations == 0 {
		t.Fatal("EventLevel run reported no violations; the audit should flag it")
	}
	const reps = 3
	avg, err := ExecuteAveraged(spec, reps)
	if err != nil {
		t.Fatal(err)
	}
	// EventLevel's exposure pattern (all users, every timestamp, full eps)
	// does not depend on the seed, so every rep yields the same count.
	if avg.PrivacyViolations != reps*single.PrivacyViolations {
		t.Fatalf("averaged violations %d, want total %d across %d reps",
			avg.PrivacyViolations, reps*single.PrivacyViolations, reps)
	}
}

// TestPackedOracleCommBytes shows the wire win end-to-end: the same run
// with the packed OUE format must move far fewer report bytes while
// producing identically many reports. Taobao has the largest trace domain
// (d=117: 121-byte plain reports vs 20-byte packed, 6.05x); the asymptotic
// ~8x is pinned at d=1024 by fo's TestPackedReportSizeRatio.
func TestPackedOracleCommBytes(t *testing.T) {
	run := func(oracle string) *Outcome {
		out, err := Execute(RunSpec{
			Stream: StreamSpec{Dataset: "Taobao", N: 400, T: 10},
			Method: "LBU", Eps: 1, W: 5, Seed: 21, Oracle: oracle,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	plain, packed := run("OUE"), run("OUE-packed")
	if plain.Comm.Reports != packed.Comm.Reports {
		t.Fatalf("report counts differ: %d vs %d", plain.Comm.Reports, packed.Comm.Reports)
	}
	ratio := float64(plain.Comm.Bytes) / float64(packed.Comm.Bytes)
	if ratio < 5 {
		t.Fatalf("packed OUE moved only %.2fx fewer bytes (plain %d, packed %d)",
			ratio, plain.Comm.Bytes, packed.Comm.Bytes)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	spec := RunSpec{
		Stream: StreamSpec{Dataset: "LNS", N: 800, T: 25},
		Method: "LPD", Eps: 1, W: 5, Seed: 314,
	}
	a, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.MRE != b.MRE || a.CFPU != b.CFPU {
		t.Fatalf("same-seed runs differ: %v vs %v", a.MRE, b.MRE)
	}
}

func TestFig4ShapeAndOrdering(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"Sin"}
	tables, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("fig4 produced %d tables", len(tables))
	}
	tbl := tables[0]
	if len(tbl.RowHeads) != 7 || len(tbl.ColHeads) != 5 {
		t.Fatalf("fig4 table shape %dx%d", len(tbl.RowHeads), len(tbl.ColHeads))
	}
	rowOf := func(name string) []float64 {
		for r, h := range tbl.RowHeads {
			if h == name {
				return tbl.Cells[r]
			}
		}
		t.Fatalf("missing row %s", name)
		return nil
	}
	// Headline orderings at eps=1 (col 1): population < budget division.
	lbu, lpu := rowOf("LBU")[1], rowOf("LPU")[1]
	if lpu >= lbu {
		t.Errorf("fig4: LPU MRE %v not below LBU %v", lpu, lbu)
	}
	// Error decreases with eps for the uniform baselines.
	if rowOf("LBU")[4] >= rowOf("LBU")[0] {
		t.Errorf("fig4: LBU MRE not decreasing in eps: %v", rowOf("LBU"))
	}
}

func TestFig5WindowGrowth(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"Sin"}
	c.Methods = []string{"LBU", "LPU"}
	tables, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// LBU error grows sharply with w (budget eps/w); compare w=10 vs 50.
	if tbl.Cells[0][4] <= tbl.Cells[0][0] {
		t.Errorf("fig5: LBU MRE not increasing in w: %v", tbl.Cells[0])
	}
}

func TestFig6Tables(t *testing.T) {
	c := tinyConfig()
	c.Methods = []string{"LBU", "LPU", "LPA"}
	tables, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("fig6 produced %d tables, want 4", len(tables))
	}
	// Population sweep: MRE decreases with N for every method.
	for r := range tables[0].RowHeads {
		first, last := tables[0].Cells[r][0], tables[0].Cells[r][3]
		if last >= first {
			t.Errorf("fig6(a) row %s: MRE %v not decreasing in N", tables[0].RowHeads[r], tables[0].Cells[r])
		}
	}
}

func TestFig7AUCRange(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"Sin", "Taxi"}
	tables, err := c.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Cells {
		for _, auc := range row {
			if auc < 0 || auc > 1 {
				t.Fatalf("fig7 AUC %v out of range", auc)
			}
		}
	}
}

func TestTable2CFPUStructure(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"Sin"}
	tables, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("table2 produced %d tables", len(tables))
	}
	tbl := tables[0] // eps=1, w=20
	rowOf := func(name string) float64 {
		for r, h := range tbl.RowHeads {
			if h == name {
				return tbl.Cells[r][0]
			}
		}
		t.Fatalf("missing row %s", name)
		return 0
	}
	// Paper Table 2 structure: LBU = 1; LBD/LBA in (1, 1.5);
	// LSP = LPU = 1/w; LPD/LPA <= 1/w.
	if v := rowOf("LBU"); v != 1 {
		t.Errorf("LBU CFPU %v != 1", v)
	}
	for _, nm := range []string{"LBD", "LBA"} {
		if v := rowOf(nm); v <= 1 || v >= 1.6 {
			t.Errorf("%s CFPU %v outside (1, 1.6)", nm, v)
		}
	}
	w := 20.0
	for _, nm := range []string{"LSP", "LPU"} {
		if v := rowOf(nm); v < 0.9/w || v > 1.1/w {
			t.Errorf("%s CFPU %v != 1/w", nm, v)
		}
	}
	for _, nm := range []string{"LPD", "LPA"} {
		if v := rowOf(nm); v > 1.05/w {
			t.Errorf("%s CFPU %v exceeds 1/w", nm, v)
		}
	}
}

func TestFig8Tables(t *testing.T) {
	c := tinyConfig()
	c.Methods = []string{"LBU", "LSP", "LPA"}
	tables, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("fig8 produced %d tables", len(tables))
	}
}

func TestAblations(t *testing.T) {
	c := tinyConfig()
	c.Datasets = []string{"Sin"}
	for name, run := range map[string]func() ([]Table, error){
		"fo":    c.AblationFO,
		"olh":   c.AblationOLHFold,
		"umin":  c.AblationUMin,
		"split": c.AblationSplit,
	} {
		tables, err := run()
		if err != nil {
			t.Fatalf("ablation %s: %v", name, err)
		}
		if len(tables) == 0 {
			t.Fatalf("ablation %s produced no tables", name)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	c := tinyConfig()
	exps := c.Experiments()
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "table2", "ablation-fo", "ablation-olh", "ablation-umin", "ablation-split"} {
		if exps[id] == nil {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:    "demo",
		XLabel:   "eps",
		ColHeads: []string{"0.5", "1.0"},
		RowHeads: []string{"LBU", "LPA"},
		Cells:    [][]float64{{0.5, 0.25}, {0.05, 0.02}},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "LBU", "LPA", "0.5000", "0.0200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	RenderAll(&buf2, []Table{tbl, tbl})
	if strings.Count(buf2.String(), "demo") != 2 {
		t.Fatal("RenderAll did not render both tables")
	}
}

func TestIsBinary(t *testing.T) {
	for _, ds := range []string{"LNS", "Sin", "Log"} {
		if !IsBinary(ds) {
			t.Errorf("%s should be binary", ds)
		}
	}
	for _, ds := range []string{"Taxi", "Foursquare", "Taobao"} {
		if IsBinary(ds) {
			t.Errorf("%s should not be binary", ds)
		}
	}
}

func TestCompareCDP(t *testing.T) {
	c := tinyConfig()
	tables, err := c.CompareCDP()
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	rowOf := func(name string) []float64 {
		for r, h := range tbl.RowHeads {
			if h == name {
				return tbl.Cells[r]
			}
		}
		t.Fatalf("missing row %s", name)
		return nil
	}
	// CDP uniform must beat LDP uniform by a wide margin at every eps.
	for col := range tbl.ColHeads {
		if rowOf("CDP-Uniform")[col]*5 > rowOf("LBU")[col] {
			t.Errorf("col %d: CDP-Uniform MAE %v not far below LBU %v",
				col, rowOf("CDP-Uniform")[col], rowOf("LBU")[col])
		}
	}
}

func TestAblationFilter(t *testing.T) {
	c := tinyConfig()
	tables, err := c.AblationFilter()
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Kalman filtering must not hurt on these smooth streams.
	for col := range tbl.ColHeads {
		if tbl.Cells[1][col] >= tbl.Cells[0][col] {
			t.Errorf("col %d: LPU+Kalman MSE %v not below raw %v",
				col, tbl.Cells[1][col], tbl.Cells[0][col])
		}
		if tbl.Cells[4][col] >= tbl.Cells[3][col] {
			t.Errorf("col %d: LBU+Kalman MSE %v not below raw %v",
				col, tbl.Cells[4][col], tbl.Cells[3][col])
		}
	}
}

func TestCompareGranularity(t *testing.T) {
	c := tinyConfig()
	tables, err := c.CompareGranularity()
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	rowOf := func(name string) []float64 {
		for r, h := range tbl.RowHeads {
			if h == name {
				return tbl.Cells[r]
			}
		}
		t.Fatalf("missing row %s", name)
		return nil
	}
	// Utility ordering: EventLevel < LPA < LBU < UserLevel by MRE.
	if !(rowOf("EventLevel")[0] < rowOf("LPA (w-event)")[0]) {
		t.Errorf("event-level MRE %v not below LPA %v", rowOf("EventLevel")[0], rowOf("LPA (w-event)")[0])
	}
	if !(rowOf("LBU (w-event)")[0] < rowOf("UserLevel(T)")[0]) {
		t.Errorf("LBU MRE %v not below user-level %v", rowOf("LBU (w-event)")[0], rowOf("UserLevel(T)")[0])
	}
	// Privacy ordering: event-level window loss = w*eps; w-event <= eps.
	if rowOf("EventLevel")[1] < 19 {
		t.Errorf("event-level window loss %v, want ~20", rowOf("EventLevel")[1])
	}
	for _, nm := range []string{"LBU (w-event)", "LPA (w-event)", "UserLevel(T)"} {
		if rowOf(nm)[1] > 1+1e-9 {
			t.Errorf("%s window loss %v exceeds eps", nm, rowOf(nm)[1])
		}
	}
}
