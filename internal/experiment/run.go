package experiment

import (
	"fmt"

	"ldpids/internal/cdp"
	"ldpids/internal/comm"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/metrics"
	"ldpids/internal/monitor"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

// RunSpec fully describes one mechanism-on-dataset execution.
type RunSpec struct {
	// Stream selects and parameterizes the dataset.
	Stream StreamSpec
	// Method is the mechanism's paper name (LBU, ..., LPA).
	Method string
	// Eps is the per-window privacy budget.
	Eps float64
	// W is the window size.
	W int
	// Oracle names the frequency oracle (any fo.Names entry: "GRR",
	// "OUE", "SUE", "OLH", cohort-hashed "OLH-C", or the bit-packed unary
	// variants "OUE-packed", "SUE-packed"); empty selects GRR, matching
	// the paper's analysis.
	Oracle string
	// Seed makes the run replayable (mechanism + perturbation noise).
	Seed uint64
	// StreamSeed, when non-zero, seeds the dataset generation separately
	// from the mechanism randomness, so a parameter sweep can compare
	// methods on the SAME stream realization.
	StreamSeed uint64
	// Audit enables the w-event privacy accountant.
	Audit bool
	// UMin passes LPD's minimum publication-user threshold (0 = 1).
	UMin int
	// DisFraction overrides the M1 resource split of the adaptive
	// methods (0 = the paper's 1/2).
	DisFraction float64
}

// Outcome summarizes one run with every metric the paper reports.
type Outcome struct {
	// Spec echoes the run's specification.
	Spec RunSpec
	// N and T are the realized population and stream length.
	N, T int
	// MRE, MAE and MSE compare released and true streams.
	MRE, MAE, MSE float64
	// CFPU is the communication frequency per user.
	CFPU float64
	// Comm carries the full communication accounting (report and byte
	// totals), from the last repetition in averaged outcomes.
	Comm comm.Stats
	// AUC is the above-threshold event-monitoring score (Fig. 7 task).
	AUC float64
	// Released and True hold the full streams for further analysis.
	Released, True [][]float64
	// PrivacyViolations counts audited w-event violations (0 when the
	// audit is off or the invariant held). Unlike the error metrics it is
	// NEVER averaged: in an ExecuteAveraged outcome it is the TOTAL
	// across all repetitions, so a single violation anywhere in the batch
	// cannot be rounded away.
	PrivacyViolations int
	// MaxWindowLoss is the accountant's maximum measured privacy spend
	// over any w-window by any user (0 when the audit is off). Like
	// PrivacyViolations it is never averaged: ExecuteAveraged reports the
	// MAXIMUM across repetitions, so it stays a worst-case bound.
	MaxWindowLoss float64
}

// Execute runs the spec and computes all metrics. Besides the paper's
// seven mechanisms it accepts the granularity baselines ("EventLevel",
// "UserLevel" — the latter splits ε over the run's full horizon T) and the
// centralized baselines ("CDP-Uniform", "CDP-BD", "CDP-BA"), which run
// over the true histograms in the trusted-aggregator model; every variant
// is a deterministic function of the spec, so all of them journal and
// resume uniformly.
func Execute(spec RunSpec) (*Outcome, error) {
	root := ldprand.New(spec.Seed)
	streamRoot := root
	if spec.StreamSeed != 0 {
		streamRoot = ldprand.New(spec.StreamSeed)
	}
	s, T, d, err := spec.Stream.Build(streamRoot.Split())
	if err != nil {
		return nil, err
	}
	if isCDPMethod(spec.Method) {
		return executeCDP(spec, root, s, T, d)
	}
	oracleName := spec.Oracle
	if oracleName == "" {
		oracleName = "GRR"
	}
	oracle, err := fo.New(oracleName, d)
	if err != nil {
		return nil, err
	}
	n := s.N()
	params := mechanism.Params{
		Eps:         spec.Eps,
		W:           spec.W,
		N:           n,
		Oracle:      oracle,
		Src:         root.Split(),
		UMin:        spec.UMin,
		DisFraction: spec.DisFraction,
	}
	var m mechanism.Mechanism
	if spec.Method == "UserLevel" {
		// The finite user-level baseline needs the horizon, which only
		// the run knows; it is not constructible from Params alone.
		m, err = mechanism.NewUserLevelFinite(params, T)
	} else {
		m, err = mechanism.New(spec.Method, params)
	}
	if err != nil {
		return nil, err
	}
	var acct *privacy.Accountant
	if spec.Audit {
		acct = privacy.NewAccountant(spec.Eps, spec.W, n, root.Split())
	}
	runner := &mechanism.Runner{Stream: s, Oracle: oracle, Src: root.Split(), Accountant: acct}
	res, err := runner.Run(m, T)
	if err != nil {
		return nil, fmt.Errorf("experiment: %s on %s: %w", spec.Method, spec.Stream.Dataset, err)
	}

	out := &Outcome{
		Spec:     spec,
		N:        n,
		T:        len(res.Released),
		MRE:      metrics.MRE(res.Released, res.True, 0),
		MAE:      metrics.MAE(res.Released, res.True),
		MSE:      metrics.MSE(res.Released, res.True),
		CFPU:     res.Comm.CFPU,
		Comm:     res.Comm,
		Released: res.Released,
		True:     res.True,
	}
	out.PrivacyViolations = len(res.Violations)
	if acct != nil {
		out.MaxWindowLoss = acct.MaxWindowSpend()
	}

	// Event-monitoring AUC: monitor the "1" frequency on binary
	// datasets; on the skewed categorical traces, monitor the five head
	// categories (tail categories' thresholds sit inside the LDP noise
	// floor and carry no detectable events; §7.4).
	var task monitor.Task
	if IsBinary(spec.Stream.Dataset) {
		task = monitor.ScalarTask(res.Released, res.True, 1)
	} else {
		task = monitor.TopKTask(res.Released, res.True, 5)
	}
	if task.Positives() > 0 {
		out.AUC = task.AUC()
	}
	return out, nil
}

// isCDPMethod reports whether the method is a centralized-DP baseline.
func isCDPMethod(name string) bool {
	return name == "CDP-Uniform" || name == "CDP-BD" || name == "CDP-BA"
}

// executeCDP runs a centralized baseline over the true histograms: the
// trusted aggregator sees raw data, adds calibrated Laplace noise, and
// releases. No reports travel, so CFPU is zero, and the w-event LDP
// accountant does not apply (the guarantee is central DP).
func executeCDP(spec RunSpec, root *ldprand.Source, s stream.Stream, T, d int) (*Outcome, error) {
	n := s.N()
	if spec.Eps <= 0 || spec.W < 1 || n < 1 {
		return nil, fmt.Errorf("experiment: %s needs eps > 0, w >= 1, n >= 1", spec.Method)
	}
	truth := stream.Histograms(stream.Materialize(s, T), d)
	p := cdp.Params{Eps: spec.Eps, W: spec.W, N: n, Src: root.Split()}
	var m cdp.Mechanism
	switch spec.Method {
	case "CDP-Uniform":
		m = cdp.NewUniform(p)
	case "CDP-BD":
		m = cdp.NewBD(p)
	case "CDP-BA":
		m = cdp.NewBA(p)
	}
	released := cdp.Run(m, truth)
	out := &Outcome{
		Spec:     spec,
		N:        n,
		T:        len(released),
		MRE:      metrics.MRE(released, truth, 0),
		MAE:      metrics.MAE(released, truth),
		MSE:      metrics.MSE(released, truth),
		Released: released,
		True:     truth,
	}
	var task monitor.Task
	if IsBinary(spec.Stream.Dataset) {
		task = monitor.ScalarTask(released, truth, 1)
	} else {
		task = monitor.TopKTask(released, truth, 5)
	}
	if task.Positives() > 0 {
		out.AUC = task.AUC()
	}
	return out, nil
}

// ExecuteAveraged runs the spec reps times with derived seeds and averages
// the scalar metrics (streams come from the last run; PrivacyViolations is
// the total and MaxWindowLoss the maximum across repetitions, see
// Outcome). Repetitions run in parallel
// on up to GOMAXPROCS workers: each derives its seed as
// spec.Seed + i*1000003 independently of scheduling, and the metric sums
// are reduced in repetition order, so the outcome is bit-identical to a
// serial run.
func ExecuteAveraged(spec RunSpec, reps int) (*Outcome, error) {
	return ExecuteAveragedWorkers(spec, reps, 0)
}

// ExecuteAveragedWorkers is ExecuteAveraged with an explicit worker bound:
// 0 means one worker per CPU, 1 forces the serial path.
func ExecuteAveragedWorkers(spec RunSpec, reps, workers int) (*Outcome, error) {
	if reps < 1 {
		reps = 1
	}
	// Only scalar metrics are kept per repetition; the full stream
	// matrices are retained for the first outcome (the reduction carrier,
	// as in the serial loop) and the last (whose streams the averaged
	// outcome reports), bounding memory at two outcomes regardless of
	// reps.
	type repMetrics struct {
		mre, mae, mse, cfpu, auc float64
		violations               int
		maxLoss                  float64
	}
	repResults := make([]repMetrics, reps)
	var first, last *Outcome
	if err := parallelFor(reps, workers, func(i int) error {
		s := spec
		s.Seed = spec.Seed + uint64(i)*1000003
		o, err := Execute(s)
		if err != nil {
			return err
		}
		repResults[i] = repMetrics{o.MRE, o.MAE, o.MSE, o.CFPU, o.AUC, o.PrivacyViolations, o.MaxWindowLoss}
		if i == 0 {
			first = o
		}
		if i == reps-1 {
			last = o
		}
		return nil
	}); err != nil {
		return nil, err
	}
	acc := first
	for _, m := range repResults[1:] {
		acc.MRE += m.mre
		acc.MAE += m.mae
		acc.MSE += m.mse
		acc.CFPU += m.cfpu
		acc.AUC += m.auc
		acc.PrivacyViolations += m.violations
		if m.maxLoss > acc.MaxWindowLoss {
			acc.MaxWindowLoss = m.maxLoss
		}
	}
	acc.Comm = last.Comm
	acc.Released, acc.True = last.Released, last.True
	inv := 1 / float64(reps)
	acc.MRE *= inv
	acc.MAE *= inv
	acc.MSE *= inv
	acc.CFPU *= inv
	acc.AUC *= inv
	return acc, nil
}
