package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders tables as CSV: one header row per table (title in a
// comment-style first cell), then rows of method name followed by cell
// values. Multiple tables are separated by blank records.
func WriteCSV(w io.Writer, tables []Table) error {
	cw := csv.NewWriter(w)
	for i, t := range tables {
		if i > 0 {
			// Blank separator line between tables.
			if err := cw.Write([]string{""}); err != nil {
				return err
			}
		}
		if err := cw.Write([]string{"# " + t.Title}); err != nil {
			return err
		}
		header := append([]string{t.XLabel}, t.ColHeads...)
		if err := cw.Write(header); err != nil {
			return err
		}
		for r, rh := range t.RowHeads {
			row := make([]string, 0, len(t.Cells[r])+1)
			row = append(row, rh)
			for _, v := range t.Cells[r] {
				row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders tables as an indented JSON array.
func WriteJSON(w io.Writer, tables []Table) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tables)
}

// Write renders tables in the named format: "text" (default), "csv" or
// "json".
func Write(w io.Writer, tables []Table, format string) error {
	switch format {
	case "", "text":
		RenderAll(w, tables)
		return nil
	case "csv":
		return WriteCSV(w, tables)
	case "json":
		return WriteJSON(w, tables)
	default:
		return fmt.Errorf("experiment: unknown output format %q", format)
	}
}
