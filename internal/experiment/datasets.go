// This file builds the paper's six evaluation datasets (three synthetic,
// three simulated real-world) as deterministic stream generators.

package experiment

import (
	"fmt"
	"math"

	"ldpids/internal/ldprand"
	"ldpids/internal/stream"
	"ldpids/internal/trace"
)

// DatasetNames lists the six evaluation datasets in the paper's order.
var DatasetNames = []string{"LNS", "Sin", "Log", "Taxi", "Foursquare", "Taobao"}

// SyntheticN and SyntheticT are the paper's synthetic-dataset defaults
// (§7.1.1): 200,000 users over 800 timestamps.
const (
	SyntheticN = 200000
	SyntheticT = 800
)

// StreamSpec selects and parameterizes a dataset. Zero-valued fields take
// the paper's defaults.
type StreamSpec struct {
	// Dataset is one of DatasetNames.
	Dataset string
	// N overrides the population size (0 = paper default, possibly
	// scaled by PopScale).
	N int
	// T overrides the stream length (0 = paper default).
	T int
	// PopScale scales the default population when N == 0 (0 = 1.0).
	// It exists because the full Foursquare/Taobao populations make the
	// complete reproduction run long; shapes are population-invariant
	// and the explicit N sweep is Fig. 6.
	PopScale float64
	// LNSStd overrides sqrt(Q) for the LNS walk (0 = 0.0025).
	LNSStd float64
	// SinB overrides the Sin period parameter b (0 = 0.01).
	SinB float64
}

// defaults fills in paper-default N and T for the dataset.
func (sp StreamSpec) defaults() (n, t int, err error) {
	switch sp.Dataset {
	case "LNS", "Sin", "Log":
		n, t = SyntheticN, SyntheticT
	case "Taxi":
		n, t = trace.TaxiSpec.N, trace.TaxiSpec.T
	case "Foursquare":
		n, t = trace.FoursquareSpec.N, trace.FoursquareSpec.T
	case "Taobao":
		n, t = trace.TaobaoSpec.N, trace.TaobaoSpec.T
	default:
		return 0, 0, fmt.Errorf("experiment: unknown dataset %q", sp.Dataset)
	}
	if sp.N > 0 {
		n = sp.N
	} else if sp.PopScale > 0 {
		n = int(math.Round(float64(n) * sp.PopScale))
		if n < 100 {
			n = 100
		}
	}
	if sp.T > 0 {
		t = sp.T
	}
	return n, t, nil
}

// Build constructs the dataset's stream plus its length and domain size.
func (sp StreamSpec) Build(src *ldprand.Source) (s stream.Stream, T, d int, err error) {
	n, T, err := sp.defaults()
	if err != nil {
		return nil, 0, 0, err
	}
	switch sp.Dataset {
	case "LNS":
		std := sp.LNSStd
		if std == 0 {
			std = 0.0025
		}
		proc := stream.NewLNS(0.05, std, src.Split())
		return stream.NewBinaryStream(n, proc, src.Split()), T, 2, nil
	case "Sin":
		b := sp.SinB
		if b == 0 {
			b = 0.01
		}
		proc := stream.NewSin(0.05, b, 0.075)
		return stream.NewBinaryStream(n, proc, src.Split()), T, 2, nil
	case "Log":
		proc := stream.DefaultLog()
		return stream.NewBinaryStream(n, proc, src.Split()), T, 2, nil
	case "Taxi":
		return trace.Taxi(n, trace.TaxiSpec.D, src.Split()), T, trace.TaxiSpec.D, nil
	case "Foursquare":
		return trace.Foursquare(n, trace.FoursquareSpec.D, src.Split()), T, trace.FoursquareSpec.D, nil
	case "Taobao":
		return trace.Taobao(n, trace.TaobaoSpec.D, src.Split()), T, trace.TaobaoSpec.D, nil
	default:
		return nil, 0, 0, fmt.Errorf("experiment: unknown dataset %q", sp.Dataset)
	}
}

// IsBinary reports whether the dataset is one of the binary synthetic
// streams (d = 2), which determines the monitored statistic in Fig. 7.
func IsBinary(dataset string) bool {
	return dataset == "LNS" || dataset == "Sin" || dataset == "Log"
}
