package experiment

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelForLowestIndexErrorWins pins the pool's failure contract:
// when several in-flight items fail, the LOWEST-index recorded error is
// returned (not whichever happened to fail first), and items not yet
// started when the failure lands are never run.
func TestParallelForLowestIndexErrorWins(t *testing.T) {
	errA, errB := errors.New("item 0"), errors.New("item 1")
	var ran [4]atomic.Bool
	// Two workers claim items 0 and 1 and block on the barrier until both
	// are in flight, then both fail. Each worker publishes the failure
	// before checking for more work, so items 2 and 3 can never start.
	var barrier sync.WaitGroup
	barrier.Add(2)
	err := parallelFor(4, 2, func(i int) error {
		ran[i].Store(true)
		switch i {
		case 0:
			barrier.Done()
			barrier.Wait()
			return errA
		case 1:
			barrier.Done()
			barrier.Wait()
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got error %v, want lowest-index error %v", err, errA)
	}
	if !ran[0].Load() || !ran[1].Load() {
		t.Fatal("items 0 and 1 should both have run")
	}
	if ran[2].Load() || ran[3].Load() {
		t.Fatal("items past the failure were started")
	}
}

// TestParallelForSerialStopsAtFirstError pins the workers==1 inline path:
// execution stops at the failing item.
func TestParallelForSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran [5]bool
	err := parallelFor(5, 1, func(i int) error {
		ran[i] = true
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if !ran[0] || !ran[1] || !ran[2] {
		t.Fatal("items before the failure skipped")
	}
	if ran[3] || ran[4] {
		t.Fatal("items after a serial failure were run")
	}
}

// TestParallelForCompletes sanity-checks the success path: every item runs
// exactly once at any worker count.
func TestParallelForCompletes(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		var counts [17]atomic.Int32
		if err := parallelFor(17, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}
