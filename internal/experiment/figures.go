package experiment

import (
	"fmt"

	"ldpids/internal/mechanism"
)

// Config sets the global knobs of the reproduction harness.
type Config struct {
	// PopScale scales dataset populations (0 = 0.1). 1.0 reproduces the
	// paper's full sizes at ~10x the runtime.
	PopScale float64
	// Reps averages each cell over this many seeded repetitions (0 = 1).
	Reps int
	// Seed is the root seed.
	Seed uint64
	// Oracle names the FO ("" = GRR).
	Oracle string
	// Methods restricts the compared methods (nil = all seven).
	Methods []string
	// Datasets restricts the datasets (nil = all six).
	Datasets []string
	// Audit turns the w-event privacy accountant on for every run.
	Audit bool
	// Workers bounds the experiment worker pool fanning grid cells and
	// averaged repetitions across CPUs (0 = GOMAXPROCS, 1 = serial).
	// Results are bit-identical at any setting; see parallel.go.
	Workers int
}

func (c *Config) popScale() float64 {
	if c.PopScale <= 0 {
		return 0.1
	}
	return c.PopScale
}

func (c *Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

func (c *Config) methods() []string {
	if len(c.Methods) == 0 {
		return mechanism.Names
	}
	return c.Methods
}

func (c *Config) datasets() []string {
	if len(c.Datasets) == 0 {
		return DatasetNames
	}
	return c.Datasets
}

// sweepTable declares one table of methods x cols in the plan: a skeleton
// plus one cell per slot. specAt returns the raw spec for a (method, col)
// slot; runSpec canonicalizes it (config oracle/audit, content-derived
// seeds). The paper-figure sweeps fail on any audited w-event violation.
func (c *Config) sweepTable(p *Plan, title, xlabel string, cols []string, metric string, specAt func(method string, col int) RunSpec) {
	rows := c.methods()
	ti := p.addTable(Table{Title: title, XLabel: xlabel, ColHeads: cols, RowHeads: rows})
	for r, method := range rows {
		for col := range cols {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: metric,
				Spec: c.runSpec(specAt(method, col)), Reps: c.reps(),
				FailOnViolation: true,
			})
		}
	}
}

// planFig4 declares Figure 4: MRE vs ε ∈ {0.5, 1, 1.5, 2, 2.5} with
// w = 20 on every dataset.
func (c *Config) planFig4() Plan {
	epsVals := []float64{0.5, 1, 1.5, 2, 2.5}
	cols := []string{"0.5", "1.0", "1.5", "2.0", "2.5"}
	p := Plan{ID: "fig4"}
	for di, ds := range c.datasets() {
		ds := ds
		c.sweepTable(&p,
			fmt.Sprintf("Fig 4(%c): MRE vs eps on %s (w=20)", 'a'+di, ds),
			"eps", cols, MetricMRE,
			func(method string, col int) RunSpec {
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: method, Eps: epsVals[col], W: 20,
				}
			})
	}
	return p
}

// Fig4 reproduces Figure 4 (compatibility wrapper over the plan).
func (c *Config) Fig4() ([]Table, error) { return c.runPlan(c.planFig4()) }

// planFig5 declares Figure 5: MRE vs w ∈ {10, 20, 30, 40, 50} with ε = 1.
func (c *Config) planFig5() Plan {
	wVals := []int{10, 20, 30, 40, 50}
	cols := []string{"10", "20", "30", "40", "50"}
	p := Plan{ID: "fig5"}
	for di, ds := range c.datasets() {
		ds := ds
		c.sweepTable(&p,
			fmt.Sprintf("Fig 5(%c): MRE vs w on %s (eps=1)", 'a'+di, ds),
			"w", cols, MetricMRE,
			func(method string, col int) RunSpec {
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: method, Eps: 1, W: wVals[col],
				}
			})
	}
	return p
}

// Fig5 reproduces Figure 5 (compatibility wrapper over the plan).
func (c *Config) Fig5() ([]Table, error) { return c.runPlan(c.planFig5()) }

// planFig6 declares Figure 6: the impact of dataset parameters with ε = 1,
// w = 30 — population sweeps on LNS and Sin, fluctuation sweeps √Q on LNS
// and b on Sin.
func (c *Config) planFig6() Plan {
	p := Plan{ID: "fig6"}

	// (a, b) population sweep: 1, 2, 4, 8 x 10^5 users, scaled.
	popVals := []int{100000, 200000, 400000, 800000}
	cols := []string{"1e5", "2e5", "4e5", "8e5"}
	for di, ds := range []string{"LNS", "Sin"} {
		ds := ds
		c.sweepTable(&p,
			fmt.Sprintf("Fig 6(%c): MRE vs population N on %s (eps=1, w=30, scaled by %.2g)", 'a'+di, ds, c.popScale()),
			"N", cols, MetricMRE,
			func(method string, col int) RunSpec {
				n := int(float64(popVals[col]) * c.popScale())
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, N: n},
					Method: method, Eps: 1, W: 30,
				}
			})
	}

	// (c) fluctuation sweep on LNS: sqrt(Q) in {.001, .002, .004, .008}.
	stdVals := []float64{0.001, 0.002, 0.004, 0.008}
	c.sweepTable(&p,
		"Fig 6(c): MRE vs fluctuation sqrt(Q) on LNS (eps=1, w=30)",
		"sqrtQ", []string{"0.001", "0.002", "0.004", "0.008"}, MetricMRE,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale(), LNSStd: stdVals[col]},
				Method: method, Eps: 1, W: 30,
			}
		})

	// (d) period sweep on Sin: b in {1/200, 1/100, 1/50, 1/25}.
	bVals := []float64{1.0 / 200, 1.0 / 100, 1.0 / 50, 1.0 / 25}
	c.sweepTable(&p,
		"Fig 6(d): MRE vs period b on Sin (eps=1, w=30)",
		"b", []string{"1/200", "1/100", "1/50", "1/25"}, MetricMRE,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "Sin", PopScale: c.popScale(), SinB: bVals[col]},
				Method: method, Eps: 1, W: 30,
			}
		})
	return p
}

// Fig6 reproduces Figure 6 (compatibility wrapper over the plan).
func (c *Config) Fig6() ([]Table, error) { return c.runPlan(c.planFig6()) }

// planFig7 declares Figure 7's event-monitoring comparison (ε = 1,
// w = 50): one AUC table over all datasets for the methods the paper plots
// (LBA, LSP, LPU, LPD, LPA).
func (c *Config) planFig7() Plan {
	methods := []string{"LBA", "LSP", "LPU", "LPD", "LPA"}
	if len(c.Methods) > 0 {
		methods = c.Methods
	}
	ds := c.datasets()
	p := Plan{ID: "fig7"}
	ti := p.addTable(Table{
		Title:    "Fig 7: event-monitoring ROC AUC (eps=1, w=50)",
		XLabel:   "method",
		ColHeads: ds,
		RowHeads: methods,
	})
	for r, method := range methods {
		for col, d := range ds {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: MetricAUC,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: d, PopScale: c.popScale()},
					Method: method, Eps: 1, W: 50,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// Fig7 reproduces Figure 7 (compatibility wrapper over the plan).
func (c *Config) Fig7() ([]Table, error) { return c.runPlan(c.planFig7()) }

// planTable2 declares Table 2: CFPU of every method on Sin, Log, Taxi,
// Foursquare and Taobao for (ε, w) ∈ {(1,20), (2,20), (2,40)}. Its first
// combo shares every run with Fig 4's ε=1 column and Fig 8's w=20 cells —
// under content-derived seeds those are the same specs, so the scheduler
// executes them once.
func (c *Config) planTable2() Plan {
	datasets := []string{"Sin", "Log", "Taxi", "Foursquare", "Taobao"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	combos := []struct {
		eps float64
		w   int
	}{{1, 20}, {2, 20}, {2, 40}}
	p := Plan{ID: "table2"}
	for _, combo := range combos {
		ti := p.addTable(Table{
			Title:    fmt.Sprintf("Table 2: CFPU (eps=%g, w=%d)", combo.eps, combo.w),
			XLabel:   "method",
			ColHeads: datasets,
			RowHeads: c.methods(),
		})
		for r, method := range c.methods() {
			for col, ds := range datasets {
				p.Cells = append(p.Cells, Cell{
					Table: ti, Row: r, Col: col, Metric: MetricCFPU,
					Spec: c.runSpec(RunSpec{
						Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
						Method: method, Eps: combo.eps, W: combo.w,
					}),
					Reps: c.reps(),
				})
			}
		}
	}
	return p
}

// Table2 reproduces Table 2 (compatibility wrapper over the plan).
func (c *Config) Table2() ([]Table, error) { return c.runPlan(c.planTable2()) }

// planFig8 declares Figure 8: CFPU on LNS with respect to population N,
// fluctuation Q, budget ε, and window size w.
func (c *Config) planFig8() Plan {
	p := Plan{ID: "fig8"}

	// (a) CFPU vs N in {0.5, 1, 1.5, 2} x 10^4.
	popVals := []int{5000, 10000, 15000, 20000}
	c.sweepTable(&p,
		"Fig 8(a): CFPU vs population N on LNS (eps=1, w=20)",
		"N", []string{"5e3", "1e4", "1.5e4", "2e4"}, MetricCFPU,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", N: popVals[col]},
				Method: method, Eps: 1, W: 20,
			}
		})

	// (b) CFPU vs fluctuation sqrt(Q) in {0.01, 0.02, 0.04, 0.08}.
	stdVals := []float64{0.01, 0.02, 0.04, 0.08}
	c.sweepTable(&p,
		"Fig 8(b): CFPU vs fluctuation sqrt(Q) on LNS (eps=1, w=20)",
		"sqrtQ", []string{"0.01", "0.02", "0.04", "0.08"}, MetricCFPU,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale(), LNSStd: stdVals[col]},
				Method: method, Eps: 1, W: 20,
			}
		})

	// (c) CFPU vs eps in {0.5, 1, 1.5, 2}.
	epsVals := []float64{0.5, 1, 1.5, 2}
	c.sweepTable(&p,
		"Fig 8(c): CFPU vs eps on LNS (w=20)",
		"eps", []string{"0.5", "1.0", "1.5", "2.0"}, MetricCFPU,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale()},
				Method: method, Eps: epsVals[col], W: 20,
			}
		})

	// (d) CFPU vs w in {10, 20, 30, 40}.
	wVals := []int{10, 20, 30, 40}
	c.sweepTable(&p,
		"Fig 8(d): CFPU vs w on LNS (eps=1)",
		"w", []string{"10", "20", "30", "40"}, MetricCFPU,
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale()},
				Method: method, Eps: 1, W: wVals[col],
			}
		})
	return p
}

// Fig8 reproduces Figure 8 (compatibility wrapper over the plan).
func (c *Config) Fig8() ([]Table, error) { return c.runPlan(c.planFig8()) }
