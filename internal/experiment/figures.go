package experiment

import (
	"fmt"

	"ldpids/internal/mechanism"
)

// Config sets the global knobs of the reproduction harness.
type Config struct {
	// PopScale scales dataset populations (0 = 0.1). 1.0 reproduces the
	// paper's full sizes at ~10x the runtime.
	PopScale float64
	// Reps averages each cell over this many seeded repetitions (0 = 1).
	Reps int
	// Seed is the root seed.
	Seed uint64
	// Oracle names the FO ("" = GRR).
	Oracle string
	// Methods restricts the compared methods (nil = all seven).
	Methods []string
	// Datasets restricts the datasets (nil = all six).
	Datasets []string
	// Audit turns the w-event privacy accountant on for every run.
	Audit bool
	// Workers bounds the experiment worker pool fanning grid cells and
	// averaged repetitions across CPUs (0 = GOMAXPROCS, 1 = serial).
	// Results are bit-identical at any setting; see parallel.go.
	Workers int
}

func (c *Config) popScale() float64 {
	if c.PopScale <= 0 {
		return 0.1
	}
	return c.PopScale
}

func (c *Config) reps() int {
	if c.Reps < 1 {
		return 1
	}
	return c.Reps
}

func (c *Config) methods() []string {
	if len(c.Methods) == 0 {
		return mechanism.Names
	}
	return c.Methods
}

func (c *Config) datasets() []string {
	if len(c.Datasets) == 0 {
		return DatasetNames
	}
	return c.Datasets
}

// cellSeed derives a distinct seed per table cell so runs are independent
// but replayable.
func (c *Config) cellSeed(parts ...int) uint64 {
	s := c.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range parts {
		s = s*1099511628211 + uint64(p) + 1
	}
	return s
}

// sweep runs every method over the given x-axis, extracting one metric per
// run into a Table. Cells are independent seeded runs and fan out across
// the worker pool; repetitions within a cell stay serial so concurrency is
// bounded by the pool alone.
func (c *Config) sweep(title, xlabel string, cols []string, specAt func(method string, col int) RunSpec, metric func(*Outcome) float64) (Table, error) {
	tbl := Table{Title: title, XLabel: xlabel, ColHeads: cols, RowHeads: c.methods()}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		method := tbl.RowHeads[r]
		out, err := ExecuteAveragedWorkers(specAt(method, col), c.reps(), 1)
		if err != nil {
			return 0, err
		}
		if out.PrivacyViolations > 0 {
			return 0, fmt.Errorf("experiment: %s violated w-event LDP in %q", method, title)
		}
		return metric(out), nil
	})
	if err != nil {
		return Table{}, err
	}
	return tbl, nil
}

// Fig4 reproduces Figure 4: MRE vs ε ∈ {0.5, 1, 1.5, 2, 2.5} with w = 20
// on every dataset.
func (c *Config) Fig4() ([]Table, error) {
	epsVals := []float64{0.5, 1, 1.5, 2, 2.5}
	cols := []string{"0.5", "1.0", "1.5", "2.0", "2.5"}
	var tables []Table
	for di, ds := range c.datasets() {
		tbl, err := c.sweep(
			fmt.Sprintf("Fig 4(%c): MRE vs eps on %s (w=20)", 'a'+di, ds),
			"eps", cols,
			func(method string, col int) RunSpec {
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: method, Eps: epsVals[col], W: 20,
					Oracle: c.Oracle, Seed: c.cellSeed(1, di, col),
					StreamSeed: c.cellSeed(101, di), Audit: c.Audit,
				}
			},
			func(o *Outcome) float64 { return o.MRE })
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Fig5 reproduces Figure 5: MRE vs w ∈ {10, 20, 30, 40, 50} with ε = 1.
func (c *Config) Fig5() ([]Table, error) {
	wVals := []int{10, 20, 30, 40, 50}
	cols := []string{"10", "20", "30", "40", "50"}
	var tables []Table
	for di, ds := range c.datasets() {
		tbl, err := c.sweep(
			fmt.Sprintf("Fig 5(%c): MRE vs w on %s (eps=1)", 'a'+di, ds),
			"w", cols,
			func(method string, col int) RunSpec {
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: method, Eps: 1, W: wVals[col],
					Oracle: c.Oracle, Seed: c.cellSeed(2, di, col),
					StreamSeed: c.cellSeed(102, di), Audit: c.Audit,
				}
			},
			func(o *Outcome) float64 { return o.MRE })
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Fig6 reproduces Figure 6: the impact of dataset parameters with ε = 1,
// w = 30 — population sweeps on LNS and Sin, fluctuation sweeps √Q on LNS
// and b on Sin.
func (c *Config) Fig6() ([]Table, error) {
	var tables []Table

	// (a, b) population sweep: 1, 2, 4, 8 x 10^5 users, scaled.
	popVals := []int{100000, 200000, 400000, 800000}
	cols := []string{"1e5", "2e5", "4e5", "8e5"}
	for di, ds := range []string{"LNS", "Sin"} {
		tbl, err := c.sweep(
			fmt.Sprintf("Fig 6(%c): MRE vs population N on %s (eps=1, w=30, scaled by %.2g)", 'a'+di, ds, c.popScale()),
			"N", cols,
			func(method string, col int) RunSpec {
				n := int(float64(popVals[col]) * c.popScale())
				return RunSpec{
					Stream: StreamSpec{Dataset: ds, N: n},
					Method: method, Eps: 1, W: 30,
					Oracle: c.Oracle, Seed: c.cellSeed(3, di, col),
					StreamSeed: c.cellSeed(103, di), Audit: c.Audit,
				}
			},
			func(o *Outcome) float64 { return o.MRE })
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}

	// (c) fluctuation sweep on LNS: sqrt(Q) in {.001, .002, .004, .008}.
	stdVals := []float64{0.001, 0.002, 0.004, 0.008}
	tbl, err := c.sweep(
		"Fig 6(c): MRE vs fluctuation sqrt(Q) on LNS (eps=1, w=30)",
		"sqrtQ", []string{"0.001", "0.002", "0.004", "0.008"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale(), LNSStd: stdVals[col]},
				Method: method, Eps: 1, W: 30,
				Oracle: c.Oracle, Seed: c.cellSeed(3, 10, col),
				StreamSeed: c.cellSeed(103, 10), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.MRE })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)

	// (d) period sweep on Sin: b in {1/200, 1/100, 1/50, 1/25}.
	bVals := []float64{1.0 / 200, 1.0 / 100, 1.0 / 50, 1.0 / 25}
	tbl, err = c.sweep(
		"Fig 6(d): MRE vs period b on Sin (eps=1, w=30)",
		"b", []string{"1/200", "1/100", "1/50", "1/25"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "Sin", PopScale: c.popScale(), SinB: bVals[col]},
				Method: method, Eps: 1, W: 30,
				Oracle: c.Oracle, Seed: c.cellSeed(3, 11, col),
				StreamSeed: c.cellSeed(103, 11), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.MRE })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)
	return tables, nil
}

// Fig7 reproduces Figure 7's event-monitoring comparison (ε = 1, w = 50):
// one AUC table over all datasets for the methods the paper plots (LBA,
// LSP, LPU, LPD, LPA).
func (c *Config) Fig7() ([]Table, error) {
	methods := []string{"LBA", "LSP", "LPU", "LPD", "LPA"}
	if len(c.Methods) > 0 {
		methods = c.Methods
	}
	ds := c.datasets()
	tbl := Table{
		Title:    "Fig 7: event-monitoring ROC AUC (eps=1, w=50)",
		XLabel:   "method",
		ColHeads: ds,
		RowHeads: methods,
	}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: ds[col], PopScale: c.popScale()},
			Method: methods[r], Eps: 1, W: 50,
			Oracle: c.Oracle, Seed: c.cellSeed(4, r, col),
			StreamSeed: c.cellSeed(104, col), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return 0, err
		}
		return out.AUC, nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// Table2 reproduces Table 2: CFPU of every method on Sin, Log, Taxi,
// Foursquare and Taobao for (ε, w) ∈ {(1,20), (2,20), (2,40)}.
func (c *Config) Table2() ([]Table, error) {
	datasets := []string{"Sin", "Log", "Taxi", "Foursquare", "Taobao"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	combos := []struct {
		eps float64
		w   int
	}{{1, 20}, {2, 20}, {2, 40}}
	var tables []Table
	for ci, combo := range combos {
		ci, combo := ci, combo
		tbl := Table{
			Title:    fmt.Sprintf("Table 2: CFPU (eps=%g, w=%d)", combo.eps, combo.w),
			XLabel:   "method",
			ColHeads: datasets,
			RowHeads: c.methods(),
		}
		err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
			out, err := ExecuteAveragedWorkers(RunSpec{
				Stream: StreamSpec{Dataset: datasets[col], PopScale: c.popScale()},
				Method: tbl.RowHeads[r], Eps: combo.eps, W: combo.w,
				Oracle: c.Oracle, Seed: c.cellSeed(5, ci, r, col),
				StreamSeed: c.cellSeed(105, col), Audit: c.Audit,
			}, c.reps(), 1)
			if err != nil {
				return 0, err
			}
			return out.CFPU, nil
		})
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// Fig8 reproduces Figure 8: CFPU on LNS with respect to population N,
// fluctuation Q, budget ε, and window size w.
func (c *Config) Fig8() ([]Table, error) {
	var tables []Table

	// (a) CFPU vs N in {0.5, 1, 1.5, 2} x 10^4.
	popVals := []int{5000, 10000, 15000, 20000}
	tbl, err := c.sweep(
		"Fig 8(a): CFPU vs population N on LNS (eps=1, w=20)",
		"N", []string{"5e3", "1e4", "1.5e4", "2e4"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", N: popVals[col]},
				Method: method, Eps: 1, W: 20,
				Oracle: c.Oracle, Seed: c.cellSeed(6, 0, col),
				StreamSeed: c.cellSeed(106, 0), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.CFPU })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)

	// (b) CFPU vs fluctuation sqrt(Q) in {0.01, 0.02, 0.04, 0.08}.
	stdVals := []float64{0.01, 0.02, 0.04, 0.08}
	tbl, err = c.sweep(
		"Fig 8(b): CFPU vs fluctuation sqrt(Q) on LNS (eps=1, w=20)",
		"sqrtQ", []string{"0.01", "0.02", "0.04", "0.08"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale(), LNSStd: stdVals[col]},
				Method: method, Eps: 1, W: 20,
				Oracle: c.Oracle, Seed: c.cellSeed(6, 1, col),
				StreamSeed: c.cellSeed(106, 1), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.CFPU })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)

	// (c) CFPU vs eps in {0.5, 1, 1.5, 2}.
	epsVals := []float64{0.5, 1, 1.5, 2}
	tbl, err = c.sweep(
		"Fig 8(c): CFPU vs eps on LNS (w=20)",
		"eps", []string{"0.5", "1.0", "1.5", "2.0"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale()},
				Method: method, Eps: epsVals[col], W: 20,
				Oracle: c.Oracle, Seed: c.cellSeed(6, 2, col),
				StreamSeed: c.cellSeed(106, 2), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.CFPU })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)

	// (d) CFPU vs w in {10, 20, 30, 40}.
	wVals := []int{10, 20, 30, 40}
	tbl, err = c.sweep(
		"Fig 8(d): CFPU vs w on LNS (eps=1)",
		"w", []string{"10", "20", "30", "40"},
		func(method string, col int) RunSpec {
			return RunSpec{
				Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale()},
				Method: method, Eps: 1, W: wVals[col],
				Oracle: c.Oracle, Seed: c.cellSeed(6, 3, col),
				StreamSeed: c.cellSeed(106, 3), Audit: c.Audit,
			}
		},
		func(o *Outcome) float64 { return o.CFPU })
	if err != nil {
		return nil, err
	}
	tables = append(tables, tbl)
	return tables, nil
}

// Experiments maps experiment ids to their runners.
func (c *Config) Experiments() map[string]func() ([]Table, error) {
	return map[string]func() ([]Table, error){
		"fig4":                c.Fig4,
		"fig5":                c.Fig5,
		"fig6":                c.Fig6,
		"fig7":                c.Fig7,
		"fig8":                c.Fig8,
		"table2":              c.Table2,
		"ablation-fo":         c.AblationFO,
		"ablation-olh":        c.AblationOLHFold,
		"ablation-umin":       c.AblationUMin,
		"ablation-split":      c.AblationSplit,
		"ablation-filter":     c.AblationFilter,
		"compare-cdp":         c.CompareCDP,
		"compare-granularity": c.CompareGranularity,
	}
}
