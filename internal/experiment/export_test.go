package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func demoTable() Table {
	return Table{
		Title:    "demo table",
		XLabel:   "eps",
		ColHeads: []string{"0.5", "1.0"},
		RowHeads: []string{"LBU", "LPA"},
		Cells:    [][]float64{{0.5, 0.25}, {0.05, 0.02}},
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []Table{demoTable(), demoTable()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# demo table", "eps,0.5,1.0", "LBU,0.5,0.25", "LPA,0.05,0.02"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# demo table") != 2 {
		t.Fatal("second table missing")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, []Table{demoTable()}); err != nil {
		t.Fatal(err)
	}
	var got []Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Title != "demo table" || got[0].Cells[1][1] != 0.02 {
		t.Fatalf("round trip %+v", got)
	}
}

func TestWriteDispatch(t *testing.T) {
	var buf bytes.Buffer
	for _, format := range []string{"", "text", "csv", "json"} {
		buf.Reset()
		if err := Write(&buf, []Table{demoTable()}, format); err != nil {
			t.Fatalf("format %q: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced no output", format)
		}
	}
	if err := Write(&buf, nil, "yaml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
