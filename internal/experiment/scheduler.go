package experiment

import (
	"fmt"
	"sync"
	"time"

	"ldpids/internal/runlog"
)

// Progress is a scheduler progress snapshot, in cells (table slots).
type Progress struct {
	// Done and Total count cells across every announced plan.
	Done, Total int
	// CacheHits counts cells served from the journal or the in-memory
	// run cache instead of being executed.
	CacheHits int
	// RunsDone and RunsTotal count distinct run executions (several
	// cells can share one run).
	RunsDone, RunsTotal int
	// Elapsed is the wall-clock time since the scheduler first ran.
	Elapsed time.Duration
	// ETA estimates the remaining wall-clock time from the measured
	// per-run rate; zero until at least one run has executed.
	ETA time.Duration
}

// Scheduler executes plans on the deterministic worker pool. Cells that
// share a run hash execute once per scheduler (and once per journal across
// process restarts); runs already journaled are skipped entirely, which is
// what makes an interrupted `-exp all` resumable. Because every run is
// deterministic and journal round trips are bit-exact, resumed tables are
// bit-identical to a fresh run's.
type Scheduler struct {
	// OnProgress, when set, receives a snapshot after every completed
	// run group. Callbacks arrive from worker goroutines, one at a time.
	OnProgress func(Progress)

	cfg     *Config
	journal *runlog.Journal

	// cbMu serializes OnProgress callbacks (and makes their snapshots
	// monotone): it is acquired before mu and held across the callback,
	// so workers finishing simultaneously deliver progress one at a
	// time, in counter order.
	cbMu sync.Mutex

	mu        sync.Mutex
	memo      map[string]runlog.Metrics
	announced map[string]bool
	start     time.Time
	done      int // cells completed
	total     int // cells announced
	hits      int // cells served from cache
	runsDone  int
	runsTotal int
	executed  int           // runs actually executed (not cached)
	execTime  time.Duration // total wall time inside executed runs
}

// NewScheduler builds a scheduler over the config's worker pool. A non-nil
// journal seeds the run cache and receives every newly completed run.
func (c *Config) NewScheduler(j *runlog.Journal) *Scheduler {
	s := &Scheduler{cfg: c, journal: j, memo: make(map[string]runlog.Metrics), announced: make(map[string]bool)}
	if j != nil {
		s.memo = j.All()
	}
	return s
}

// Announce registers upcoming plans so progress totals and ETAs cover the
// whole invocation rather than only the plan currently running. Running a
// plan that was not announced grows the totals on the fly.
func (s *Scheduler) Announce(plans ...Plan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range plans {
		if s.announced[p.ID] {
			continue
		}
		s.announced[p.ID] = true
		if p.Direct != nil {
			// Cell count is unknown until the direct runner returns; the
			// run itself still counts toward the ETA denominator.
			s.runsTotal++
			continue
		}
		cells, runs := planSize(p)
		s.total += cells
		s.runsTotal += runs
	}
}

// planSize counts a plan's cells and distinct runs.
func planSize(p Plan) (cells, runs int) {
	seen := make(map[string]bool)
	for _, c := range p.Cells {
		h := runHash(c.Spec, c.Reps)
		if !seen[h] {
			seen[h] = true
			runs++
		}
	}
	return len(p.Cells), runs
}

// Stats returns the current progress snapshot.
func (s *Scheduler) Stats() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Scheduler) snapshotLocked() Progress {
	p := Progress{
		Done: s.done, Total: s.total, CacheHits: s.hits,
		RunsDone: s.runsDone, RunsTotal: s.runsTotal,
	}
	if !s.start.IsZero() {
		p.Elapsed = time.Since(s.start)
	}
	if s.executed > 0 {
		perRun := s.execTime / time.Duration(s.executed)
		// Remaining runs assume no further cache hits: an upper bound.
		remaining := s.runsTotal - s.runsDone
		if remaining > 0 {
			// The pool overlaps runs; scale by the worker count.
			workers := s.cfg.workers()
			p.ETA = perRun * time.Duration(remaining) / time.Duration(workers)
		}
	}
	return p
}

// runGroup is the unit of execution: one distinct run serving every cell
// that selects a metric from it.
type runGroup struct {
	hash, key string
	spec      RunSpec
	reps      int
	cells     []Cell
	metrics   []string // distinct selectors requested, in cell order
}

// Run executes one plan and returns its filled tables. Direct plans run
// imperatively (and count as one run for progress); declarative plans are
// grouped by run hash, looked up in the cache, executed on cache miss via
// the worker pool, journaled, and finally folded into the tables.
func (s *Scheduler) Run(p Plan) ([]Table, error) {
	s.Announce(p)
	s.mu.Lock()
	if s.start.IsZero() {
		s.start = time.Now()
	}
	s.mu.Unlock()

	if p.Direct != nil {
		tables, err := p.Direct()
		if err != nil {
			return nil, err
		}
		n := directCellCount(tables)
		s.cbMu.Lock()
		s.mu.Lock()
		s.runsDone++
		s.total += n
		s.done += n
		cb, snap := s.OnProgress, s.snapshotLocked()
		s.mu.Unlock()
		if cb != nil {
			cb(snap)
		}
		s.cbMu.Unlock()
		return tables, nil
	}

	tables := make([]Table, len(p.Tables))
	copy(tables, p.Tables)
	for t := range tables {
		tables[t].Cells = make([][]float64, len(tables[t].RowHeads))
		for r := range tables[t].Cells {
			tables[t].Cells[r] = make([]float64, len(tables[t].ColHeads))
		}
	}

	groups, err := groupCells(p)
	if err != nil {
		return nil, err
	}
	err = parallelFor(len(groups), s.cfg.workers(), func(i int) error {
		return s.runGroup(p, groups[i], tables)
	})
	if err != nil {
		return nil, err
	}
	return tables, nil
}

// groupCells folds a plan's cells into distinct run groups, in order of
// first appearance, validating coordinates and metric selectors up front.
func groupCells(p Plan) ([]*runGroup, error) {
	var groups []*runGroup
	index := make(map[string]*runGroup)
	for _, c := range p.Cells {
		if c.Table < 0 || c.Table >= len(p.Tables) {
			return nil, fmt.Errorf("experiment: plan %s: cell table index %d out of range", p.ID, c.Table)
		}
		t := p.Tables[c.Table]
		if c.Row < 0 || c.Row >= len(t.RowHeads) || c.Col < 0 || c.Col >= len(t.ColHeads) {
			return nil, fmt.Errorf("experiment: plan %s: cell (%d,%d) outside table %q", p.ID, c.Row, c.Col, t.Title)
		}
		if _, ok := metricFns[c.Metric]; !ok {
			return nil, fmt.Errorf("experiment: plan %s: unknown metric selector %q", p.ID, c.Metric)
		}
		h := runHash(c.Spec, c.Reps)
		g := index[h]
		if g == nil {
			g = &runGroup{hash: h, key: runKey(c.Spec, c.Reps), spec: c.Spec, reps: c.Reps}
			index[h] = g
			groups = append(groups, g)
		}
		g.cells = append(g.cells, c)
		found := false
		for _, m := range g.metrics {
			if m == c.Metric {
				found = true
				break
			}
		}
		if !found {
			g.metrics = append(g.metrics, c.Metric)
		}
	}
	return groups, nil
}

// runGroup resolves one run group — from the cache when every requested
// metric is journaled, by execution otherwise — and writes its cells.
func (s *Scheduler) runGroup(p Plan, g *runGroup, tables []Table) error {
	s.mu.Lock()
	rec, hit := s.memo[g.hash], true
	if rec == nil {
		hit = false
	} else {
		for _, m := range g.metrics {
			if _, ok := rec[m]; !ok {
				hit = false
				break
			}
		}
	}
	s.mu.Unlock()

	if !hit {
		started := time.Now()
		out, err := ExecuteAveragedWorkers(g.spec, g.reps, 1)
		if err != nil {
			return fmt.Errorf("experiment: plan %s: %w", p.ID, err)
		}
		rec, err = extractMetrics(out, g.metrics)
		if err != nil {
			return err
		}
		elapsed := time.Since(started)
		if s.journal != nil {
			if err := s.journal.Append(runlog.Record{Hash: g.hash, Key: g.key, Metrics: rec}); err != nil {
				return err
			}
		}
		s.mu.Lock()
		// Merge into a fresh map rather than mutating or replacing the
		// stored one: replacement would drop derived metrics journaled by
		// earlier sessions (forcing pointless re-executions later), and
		// in-place mutation would race with readers holding the old map.
		merged := make(runlog.Metrics, len(rec))
		for k, v := range s.memo[g.hash] {
			merged[k] = v
		}
		for k, v := range rec {
			merged[k] = v
		}
		s.memo[g.hash] = merged
		s.executed++
		s.execTime += elapsed
		s.mu.Unlock()
	}

	for _, c := range g.cells {
		tables[c.Table].Cells[c.Row][c.Col] = rec[c.Metric]
		if c.FailOnViolation && rec[MetricViolations] > 0 {
			return fmt.Errorf("experiment: %s violated w-event LDP in %q",
				c.Spec.Method, tables[c.Table].Title)
		}
	}

	s.cbMu.Lock()
	s.mu.Lock()
	s.runsDone++
	s.done += len(g.cells)
	if hit {
		s.hits += len(g.cells)
	}
	cb, snap := s.OnProgress, s.snapshotLocked()
	s.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
	s.cbMu.Unlock()
	return nil
}

// directCellCount sizes a Direct plan's output for progress accounting.
func directCellCount(tables []Table) int {
	n := 0
	for _, t := range tables {
		for _, row := range t.Cells {
			n += len(row)
		}
	}
	return n
}
