// Package experiment is the reproduction harness: it builds the paper's
// six evaluation datasets (three synthetic, three simulated real-world),
// runs any mechanism against them, computes the paper's metrics, and
// renders the rows/series of every figure and table in §7, plus the
// ablations beyond the paper (frequency-oracle swaps including the
// bit-packed unary formats and cohort-hashed OLH-C, the OLH vs OLH-C
// server-fold cost grid, u_min floors, resource splits, filters, and
// centralized-DP / granularity comparisons).
//
// Config holds the global knobs (population scale, repetitions, seed,
// oracle, worker pool); Config.Experiments maps experiment ids to runners
// returning renderable Tables — cmd/ldpids-bench is a thin CLI over it.
// RunSpec describes one mechanism-on-dataset execution and Execute runs
// it; ExecuteAveraged / ExecuteAveragedWorkers average repetitions.
//
// Everything is deterministic by construction: every grid cell and
// repetition derives its seeds from the spec alone, workers write disjoint
// result slots, and reductions happen in item order, so parallel runs
// (Config.Workers) are bit-identical to serial ones.
package experiment
