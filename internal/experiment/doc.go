// Package experiment is the reproduction harness: it builds the paper's
// six evaluation datasets (three synthetic, three simulated real-world),
// runs any mechanism against them, computes the paper's metrics, and
// renders the rows/series of every figure and table in §7, plus the
// ablations beyond the paper (frequency-oracle swaps including the
// bit-packed unary formats and cohort-hashed OLH-C, the OLH vs OLH-C
// server-fold cost grid, u_min floors, resource splits, filters, and
// centralized-DP / granularity comparisons).
//
// Every experiment is declarative: a pure plan builder returns a Plan — a
// list of Cells, each carrying the full RunSpec that determines its value,
// a repetition count, a metric selector, and (table, row, col)
// coordinates — and a single Scheduler executes any set of plans over the
// deterministic worker pool. Cell seeds derive from run content (never
// from grid position), so the same logical cell appearing in several
// figures is the same spec; the scheduler groups cells by canonical
// content hash and executes each distinct run once. With a
// runlog.Journal attached, completed runs append to a crash-safe JSONL
// log and are skipped on resume, making an interrupted `-exp all`
// restartable with bit-identical output. Config.Experiments/Plans map
// experiment ids to runners/builders — cmd/ldpids-bench is a thin CLI
// over them.
//
// RunSpec describes one mechanism-on-dataset execution and Execute runs
// it (including the granularity baselines EventLevel/UserLevel and the
// centralized CDP-* baselines); ExecuteAveraged / ExecuteAveragedWorkers
// average repetitions.
//
// Everything is deterministic by construction: every grid cell and
// repetition derives its seeds from the spec alone, workers write disjoint
// result slots, and reductions happen in item order, so parallel runs
// (Config.Workers) are bit-identical to serial ones — and journal round
// trips are bit-exact, so resumed runs are too.
package experiment
