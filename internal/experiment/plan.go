package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ldpids/internal/filter"
	"ldpids/internal/fo"
	"ldpids/internal/metrics"
)

// Every figure, table, ablation, and comparison is a pure function
// returning a Plan: a declarative list of Cells, each carrying the full
// RunSpec that determines its value, a repetition count, a metric
// selector, and its (table, row, col) coordinates. A single Scheduler
// (scheduler.go) executes any set of plans: cells sharing a run execute
// once, completed runs are journaled by content hash (internal/runlog),
// and journaled runs are skipped on resume.

// Cell is one table slot of a plan: the seeded run that produces it plus
// the metric extracted from that run.
type Cell struct {
	// Table, Row, Col locate the cell in the plan's Tables.
	Table, Row, Col int
	// Metric names the value extracted from the run's outcome: "MRE",
	// "MAE", "MSE", "CFPU", "AUC", "PrivacyViolations", "MaxWindowLoss",
	// "KalmanMSE" or "EWMA03MSE".
	Metric string
	// Spec fully determines the run (canonicalized by Config.runSpec:
	// seeds derive from the run's content, so identical logical cells in
	// different grids share a spec and therefore a journal hash).
	Spec RunSpec
	// Reps is the number of averaged repetitions.
	Reps int
	// FailOnViolation makes the scheduler fail the plan if the run's
	// w-event audit recorded any violation (the paper-figure sweeps set
	// it; granularity baselines deliberately violate and do not).
	FailOnViolation bool
}

// Plan declares one experiment: table skeletons (headers without cell
// values) plus the cells that fill them. Experiments whose values are
// wall-clock measurements rather than seeded runs (the OLH fold-cost
// ablation) set Direct instead of Cells; the scheduler runs them without
// journaling, since timings are not content-addressable.
type Plan struct {
	// ID is the experiment id (the -exp name).
	ID string
	// Tables holds the skeletons to fill: Title, XLabel, RowHeads and
	// ColHeads set, Cells nil.
	Tables []Table
	// Cells lists every slot to compute.
	Cells []Cell
	// Direct, when non-nil, computes the tables imperatively.
	Direct func() ([]Table, error)
}

// addTable appends a skeleton and returns its index.
func (p *Plan) addTable(t Table) int {
	p.Tables = append(p.Tables, t)
	return len(p.Tables) - 1
}

// runDataVersion is the module data version folded into every run hash.
// Bump it whenever dataset generation, mechanism behavior, or metric
// definitions change in a way that invalidates journaled values.
const runDataVersion = 1

// fstr renders a float in canonical shortest round-trippable form.
func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// streamKey is the canonical content key of a dataset specification.
func streamKey(sp StreamSpec) string {
	return strings.Join([]string{
		"ds=" + sp.Dataset,
		"n=" + strconv.Itoa(sp.N),
		"t=" + strconv.Itoa(sp.T),
		"scale=" + fstr(sp.PopScale),
		"lnsstd=" + fstr(sp.LNSStd),
		"sinb=" + fstr(sp.SinB),
	}, "|")
}

// processKey is the content key of the dataset's underlying stochastic
// process, EXCLUDING population and horizon: the stream seed derives from
// it, so population sweeps (Fig 6a/b, Fig 8a) vary n over the same
// process trajectory and their columns stay comparable, exactly as when a
// human fixes the scenario and grows the crowd.
func processKey(sp StreamSpec) string {
	return strings.Join([]string{
		"ds=" + sp.Dataset,
		"lnsstd=" + fstr(sp.LNSStd),
		"sinb=" + fstr(sp.SinB),
	}, "|")
}

// specContentKey is the canonical content key of a run minus its seeds:
// everything that determines the run's value besides randomness. Sentinel
// zero values are normalized to the defaults they select (Oracle "" is
// GRR, UMin 0 is 1, DisFraction 0 is the paper's 1/2), so a spec spelling
// the default explicitly dedupes against one leaving it zero.
func specContentKey(spec RunSpec) string {
	oracle := spec.Oracle
	if oracle == "" {
		oracle = "GRR"
	}
	umin := spec.UMin
	if umin == 0 {
		umin = 1
	}
	frac := spec.DisFraction
	if frac == 0 {
		frac = 0.5
	}
	return strings.Join([]string{
		streamKey(spec.Stream),
		"m=" + spec.Method,
		"eps=" + fstr(spec.Eps),
		"w=" + strconv.Itoa(spec.W),
		"oracle=" + oracle,
		"audit=" + strconv.FormatBool(spec.Audit),
		"umin=" + strconv.Itoa(umin),
		"frac=" + fstr(frac),
	}, "|")
}

// runKey is the full canonical content key of a run: the module data
// version, every value-determining spec field including the seeds, and the
// repetition count. It is the journal hash preimage, stored alongside the
// hash so journals stay auditable.
func runKey(spec RunSpec, reps int) string {
	if reps < 1 {
		reps = 1
	}
	return strings.Join([]string{
		"v" + strconv.Itoa(runDataVersion),
		specContentKey(spec),
		"seed=" + strconv.FormatUint(spec.Seed, 10),
		"sseed=" + strconv.FormatUint(spec.StreamSeed, 10),
		"reps=" + strconv.Itoa(reps),
	}, "|")
}

// runHash content-addresses a run for the journal.
func runHash(spec RunSpec, reps int) string {
	sum := sha256.Sum256([]byte(runKey(spec, reps)))
	return hex.EncodeToString(sum[:])
}

// contentSeed derives a replayable 64-bit seed from the root seed and a
// canonical content string (never from grid position), so the same logical
// cell appearing in different figures draws identical randomness.
func contentSeed(root uint64, parts ...string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(root >> (8 * i))
	}
	h.Write(b[:])
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	s := h.Sum64()
	if s == 0 {
		s = 1 // 0 is the "unset" sentinel for StreamSeed
	}
	return s
}

// runSpec canonicalizes a cell's spec: it fills the config-level oracle
// and audit flag, then derives the mechanism seed and the stream seed from
// the run's content plus the root seed. Content-derived seeds are what
// make cross-figure deduplication real — the (ε=1, w=20) column of Fig 4
// and Table 2's first combo become the SAME RunSpec — and they give every
// method in a sweep the same stream realization by construction.
func (c *Config) runSpec(spec RunSpec) RunSpec {
	if spec.Oracle == "" {
		spec.Oracle = c.Oracle
	}
	if c.Audit {
		spec.Audit = true
	}
	spec.StreamSeed = contentSeed(c.Seed, "stream", processKey(spec.Stream))
	spec.Seed = contentSeed(c.Seed, "run", specContentKey(spec))
	return spec
}

// Metric selectors. Base metrics are scalar summaries present in every
// journaled record; derived metrics post-process the released streams
// (which are not journaled), so they are computed at execution time and
// journaled only when a cell requests them.
const (
	MetricMRE           = "MRE"
	MetricMAE           = "MAE"
	MetricMSE           = "MSE"
	MetricCFPU          = "CFPU"
	MetricAUC           = "AUC"
	MetricViolations    = "PrivacyViolations"
	MetricMaxWindowLoss = "MaxWindowLoss"
	MetricKalmanMSE     = "KalmanMSE"
	MetricEWMA03MSE     = "EWMA03MSE"
)

// baseMetricNames lists the metrics recorded for every executed run.
var baseMetricNames = []string{
	MetricMRE, MetricMAE, MetricMSE, MetricCFPU, MetricAUC,
	MetricViolations, MetricMaxWindowLoss,
}

// metricFns maps metric selectors to their extraction from an averaged
// outcome.
var metricFns = map[string]func(*Outcome) float64{
	MetricMRE:           func(o *Outcome) float64 { return o.MRE },
	MetricMAE:           func(o *Outcome) float64 { return o.MAE },
	MetricMSE:           func(o *Outcome) float64 { return o.MSE },
	MetricCFPU:          func(o *Outcome) float64 { return o.CFPU },
	MetricAUC:           func(o *Outcome) float64 { return o.AUC },
	MetricViolations:    func(o *Outcome) float64 { return float64(o.PrivacyViolations) },
	MetricMaxWindowLoss: func(o *Outcome) float64 { return o.MaxWindowLoss },
	MetricKalmanMSE:     kalmanMSE,
	MetricEWMA03MSE:     ewma03MSE,
}

// kalmanMSE is the MSE of the run's releases after Kalman filtering with
// the oracle's closed-form per-release measurement variance: LPU-style
// reports carry the full ε from N/w users per timestamp; LBU-style reports
// carry ε/w from all N users (see AblationFilter).
func kalmanMSE(o *Outcome) float64 {
	oracle := fo.NewGRR(2)
	var mv float64
	if o.Spec.Method == "LPU" {
		mv = oracle.VarianceApprox(o.Spec.Eps, o.N/o.Spec.W)
	} else {
		mv = oracle.VarianceApprox(o.Spec.Eps/float64(o.Spec.W), o.N)
	}
	measVar := make([]float64, o.T)
	for i := range measVar {
		measVar[i] = mv
	}
	return metrics.MSE(filter.KalmanStream(o.Released, measVar, 1e-5), o.True)
}

// ewma03MSE is the MSE of the run's releases after EWMA(0.3) smoothing.
func ewma03MSE(o *Outcome) float64 {
	return metrics.MSE(filter.EWMAStream(o.Released, 0.3), o.True)
}

// extractMetrics evaluates the base metric set plus any extra requested
// selectors on an executed outcome.
func extractMetrics(o *Outcome, extra []string) (map[string]float64, error) {
	rec := make(map[string]float64, len(baseMetricNames)+len(extra))
	for _, name := range baseMetricNames {
		rec[name] = metricFns[name](o)
	}
	for _, name := range extra {
		if _, ok := rec[name]; ok {
			continue
		}
		fn, ok := metricFns[name]
		if !ok {
			return nil, fmt.Errorf("experiment: unknown metric selector %q", name)
		}
		rec[name] = fn(o)
	}
	return rec, nil
}

// Plans maps experiment ids to their plan builders. Builders are pure:
// they construct the declarative cell list without executing anything.
func (c *Config) Plans() map[string]func() Plan {
	return map[string]func() Plan{
		"fig4":                c.planFig4,
		"fig5":                c.planFig5,
		"fig6":                c.planFig6,
		"fig7":                c.planFig7,
		"fig8":                c.planFig8,
		"table2":              c.planTable2,
		"ablation-fo":         c.planAblationFO,
		"ablation-olh":        c.planAblationOLH,
		"ablation-umin":       c.planAblationUMin,
		"ablation-split":      c.planAblationSplit,
		"ablation-filter":     c.planAblationFilter,
		"compare-cdp":         c.planCompareCDP,
		"compare-granularity": c.planCompareGranularity,
	}
}

// PlanIDs returns every experiment id in sorted order.
func (c *Config) PlanIDs() []string {
	ids := make([]string, 0, len(c.Plans()))
	for id := range c.Plans() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Experiments maps experiment ids to runners executing the corresponding
// plan on a fresh (journal-less) scheduler. cmd/ldpids-bench builds plans
// itself so it can share one scheduler — and therefore one run cache —
// across experiments.
func (c *Config) Experiments() map[string]func() ([]Table, error) {
	out := make(map[string]func() ([]Table, error))
	for id, build := range c.Plans() {
		build := build
		out[id] = func() ([]Table, error) { return c.runPlan(build()) }
	}
	return out
}

// runPlan executes a single plan on a fresh scheduler without a journal.
func (c *Config) runPlan(p Plan) ([]Table, error) {
	return c.NewScheduler(nil).Run(p)
}
