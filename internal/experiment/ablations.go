package experiment

import "fmt"

// Ablation experiments beyond the paper's figures, probing the design
// choices DESIGN.md calls out.

// AblationFO swaps the frequency oracle under the best adaptive method on
// each dataset family: MRE of LPA with GRR vs OUE vs SUE vs OLH (ε = 1,
// w = 20). GRR should win on d = 2; OUE/OLH should close the gap (or win)
// on the large-domain traces.
func (c *Config) AblationFO() ([]Table, error) {
	oracles := []string{"GRR", "OUE", "SUE", "OLH"}
	datasets := []string{"Sin", "Taxi", "Foursquare"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: frequency oracle under LPA (eps=1, w=20), MRE",
		XLabel:   "oracle",
		ColHeads: datasets,
		RowHeads: oracles,
		Cells:    make([][]float64, len(oracles)),
	}
	for r, oracle := range oracles {
		tbl.Cells[r] = make([]float64, len(datasets))
		for col, ds := range datasets {
			out, err := ExecuteAveraged(RunSpec{
				Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
				Method: "LPA", Eps: 1, W: 20,
				Oracle: oracle, Seed: c.cellSeed(7, r, col),
				StreamSeed: c.cellSeed(107, col), Audit: c.Audit,
			}, c.reps())
			if err != nil {
				return nil, err
			}
			tbl.Cells[r][col] = out.MRE
		}
	}
	return []Table{tbl}, nil
}

// AblationUMin sweeps LPD's publication-user floor u_min: too small wastes
// publications on useless tiny groups, too large suppresses publication.
func (c *Config) AblationUMin() ([]Table, error) {
	uMins := []int{1, 10, 100, 1000}
	cols := []string{"1", "10", "100", "1000"}
	datasets := []string{"LNS", "Sin"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: LPD u_min floor (eps=1, w=20), MRE",
		XLabel:   "dataset",
		ColHeads: cols,
		RowHeads: datasets,
		Cells:    make([][]float64, len(datasets)),
	}
	for r, ds := range datasets {
		tbl.Cells[r] = make([]float64, len(uMins))
		for col, u := range uMins {
			out, err := ExecuteAveraged(RunSpec{
				Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
				Method: "LPD", Eps: 1, W: 20, UMin: u,
				Oracle: c.Oracle, Seed: c.cellSeed(8, r, col),
				StreamSeed: c.cellSeed(108, r), Audit: c.Audit,
			}, c.reps())
			if err != nil {
				return nil, err
			}
			tbl.Cells[r][col] = out.MRE
		}
	}
	return []Table{tbl}, nil
}

// AblationSplit sweeps the M1/M2 resource split of the adaptive methods:
// the paper fixes it at 1/2; this quantifies the sensitivity of that
// choice for LBA and LPA.
func (c *Config) AblationSplit() ([]Table, error) {
	fracs := []float64{0.25, 0.5, 0.75}
	cols := []string{"0.25", "0.50", "0.75"}
	methods := []string{"LBA", "LPA", "LBD", "LPD"}
	var tables []Table
	for _, ds := range []string{"LNS"} {
		tbl := Table{
			Title:    fmt.Sprintf("Ablation: M1 resource fraction on %s (eps=1, w=20), MRE", ds),
			XLabel:   "M1 frac",
			ColHeads: cols,
			RowHeads: methods,
			Cells:    make([][]float64, len(methods)),
		}
		for r, method := range methods {
			tbl.Cells[r] = make([]float64, len(fracs))
			for col, f := range fracs {
				out, err := ExecuteAveraged(RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: method, Eps: 1, W: 20, DisFraction: f,
					Oracle: c.Oracle, Seed: c.cellSeed(9, r, col),
					StreamSeed: c.cellSeed(109, 0), Audit: c.Audit,
				}, c.reps())
				if err != nil {
					return nil, err
				}
				tbl.Cells[r][col] = out.MRE
			}
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
