package experiment

import (
	"fmt"
	"time"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// Ablation experiments beyond the paper's figures, probing the design
// choices DESIGN.md calls out.

// planAblationFO declares the frequency-oracle swap under the best
// adaptive method on each dataset family: MRE of LPA with every registered
// oracle (ε = 1, w = 20) — GRR vs OUE vs SUE vs OLH vs cohort-hashed
// OLH-C, plus the bit-packed unary wire formats, which must match their
// unpacked counterparts' accuracy while shrinking reports ~8x. GRR should
// win on d = 2; OUE/OLH/OLH-C should close the gap (or win) on the
// large-domain traces. The row set is derived from fo.Names, so a newly
// registered oracle joins the grid automatically.
func (c *Config) planAblationFO() Plan {
	oracles := fo.Names()
	datasets := []string{"Sin", "Taxi", "Foursquare"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	p := Plan{ID: "ablation-fo"}
	ti := p.addTable(Table{
		Title:    "Ablation: frequency oracle under LPA (eps=1, w=20), MRE",
		XLabel:   "oracle",
		ColHeads: datasets,
		RowHeads: oracles,
	})
	for r, oracle := range oracles {
		for col, ds := range datasets {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: MetricMRE,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: "LPA", Eps: 1, W: 20, Oracle: oracle,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// AblationFO runs the oracle-swap ablation (compatibility wrapper).
func (c *Config) AblationFO() ([]Table, error) { return c.runPlan(c.planAblationFO()) }

// planAblationUMin declares the sweep of LPD's publication-user floor
// u_min: too small wastes publications on useless tiny groups, too large
// suppresses publication.
func (c *Config) planAblationUMin() Plan {
	uMins := []int{1, 10, 100, 1000}
	cols := []string{"1", "10", "100", "1000"}
	datasets := []string{"LNS", "Sin"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	p := Plan{ID: "ablation-umin"}
	ti := p.addTable(Table{
		Title:    "Ablation: LPD u_min floor (eps=1, w=20), MRE",
		XLabel:   "dataset",
		ColHeads: cols,
		RowHeads: datasets,
	})
	for r, ds := range datasets {
		for col, uMin := range uMins {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: MetricMRE,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: "LPD", Eps: 1, W: 20, UMin: uMin,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// AblationUMin runs the u_min ablation (compatibility wrapper).
func (c *Config) AblationUMin() ([]Table, error) { return c.runPlan(c.planAblationUMin()) }

// planAblationSplit declares the sweep of the M1/M2 resource split of the
// adaptive methods: the paper fixes it at 1/2; this quantifies the
// sensitivity of that choice. The 0.50 column normalizes to the same
// content key as the default split, so it shares runs with the paper
// figures.
func (c *Config) planAblationSplit() Plan {
	fracs := []float64{0.25, 0.5, 0.75}
	cols := []string{"0.25", "0.50", "0.75"}
	methods := []string{"LBA", "LPA", "LBD", "LPD"}
	p := Plan{ID: "ablation-split"}
	ti := p.addTable(Table{
		Title:    "Ablation: M1 resource fraction on LNS (eps=1, w=20), MRE",
		XLabel:   "M1 frac",
		ColHeads: cols,
		RowHeads: methods,
	})
	for r, method := range methods {
		for col, frac := range fracs {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: MetricMRE,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: "LNS", PopScale: c.popScale()},
					Method: method, Eps: 1, W: 20, DisFraction: frac,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// AblationSplit runs the resource-split ablation (compatibility wrapper).
func (c *Config) AblationSplit() ([]Table, error) { return c.runPlan(c.planAblationSplit()) }

// planAblationOLH wraps the OLH fold-cost grid as a Direct plan: its cells
// are wall-clock measurements, not seeded runs, so they are executed
// imperatively and never journaled (a resumed run re-times them).
func (c *Config) planAblationOLH() Plan {
	return Plan{ID: "ablation-olh", Direct: c.AblationOLHFold}
}

// AblationOLHFold measures the server-side cost split of OLH against
// cohort-hashed OLH-C across domain sizes: per-report fold cost (Add),
// the fold speedup, and the once-per-round Estimate cost. OLH folds in
// O(d) per report — it rehashes the whole domain against the report's
// private seed — so its fold cost grows linearly with d; OLH-C folds into
// a k×g cohort matrix in O(1) and pays a single O(k·d) reconstruction at
// Estimate. At the large domains where local hashing matters, the fold
// speedup is orders of magnitude (the acceptance bar is 10x at d = 65536).
//
// Timings are measurements, not deterministic outputs; the report count
// scales with -scale so tiny test configs stay fast.
func (c *Config) AblationOLHFold() ([]Table, error) {
	domains := []int{256, 4096, 65536}
	cols := []string{"256", "4096", "65536"}
	const eps = 1.0
	reports := int(10000 * c.popScale())
	if reports < 50 {
		reports = 50
	}

	fold := Table{
		Title:    fmt.Sprintf("Ablation: OLH vs OLH-C server fold, ns/report (eps=%g, %d reports)", eps, reports),
		XLabel:   "oracle",
		ColHeads: cols,
		RowHeads: []string{"OLH", "OLH-C", "fold speedup (x)"},
		Cells:    [][]float64{make([]float64, len(cols)), make([]float64, len(cols)), make([]float64, len(cols))},
	}
	estimate := Table{
		Title:    "Ablation: OLH vs OLH-C per-round Estimate, ms",
		XLabel:   "oracle",
		ColHeads: cols,
		RowHeads: []string{"OLH", "OLH-C"},
		Cells:    [][]float64{make([]float64, len(cols)), make([]float64, len(cols))},
	}

	for col, d := range domains {
		for row, name := range []string{"OLH", "OLH-C"} {
			oracle, err := fo.New(name, d)
			if err != nil {
				return nil, err
			}
			src := ldprand.New(c.Seed + uint64(1000*row+col))
			perturbed := make([]fo.Report, reports)
			for i := range perturbed {
				perturbed[i] = oracle.Perturb(i%d, eps, src)
			}
			agg, err := oracle.NewAggregator(eps)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, r := range perturbed {
				if err := agg.Add(r); err != nil {
					return nil, err
				}
			}
			fold.Cells[row][col] = float64(time.Since(start).Nanoseconds()) / float64(reports)
			start = time.Now()
			if _, err := agg.Estimate(); err != nil {
				return nil, err
			}
			estimate.Cells[row][col] = float64(time.Since(start).Nanoseconds()) / 1e6
		}
		if olhc := fold.Cells[1][col]; olhc > 0 {
			fold.Cells[2][col] = fold.Cells[0][col] / olhc
		}
	}
	return []Table{fold, estimate}, nil
}
