package experiment

import "fmt"

// Ablation experiments beyond the paper's figures, probing the design
// choices DESIGN.md calls out.

// AblationFO swaps the frequency oracle under the best adaptive method on
// each dataset family: MRE of LPA with GRR vs OUE vs SUE vs OLH (ε = 1,
// w = 20), plus the bit-packed unary wire formats, which must match their
// unpacked counterparts' accuracy while shrinking reports ~8x. GRR should
// win on d = 2; OUE/OLH should close the gap (or win) on the large-domain
// traces.
func (c *Config) AblationFO() ([]Table, error) {
	oracles := []string{"GRR", "OUE", "SUE", "OLH", "OUE-packed", "SUE-packed"}
	datasets := []string{"Sin", "Taxi", "Foursquare"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: frequency oracle under LPA (eps=1, w=20), MRE",
		XLabel:   "oracle",
		ColHeads: datasets,
		RowHeads: oracles,
	}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: datasets[col], PopScale: c.popScale()},
			Method: "LPA", Eps: 1, W: 20,
			Oracle: oracles[r], Seed: c.cellSeed(7, r, col),
			StreamSeed: c.cellSeed(107, col), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return 0, err
		}
		return out.MRE, nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// AblationUMin sweeps LPD's publication-user floor u_min: too small wastes
// publications on useless tiny groups, too large suppresses publication.
func (c *Config) AblationUMin() ([]Table, error) {
	uMins := []int{1, 10, 100, 1000}
	cols := []string{"1", "10", "100", "1000"}
	datasets := []string{"LNS", "Sin"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: LPD u_min floor (eps=1, w=20), MRE",
		XLabel:   "dataset",
		ColHeads: cols,
		RowHeads: datasets,
	}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: datasets[r], PopScale: c.popScale()},
			Method: "LPD", Eps: 1, W: 20, UMin: uMins[col],
			Oracle: c.Oracle, Seed: c.cellSeed(8, r, col),
			StreamSeed: c.cellSeed(108, r), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return 0, err
		}
		return out.MRE, nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// AblationSplit sweeps the M1/M2 resource split of the adaptive methods:
// the paper fixes it at 1/2; this quantifies the sensitivity of that
// choice for LBA and LPA.
func (c *Config) AblationSplit() ([]Table, error) {
	fracs := []float64{0.25, 0.5, 0.75}
	cols := []string{"0.25", "0.50", "0.75"}
	methods := []string{"LBA", "LPA", "LBD", "LPD"}
	var tables []Table
	for _, ds := range []string{"LNS"} {
		ds := ds
		tbl := Table{
			Title:    fmt.Sprintf("Ablation: M1 resource fraction on %s (eps=1, w=20), MRE", ds),
			XLabel:   "M1 frac",
			ColHeads: cols,
			RowHeads: methods,
		}
		err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
			out, err := ExecuteAveragedWorkers(RunSpec{
				Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
				Method: methods[r], Eps: 1, W: 20, DisFraction: fracs[col],
				Oracle: c.Oracle, Seed: c.cellSeed(9, r, col),
				StreamSeed: c.cellSeed(109, 0), Audit: c.Audit,
			}, c.reps(), 1)
			if err != nil {
				return 0, err
			}
			return out.MRE, nil
		})
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}
