package experiment

import (
	"fmt"
	"time"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// Ablation experiments beyond the paper's figures, probing the design
// choices DESIGN.md calls out.

// AblationFO swaps the frequency oracle under the best adaptive method on
// each dataset family: MRE of LPA with every registered oracle (ε = 1,
// w = 20) — GRR vs OUE vs SUE vs OLH vs cohort-hashed OLH-C, plus the
// bit-packed unary wire formats, which must match their unpacked
// counterparts' accuracy while shrinking reports ~8x. GRR should win on
// d = 2; OUE/OLH/OLH-C should close the gap (or win) on the large-domain
// traces. The row set is derived from fo.Names, so a newly registered
// oracle joins the grid automatically.
func (c *Config) AblationFO() ([]Table, error) {
	oracles := fo.Names()
	datasets := []string{"Sin", "Taxi", "Foursquare"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: frequency oracle under LPA (eps=1, w=20), MRE",
		XLabel:   "oracle",
		ColHeads: datasets,
		RowHeads: oracles,
	}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: datasets[col], PopScale: c.popScale()},
			Method: "LPA", Eps: 1, W: 20,
			Oracle: oracles[r], Seed: c.cellSeed(7, r, col),
			StreamSeed: c.cellSeed(107, col), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return 0, err
		}
		return out.MRE, nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// AblationUMin sweeps LPD's publication-user floor u_min: too small wastes
// publications on useless tiny groups, too large suppresses publication.
func (c *Config) AblationUMin() ([]Table, error) {
	uMins := []int{1, 10, 100, 1000}
	cols := []string{"1", "10", "100", "1000"}
	datasets := []string{"LNS", "Sin"}
	if len(c.Datasets) > 0 {
		datasets = c.Datasets
	}
	tbl := Table{
		Title:    "Ablation: LPD u_min floor (eps=1, w=20), MRE",
		XLabel:   "dataset",
		ColHeads: cols,
		RowHeads: datasets,
	}
	err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: datasets[r], PopScale: c.popScale()},
			Method: "LPD", Eps: 1, W: 20, UMin: uMins[col],
			Oracle: c.Oracle, Seed: c.cellSeed(8, r, col),
			StreamSeed: c.cellSeed(108, r), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return 0, err
		}
		return out.MRE, nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// AblationSplit sweeps the M1/M2 resource split of the adaptive methods:
// the paper fixes it at 1/2; this quantifies the sensitivity of that
// choice for LBA and LPA.
func (c *Config) AblationSplit() ([]Table, error) {
	fracs := []float64{0.25, 0.5, 0.75}
	cols := []string{"0.25", "0.50", "0.75"}
	methods := []string{"LBA", "LPA", "LBD", "LPD"}
	var tables []Table
	for _, ds := range []string{"LNS"} {
		ds := ds
		tbl := Table{
			Title:    fmt.Sprintf("Ablation: M1 resource fraction on %s (eps=1, w=20), MRE", ds),
			XLabel:   "M1 frac",
			ColHeads: cols,
			RowHeads: methods,
		}
		err := fillCells(&tbl, c.workers(), func(r, col int) (float64, error) {
			out, err := ExecuteAveragedWorkers(RunSpec{
				Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
				Method: methods[r], Eps: 1, W: 20, DisFraction: fracs[col],
				Oracle: c.Oracle, Seed: c.cellSeed(9, r, col),
				StreamSeed: c.cellSeed(109, 0), Audit: c.Audit,
			}, c.reps(), 1)
			if err != nil {
				return 0, err
			}
			return out.MRE, nil
		})
		if err != nil {
			return nil, err
		}
		tables = append(tables, tbl)
	}
	return tables, nil
}

// AblationOLHFold measures the server-side cost split of OLH against
// cohort-hashed OLH-C across domain sizes: per-report fold cost (Add),
// the fold speedup, and the once-per-round Estimate cost. OLH folds in
// O(d) per report — it rehashes the whole domain against the report's
// private seed — so its fold cost grows linearly with d; OLH-C folds into
// a k×g cohort matrix in O(1) and pays a single O(k·d) reconstruction at
// Estimate. At the large domains where local hashing matters, the fold
// speedup is orders of magnitude (the acceptance bar is 10x at d = 65536).
//
// Timings are measurements, not deterministic outputs; the report count
// scales with -scale so tiny test configs stay fast.
func (c *Config) AblationOLHFold() ([]Table, error) {
	domains := []int{256, 4096, 65536}
	cols := []string{"256", "4096", "65536"}
	const eps = 1.0
	reports := int(10000 * c.popScale())
	if reports < 50 {
		reports = 50
	}

	fold := Table{
		Title:    fmt.Sprintf("Ablation: OLH vs OLH-C server fold, ns/report (eps=%g, %d reports)", eps, reports),
		XLabel:   "oracle",
		ColHeads: cols,
		RowHeads: []string{"OLH", "OLH-C", "fold speedup (x)"},
		Cells:    [][]float64{make([]float64, len(cols)), make([]float64, len(cols)), make([]float64, len(cols))},
	}
	estimate := Table{
		Title:    "Ablation: OLH vs OLH-C per-round Estimate, ms",
		XLabel:   "oracle",
		ColHeads: cols,
		RowHeads: []string{"OLH", "OLH-C"},
		Cells:    [][]float64{make([]float64, len(cols)), make([]float64, len(cols))},
	}

	for col, d := range domains {
		for row, name := range []string{"OLH", "OLH-C"} {
			oracle, err := fo.New(name, d)
			if err != nil {
				return nil, err
			}
			src := ldprand.New(c.Seed + uint64(1000*row+col))
			perturbed := make([]fo.Report, reports)
			for i := range perturbed {
				perturbed[i] = oracle.Perturb(i%d, eps, src)
			}
			agg, err := oracle.NewAggregator(eps)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			for _, r := range perturbed {
				if err := agg.Add(r); err != nil {
					return nil, err
				}
			}
			fold.Cells[row][col] = float64(time.Since(start).Nanoseconds()) / float64(reports)
			start = time.Now()
			if _, err := agg.Estimate(); err != nil {
				return nil, err
			}
			estimate.Cells[row][col] = float64(time.Since(start).Nanoseconds()) / 1e6
		}
		if olhc := fold.Cells[1][col]; olhc > 0 {
			fold.Cells[2][col] = fold.Cells[0][col] / olhc
		}
	}
	return []Table{fold, estimate}, nil
}
