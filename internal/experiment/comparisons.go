package experiment

// planCompareCDP declares the trust-gap comparison: the centralized
// w-event DP baselines (Laplace noise on the true histogram; Kellaris
// BD/BA) against their LDP counterparts at the same (ε, w), by MAE on the
// Sin stream. CDP errors should be orders of magnitude below LDP ones —
// the price of removing the trusted aggregator. The CDP baselines are
// ordinary cells: Execute recognizes the CDP-* method names and runs them
// over the true histograms in the centralized trust model, so they
// journal, dedupe, and resume like every other cell.
func (c *Config) planCompareCDP() Plan {
	epsVals := []float64{0.5, 1, 2}
	cols := []string{"0.5", "1.0", "2.0"}
	rows := []string{"CDP-Uniform", "CDP-BD", "CDP-BA", "LBU", "LBA", "LPU", "LPA"}
	w := 20

	p := Plan{ID: "compare-cdp"}
	ti := p.addTable(Table{
		Title:    "Comparison: CDP vs LDP at the same (eps, w=20), MAE on Sin",
		XLabel:   "method",
		ColHeads: cols,
		RowHeads: rows,
	})
	for r, method := range rows {
		for col, eps := range epsVals {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: MetricMAE,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: "Sin", PopScale: c.popScale()},
					Method: method, Eps: eps, W: w,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// CompareCDP runs the CDP-vs-LDP comparison (compatibility wrapper).
func (c *Config) CompareCDP() ([]Table, error) { return c.runPlan(c.planCompareCDP()) }

// planAblationFilter declares the server-side post-processing ablation
// (free under DP): raw LPU releases vs Kalman-filtered (using the oracle's
// closed-form release variance) vs EWMA-smoothed, by MSE. The raw and
// filtered rows select different metrics from the SAME run, so each
// (dataset, method) pair executes once and the filter variants ride along
// as derived metrics.
func (c *Config) planAblationFilter() Plan {
	cols := []string{"LNS", "Sin"}
	rows := []struct {
		head   string
		method string
		metric string
	}{
		{"LPU raw", "LPU", MetricMSE},
		{"LPU+Kalman", "LPU", MetricKalmanMSE},
		{"LPU+EWMA(0.3)", "LPU", MetricEWMA03MSE},
		{"LBU raw", "LBU", MetricMSE},
		{"LBU+Kalman", "LBU", MetricKalmanMSE},
	}
	heads := make([]string, len(rows))
	for i, r := range rows {
		heads[i] = r.head
	}
	p := Plan{ID: "ablation-filter"}
	ti := p.addTable(Table{
		Title:    "Ablation: server-side filtering of releases (eps=1, w=20), MSE",
		XLabel:   "pipeline",
		ColHeads: cols,
		RowHeads: heads,
	})
	for r, row := range rows {
		for col, ds := range cols {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: row.metric,
				Spec: c.runSpec(RunSpec{
					Stream: StreamSpec{Dataset: ds, PopScale: c.popScale()},
					Method: row.method, Eps: 1, W: 20,
				}),
				Reps: c.reps(),
			})
		}
	}
	return p
}

// AblationFilter runs the filtering ablation (compatibility wrapper).
func (c *Config) AblationFilter() ([]Table, error) { return c.runPlan(c.planAblationFilter()) }
