package experiment

import (
	"ldpids/internal/cdp"
	"ldpids/internal/filter"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/metrics"
	"ldpids/internal/stream"
)

// CompareCDP quantifies the trust gap: the centralized w-event DP baselines
// (Laplace noise on the true histogram; Kellaris BD/BA) against their LDP
// counterparts at the same (ε, w), by MAE on the Sin stream. CDP errors
// should be orders of magnitude below LDP ones — the price of removing the
// trusted aggregator.
func (c *Config) CompareCDP() ([]Table, error) {
	epsVals := []float64{0.5, 1, 2}
	cols := []string{"0.5", "1.0", "2.0"}
	rows := []string{"CDP-Uniform", "CDP-BD", "CDP-BA", "LBU", "LBA", "LPU", "LPA"}
	w := 20

	tbl := Table{
		Title:    "Comparison: CDP vs LDP at the same (eps, w=20), MAE on Sin",
		XLabel:   "method",
		ColHeads: cols,
		RowHeads: rows,
		Cells:    make([][]float64, len(rows)),
	}
	for r := range rows {
		tbl.Cells[r] = make([]float64, len(cols))
	}

	// Columns are self-contained (own stream realization, own mechanism
	// seeds) and write disjoint cells, so they fan out across the pool.
	err := parallelFor(len(epsVals), c.workers(), func(col int) error {
		eps := epsVals[col]
		// Shared truth stream for the CDP mechanisms.
		streamSeed := c.cellSeed(110, col)
		sp := StreamSpec{Dataset: "Sin", PopScale: c.popScale()}
		src := ldprand.New(streamSeed)
		s, T, d, err := sp.Build(src.Split())
		if err != nil {
			return err
		}
		truth := stream.Histograms(stream.Materialize(s, T), d)
		n := s.N()

		mkParams := func(seed uint64) cdp.Params {
			return cdp.Params{Eps: eps, W: w, N: n, Src: ldprand.New(seed)}
		}
		cdpMechs := map[string]cdp.Mechanism{
			"CDP-Uniform": cdp.NewUniform(mkParams(c.cellSeed(111, col, 0))),
			"CDP-BD":      cdp.NewBD(mkParams(c.cellSeed(111, col, 1))),
			"CDP-BA":      cdp.NewBA(mkParams(c.cellSeed(111, col, 2))),
		}
		for r, name := range rows {
			if m, ok := cdpMechs[name]; ok {
				tbl.Cells[r][col] = metrics.MAE(cdp.Run(m, truth), truth)
				continue
			}
			out, err := ExecuteAveragedWorkers(RunSpec{
				Stream: sp, Method: name, Eps: eps, W: w,
				Oracle: c.Oracle, Seed: c.cellSeed(111, col, 10+r),
				StreamSeed: streamSeed, Audit: c.Audit,
			}, c.reps(), 1)
			if err != nil {
				return err
			}
			tbl.Cells[r][col] = out.MAE
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}

// AblationFilter measures the benefit of server-side post-processing
// (free under DP): raw LPU releases vs Kalman-filtered (using the oracle's
// closed-form release variance) vs EWMA-smoothed, by MSE on LNS.
func (c *Config) AblationFilter() ([]Table, error) {
	w := 20
	eps := 1.0
	rows := []string{"LPU raw", "LPU+Kalman", "LPU+EWMA(0.3)", "LBU raw", "LBU+Kalman"}
	cols := []string{"LNS", "Sin"}
	tbl := Table{
		Title:    "Ablation: server-side filtering of releases (eps=1, w=20), MSE",
		XLabel:   "pipeline",
		ColHeads: cols,
		RowHeads: rows,
		Cells:    make([][]float64, len(rows)),
	}
	for r := range rows {
		tbl.Cells[r] = make([]float64, len(cols))
	}
	// One work item per (dataset, base method) combination; each writes a
	// disjoint set of rows in its own column.
	bases := []struct {
		base   int // row of the raw variant; filtered variants follow
		method string
	}{{0, "LPU"}, {3, "LBU"}}
	type workItem struct {
		col    int
		base   int
		method string
	}
	var combos []workItem
	for col := range cols {
		for _, b := range bases {
			combos = append(combos, workItem{col, b.base, b.method})
		}
	}
	err := parallelFor(len(combos), c.workers(), func(i int) error {
		col, base, method := combos[i].col, combos[i].base, combos[i].method
		out, err := ExecuteAveragedWorkers(RunSpec{
			Stream: StreamSpec{Dataset: cols[col], PopScale: c.popScale()},
			Method: method, Eps: eps, W: w,
			Oracle: c.Oracle, Seed: c.cellSeed(112, col, base),
			StreamSeed: c.cellSeed(113, col), Audit: c.Audit,
		}, c.reps(), 1)
		if err != nil {
			return err
		}
		tbl.Cells[base][col] = metrics.MSE(out.Released, out.True)

		// Per-release measurement variance: LPU reports with full
		// eps from N/w users; LBU with eps/w from all N users.
		oracle := fo.NewGRR(2)
		var mv float64
		if method == "LPU" {
			mv = oracle.VarianceApprox(eps, out.N/w)
		} else {
			mv = oracle.VarianceApprox(eps/float64(w), out.N)
		}
		measVar := make([]float64, out.T)
		for i := range measVar {
			measVar[i] = mv
		}
		filtered := filter.KalmanStream(out.Released, measVar, 1e-5)
		tbl.Cells[base+1][col] = metrics.MSE(filtered, out.True)

		if method == "LPU" {
			smoothed := filter.EWMAStream(out.Released, 0.3)
			tbl.Cells[base+2][col] = metrics.MSE(smoothed, out.True)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return []Table{tbl}, nil
}
