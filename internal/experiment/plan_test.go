package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldpids/internal/runlog"
)

// planConfig is tinyConfig narrowed further for plan/scheduler tests.
func planConfig() *Config {
	c := tinyConfig()
	c.Datasets = []string{"Sin"}
	c.Methods = []string{"LBU", "LPA"}
	return c
}

// TestContentDerivedSeeds pins the property the whole dedup story rests
// on: a run's seeds are a function of its content, not of which grid it
// appears in, and the stream seed is shared by every method sweeping the
// same process.
func TestContentDerivedSeeds(t *testing.T) {
	c := planConfig()
	a := c.runSpec(RunSpec{Stream: StreamSpec{Dataset: "Sin", PopScale: 0.01}, Method: "LPA", Eps: 1, W: 20})
	b := c.runSpec(RunSpec{Stream: StreamSpec{Dataset: "Sin", PopScale: 0.01}, Method: "LPA", Eps: 1, W: 20})
	if a != b {
		t.Fatalf("identical content produced different specs:\n%+v\n%+v", a, b)
	}
	other := c.runSpec(RunSpec{Stream: StreamSpec{Dataset: "Sin", PopScale: 0.01}, Method: "LBU", Eps: 1, W: 20})
	if other.Seed == a.Seed {
		t.Fatal("different methods share a mechanism seed")
	}
	if other.StreamSeed != a.StreamSeed {
		t.Fatal("methods sweeping the same process got different stream realizations")
	}
	// Population sweeps keep the process trajectory: N must not move the
	// stream seed, but must move the run hash.
	grown := c.runSpec(RunSpec{Stream: StreamSpec{Dataset: "Sin", N: 4000}, Method: "LPA", Eps: 1, W: 20})
	if grown.StreamSeed != a.StreamSeed {
		t.Fatal("population override changed the process trajectory")
	}
	if runHash(grown, 1) == runHash(a, 1) {
		t.Fatal("population override did not change the run hash")
	}
	// A different root seed moves everything.
	c2 := planConfig()
	c2.Seed = c.Seed + 1
	if c2.runSpec(RunSpec{Stream: StreamSpec{Dataset: "Sin", PopScale: 0.01}, Method: "LPA", Eps: 1, W: 20}).Seed == a.Seed {
		t.Fatal("root seed does not reach derived seeds")
	}
}

// TestSpecKeyNormalizesDefaults pins that spelling a default explicitly
// (DisFraction 0.5, UMin 1, Oracle GRR) yields the same content key as
// leaving the zero sentinel, so ablation columns at the default dedupe
// against the paper figures.
func TestSpecKeyNormalizesDefaults(t *testing.T) {
	base := RunSpec{Stream: StreamSpec{Dataset: "LNS", PopScale: 0.01}, Method: "LPA", Eps: 1, W: 20}
	explicit := base
	explicit.DisFraction = 0.5
	explicit.UMin = 1
	explicit.Oracle = "GRR"
	if specContentKey(base) != specContentKey(explicit) {
		t.Fatalf("default-spelling changed the content key:\n%s\n%s",
			specContentKey(base), specContentKey(explicit))
	}
	changed := base
	changed.DisFraction = 0.25
	if specContentKey(base) == specContentKey(changed) {
		t.Fatal("non-default DisFraction did not change the content key")
	}
}

// TestCrossFigureDedup demonstrates the ISSUE's acceptance example: the
// (ε, w=20) cells shared between Fig 4 and Table 2's combos execute once
// per scheduler — Table 2 reads its CFPU out of the very runs Fig 4
// already executed for MRE.
func TestCrossFigureDedup(t *testing.T) {
	c := planConfig()
	c.Methods = []string{"LPA"}
	sched := c.NewScheduler(nil)
	if _, err := sched.Run(c.planFig4()); err != nil {
		t.Fatal(err)
	}
	afterFig4 := sched.Stats()
	if afterFig4.CacheHits != 0 {
		t.Fatalf("fresh fig4 reported %d cache hits", afterFig4.CacheHits)
	}
	if _, err := sched.Run(c.planTable2()); err != nil {
		t.Fatal(err)
	}
	stats := sched.Stats()
	// Table 2's (1,20) and (2,20) combos are fig4's eps=1.0 and eps=2.0
	// cells on this dataset; only (2,40) needs a new run.
	if hits := stats.CacheHits - afterFig4.CacheHits; hits != 2 {
		t.Fatalf("table2 after fig4: %d cache hits, want 2", hits)
	}
}

// TestSharedRunAcrossMetrics pins intra-plan dedup: the filter ablation's
// raw and filtered rows select different metrics from the same runs, so
// the plan executes one run per (dataset, method), not one per row.
func TestSharedRunAcrossMetrics(t *testing.T) {
	c := tinyConfig()
	p := c.planAblationFilter()
	if len(p.Cells) != 10 {
		t.Fatalf("filter plan has %d cells, want 10", len(p.Cells))
	}
	if _, runs := planSize(p); runs != 4 {
		t.Fatalf("filter plan has %d distinct runs, want 4 (2 datasets x 2 methods)", runs)
	}
}

// interruptJournal copies the first keep lines of src into a new journal
// file, simulating a run that was killed mid-grid — including a torn
// partial line at the tail, as a crash during an append would leave.
func interruptJournal(t *testing.T, src string, keep int) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) <= keep {
		t.Fatalf("journal too small to truncate: %d lines", len(lines))
	}
	partial := strings.Join(lines[:keep], "") + `{"hash":"torn-by-cra`
	path := filepath.Join(t.TempDir(), "runlog.jsonl")
	if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestJournalResumeBitIdentical is the tentpole acceptance test: a grid
// interrupted mid-run and resumed from its journal must skip exactly the
// journaled cells and produce tables bit-identical to an uninterrupted
// run.
func TestJournalResumeBitIdentical(t *testing.T) {
	c := planConfig()
	plan := c.planFig4()

	// The uninterrupted reference, no journal involved.
	clean, err := c.runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}

	// A complete journaled run...
	fullPath := filepath.Join(t.TempDir(), "runlog.jsonl")
	full, err := runlog.Open(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewScheduler(full).Run(plan); err != nil {
		t.Fatal(err)
	}
	totalRuns := full.Len()
	full.Close()

	// ...interrupted after 3 cells landed (plus a torn tail line).
	const kept = 3
	resumedJournal, err := runlog.Open(interruptJournal(t, fullPath, kept))
	if err != nil {
		t.Fatal(err)
	}
	defer resumedJournal.Close()
	if resumedJournal.Len() != kept {
		t.Fatalf("interrupted journal has %d records, want %d", resumedJournal.Len(), kept)
	}

	sched := c.NewScheduler(resumedJournal)
	resumed, err := sched.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if hits := sched.Stats().CacheHits; hits != kept {
		t.Fatalf("resume skipped %d cells, want %d", hits, kept)
	}
	if resumedJournal.Len() != totalRuns {
		t.Fatalf("resumed journal holds %d runs, want %d", resumedJournal.Len(), totalRuns)
	}

	if len(resumed) != len(clean) {
		t.Fatalf("table count %d vs %d", len(resumed), len(clean))
	}
	for ti := range clean {
		for r := range clean[ti].Cells {
			for col := range clean[ti].Cells[r] {
				if clean[ti].Cells[r][col] != resumed[ti].Cells[r][col] {
					t.Fatalf("cell [%d][%d][%d]: clean %v != resumed %v",
						ti, r, col, clean[ti].Cells[r][col], resumed[ti].Cells[r][col])
				}
			}
		}
	}
}

// TestWriteFromCachedMatchesFresh is the export guarantee: experiment.Write
// needs no journal awareness, because tables rebuilt entirely from cached
// cells render byte-identically (CSV and JSON) to freshly computed ones.
func TestWriteFromCachedMatchesFresh(t *testing.T) {
	c := planConfig()
	plan := c.planFig5()

	path := filepath.Join(t.TempDir(), "runlog.jsonl")
	j, err := runlog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	fresh, err := c.NewScheduler(j).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	sched := c.NewScheduler(j)
	cached, err := sched.Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if hits, total := sched.Stats().CacheHits, len(plan.Cells); hits != total {
		t.Fatalf("second run hit cache on %d/%d cells", hits, total)
	}

	for _, format := range []string{"csv", "json"} {
		var a, b bytes.Buffer
		if err := Write(&a, fresh, format); err != nil {
			t.Fatal(err)
		}
		if err := Write(&b, cached, format); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s export from cached cells differs from fresh:\n%s\nvs\n%s", format, b.String(), a.String())
		}
	}
}

// TestMemoMergePreservesDerivedMetrics pins the run cache's merge
// semantics: when a run must re-execute because a NEW derived metric is
// requested, the previously journaled metrics for that run survive in
// memory, so a later plan asking for one of them hits the cache instead
// of executing the run a third time.
func TestMemoMergePreservesDerivedMetrics(t *testing.T) {
	c := planConfig()
	spec := c.runSpec(RunSpec{
		Stream: StreamSpec{Dataset: "Sin", PopScale: 0.01},
		Method: "LPU", Eps: 1, W: 20,
	})
	mkPlan := func(id, metric string) Plan {
		p := Plan{ID: id}
		ti := p.addTable(Table{Title: id, XLabel: "x", ColHeads: []string{"v"}, RowHeads: []string{"LPU"}})
		p.Cells = append(p.Cells, Cell{Table: ti, Metric: metric, Spec: spec, Reps: 1})
		return p
	}

	j, err := runlog.Open(filepath.Join(t.TempDir(), "runlog.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	// Session 1 journals the run with KalmanMSE.
	if _, err := c.NewScheduler(j).Run(mkPlan("kalman-1", MetricKalmanMSE)); err != nil {
		t.Fatal(err)
	}
	// Session 2: EWMA is absent, so the run re-executes once — but the
	// journaled KalmanMSE must still be served from cache afterwards.
	sched := c.NewScheduler(j)
	if _, err := sched.Run(mkPlan("ewma", MetricEWMA03MSE)); err != nil {
		t.Fatal(err)
	}
	if hits := sched.Stats().CacheHits; hits != 0 {
		t.Fatalf("new derived metric served from cache (%d hits)", hits)
	}
	if _, err := sched.Run(mkPlan("kalman-2", MetricKalmanMSE)); err != nil {
		t.Fatal(err)
	}
	if hits := sched.Stats().CacheHits; hits != 1 {
		t.Fatalf("journaled metric lost by re-execution merge: %d hits, want 1", hits)
	}
}

// TestProgressCallbacksSerialized pins the OnProgress contract: callbacks
// arrive one at a time with monotonically growing counters, even when
// worker goroutines finish simultaneously (the unsynchronized mutation
// below would trip -race otherwise).
func TestProgressCallbacksSerialized(t *testing.T) {
	c := planConfig()
	c.Workers = 4
	sched := c.NewScheduler(nil)
	var lastDone, calls int // deliberately unsynchronized
	sched.OnProgress = func(p Progress) {
		calls++
		if p.Done < lastDone {
			t.Errorf("progress went backwards: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
	}
	if _, err := sched.Run(c.planFig4()); err != nil {
		t.Fatal(err)
	}
	if calls == 0 || lastDone != len(c.planFig4().Cells) {
		t.Fatalf("progress incomplete: %d calls, last done %d", calls, lastDone)
	}
}

// TestSchedulerFailOnViolation pins that the audit gate fires through the
// scheduler — including for cells served from the journal, which must not
// launder a violation into a silent success.
func TestSchedulerFailOnViolation(t *testing.T) {
	c := planConfig()
	spec := c.runSpec(RunSpec{
		Stream: StreamSpec{Dataset: "Sin", N: 300, T: 15},
		Method: "EventLevel", Eps: 1, W: 5, Audit: true, Oracle: "GRR",
	})
	plan := Plan{ID: "violation-probe"}
	ti := plan.addTable(Table{Title: "probe", XLabel: "x", ColHeads: []string{"v"}, RowHeads: []string{"EventLevel"}})
	plan.Cells = append(plan.Cells, Cell{
		Table: ti, Metric: MetricMRE, Spec: spec, Reps: 1, FailOnViolation: true,
	})

	j, err := runlog.Open(filepath.Join(t.TempDir(), "runlog.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := c.NewScheduler(j).Run(plan); err == nil || !strings.Contains(err.Error(), "violated") {
		t.Fatalf("fresh violating run not failed: %v", err)
	}
	// The run IS journaled (it completed; only the gate failed) — a
	// resumed scheduler must fail identically from the cached record.
	if j.Len() != 1 {
		t.Fatalf("violating run not journaled: %d records", j.Len())
	}
	sched := c.NewScheduler(j)
	if _, err := sched.Run(plan); err == nil || !strings.Contains(err.Error(), "violated") {
		t.Fatalf("cached violating run not failed: %v", err)
	}
}

// TestDirectPlanThroughScheduler runs the timing ablation via the
// scheduler: Direct plans execute imperatively and are never journaled.
func TestDirectPlanThroughScheduler(t *testing.T) {
	c := planConfig()
	j, err := runlog.Open(filepath.Join(t.TempDir(), "runlog.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sched := c.NewScheduler(j)
	tables, err := sched.Run(c.planAblationOLH())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("olh ablation produced %d tables", len(tables))
	}
	if j.Len() != 0 {
		t.Fatalf("timing cells were journaled: %d records", j.Len())
	}
}

// TestPlansMatchExperimentIDs keeps the plan registry and the
// tables-runner registry in lockstep.
func TestPlansMatchExperimentIDs(t *testing.T) {
	c := planConfig()
	plans, exps := c.Plans(), c.Experiments()
	if len(plans) != len(exps) {
		t.Fatalf("%d plans vs %d experiments", len(plans), len(exps))
	}
	for id, build := range plans {
		if exps[id] == nil {
			t.Errorf("experiment %q missing", id)
			continue
		}
		if p := build(); p.ID != id {
			t.Errorf("plan %q reports ID %q", id, p.ID)
		}
	}
	ids := c.PlanIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("PlanIDs not sorted: %v", ids)
		}
	}
}
