package experiment

import (
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/metrics"
	"ldpids/internal/privacy"
	"ldpids/internal/stream"
)

// CompareGranularity contextualizes w-event LDP between the two classical
// granularities (the paper's Table 1): event-level (full ε every
// timestamp; utility ceiling but the per-window loss is w·ε) and finite
// user-level (ε split over the whole horizon; unusable noise and the
// stream must end). Reported per method: MRE and the maximum privacy loss
// any user accrued in a w-window, as measured by the accountant.
func (c *Config) CompareGranularity() ([]Table, error) {
	w := 20
	eps := 1.0
	rows := []string{"EventLevel", "LBU (w-event)", "LPA (w-event)", "UserLevel(T)"}
	cols := []string{"MRE", "maxWindowLoss"}

	tbl := Table{
		Title:    "Comparison: privacy granularities on Sin (nominal eps=1, w=20)",
		XLabel:   "granularity",
		ColHeads: cols,
		RowHeads: rows,
		Cells:    make([][]float64, len(rows)),
	}

	root := ldprand.New(c.cellSeed(120))
	sp := StreamSpec{Dataset: "Sin", PopScale: c.popScale()}
	streamSrc := root.Split()
	s, T, d, err := sp.Build(streamSrc)
	if err != nil {
		return nil, err
	}
	snaps := stream.Materialize(s, T)
	n := len(snaps[0])
	oracle := fo.NewGRR(d)

	build := func(name string) (mechanism.Mechanism, error) {
		p := mechanism.Params{Eps: eps, W: w, N: n, Oracle: oracle, Src: root.Split()}
		switch name {
		case "EventLevel":
			return mechanism.NewEventLevel(p)
		case "LBU (w-event)":
			return mechanism.NewLBU(p)
		case "LPA (w-event)":
			return mechanism.NewLPA(p)
		case "UserLevel(T)":
			return mechanism.NewUserLevelFinite(p, T)
		}
		panic("unreachable")
	}

	for r, name := range rows {
		m, err := build(name)
		if err != nil {
			return nil, err
		}
		acct := privacy.NewAccountant(eps, w, n, root.Split())
		runner := &mechanism.Runner{
			Stream:     stream.NewReplay(snaps, d),
			Oracle:     oracle,
			Src:        root.Split(),
			Accountant: acct,
		}
		res, err := runner.Run(m, T)
		if err != nil {
			return nil, err
		}
		tbl.Cells[r] = []float64{
			metrics.MRE(res.Released, res.True, 0),
			acct.MaxWindowSpend(),
		}
	}
	return []Table{tbl}, nil
}
