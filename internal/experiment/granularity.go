package experiment

// planCompareGranularity declares the comparison contextualizing w-event
// LDP between the two classical granularities (the paper's Table 1):
// event-level (full ε every timestamp; utility ceiling but the per-window
// loss is w·ε) and finite user-level (ε split over the whole horizon;
// unusable noise and the stream must end). Reported per method: MRE and
// the maximum privacy loss any user accrued in a w-window, as measured by
// the accountant — so every cell runs audited, and the EventLevel baseline
// (which deliberately violates w-event LDP) must not set FailOnViolation.
func (c *Config) planCompareGranularity() Plan {
	w := 20
	eps := 1.0
	rows := []struct {
		head   string
		method string
	}{
		{"EventLevel", "EventLevel"},
		{"LBU (w-event)", "LBU"},
		{"LPA (w-event)", "LPA"},
		{"UserLevel(T)", "UserLevel"},
	}
	cols := []string{"MRE", "maxWindowLoss"}
	metricsOf := []string{MetricMRE, MetricMaxWindowLoss}
	heads := make([]string, len(rows))
	for i, r := range rows {
		heads[i] = r.head
	}

	p := Plan{ID: "compare-granularity"}
	ti := p.addTable(Table{
		Title:    "Comparison: privacy granularities on Sin (nominal eps=1, w=20)",
		XLabel:   "granularity",
		ColHeads: cols,
		RowHeads: heads,
	})
	for r, row := range rows {
		spec := c.runSpec(RunSpec{
			Stream: StreamSpec{Dataset: "Sin", PopScale: c.popScale()},
			Method: row.method, Eps: eps, W: w,
			// The accountant must observe every run here — its
			// MaxWindowSpend IS the second column.
			Audit: true,
			// The granularity baselines are compared under the paper's
			// analysis oracle (GRR) regardless of -oracle.
			Oracle: "GRR",
		})
		for col := range cols {
			p.Cells = append(p.Cells, Cell{
				Table: ti, Row: r, Col: col, Metric: metricsOf[col],
				Spec: spec, Reps: c.reps(),
			})
		}
	}
	return p
}

// CompareGranularity runs the granularity comparison (compatibility
// wrapper).
func (c *Config) CompareGranularity() ([]Table, error) {
	return c.runPlan(c.planCompareGranularity())
}
