package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/obs"
	"ldpids/internal/serve"
)

// testCoordinator builds a coordinator with fast liveness knobs and an
// httptest server in front of it.
func testCoordinator(t *testing.T, n int, oracle string, d int) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := NewCoordinator(n, oracle, d)
	if err != nil {
		t.Fatal(err)
	}
	c.Timeout = 10 * time.Second
	c.PartitionTimeout = 5 * time.Second
	c.HeartbeatInterval = 50 * time.Millisecond
	c.TTL = 2 * time.Second
	c.Metrics = &Metrics{}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		c.Close()
		ts.Close()
	})
	return c, ts
}

// fakeReplica drives the coordinator's replica protocol by hand, so the
// membership tests control exactly when a participant ships, leaves, or
// goes silent.
type fakeReplica struct {
	t    *testing.T
	base string
	id   int64
}

// rawJoin posts a join request and returns the response and status.
func rawJoin(t *testing.T, base, name string, lo, hi, n int) (joinResponse, int) {
	t.Helper()
	body, err := json.Marshal(joinRequest{Name: name, Lo: lo, Hi: hi, N: n})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/cluster/v1/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr joinResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return jr, resp.StatusCode
}

// joinFake registers a fake replica, failing the test on refusal.
func joinFake(t *testing.T, base, name string, lo, hi, n int) *fakeReplica {
	t.Helper()
	jr, status := rawJoin(t, base, name, lo, hi, n)
	if status != http.StatusOK {
		t.Fatalf("join %q [%d:%d) refused with status %d", name, lo, hi, status)
	}
	return &fakeReplica{t: t, base: base, id: jr.Replica}
}

// pollRound long-polls until the next round announcement arrives.
func (f *fakeReplica) pollRound(after int64) *announcement {
	f.t.Helper()
	u := f.base + "/cluster/v1/round?replica=" + itoa(f.id) + "&after=" + itoa(after) + "&wait=5s"
	resp, err := http.Get(u)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.t.Fatalf("poll answered status %d, want an announcement", resp.StatusCode)
	}
	var ann announcement
	if err := json.NewDecoder(resp.Body).Decode(&ann); err != nil {
		f.t.Fatal(err)
	}
	return &ann
}

// ship posts a counter shipment and returns the status.
func (f *fakeReplica) ship(ann *announcement, frame fo.CounterFrame, errStr string) int {
	f.t.Helper()
	sh := shipment{Round: ann.Round, Token: ann.Token, Replica: f.id, Err: errStr, Frame: frame}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sh); err != nil {
		f.t.Fatal(err)
	}
	resp, err := http.Post(f.base+"/cluster/v1/counters", "application/octet-stream", &buf)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode
}

// leave posts a graceful departure.
func (f *fakeReplica) leave() {
	f.t.Helper()
	body, _ := json.Marshal(replicaRef{Replica: f.id})
	resp, err := http.Post(f.base+"/cluster/v1/leave", "application/json", bytes.NewReader(body))
	if err != nil {
		f.t.Fatal(err)
	}
	resp.Body.Close()
}

func itoa(v int64) string {
	var b []byte
	if v == 0 {
		return "0"
	}
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// shardReport is the deterministic per-user report used by the manual
// round tests: user u's source is seeded 1000+u, so any partitioning of
// the users produces the same report stream as the reference.
func shardReport(o fo.Oracle, u int, eps float64) fo.Report {
	return o.Perturb(u%o.Domain(), eps, ldprand.New(1000+uint64(u)))
}

// shardFrame folds users [lo, hi) into a fresh aggregator and exports the
// counter frame a well-behaved replica would ship.
func shardFrame(t *testing.T, o fo.Oracle, eps float64, lo, hi int) fo.CounterFrame {
	t.Helper()
	agg, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for u := lo; u < hi; u++ {
		if err := agg.Add(shardReport(o, u, eps)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fo.ExportCounters(agg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCoordinatorJoinValidation: population mismatches, malformed shards,
// and overlaps are refused; a re-join under a registered name replaces the
// old instance instead of conflicting with it.
func TestCoordinatorJoinValidation(t *testing.T) {
	c, ts := testCoordinator(t, 10, "GRR", 4)

	if _, status := rawJoin(t, ts.URL, "a", 0, 5, 99); status != http.StatusConflict {
		t.Fatalf("population mismatch answered %d, want 409", status)
	}
	for _, shard := range [][2]int{{-1, 5}, {5, 5}, {7, 3}, {5, 11}} {
		if _, status := rawJoin(t, ts.URL, "a", shard[0], shard[1], 10); status != http.StatusUnprocessableEntity {
			t.Fatalf("shard [%d:%d) answered %d, want 422", shard[0], shard[1], status)
		}
	}
	if _, status := rawJoin(t, ts.URL, "", 0, 5, 10); status != http.StatusUnprocessableEntity {
		t.Fatalf("nameless join answered %d, want 422", status)
	}

	a := joinFake(t, ts.URL, "a", 0, 5, 10)
	if _, status := rawJoin(t, ts.URL, "b", 3, 10, 10); status != http.StatusConflict {
		t.Fatalf("overlapping shard answered %d, want 409", status)
	}
	joinFake(t, ts.URL, "b", 5, 10, 10)

	// Same name, fresh instance: the old registration is replaced, not a
	// conflict — that is how a restarted replica re-claims its shard.
	a2 := joinFake(t, ts.URL, "a", 0, 5, 10)
	if a2.id == a.id {
		t.Fatal("re-join reused the replaced instance's id")
	}
	c.mu.Lock()
	live := len(c.replicas)
	c.mu.Unlock()
	if live != 2 {
		t.Fatalf("%d live replicas after a same-name re-join, want 2", live)
	}
}

// TestCoordinatorRefusesUnmergeableRounds: numeric mean rounds and sinks
// that cannot absorb counter frames are refused before any round opens.
func TestCoordinatorRefusesUnmergeableRounds(t *testing.T) {
	c, _ := testCoordinator(t, 10, "GRR", 4)
	if err := c.Collect(collect.Request{T: 1, Eps: 1, Numeric: true}, &collect.MeanSink{}); err == nil ||
		!strings.Contains(err.Error(), "numeric") {
		t.Fatalf("numeric round: got %v, want a numeric refusal", err)
	}
	if err := c.Collect(collect.Request{T: 1, Eps: 1}, &collect.SliceSink{}); err == nil ||
		!strings.Contains(err.Error(), "counter frames") {
		t.Fatalf("SliceSink: got %v, want a counter-sink refusal", err)
	}
}

// TestCoordinatorPartitionGate: a round refuses to open until the live
// shards exactly cover the population.
func TestCoordinatorPartitionGate(t *testing.T) {
	c, ts := testCoordinator(t, 10, "GRR", 4)
	c.PartitionTimeout = 200 * time.Millisecond
	joinFake(t, ts.URL, "a", 0, 5, 10)

	oracle := fo.NewGRR(4)
	agg, err := oracle.NewAggregator(1)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Collect(collect.Request{T: 1, Eps: 1}, collect.AggregatorSink{Agg: agg})
	if err == nil || !strings.Contains(err.Error(), "[0:5)") {
		t.Fatalf("half-covered population: got %v, want a coverage error naming the gap", err)
	}
}

// TestRoundCompletesAndMerges: two shards ship their frames and the merged
// estimate is bit-identical to a single aggregator fed the same reports.
func TestRoundCompletesAndMerges(t *testing.T) {
	const n, eps = 6, 1.0
	c, ts := testCoordinator(t, n, "GRR", 4)
	oracle, err := fo.New("GRR", 4)
	if err != nil {
		t.Fatal(err)
	}
	a := joinFake(t, ts.URL, "a", 0, 3, n)
	b := joinFake(t, ts.URL, "b", 3, n, n)

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusOK {
		t.Fatalf("first shipment answered %d", status)
	}
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusConflict {
		t.Fatalf("duplicate shipment answered %d, want 409", status)
	}
	if status := b.ship(ann, shardFrame(t, oracle, eps, 3, n), ""); status != http.StatusOK {
		t.Fatalf("second shipment answered %d", status)
	}
	if err := <-done; err != nil {
		t.Fatalf("Collect: %v", err)
	}

	reference, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		if err := reference.Add(shardReport(oracle, u, eps)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := reference.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("merged estimate diverged at k=%d: %v != %v", k, got[k], want[k])
		}
	}
	if got := c.Metrics.value("ldpids_cluster_frames_merged_total"); got != 2 {
		t.Fatalf("frames_merged_total = %d, want 2", got)
	}
}

// TestRoundDegradedOnLeave: a participant that leaves before shipping its
// counters fails the round as degraded — the estimate never silently
// misses a shard.
func TestRoundDegradedOnLeave(t *testing.T) {
	const n, eps = 6, 1.0
	c, ts := testCoordinator(t, n, "GRR", 4)
	oracle, _ := fo.New("GRR", 4)
	a := joinFake(t, ts.URL, "a", 0, 3, n)
	b := joinFake(t, ts.URL, "b", 3, n, n)

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusOK {
		t.Fatalf("shipment answered %d", status)
	}
	b.leave() // without shipping: the round must degrade, not thin out
	err = <-done
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("Collect after a mid-round leave: got %v, want a degraded-round error", err)
	}
	if got := c.Metrics.value("ldpids_cluster_rounds_degraded_total"); got != 1 {
		t.Fatalf("rounds_degraded_total = %d, want 1", got)
	}
	if got := c.Metrics.value("ldpids_cluster_leaves_total"); got != 1 {
		t.Fatalf("leaves_total = %d, want 1", got)
	}
}

// TestLeaveAfterShipCompletes: a replica that ships its final counters and
// then departs does not degrade the round — the departing shard's data is
// merged, exactly as the shutdown path promises.
func TestLeaveAfterShipCompletes(t *testing.T) {
	const n, eps = 6, 1.0
	c, ts := testCoordinator(t, n, "GRR", 4)
	oracle, _ := fo.New("GRR", 4)
	a := joinFake(t, ts.URL, "a", 0, 3, n)
	b := joinFake(t, ts.URL, "b", 3, n, n)

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusOK {
		t.Fatalf("shipment answered %d", status)
	}
	a.leave() // after shipping: the round completes on b's frame
	if status := b.ship(ann, shardFrame(t, oracle, eps, 3, n), ""); status != http.StatusOK {
		t.Fatalf("shipment answered %d", status)
	}
	if err := <-done; err != nil {
		t.Fatalf("Collect after a post-ship leave: %v", err)
	}
	if got := agg.Reports(); got != n {
		t.Fatalf("merged %d reports, want %d", got, n)
	}
	if got := c.Metrics.value("ldpids_cluster_rounds_degraded_total"); got != 0 {
		t.Fatalf("rounds_degraded_total = %d, want 0", got)
	}
}

// TestRoundDegradedOnExpiry: a participant that goes silent mid-round is
// expired by the liveness check and degrades the round before the full
// round timeout.
func TestRoundDegradedOnExpiry(t *testing.T) {
	const n, eps = 6, 1.0
	c, ts := testCoordinator(t, n, "GRR", 4)
	c.TTL = 150 * time.Millisecond
	oracle, _ := fo.New("GRR", 4)
	a := joinFake(t, ts.URL, "a", 0, 3, n)
	joinFake(t, ts.URL, "b", 3, n, n) // never heartbeats, polls, or ships

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusOK {
		t.Fatalf("shipment answered %d", status)
	}
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("expiry did not degrade the round within 5s")
	}
	if err == nil || !strings.Contains(err.Error(), "degraded") || !strings.Contains(err.Error(), `"b"`) {
		t.Fatalf("Collect with a dead participant: got %v, want a degraded-round error naming b", err)
	}
	// a, having shipped, may or may not expire on the same liveness tick
	// (it stops touching the coordinator after its shipment), so only b's
	// expiry is guaranteed.
	if got := c.Metrics.value("ldpids_cluster_expirations_total"); got < 1 {
		t.Fatalf("expirations_total = %d, want at least 1", got)
	}
}

// TestReplicaFailureFailsRound: a replica whose local round fails ships
// the error, and the coordinator surfaces it instead of releasing.
func TestReplicaFailureFailsRound(t *testing.T) {
	const n, eps = 6, 1.0
	c, ts := testCoordinator(t, n, "GRR", 4)
	oracle, _ := fo.New("GRR", 4)
	a := joinFake(t, ts.URL, "a", 0, 3, n)
	joinFake(t, ts.URL, "b", 3, n, n)

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	if status := a.ship(ann, fo.CounterFrame{}, "devices timed out"); status != http.StatusOK {
		t.Fatalf("error shipment answered %d", status)
	}
	err = <-done
	if err == nil || !strings.Contains(err.Error(), "devices timed out") {
		t.Fatalf("Collect after a replica failure: got %v, want the replica's error", err)
	}
}

// clusterHarness is a full in-process deployment: coordinator, real
// Replica loops over real HTTP backends, and serve.Client device
// processes — the same wiring cmd/ldpids-gateway does across processes.
type clusterHarness struct {
	t       *testing.T
	coord   *Coordinator
	coordTS *httptest.Server
	report  func(u, t int, eps float64) fo.Report

	// tracer, when set, names the tracer each harness role records into:
	// one per replica process (shared by the Replica loop and its serve
	// backend, as ldpids-gateway wires it) and one per device client.
	tracer func(role string) *obs.Tracer

	backends []*serve.Backend
	servers  []*httptest.Server
	clients  []*serve.Client
	cancels  []context.CancelFunc
	runErrs  []chan error
}

// startReplica launches one Replica loop (and its device client) over the
// shard [lo, hi).
func (h *clusterHarness) startReplica(name string, lo, hi int) {
	h.t.Helper()
	n := h.coord.N()
	backend, err := serve.NewBackend(n)
	if err != nil {
		h.t.Fatal(err)
	}
	backend.Timeout = 10 * time.Second
	ts := httptest.NewServer(backend)
	rep := &Replica{
		Coordinator: h.coordTS.URL,
		Name:        name,
		Lo:          lo,
		Hi:          hi,
		Backend:     backend,
		Retry:       serve.NewBackoff(2*time.Millisecond, 50*time.Millisecond, uint64(lo)+3),
		PollWait:    500 * time.Millisecond,
	}
	if h.tracer != nil {
		tr := h.tracer("replica-" + name)
		rep.Tracer = tr
		backend.Tracer = tr
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- rep.Run(ctx) }()

	cl, err := serve.NewClient(ts.URL, lo, hi-lo, serve.Funcs{Report: h.report})
	if err != nil {
		h.t.Fatal(err)
	}
	cl.PollWait = 500 * time.Millisecond
	if h.tracer != nil {
		cl.Tracer = h.tracer("client-" + name)
	}
	go func() { _ = cl.Serve() }()

	h.backends = append(h.backends, backend)
	h.servers = append(h.servers, ts)
	h.clients = append(h.clients, cl)
	h.cancels = append(h.cancels, cancel)
	h.runErrs = append(h.runErrs, errCh)
}

// stop tears the whole deployment down, requiring every Replica loop to
// exit cleanly.
func (h *clusterHarness) stop() {
	for _, cl := range h.clients {
		cl.Close()
	}
	for i, cancel := range h.cancels {
		cancel()
		select {
		case err := <-h.runErrs[i]:
			if err != nil {
				h.t.Errorf("replica %d: Run returned %v, want nil", i, err)
			}
		case <-time.After(10 * time.Second):
			h.t.Errorf("replica %d: Run did not exit within 10s of cancellation", i)
		}
	}
	for _, backend := range h.backends {
		backend.Close()
	}
	for _, ts := range h.servers {
		ts.Close()
	}
	h.coord.Close()
	h.coordTS.Close()
}

// newClusterHarness builds a two-replica deployment for the given spec.
func newClusterHarness(t *testing.T, s collecttest.Spec) *clusterHarness {
	t.Helper()
	oracleName := s.Oracle.Name()
	coord, coordTS := testCoordinator(t, s.N, oracleName, s.Oracle.Domain())
	report, _ := s.Reporters()
	h := &clusterHarness{t: t, coord: coord, coordTS: coordTS, report: report}
	h.startReplica("r1", 0, s.N/2)
	h.startReplica("r2", s.N/2, s.N)
	return h
}

// TestClusterConformanceGRR runs the canonical backend conformance script
// against a full two-replica deployment: every released estimate must be
// bit-identical to the in-process reference, exactly as for every other
// backend.
func TestClusterConformanceGRR(t *testing.T) {
	oracle, err := fo.New("GRR", 5)
	if err != nil {
		t.Fatal(err)
	}
	spec := collecttest.Spec{N: 24, Oracle: oracle, BaseSeed: 0xC0FFEE}
	collecttest.RunStriped(t, spec, 4, func(t *testing.T) (collect.Collector, func()) {
		h := newClusterHarness(t, spec)
		return h.coord, h.stop
	})
}

// TestClusterConformanceOLHC covers the cohort-matrix frame shape
// end-to-end over the same deployment.
func TestClusterConformanceOLHC(t *testing.T) {
	oracle, err := fo.New("OLH-C", 12)
	if err != nil {
		t.Fatal(err)
	}
	spec := collecttest.Spec{N: 24, Oracle: oracle, BaseSeed: 0xBEEF}
	collecttest.RunStriped(t, spec, 4, func(t *testing.T) (collect.Collector, func()) {
		h := newClusterHarness(t, spec)
		return h.coord, h.stop
	})
}

// TestReplicaLeaveRejoinMidStream: a replica departs gracefully between
// rounds and re-joins under the same name; the stream continues with
// bit-identical estimates and zero degraded rounds — the availability
// story the cluster smoke exercises across real processes.
func TestReplicaLeaveRejoinMidStream(t *testing.T) {
	const n, d, eps = 8, 4, 1.0
	oracle, err := fo.New("GRR", d)
	if err != nil {
		t.Fatal(err)
	}
	spec := collecttest.Spec{N: n, Oracle: oracle, BaseSeed: 7}
	h := newClusterHarness(t, spec)
	defer h.stop()

	refReport, _ := spec.Reporters()
	reference := &collect.Sim{Users: n, Report: refReport}

	runRound := func(tstamp int) {
		t.Helper()
		wantAgg, err := oracle.NewAggregator(eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := reference.Collect(collect.Request{T: tstamp, Eps: eps}, collect.AggregatorSink{Agg: wantAgg}); err != nil {
			t.Fatal(err)
		}
		gotAgg, err := oracle.NewAggregator(eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.coord.Collect(collect.Request{T: tstamp, Eps: eps}, collect.AggregatorSink{Agg: gotAgg}); err != nil {
			t.Fatalf("t=%d: %v", tstamp, err)
		}
		want, err := wantAgg.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		got, err := gotAgg.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("t=%d: estimate diverged at k=%d: %v != %v", tstamp, k, got[k], want[k])
			}
		}
	}

	runRound(1)

	// Gracefully stop replica r2 (it leaves between rounds) ...
	h.cancels[1]()
	select {
	case err := <-h.runErrs[1]:
		if err != nil {
			t.Fatalf("r2's Run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("r2 did not exit within 10s of cancellation")
	}

	// ... and bring it back under the same name, over the same backend
	// (its device client stays connected throughout, like devices riding
	// out a replica restart).
	rep := &Replica{
		Coordinator: h.coordTS.URL,
		Name:        "r2",
		Lo:          n / 2,
		Hi:          n,
		Backend:     h.backends[1],
		Retry:       serve.NewBackoff(2*time.Millisecond, 50*time.Millisecond, 99),
		PollWait:    500 * time.Millisecond,
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- rep.Run(ctx) }()
	h.cancels[1] = cancel
	h.runErrs[1] = errCh

	runRound(2)
	runRound(3)

	if got := h.coord.Metrics.value("ldpids_cluster_rounds_degraded_total"); got != 0 {
		t.Fatalf("rounds_degraded_total = %d after a clean leave/re-join, want 0", got)
	}
	if got := h.coord.Metrics.value("ldpids_cluster_leaves_total"); got != 1 {
		t.Fatalf("leaves_total = %d, want 1", got)
	}
}
