package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/obs"
	"ldpids/internal/serve"
)

// errRejoin signals that the replica's registration lapsed (heartbeat or
// poll answered 404) and the serve loop must join again.
var errRejoin = errors.New("cluster: registration lapsed")

// Replica runs one ingestion shard: it registers with the coordinator,
// long-polls for rounds, re-announces each round to its own device
// clients through the wrapped serve.Backend, folds their reports into
// local aggregator stripes, and ships the merged integer counters back.
//
// Run loops until the context is cancelled (it then finishes any in-flight
// round, ships its counters, and leaves gracefully — a departing shard's
// data is merged, never dropped), the coordinator closes, or the retry
// budget is exhausted against an unreachable coordinator.
type Replica struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:7900").
	Coordinator string
	// Name identifies the replica across restarts: a re-join under the
	// same name replaces the previous registration.
	Name string
	// Lo and Hi bound the contiguous user range [Lo, Hi) this replica
	// ingests for.
	Lo, Hi int
	// Backend is the HTTP ingestion backend devices report to. Its
	// population must equal the coordinator's.
	Backend *serve.Backend
	// Wire declares the encoding this shard's device clients post with
	// (serve.WireJSON or serve.WireBinary); Run applies it to the
	// Backend's byte accounting. The backend accepts both encodings per
	// POST regardless.
	Wire serve.Wire
	// Retry schedules delays between retries of transient coordinator
	// failures. Nil selects a default Backoff seeded from Name, so two
	// replicas never share a jitter stream.
	Retry *serve.Backoff
	// MaxRetries bounds consecutive transient failures per operation.
	// Zero selects serve.DefaultMaxRetries.
	MaxRetries int
	// PollWait is the long-poll parking time per round poll. Zero
	// selects 10s.
	PollWait time.Duration
	// Metrics, when non-nil, records the replica's ship-stage latency.
	Metrics *Metrics
	// Tracer, when non-nil, records a shard-round span per served round
	// and a ship span per counter shipment, parented under the
	// coordinator's root span from the announcement.
	Tracer *obs.Tracer
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	hc *http.Client
}

// logf emits one operational log line when a logger is attached.
func (r *Replica) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// retry reports the replica's retry schedule and budget, applying the
// defaults.
func (r *Replica) retry() (*serve.Backoff, int) {
	if r.Retry == nil {
		h := fnv.New64a()
		_, _ = io.WriteString(h, r.Name)
		r.Retry = serve.NewBackoff(0, 0, h.Sum64()^0x636c7573746572)
	}
	max := r.MaxRetries
	if max == 0 {
		max = serve.DefaultMaxRetries
	}
	return r.Retry, max
}

// sleepCtx pauses for d, returning false when ctx ended the pause early.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Run registers the replica and serves rounds until ctx is cancelled
// (returns nil after a graceful leave), the coordinator closes (nil), or
// the coordinator stays unreachable past the retry budget (the last
// transport error).
func (r *Replica) Run(ctx context.Context) error {
	if r.Backend == nil {
		return errors.New("cluster: replica needs a Backend")
	}
	if r.Coordinator == "" {
		return errors.New("cluster: replica needs a coordinator URL")
	}
	if r.Name == "" {
		return errors.New("cluster: replica needs a name")
	}
	if r.Lo < 0 || r.Hi <= r.Lo || r.Hi > r.Backend.N() {
		return fmt.Errorf("cluster: shard [%d:%d) is not a sub-range of [0:%d)", r.Lo, r.Hi, r.Backend.N())
	}
	if r.hc == nil {
		r.hc = &http.Client{}
	}
	if r.Wire != "" {
		r.Backend.Wire = r.Wire
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		jr, err := r.join(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		r.logf("cluster: replica %s joined as id %d, shard [%d:%d)", r.Name, jr.Replica, r.Lo, r.Hi)
		err = r.serveRounds(ctx, jr)
		if errors.Is(err, errRejoin) {
			r.logf("cluster: replica %s registration lapsed, re-joining", r.Name)
			continue
		}
		return err
	}
}

// join registers with the coordinator, retrying transient failures — the
// coordinator may simply not be up yet.
func (r *Replica) join(ctx context.Context) (*joinResponse, error) {
	bo, maxRetries := r.retry()
	req := joinRequest{Name: r.Name, Lo: r.Lo, Hi: r.Hi, N: r.Backend.N()}
	for retries := 0; ; {
		var jr joinResponse
		status, err := r.postJSON(ctx, "/cluster/v1/join", req, &jr)
		if err == nil {
			switch status {
			case http.StatusOK:
				bo.Reset()
				if jr.N != r.Backend.N() {
					return nil, fmt.Errorf("cluster: coordinator population %d, backend hosts %d", jr.N, r.Backend.N())
				}
				return &jr, nil
			case http.StatusServiceUnavailable:
				// Starting up or shutting down; retry within the budget.
			default:
				return nil, fmt.Errorf("cluster: join refused with status %d", status)
			}
		}
		retries++
		if retries > maxRetries {
			if err != nil {
				return nil, fmt.Errorf("cluster: joining %s: giving up after %d retries: %w", r.Coordinator, retries-1, err)
			}
			return nil, fmt.Errorf("cluster: joining %s: giving up after %d retries: coordinator unavailable", r.Coordinator, retries-1)
		}
		if !sleepCtx(ctx, bo.Next()) {
			return nil, ctx.Err()
		}
	}
}

// serveRounds is one registration's round loop: poll, serve, ship.
func (r *Replica) serveRounds(ctx context.Context, jr *joinResponse) error {
	oracle, err := fo.New(jr.Oracle, jr.D)
	if err != nil {
		return fmt.Errorf("cluster: coordinator oracle: %w", err)
	}
	hbStop := make(chan struct{})
	hbLapsed := make(chan struct{})
	go r.heartbeatLoop(jr, hbStop, hbLapsed)
	defer close(hbStop)

	bo, maxRetries := r.retry()
	retries := 0
	var after int64
	for {
		select {
		case <-ctx.Done():
			r.leave(jr.Replica)
			return nil
		case <-hbLapsed:
			return errRejoin
		default:
		}
		ann, status, err := r.poll(ctx, jr.Replica, after)
		if err != nil || status == http.StatusBadGateway || status == http.StatusGatewayTimeout {
			if ctx.Err() != nil {
				r.leave(jr.Replica)
				return nil
			}
			retries++
			if retries > maxRetries {
				if err != nil {
					return fmt.Errorf("cluster: polling for rounds: giving up after %d retries: %w", retries-1, err)
				}
				return fmt.Errorf("cluster: polling for rounds: giving up after %d retries: last status %d", retries-1, status)
			}
			if !sleepCtx(ctx, bo.Next()) {
				r.leave(jr.Replica)
				return nil
			}
			continue
		}
		retries = 0
		bo.Reset()
		switch status {
		case http.StatusOK:
		case http.StatusNoContent:
			continue // long poll expired with no new round
		case http.StatusNotFound:
			return errRejoin
		case http.StatusServiceUnavailable:
			return nil // coordinator closed: the stream is over
		default:
			return fmt.Errorf("cluster: /cluster/v1/round returned status %d", status)
		}
		after = ann.Round
		sh, shardCtx := r.serveRound(jr, oracle, ann)
		if sh.Err != "" {
			r.logf("cluster: replica %s: round %d failed locally: %s", r.Name, ann.Round, sh.Err)
		}
		shipStart := time.Now()
		ssp := r.Tracer.Start("ship", shardCtx, ann.Round)
		err = r.ship(sh)
		ssp.End(map[string]any{"ok": err == nil, "failed_round": sh.Err != ""})
		r.Metrics.observeStage(stageShip, time.Since(shipStart))
		if err != nil {
			if ctx.Err() != nil {
				r.leave(jr.Replica)
				return nil
			}
			return err
		}
	}
}

// serveRound runs one announced round against the local backend and
// returns the shipment — the shard's merged counters, or the local
// error — plus the span context the subsequent ship span parents under.
// The (id, token) pair is pinned onto the backend first, so device
// watermarks and report authentication line up with the global
// sequence; the coordinator's trace context is pinned alongside, so the
// backend's round span (and every device batch span under it) joins the
// distributed trace.
func (r *Replica) serveRound(jr *joinResponse, oracle fo.Oracle, ann *announcement) (shipment, obs.SpanContext) {
	parent, _ := obs.ParseSpanContext(ann.Trace)
	sp := r.Tracer.Start("shard-round", parent, ann.Round)
	ctx := sp.ContextOr(parent)
	sh := shipment{Round: ann.Round, Token: ann.Token, Replica: jr.Replica}
	defer func() { sp.End(map[string]any{"ok": sh.Err == ""}) }()
	fail := func(err error) (shipment, obs.SpanContext) {
		sh.Err = err.Error()
		return sh, ctx
	}
	agg, err := fo.NewStripedAggregator(oracle, ann.Eps, r.Backend.PreferredStripes())
	if err != nil {
		return fail(err)
	}
	users := r.shardUsers(ann)
	if len(users) > 0 {
		if err := r.Backend.SetNextRound(ann.Round, ann.Token); err != nil {
			return fail(err)
		}
		r.Backend.SetNextTrace(ctx)
		if err := r.Backend.Collect(collect.Request{T: ann.T, Users: users, Eps: ann.Eps}, collect.AggregatorSink{Agg: agg}); err != nil {
			return fail(err)
		}
	}
	// An empty intersection still ships: the zero frame carries the
	// oracle shape, and the coordinator counts every shard present.
	f, err := fo.ExportCounters(agg)
	if err != nil {
		return fail(err)
	}
	sh.Frame = f
	return sh, ctx
}

// shardUsers intersects the announced user list with this replica's
// shard, preserving announcement order (and multiplicity) so each user's
// per-round randomness consumption matches the single-process run. The
// result is non-nil even when empty: an empty list means "none", whereas
// nil would mean "everyone".
func (r *Replica) shardUsers(ann *announcement) []int {
	if ann.Users == nil {
		users := make([]int, 0, r.Hi-r.Lo)
		for u := r.Lo; u < r.Hi; u++ {
			users = append(users, u)
		}
		return users
	}
	users := make([]int, 0, len(ann.Users))
	for _, u := range ann.Users {
		if u >= r.Lo && u < r.Hi {
			users = append(users, u)
		}
	}
	return users
}

// heartbeatLoop beats until stop closes; a 404 closes lapsed (the
// registration is gone and the replica must re-join). Transport errors
// are ignored — the TTL gives several beats of slack and the next tick
// retries.
func (r *Replica) heartbeatLoop(jr *joinResponse, stop, lapsed chan struct{}) {
	interval := time.Duration(jr.HeartbeatMillis) * time.Millisecond
	if interval <= 0 {
		interval = DefaultHeartbeatInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			var a ack
			status, err := r.postJSON(context.Background(), "/cluster/v1/heartbeat", replicaRef{Replica: jr.Replica}, &a)
			if err == nil && status == http.StatusNotFound {
				close(lapsed)
				return
			}
		}
	}
}

// ship posts one counter shipment, retrying transport errors on a
// background context: a cancelled replica still ships its final round, so
// a graceful departure never drops a shard's data. A 409 means the round
// is settled from the coordinator's side (a duplicate after a lost ack,
// or the round already failed) — the shipment's job is done either way.
func (r *Replica) ship(sh shipment) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(sh); err != nil {
		return fmt.Errorf("cluster: encoding counter shipment: %w", err)
	}
	bo, maxRetries := r.retry()
	for retries := 0; ; {
		status, err := r.post(context.Background(), "/cluster/v1/counters", "application/octet-stream", buf.Bytes())
		if err == nil {
			switch status {
			case http.StatusOK, http.StatusConflict:
				bo.Reset()
				return nil
			default:
				return fmt.Errorf("cluster: /cluster/v1/counters returned status %d", status)
			}
		}
		retries++
		if retries > maxRetries {
			return fmt.Errorf("cluster: shipping counters for round %d: giving up after %d retries: %w", sh.Round, retries-1, err)
		}
		d := bo.Next()
		time.Sleep(d)
	}
}

// leave posts a graceful departure; failures are ignored (the TTL cleans
// up, and the final counters already shipped).
func (r *Replica) leave(id int64) {
	var a ack
	_, _ = r.postJSON(context.Background(), "/cluster/v1/leave", replicaRef{Replica: id}, &a)
}

// poll issues one long-poll for a round with id > after.
func (r *Replica) poll(ctx context.Context, id, after int64) (*announcement, int, error) {
	wait := r.PollWait
	if wait == 0 {
		wait = 10 * time.Second
	}
	rctx, cancel := context.WithTimeout(ctx, wait+15*time.Second)
	defer cancel()
	u := fmt.Sprintf("%s/cluster/v1/round?replica=%d&after=%d&wait=%s", r.Coordinator, id, after, wait)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	var ann announcement
	if err := json.NewDecoder(resp.Body).Decode(&ann); err != nil {
		return nil, 0, fmt.Errorf("cluster: decoding round announcement: %w", err)
	}
	return &ann, resp.StatusCode, nil
}

// postJSON posts one JSON body and decodes a 200 response into out.
func (r *Replica) postJSON(ctx context.Context, path string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	status, respBody, err := r.postRead(ctx, path, "application/json", buf)
	if err != nil {
		return 0, err
	}
	if status == http.StatusOK && out != nil {
		if err := json.Unmarshal(respBody, out); err != nil {
			return 0, fmt.Errorf("cluster: decoding %s response: %w", path, err)
		}
	}
	return status, nil
}

// post sends one request body, discarding the response body.
func (r *Replica) post(ctx context.Context, path, contentType string, body []byte) (int, error) {
	status, _, err := r.postRead(ctx, path, contentType, body)
	return status, err
}

// postRead sends one request body and reads the response.
func (r *Replica) postRead(ctx context.Context, path, contentType string, body []byte) (int, []byte, error) {
	rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, r.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, respBody, nil
}
