package cluster

import (
	"crypto/subtle"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ldpids/internal/history"
)

// maxShipmentBody caps one counter-shipment body. The largest frame is an
// OLH-C cohort matrix (k*g int64 cells); 64 MiB bounds that far above any
// realistic configuration without letting a stray client exhaust memory.
const maxShipmentBody = 64 << 20

// maxClusterPollWait caps replica long-poll parking.
const maxClusterPollWait = 60 * time.Second

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wireError{Error: fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP implements http.Handler, routing the /cluster/v1/ surface.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/cluster/v1/join":
		c.handleJoin(w, r)
	case "/cluster/v1/heartbeat":
		c.handleHeartbeat(w, r)
	case "/cluster/v1/leave":
		c.handleLeave(w, r)
	case "/cluster/v1/round":
		c.handleRound(w, r)
	case "/cluster/v1/counters":
		c.handleCounters(w, r)
	default:
		httpError(w, http.StatusNotFound, "cluster: unknown path %s", r.URL.Path)
	}
}

// handleJoin serves POST /cluster/v1/join: validate the announced shard,
// replace any dead same-name registration (a restarted replica), refuse
// overlaps, and hand back the id plus the coordinator's configuration.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "cluster: %s /cluster/v1/join", r.Method)
		return
	}
	var jr joinRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&jr); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: malformed join request: %v", err)
		return
	}
	if jr.Name == "" {
		httpError(w, http.StatusUnprocessableEntity, "cluster: join needs a replica name")
		return
	}
	if jr.N != c.n {
		httpError(w, http.StatusConflict, "cluster: replica %q sees population %d, coordinator has %d", jr.Name, jr.N, c.n)
		return
	}
	if jr.Lo < 0 || jr.Hi <= jr.Lo || jr.Hi > c.n {
		httpError(w, http.StatusUnprocessableEntity, "cluster: replica %q shard [%d:%d) is not a sub-range of [0:%d)", jr.Name, jr.Lo, jr.Hi, c.n)
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "%v", errClosed)
		return
	}
	now := time.Now()
	c.pruneLocked(now)
	// A join under a registered name is a restarted instance: the old
	// registration is dead even if its TTL has not lapsed yet (and if it
	// owed the open round counters, that round degrades now, not at the
	// timeout).
	for _, rep := range c.replicas {
		if rep.name == jr.Name {
			c.dropLocked(rep, "replaced")
			break
		}
	}
	for _, rep := range c.replicas {
		if jr.Lo < rep.hi && rep.lo < jr.Hi {
			lo, hi, name := rep.lo, rep.hi, rep.name
			c.mu.Unlock()
			httpError(w, http.StatusConflict, "cluster: shard [%d:%d) overlaps replica %q [%d:%d)", jr.Lo, jr.Hi, name, lo, hi)
			return
		}
	}
	c.nextRep++
	rep := &replicaState{id: c.nextRep, name: jr.Name, lo: jr.Lo, hi: jr.Hi, lastSeen: now}
	c.replicas[rep.id] = rep
	c.Metrics.addJoin()
	c.signalMembersLocked()
	resp := joinResponse{
		Replica:         rep.id,
		N:               c.n,
		Oracle:          c.oracle,
		D:               c.d,
		HeartbeatMillis: c.heartbeatInterval().Milliseconds(),
		TTLMillis:       c.ttl().Milliseconds(),
	}
	c.mu.Unlock()
	writeJSON(w, resp)
}

// handleHeartbeat serves POST /cluster/v1/heartbeat. 404 tells a replica
// its registration lapsed and it must re-join.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "cluster: %s /cluster/v1/heartbeat", r.Method)
		return
	}
	var ref replicaRef
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&ref); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: malformed heartbeat: %v", err)
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "%v", errClosed)
		return
	}
	rep := c.replicas[ref.Replica]
	if rep == nil {
		c.mu.Unlock()
		httpError(w, http.StatusNotFound, "cluster: unknown replica %d (re-join)", ref.Replica)
		return
	}
	rep.lastSeen = time.Now()
	c.mu.Unlock()
	writeJSON(w, ack{OK: true})
}

// handleLeave serves POST /cluster/v1/leave: a graceful departure.
// Leaving is idempotent — an unknown id answers success, so a retried
// leave never strands a shutting-down replica.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "cluster: %s /cluster/v1/leave", r.Method)
		return
	}
	var ref replicaRef
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&ref); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: malformed leave: %v", err)
		return
	}
	c.mu.Lock()
	if rep := c.replicas[ref.Replica]; rep != nil {
		c.dropLocked(rep, "left")
	}
	c.mu.Unlock()
	writeJSON(w, ack{OK: true})
}

// handleRound serves GET /cluster/v1/round?replica=ID&after=ID&wait=D: it
// long-polls for the next round the replica participates in. Only the
// participants frozen at round open see an announcement; a replica that
// joined mid-round parks until the next one. Polling doubles as liveness:
// each iteration touches the replica's heartbeat.
func (c *Coordinator) handleRound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "cluster: %s /cluster/v1/round", r.Method)
		return
	}
	q := r.URL.Query()
	var id, after int64
	if _, err := fmt.Sscanf(q.Get("replica"), "%d", &id); err != nil {
		httpError(w, http.StatusBadRequest, "cluster: bad replica parameter %q", q.Get("replica"))
		return
	}
	if s := q.Get("after"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &after); err != nil {
			httpError(w, http.StatusBadRequest, "cluster: bad after parameter %q", s)
			return
		}
	}
	wait := 10 * time.Second
	if s := q.Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "cluster: bad wait parameter %q", s)
			return
		}
		wait = min(d, maxClusterPollWait)
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			httpError(w, http.StatusServiceUnavailable, "%v", errClosed)
			return
		}
		rep := c.replicas[id]
		if rep == nil {
			c.mu.Unlock()
			httpError(w, http.StatusNotFound, "cluster: unknown replica %d (re-join)", id)
			return
		}
		rep.lastSeen = time.Now()
		rd := c.round
		announce := c.announce
		c.mu.Unlock()
		if rd != nil && rd.id > after {
			if _, ok := rd.parts[id]; ok {
				writeJSON(w, announcement{
					Round: rd.id, T: rd.req.T, Eps: rd.req.Eps, Token: rd.token,
					Users: rd.req.Users, Oracle: c.oracle, D: c.d, N: c.n,
					Trace: rd.trace.String(),
				})
				return
			}
		}
		select {
		case <-announce:
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		case <-c.done:
			httpError(w, http.StatusServiceUnavailable, "%v", errClosed)
			return
		}
	}
}

// handleCounters serves POST /cluster/v1/counters: one replica's gob
// shipment for the open round. The shipment authenticates against the
// round token; duplicates (a retry after a lost ack) answer 409, which the
// replica treats as settled. The frame is only buffered here — merging
// happens on the Collect goroutine once every participant has shipped, so
// the sink is never touched concurrently.
func (c *Coordinator) handleCounters(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "cluster: %s /cluster/v1/counters", r.Method)
		return
	}
	var sh shipment
	// refuseFrame logs the shipment verdict and answers the error.
	refuseFrame := func(status int, reason, replica string, format string, args ...any) {
		c.History.Append(history.Record{Kind: history.KindFrame, Verdict: history.VerdictRefused,
			Reason: reason, Status: status, Round: sh.Round, Token: sh.Token, Replica: replica})
		c.Metrics.addFrameRefusal(reason)
		httpError(w, status, format, args...)
	}
	if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, maxShipmentBody)).Decode(&sh); err != nil {
		refuseFrame(http.StatusBadRequest, history.ReasonMalformed, "", "cluster: malformed counter shipment: %v", err)
		return
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "%v", errClosed)
		return
	}
	if rep := c.replicas[sh.Replica]; rep != nil {
		rep.lastSeen = time.Now() // shipping is proof of life
	}
	rd := c.round
	c.mu.Unlock()
	if rd == nil || sh.Round != rd.id ||
		subtle.ConstantTimeCompare([]byte(sh.Token), []byte(rd.token)) != 1 {
		refuseFrame(http.StatusConflict, history.ReasonStaleToken, "", "cluster: stale round token (round %d is not open)", sh.Round)
		return
	}
	rep, ok := rd.parts[sh.Replica]
	if !ok {
		refuseFrame(http.StatusConflict, history.ReasonNotParticipant, "", "cluster: replica %d is not a participant of round %d", sh.Replica, rd.id)
		return
	}
	if sh.Err != "" {
		// A failed-round shipment is journaled before finish, so the
		// failure record precedes the close record in the log.
		c.History.Append(history.Record{Kind: history.KindFrame, Verdict: history.VerdictFailed,
			Reason: history.ReasonReplicaError, Round: sh.Round, Token: sh.Token,
			Replica: rep.name, Lo: rep.lo, Hi: rep.hi, Err: sh.Err})
		rd.finish(fmt.Errorf("cluster: replica %q (shard [%d:%d)) failed round t=%d: %s",
			rep.name, rep.lo, rep.hi, rd.req.T, sh.Err), false)
		writeJSON(w, shipAck{Accepted: true})
		return
	}
	if err := sh.Frame.Validate(); err != nil {
		refuseFrame(http.StatusUnprocessableEntity, history.ReasonBadFrame, rep.name, "cluster: replica %q shipped a bad frame: %v", rep.name, err)
		return
	}
	rd.mu.Lock()
	if rd.done {
		rd.mu.Unlock()
		refuseFrame(http.StatusConflict, history.ReasonRoundClosed, rep.name, "cluster: round %d already closed", rd.id)
		return
	}
	if _, dup := rd.frames[sh.Replica]; dup {
		rd.mu.Unlock()
		refuseFrame(http.StatusConflict, history.ReasonDuplicate, rep.name, "cluster: replica %q already shipped round %d", rep.name, rd.id)
		return
	}
	rd.frames[sh.Replica] = sh.Frame
	// Journaled under rd.mu: every accepted-frame record precedes the
	// round's completion (and so its close record).
	c.History.Append(history.Record{Kind: history.KindFrame, Verdict: history.VerdictAccepted,
		Status: http.StatusOK, Round: sh.Round, Token: sh.Token,
		Replica: rep.name, Lo: rep.lo, Hi: rep.hi, Frame: history.FrameOf(sh.Frame)})
	full := len(rd.frames) == len(rd.parts)
	rd.mu.Unlock()
	if full {
		rd.finish(nil, false)
	}
	writeJSON(w, shipAck{Accepted: true})
}
