package cluster

import (
	"path/filepath"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
	"ldpids/internal/obs"
)

// TestTracePropagatesAcrossCluster runs a full deployment — coordinator,
// two Replica loops over real HTTP backends, and device clients — with
// every process tracing into its own crash-safe log, exactly as the
// separate ldpids-gateway processes would. Two collected rounds must leave
// two connected traces: one coordinator root each, every parent edge
// resolving inside the trace, and spans from all three tiers (client post
// → replica batch/shard-round/ship → coordinator merge) present.
func TestTracePropagatesAcrossCluster(t *testing.T) {
	const n, d = 8, 4
	oracle, err := fo.New("GRR", d)
	if err != nil {
		t.Fatal(err)
	}
	spec := collecttest.Spec{N: n, Oracle: oracle, BaseSeed: 99}

	dir := t.TempDir()
	var logs []*obs.TraceLog
	paths := map[string]string{}
	newTracer := func(role string) *obs.Tracer {
		path := filepath.Join(dir, role+".jsonl")
		tlog, err := obs.CreateTraceLog(path)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, tlog)
		paths[role] = path
		return obs.NewTracer(role, tlog)
	}

	coord, coordTS := testCoordinator(t, n, "GRR", d)
	coord.Tracer = newTracer("coordinator")
	report, _ := spec.Reporters()
	h := &clusterHarness{t: t, coord: coord, coordTS: coordTS, report: report, tracer: newTracer}
	h.startReplica("r1", 0, n/2)
	h.startReplica("r2", n/2, n)

	const rounds = 2
	for tt := 1; tt <= rounds; tt++ {
		agg, err := oracle.NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.Collect(collect.Request{T: tt, Eps: 1}, collect.AggregatorSink{Agg: agg}); err != nil {
			t.Fatalf("round %d: %v", tt, err)
		}
	}

	// Device post spans end after the client reads its HTTP response,
	// which can trail the coordinator's release; wait for them before
	// tearing the deployment down.
	readAll := func() []obs.SpanRecord {
		var spans []obs.SpanRecord
		for _, path := range paths {
			got, err := obs.ReadSpans(path)
			if err != nil {
				t.Fatalf("reading %s: %v", path, err)
			}
			spans = append(spans, got...)
		}
		return spans
	}
	wantPosts := rounds * 2 // two device clients, one chunk each
	deadline := time.Now().Add(5 * time.Second)
	var spans []obs.SpanRecord
	for {
		spans = readAll()
		posts := 0
		for _, sp := range spans {
			if sp.Name == "post" {
				posts++
			}
		}
		if posts >= wantPosts || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.stop()
	for _, tlog := range logs {
		tlog.Close()
	}
	spans = readAll()

	byID := make(map[string]obs.SpanRecord, len(spans))
	perTrace := make(map[string]map[string]int) // trace -> span name -> count
	rootsPerTrace := make(map[string]int)
	srcs := make(map[string]bool)
	for _, sp := range spans {
		if _, dup := byID[sp.Span]; dup {
			t.Fatalf("duplicate span id %s", sp.Span)
		}
		byID[sp.Span] = sp
		srcs[sp.Src] = true
		if perTrace[sp.Trace] == nil {
			perTrace[sp.Trace] = make(map[string]int)
		}
		perTrace[sp.Trace][sp.Name]++
		if sp.Parent == "" {
			rootsPerTrace[sp.Trace]++
			if sp.Src != "coordinator" || sp.Name != "round" {
				t.Errorf("root span is %s/%s, want coordinator/round — a tier broke the chain", sp.Src, sp.Name)
			}
		}
	}
	if len(perTrace) != rounds {
		t.Fatalf("spans form %d traces, want %d (one per round): %v", len(perTrace), rounds, perTrace)
	}
	for trace, names := range perTrace {
		if rootsPerTrace[trace] != 1 {
			t.Errorf("trace %s has %d roots, want 1", trace, rootsPerTrace[trace])
		}
		// One coordinator round + two backend rounds; both replicas run a
		// shard-round and ship; the coordinator merges once; each device
		// client posts once and each backend folds at least one batch.
		for name, want := range map[string]int{
			"round": 3, "shard-round": 2, "ship": 2, "merge": 1, "post": 2, "batch": 2,
		} {
			if names[name] < want {
				t.Errorf("trace %s: %d %q spans, want >= %d (all: %v)", trace, names[name], name, want, names)
			}
		}
	}
	for _, role := range []string{"coordinator", "replica-r1", "replica-r2", "client-r1", "client-r2"} {
		if !srcs[role] {
			t.Errorf("no spans from %s (sources: %v)", role, srcs)
		}
	}
	for _, sp := range spans {
		if sp.Parent == "" {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %s (%s/%s) parent %s unresolved", sp.Span, sp.Src, sp.Name, sp.Parent)
			continue
		}
		if parent.Trace != sp.Trace {
			t.Errorf("span %s (%s/%s) crosses traces", sp.Span, sp.Src, sp.Name)
		}
	}
}
