// Package cluster distributes LDP-IDS ingestion across processes: a round
// coordinator that owns the mechanism and the release stream, and N
// ingestion replicas that each fold the reports of a contiguous user-range
// shard into local aggregator stripes.
//
// The coordinator implements collect.Collector, so the existing w-event
// mechanisms drive it unchanged: each Collect announces one global round
// (id, token, timestamp, budget, requested users) to the registered
// replicas, which re-announce it verbatim to their own device clients via
// serve.Backend.SetNextRound. When a replica's local round closes, it
// ships its merged integer counters — one fo.CounterFrame, never raw
// reports — back to the coordinator, which folds the frames into the
// round's sink in shard order. Frequency aggregation is commutative
// integer counting, so the merged estimate is bit-identical to a
// single-process run over the same seeds, regardless of how the
// population is sharded; numeric mean rounds are refused, because float
// accumulation order is not.
//
// Membership is explicit: replicas join with their shard bounds (the
// shards must exactly partition [0, n) before a round opens), heartbeat
// against a TTL, and leave gracefully after shipping any in-flight
// counters. A replica that vanishes mid-round — missed heartbeats, or a
// restarted instance re-joining under the same name — fails that round as
// degraded (counted in Metrics) instead of silently releasing an estimate
// that misses its shard. A replica that restarts between rounds re-joins
// and resumes at the coordinator's round sequence, so device watermarks
// and report tokens stay coherent across the restart.
//
// The coordinator's HTTP surface lives under /cluster/v1/ (join,
// heartbeat, leave, round long-poll, counters) and composes with the
// serve package's query layer on one mux; cmd/ldpids-gateway wires both
// roles behind -role coordinator|replica.
package cluster

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
	"ldpids/internal/obs"
	"ldpids/internal/serve"
)

// Defaults for Coordinator knobs.
const (
	// DefaultRoundTimeout bounds one distributed round: replicas that have
	// not shipped counters within it fail the round. It exceeds the serve
	// backend's DefaultTimeout so the replica-local deadline fires first
	// and its error reaches the coordinator as a shipment.
	DefaultRoundTimeout = serve.DefaultTimeout + 15*time.Second
	// DefaultPartitionTimeout bounds the wait for live replica shards to
	// exactly cover the population before a round opens.
	DefaultPartitionTimeout = 2 * time.Minute
	// DefaultHeartbeatInterval is the heartbeat cadence handed to joining
	// replicas.
	DefaultHeartbeatInterval = 2 * time.Second
	// DefaultTTL is how long a silent replica stays registered.
	DefaultTTL = 10 * time.Second
)

// Coordinator owns the global round sequence of a replicated deployment.
// It implements collect.Collector: mechanisms call Collect serially, and
// each call opens one distributed round over the registered replicas. The
// sink must implement collect.CounterSink, since replicas ship merged
// counter frames rather than raw reports.
//
// Mount it on a mux at /cluster/v1/ (it routes by path). Close fails the
// in-flight round and refuses further work.
type Coordinator struct {
	// Timeout bounds one distributed round. Zero selects
	// DefaultRoundTimeout.
	Timeout time.Duration
	// PartitionTimeout bounds the wait for replica shards to cover the
	// population. Zero selects DefaultPartitionTimeout.
	PartitionTimeout time.Duration
	// HeartbeatInterval is the liveness cadence handed to replicas at
	// join. Zero selects DefaultHeartbeatInterval.
	HeartbeatInterval time.Duration
	// TTL drops replicas silent for longer than this. Zero selects
	// DefaultTTL.
	TTL time.Duration
	// Metrics, when non-nil, counts membership churn, merged frames, and
	// degraded rounds.
	Metrics *Metrics
	// Health, when non-nil, is marked ready when the first round opens.
	Health *serve.Health
	// History, when non-nil, receives the structured ingest log: one
	// record per round announcement, accepted/refused/failed counter
	// shipment, and round close, replayable offline by cmd/ldpids-check.
	History *history.Log
	// Tracer, when non-nil, records the root span of each distributed
	// round plus a merge span. The root's context rides the round
	// announcement so replica and client spans join one trace.
	Tracer *obs.Tracer

	n      int
	oracle string
	d      int

	mu         sync.Mutex
	replicas   map[int64]*replicaState
	nextRep    int64
	nextID     int64
	round      *clusterRound
	collecting bool
	announce   chan struct{} // closed and replaced when a round opens
	members    chan struct{} // closed and replaced on membership change
	closed     bool
	done       chan struct{}

	// tokens overrides round-token generation (tests); nil means
	// crypto/rand.
	tokens func() string
}

// replicaState is one registered replica. name, lo, and hi are immutable
// after registration; lastSeen is read and written only under the
// coordinator's mutex.
type replicaState struct {
	id       int64
	name     string
	lo, hi   int
	lastSeen time.Time
}

// NewCoordinator returns a coordinator for a population of n users whose
// replicas aggregate with the named frequency oracle over domain size d.
// The oracle configuration is echoed to joining replicas so a
// misconfigured replica fails at join instead of shipping unmergeable
// counters.
func NewCoordinator(n int, oracle string, d int) (*Coordinator, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: population must be positive, got %d", n)
	}
	if _, err := fo.New(oracle, d); err != nil {
		return nil, fmt.Errorf("cluster: coordinator oracle: %w", err)
	}
	return &Coordinator{
		n:        n,
		oracle:   oracle,
		d:        d,
		replicas: make(map[int64]*replicaState),
		announce: make(chan struct{}),
		members:  make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// N implements collect.Collector.
func (c *Coordinator) N() int { return c.n }

func (c *Coordinator) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultRoundTimeout
}

func (c *Coordinator) partitionTimeout() time.Duration {
	if c.PartitionTimeout > 0 {
		return c.PartitionTimeout
	}
	return DefaultPartitionTimeout
}

func (c *Coordinator) heartbeatInterval() time.Duration {
	if c.HeartbeatInterval > 0 {
		return c.HeartbeatInterval
	}
	return DefaultHeartbeatInterval
}

func (c *Coordinator) ttl() time.Duration {
	if c.TTL > 0 {
		return c.TTL
	}
	return DefaultTTL
}

// token mints a fresh round token.
func (c *Coordinator) token() string {
	if c.tokens != nil {
		return c.tokens()
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("cluster: reading random token: %v", err))
	}
	return hex.EncodeToString(buf[:])
}

// Close fails any in-flight round and refuses further rounds and requests.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

// clusterRound is one in-flight distributed round. parts is frozen at
// round open and immutable after; the frame buffer and completion state
// live under mu.
type clusterRound struct {
	id    int64
	token string
	req   collect.Request
	parts map[int64]*replicaState

	span  *obs.Span       // the distributed round's root span; nil when untraced
	trace obs.SpanContext // announced to replicas so shard spans join the trace

	mu       sync.Mutex
	frames   map[int64]fo.CounterFrame
	done     bool
	err      error
	degraded bool
	complete chan struct{}
}

// finish closes the round exactly once. A nil err is a complete round;
// degraded marks failures caused by a participant vanishing before
// shipping (they count separately in Metrics, and the release stream
// never silently drops the shard).
func (rd *clusterRound) finish(err error, degraded bool) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	if rd.done {
		return
	}
	rd.done = true
	rd.err = err
	rd.degraded = degraded
	close(rd.complete)
}

// shipped reports whether the replica's counters for this round arrived.
func (rd *clusterRound) shipped(id int64) bool {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	_, ok := rd.frames[id]
	return ok
}

// missingNames lists the participants that have not shipped counters yet.
func (rd *clusterRound) missingNames() string {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	var missing []string
	for id, rep := range rd.parts {
		if _, ok := rd.frames[id]; !ok {
			missing = append(missing, fmt.Sprintf("%s[%d:%d)", rep.name, rep.lo, rep.hi))
		}
	}
	sort.Strings(missing)
	return strings.Join(missing, ", ")
}

// signalMembersLocked wakes everything waiting on a membership change.
// Callers hold c.mu.
func (c *Coordinator) signalMembersLocked() {
	close(c.members)
	c.members = make(chan struct{})
	c.Metrics.setReplicas(len(c.replicas))
}

// dropLocked removes one replica (cause is "left", "expired", or
// "replaced") and fails the open round as degraded if the replica was a
// participant that had not shipped its counters — a vanished shard must
// fail the round loudly, never silently thin the estimate. Callers hold
// c.mu.
func (c *Coordinator) dropLocked(rep *replicaState, cause string) {
	delete(c.replicas, rep.id)
	switch cause {
	case "left":
		c.Metrics.addLeave()
	case "expired":
		c.Metrics.addExpiration()
	}
	c.signalMembersLocked()
	rd := c.round
	if rd == nil {
		return
	}
	if _, ok := rd.parts[rep.id]; !ok {
		return
	}
	if rd.shipped(rep.id) {
		return // its shard's counters are already in; the round can complete
	}
	rd.finish(fmt.Errorf("cluster: round t=%d degraded: replica %q (shard [%d:%d)) %s before shipping its counters",
		rd.req.T, rep.name, rep.lo, rep.hi, cause), true)
}

// pruneLocked drops every replica whose heartbeat lapsed. Callers hold
// c.mu.
func (c *Coordinator) pruneLocked(now time.Time) {
	ttl := c.ttl()
	for _, rep := range c.replicas {
		if now.Sub(rep.lastSeen) > ttl {
			c.dropLocked(rep, "expired")
		}
	}
}

// partitionLocked freezes the round participants when the live shards
// exactly cover [0, n); otherwise it describes the gap. Callers hold c.mu.
func (c *Coordinator) partitionLocked() (map[int64]*replicaState, string) {
	reps := make([]*replicaState, 0, len(c.replicas))
	for _, rep := range c.replicas {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].lo < reps[j].lo })
	covered := make([]string, 0, len(reps))
	expect := 0
	ok := true
	for _, rep := range reps {
		covered = append(covered, fmt.Sprintf("[%d:%d)", rep.lo, rep.hi))
		if rep.lo != expect {
			ok = false
		}
		expect = rep.hi
	}
	if !ok || expect != c.n {
		return nil, fmt.Sprintf("live shards cover %s, want exactly [0:%d)", strings.Join(covered, ","), c.n)
	}
	parts := make(map[int64]*replicaState, len(reps))
	for _, rep := range reps {
		parts[rep.id] = rep
	}
	return parts, ""
}

// errClosed is the refusal every path answers after Close.
var errClosed = errors.New("cluster: coordinator closed")

// openRound waits until the live shards partition the population, then
// freezes them as the round's participants and announces the round. The
// partition check and the freeze happen under one critical section, so a
// membership change cannot slip between them.
func (c *Coordinator) openRound(req collect.Request) (*clusterRound, error) {
	deadline := time.NewTimer(c.partitionTimeout())
	defer deadline.Stop()
	check := time.NewTicker(c.ttl() / 2)
	defer check.Stop()
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errClosed
		}
		c.pruneLocked(time.Now())
		parts, gap := c.partitionLocked()
		if parts != nil {
			c.nextID++
			rd := &clusterRound{
				id:       c.nextID,
				token:    c.token(),
				req:      req,
				parts:    parts,
				frames:   make(map[int64]fo.CounterFrame, len(parts)),
				complete: make(chan struct{}),
			}
			// The root span exists before the announcement so every
			// replica sees its context in the very first poll.
			rd.span = c.Tracer.Start("round", obs.SpanContext{}, rd.id)
			rd.trace = rd.span.Context()
			c.round = rd
			// The round record lands before the announcement (still
			// under c.mu), so no shipment record can precede its round
			// in the log.
			rec := history.Record{Kind: history.KindRound, Round: rd.id, Token: rd.token,
				T: req.T, Eps: req.Eps}
			if req.Users == nil {
				rec.All = true
			} else {
				rec.Users = req.Users
			}
			c.History.Append(rec)
			old := c.announce
			c.announce = make(chan struct{})
			close(old) // wake long-polling replicas
			c.mu.Unlock()
			c.Health.MarkReady()
			return rd, nil
		}
		members := c.members
		c.mu.Unlock()
		select {
		case <-members:
		case <-check.C:
		case <-deadline.C:
			return nil, fmt.Errorf("cluster: no round opened within %v: %s", c.partitionTimeout(), gap)
		case <-c.done:
			return nil, errClosed
		}
	}
}

// Collect implements collect.Collector: it opens one distributed round,
// waits for every participant's counter frame (or a failure, a vanished
// participant, or the deadline), and merges the frames into the sink in
// ascending shard order. Numeric mean rounds are refused — float
// accumulation order differs across shardings, which would break the
// bit-identity contract every backend honors.
func (c *Coordinator) Collect(req collect.Request, sink collect.Sink) error {
	if err := req.Validate(c.n); err != nil {
		return err
	}
	if req.Numeric {
		return errors.New("cluster: numeric mean rounds are not supported: float accumulation does not commute bit-identically across shards")
	}
	cs, ok := sink.(collect.CounterSink)
	if !ok {
		return fmt.Errorf("cluster: sink %T cannot absorb replica counter frames", sink)
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errClosed
	}
	if c.collecting {
		c.mu.Unlock()
		return errors.New("cluster: a collection round is already in progress")
	}
	c.collecting = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.collecting = false
		c.mu.Unlock()
	}()

	rd, err := c.openRound(req)
	if err != nil {
		return err
	}
	c.waitRound(rd, req)

	c.mu.Lock()
	c.round = nil
	c.mu.Unlock()

	rd.mu.Lock()
	rdErr, degraded := rd.err, rd.degraded
	rd.mu.Unlock()
	if rdErr != nil {
		if degraded {
			c.Metrics.addDegradedRound()
		}
		c.History.Append(history.Record{Kind: history.KindClose, Round: rd.id,
			T: req.T, Err: rdErr.Error()})
		rd.span.End(map[string]any{"t": req.T, "ok": false, "degraded": degraded})
		return rdErr
	}
	mergeStart := time.Now()
	msp := c.Tracer.Start("merge", rd.trace, rd.id)
	mergeErr := c.merge(rd, cs)
	msp.End(map[string]any{"frames": len(rd.parts), "ok": mergeErr == nil})
	c.Metrics.observeStage(stageMerge, time.Since(mergeStart))
	rd.span.End(map[string]any{"t": req.T, "ok": mergeErr == nil})
	if c.History != nil {
		crec := history.Record{Kind: history.KindClose, Round: rd.id, T: req.T, OK: mergeErr == nil}
		if mergeErr != nil {
			crec.Err = mergeErr.Error()
		} else if f, err := collect.SinkCounters(cs); err == nil {
			crec.Counters = history.FrameOf(f)
		}
		c.History.Append(crec)
	}
	return mergeErr
}

// waitRound blocks until the round completes, times out, loses a
// participant, or the coordinator closes.
func (c *Coordinator) waitRound(rd *clusterRound, req collect.Request) {
	timeout := c.timeout()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	liveness := time.NewTicker(c.ttl() / 2)
	defer liveness.Stop()
	for {
		select {
		case <-rd.complete:
			return
		case <-timer.C:
			rd.finish(fmt.Errorf("cluster: round t=%d timed out after %v: no counters from %s",
				req.T, timeout, rd.missingNames()), false)
			return
		case <-liveness.C:
			c.mu.Lock()
			c.pruneLocked(time.Now()) // a dead participant degrades the round
			c.mu.Unlock()
		case <-c.done:
			rd.finish(errors.New("cluster: coordinator closed mid-round"), false)
			return
		}
	}
}

// merge folds the round's counter frames into the sink in ascending shard
// order. Counter merging is commutative, so any order yields the same
// bits; the fixed order keeps failure attribution deterministic.
func (c *Coordinator) merge(rd *clusterRound, cs collect.CounterSink) error {
	ids := make([]int64, 0, len(rd.parts))
	for id := range rd.parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return rd.parts[ids[i]].lo < rd.parts[ids[j]].lo })
	for _, id := range ids {
		rd.mu.Lock()
		f := rd.frames[id]
		rd.mu.Unlock()
		if err := cs.AbsorbCounters(f); err != nil {
			return fmt.Errorf("cluster: merging counters of replica %q: %w", rd.parts[id].name, err)
		}
		c.Metrics.addFrame(f)
	}
	return nil
}
