package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"ldpids/internal/fo"
)

// Metrics holds the coordinator's cluster-level counters and renders them
// in Prometheus text exposition format. All methods are nil-safe, matching
// serve.Metrics, so instrumented code never checks whether metrics are
// attached. Render appends the rendered text to an existing response, so
// a gateway can serve serve.Metrics and cluster.Metrics on one /metrics
// endpoint.
type Metrics struct {
	replicas       atomic.Int64 // gauge: currently registered replicas
	joins          atomic.Int64
	leaves         atomic.Int64
	expirations    atomic.Int64
	roundsDegraded atomic.Int64
	framesMerged   atomic.Int64
	frameBytes     atomic.Int64
}

// setReplicas records the current registered-replica count.
func (m *Metrics) setReplicas(n int) {
	if m == nil {
		return
	}
	m.replicas.Store(int64(n))
}

// addJoin counts one replica registration.
func (m *Metrics) addJoin() {
	if m == nil {
		return
	}
	m.joins.Add(1)
}

// addLeave counts one graceful replica departure.
func (m *Metrics) addLeave() {
	if m == nil {
		return
	}
	m.leaves.Add(1)
}

// addExpiration counts one replica dropped for missing heartbeats.
func (m *Metrics) addExpiration() {
	if m == nil {
		return
	}
	m.expirations.Add(1)
}

// addDegradedRound counts one round failed because a participant vanished
// before shipping its counters.
func (m *Metrics) addDegradedRound() {
	if m == nil {
		return
	}
	m.roundsDegraded.Add(1)
}

// addFrame counts one replica counter frame merged into a round's sink.
func (m *Metrics) addFrame(f fo.CounterFrame) {
	if m == nil {
		return
	}
	m.framesMerged.Add(1)
	m.frameBytes.Add(int64(f.WireSize()))
}

// Render renders the counters in Prometheus text exposition format. It
// writes body text only (no headers), so it can be appended after another
// metrics handler's output.
func (m *Metrics) Render(w io.Writer) {
	if m == nil {
		m = &Metrics{} // render zeros: the exposition shape stays stable
	}
	write := func(name, help, typ string, value int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, value)
	}
	write("ldpids_cluster_replicas",
		"Ingestion replicas currently registered with the coordinator.", "gauge",
		m.replicas.Load())
	write("ldpids_cluster_joins_total",
		"Replica registrations accepted.", "counter", m.joins.Load())
	write("ldpids_cluster_leaves_total",
		"Graceful replica departures.", "counter", m.leaves.Load())
	write("ldpids_cluster_expirations_total",
		"Replicas dropped for missing heartbeats.", "counter", m.expirations.Load())
	write("ldpids_cluster_rounds_degraded_total",
		"Rounds failed because a participant vanished before shipping counters.", "counter",
		m.roundsDegraded.Load())
	write("ldpids_cluster_frames_merged_total",
		"Replica counter frames merged into round sinks.", "counter", m.framesMerged.Load())
	write("ldpids_cluster_frame_bytes_total",
		"Wire bytes of merged counter frames.", "counter", m.frameBytes.Load())
}

// ServeHTTP implements http.Handler for a standalone cluster metrics
// endpoint (replica processes; the coordinator usually combines this with
// serve.Metrics on one handler via Render).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	m.Render(w)
}
