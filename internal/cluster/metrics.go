package cluster

import (
	"io"
	"net/http"
	"sync"
	"time"

	"ldpids/internal/fo"
	"ldpids/internal/obs"
)

// Cluster pipeline stage names stamped on ldpids_cluster_stage_seconds:
// ship times a replica exporting and POSTing its counter frame; merge
// times the coordinator absorbing every shipped frame into the round
// sink.
const (
	stageShip  = "ship"
	stageMerge = "merge"
)

// Metrics holds the cluster-level metrics (coordinator membership and
// merge accounting, replica ship latency) on an obs.Registry. All
// methods are nil-safe, matching serve.Metrics, so instrumented code
// never checks whether metrics are attached. The zero value lazily
// creates a private registry; NewMetrics(reg) mounts the families on a
// shared registry — typically serve.Metrics' via its Registry method —
// so one /metrics endpoint serves both.
type Metrics struct {
	once sync.Once
	reg  *obs.Registry

	replicas       *obs.Gauge
	joins          *obs.Counter
	leaves         *obs.Counter
	expirations    *obs.Counter
	roundsDegraded *obs.Counter
	framesMerged   *obs.Counter
	frameBytes     *obs.Counter
	framesRefused  *obs.CounterVec
	stageSeconds   *obs.HistogramVec
}

// NewMetrics returns cluster metrics registered on reg, or on a fresh
// private registry when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	m.init()
	return m
}

func (m *Metrics) init() {
	m.once.Do(func() {
		if m.reg == nil {
			m.reg = obs.NewRegistry()
		}
		m.replicas = m.reg.Gauge("ldpids_cluster_replicas",
			"Ingestion replicas currently registered with the coordinator.")
		m.joins = m.reg.Counter("ldpids_cluster_joins_total",
			"Replica registrations accepted.")
		m.leaves = m.reg.Counter("ldpids_cluster_leaves_total",
			"Graceful replica departures.")
		m.expirations = m.reg.Counter("ldpids_cluster_expirations_total",
			"Replicas dropped for missing heartbeats.")
		m.roundsDegraded = m.reg.Counter("ldpids_cluster_rounds_degraded_total",
			"Rounds failed because a participant vanished before shipping counters.")
		m.framesMerged = m.reg.Counter("ldpids_cluster_frames_merged_total",
			"Replica counter frames merged into round sinks.")
		m.frameBytes = m.reg.Counter("ldpids_cluster_frame_bytes_total",
			"Wire bytes of merged counter frames.")
		m.framesRefused = m.reg.CounterVec("ldpids_cluster_frames_refused_total",
			"Replica counter frames refused by the coordinator, by reason.", "reason")
		m.stageSeconds = m.reg.HistogramVec("ldpids_cluster_stage_seconds",
			"Per-stage cluster latency (replica ship, coordinator merge).",
			obs.LatencyBuckets, "stage")
	})
}

// Registry exposes the underlying registry so callers can co-register
// other families on the same /metrics surface. Nil-safe.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	m.init()
	return m.reg
}

// setReplicas records the current registered-replica count.
func (m *Metrics) setReplicas(n int) {
	if m == nil {
		return
	}
	m.init()
	m.replicas.Set(int64(n))
}

// addJoin counts one replica registration.
func (m *Metrics) addJoin() {
	if m == nil {
		return
	}
	m.init()
	m.joins.Inc()
}

// addLeave counts one graceful replica departure.
func (m *Metrics) addLeave() {
	if m == nil {
		return
	}
	m.init()
	m.leaves.Inc()
}

// addExpiration counts one replica dropped for missing heartbeats.
func (m *Metrics) addExpiration() {
	if m == nil {
		return
	}
	m.init()
	m.expirations.Inc()
}

// addDegradedRound counts one round failed because a participant
// vanished before shipping its counters.
func (m *Metrics) addDegradedRound() {
	if m == nil {
		return
	}
	m.init()
	m.roundsDegraded.Inc()
}

// addFrame counts one replica counter frame merged into a round's sink.
func (m *Metrics) addFrame(f fo.CounterFrame) {
	if m == nil {
		return
	}
	m.init()
	m.framesMerged.Inc()
	m.frameBytes.Add(int64(f.WireSize()))
}

// addFrameRefusal counts one counter frame the coordinator refused,
// under its history.Reason* label.
func (m *Metrics) addFrameRefusal(reason string) {
	if m == nil {
		return
	}
	m.init()
	m.framesRefused.With(reason).Inc()
}

// observeStage records one cluster-stage latency sample (ship on
// replicas, merge on the coordinator).
func (m *Metrics) observeStage(stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.init()
	m.stageSeconds.With(stage).ObserveDuration(d)
}

// value reads one unlabeled series for in-process assertions (tests).
func (m *Metrics) value(name string) int64 {
	if m == nil {
		return 0
	}
	m.init()
	v, _ := m.reg.Value(name)
	return int64(v)
}

// Render renders every family on the registry in Prometheus text
// exposition format, body only (no headers). With a private registry
// that is exactly the cluster families; on a shared registry it renders
// everything mounted there.
func (m *Metrics) Render(w io.Writer) {
	if m == nil {
		m = NewMetrics(nil) // render zeros: the exposition shape stays stable
	}
	m.init()
	m.reg.Render(w)
}

// ServeHTTP implements http.Handler for a /metrics endpoint.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	m.Render(w)
}
