package cluster

import (
	"net/http"
	"path/filepath"
	"testing"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
)

// TestCoordinatorHistoryAudited drives one cluster round with hostile
// shipments mixed in — a forged token and a duplicate frame — and
// proves the coordinator's ingest history journals every verdict and
// passes the offline checker: accepted shards partition the population,
// re-merging them reproduces the closing counters, and the refused
// shipments influenced nothing.
func TestCoordinatorHistoryAudited(t *testing.T) {
	const n, d, eps = 6, 4, 1.0
	c, ts := testCoordinator(t, n, "GRR", d)
	logPath := filepath.Join(t.TempDir(), "coord.jsonl")
	hist, err := history.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	hist.Append(history.Record{Kind: history.KindConfig, Source: "coordinator",
		N: n, D: d, Oracle: "GRR"})
	c.History = hist

	oracle, err := fo.New("GRR", d)
	if err != nil {
		t.Fatal(err)
	}
	a := joinFake(t, ts.URL, "rep-a", 0, 3, n)
	b := joinFake(t, ts.URL, "rep-b", 3, n, n)

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()

	ann := a.pollRound(0)
	forged := *ann
	forged.Token = "forged-token"
	if status := a.ship(&forged, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusConflict {
		t.Fatalf("forged-token shipment answered %d, want 409", status)
	}
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusOK {
		t.Fatalf("honest shipment answered %d", status)
	}
	if status := a.ship(ann, shardFrame(t, oracle, eps, 0, 3), ""); status != http.StatusConflict {
		t.Fatalf("duplicate shipment answered %d, want 409", status)
	}
	if status := b.ship(ann, shardFrame(t, oracle, eps, 3, n), ""); status != http.StatusOK {
		t.Fatalf("second shipment answered %d", status)
	}
	if err := <-done; err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := history.ReadAll(logPath)
	if err != nil {
		t.Fatal(err)
	}
	res := history.Check(recs)
	if !res.OK() {
		t.Fatalf("coordinator history must pass the checker, got %q", res.Violations)
	}
	s := res.Summary
	if s.Rounds != 1 || s.OKRounds != 1 || s.AcceptedFrames != 2 || s.RefusedFrames != 2 {
		t.Fatalf("summary miscounts the round: %+v", s)
	}
	if s.Refusals[history.ReasonStaleToken] != 1 || s.Refusals[history.ReasonDuplicate] != 1 {
		t.Fatalf("refusal reasons = %v, want one stale-token and one duplicate", s.Refusals)
	}

	// Tampering with either accepted frame must break the re-merge proof.
	for i := range recs {
		if recs[i].Kind == history.KindFrame && recs[i].Verdict == history.VerdictAccepted {
			recs[i].Frame.Counts[0]++
			break
		}
	}
	if history.Check(recs).OK() {
		t.Fatal("tampered frame must fail the checker")
	}
}

// TestCoordinatorHistoryFailedRound proves a replica-reported failure is
// journaled as a failed frame before the failed close, and the history
// still passes (a failed round makes no counter claims).
func TestCoordinatorHistoryFailedRound(t *testing.T) {
	const n, d, eps = 6, 4, 1.0
	c, ts := testCoordinator(t, n, "GRR", d)
	logPath := filepath.Join(t.TempDir(), "coord.jsonl")
	hist, err := history.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	hist.Append(history.Record{Kind: history.KindConfig, Source: "coordinator",
		N: n, D: d, Oracle: "GRR"})
	c.History = hist

	a := joinFake(t, ts.URL, "rep-a", 0, 3, n)
	joinFake(t, ts.URL, "rep-b", 3, n, n)

	oracle, err := fo.New("GRR", d)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}) }()
	ann := a.pollRound(0)
	if status := a.ship(ann, fo.CounterFrame{}, "shard exploded"); status != http.StatusOK {
		t.Fatalf("failure shipment answered %d", status)
	}
	if err := <-done; err == nil {
		t.Fatal("replica failure must fail the round")
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := history.ReadAll(logPath)
	if err != nil {
		t.Fatal(err)
	}
	res := history.Check(recs)
	if !res.OK() {
		t.Fatalf("failed-round history must pass the checker, got %q", res.Violations)
	}
	if res.Summary.FailedFrames != 1 || res.Summary.OKRounds != 0 {
		t.Fatalf("summary = %+v, want one failed frame and no ok rounds", res.Summary)
	}
	// Ordering: the failed frame precedes its round's close record.
	frameAt, closeAt := -1, -1
	for i, rec := range recs {
		switch rec.Kind {
		case history.KindFrame:
			frameAt = i
		case history.KindClose:
			closeAt = i
		}
	}
	if frameAt < 0 || closeAt < 0 || frameAt > closeAt {
		t.Fatalf("failed frame at %d must precede close at %d", frameAt, closeAt)
	}
}
