package cluster

import "ldpids/internal/fo"

// joinRequest is the body of POST /cluster/v1/join: a replica announces
// itself and the contiguous user range it ingests for. N is the replica's
// view of the population size; a mismatch with the coordinator's is a
// deployment error and refused outright.
type joinRequest struct {
	Name string `json:"name"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
	N    int    `json:"n"`
}

// joinResponse acknowledges a join: the minted replica id, the
// coordinator's population and oracle configuration (so a misconfigured
// replica fails fast instead of shipping unmergeable counters), and the
// liveness contract the replica must keep.
type joinResponse struct {
	Replica         int64  `json:"replica"`
	N               int    `json:"n"`
	Oracle          string `json:"oracle"`
	D               int    `json:"d"`
	HeartbeatMillis int64  `json:"heartbeat_ms"`
	TTLMillis       int64  `json:"ttl_ms"`
}

// replicaRef is the body of POST /cluster/v1/heartbeat and /cluster/v1/leave.
type replicaRef struct {
	Replica int64 `json:"replica"`
}

// ack is the empty success envelope of membership posts.
type ack struct {
	OK bool `json:"ok"`
}

// announcement is the body of GET /cluster/v1/round: one open coordinator
// round. It mirrors serve's RoundInfo — the replica re-announces the same
// (Round, Token) pair to its device clients via Backend.SetNextRound, so
// device watermarks and report authentication stay coherent across the
// whole cluster. Users lists the requested population subset (null means
// everyone); each replica intersects it with its own shard.
type announcement struct {
	Round  int64   `json:"round"`
	T      int     `json:"t"`
	Eps    float64 `json:"eps"`
	Token  string  `json:"token"`
	Users  []int   `json:"users"`
	Oracle string  `json:"oracle"`
	D      int     `json:"d"`
	N      int     `json:"n"`
	// Trace is the coordinator's root span context (obs.SpanContext
	// wire form), present when the coordinator traces. Replicas parent
	// their shard-round spans under it; it carries no protocol state.
	Trace string `json:"trace,omitempty"`
}

// shipment is the gob body of POST /cluster/v1/counters: one replica's
// merged integer counters for one round — never raw reports, so the
// coordinator's ingest cost scales with the counter shape, not the
// population. A replica whose local round failed ships Err instead of a
// frame; the coordinator fails the round loudly rather than releasing an
// estimate that silently misses a shard.
type shipment struct {
	Round   int64
	Token   string
	Replica int64
	Err     string
	Frame   fo.CounterFrame
}

// shipAck is the success response to a counter shipment.
type shipAck struct {
	Accepted bool `json:"accepted"`
}

// wireError is the JSON error envelope of every non-2xx response.
type wireError struct {
	Error string `json:"error"`
}
