package numeric

import (
	"math"
	"testing"
	"testing/quick"

	"ldpids/internal/ldprand"
)

func perturbers() []Perturber { return []Perturber{Duchi{}, Piecewise{}} }

func TestUnbiasedness(t *testing.T) {
	src := ldprand.New(11)
	for _, p := range perturbers() {
		for _, v := range []float64{-1, -0.5, 0, 0.3, 1} {
			const n = 200000
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += p.Perturb(v, 1.0, src)
			}
			mean := sum / n
			if math.Abs(mean-v) > 0.02 {
				t.Errorf("%s: E[perturb(%v)] = %v", p.Name(), v, mean)
			}
		}
	}
}

func TestEmpiricalVarianceWithinWorstBound(t *testing.T) {
	src := ldprand.New(13)
	for _, p := range perturbers() {
		for _, eps := range []float64{0.5, 1, 2} {
			worst := p.WorstVariance(eps)
			for _, v := range []float64{0, 0.5, 1} {
				const n = 100000
				sum, sumsq := 0.0, 0.0
				for i := 0; i < n; i++ {
					x := p.Perturb(v, eps, src)
					sum += x
					sumsq += x * x
				}
				mean := sum / n
				variance := sumsq/n - mean*mean
				if variance > worst*1.05 {
					t.Errorf("%s eps=%v v=%v: variance %v exceeds worst bound %v",
						p.Name(), eps, v, variance, worst)
				}
			}
		}
	}
}

func TestDuchiOutputsArePoles(t *testing.T) {
	src := ldprand.New(17)
	e := math.Exp(1.0)
	c := (e + 1) / (e - 1)
	for i := 0; i < 1000; i++ {
		out := Duchi{}.Perturb(0.3, 1.0, src)
		if math.Abs(math.Abs(out)-c) > 1e-12 {
			t.Fatalf("duchi output %v not ±%v", out, c)
		}
	}
}

func TestPiecewiseOutputsInRange(t *testing.T) {
	src := ldprand.New(19)
	e2 := math.Exp(0.5)
	c := (e2 + 1) / (e2 - 1)
	f := func(vRaw int8) bool {
		v := float64(vRaw) / 128
		out := Piecewise{}.Perturb(v, 1.0, src)
		return out >= -c-1e-9 && out <= c+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbPanicsOutOfRange(t *testing.T) {
	src := ldprand.New(23)
	for _, p := range perturbers() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted v=2", p.Name())
				}
			}()
			p.Perturb(2, 1, src)
		}()
	}
}

func TestBestPerturberCrossover(t *testing.T) {
	// Duchi wins at small eps, PM at large eps.
	if BestPerturber(0.3).Name() != "Duchi" {
		t.Error("small-eps best should be Duchi")
	}
	if BestPerturber(4.0).Name() != "Piecewise" {
		t.Error("large-eps best should be Piecewise")
	}
	for _, eps := range []float64{0.2, 1, 3, 5} {
		best := BestPerturber(eps)
		for _, p := range perturbers() {
			if best.WorstVariance(eps) > p.WorstVariance(eps)+1e-12 {
				t.Errorf("BestPerturber(%v)=%s beaten by %s", eps, best.Name(), p.Name())
			}
		}
	}
}

func TestWalkStreamBounds(t *testing.T) {
	src := ldprand.New(29)
	s := NewWalkStream(1000, 0.01, 0.3, 0.05, src)
	if s.N() != 1000 {
		t.Fatal("N")
	}
	buf := make([]float64, 1000)
	for i := 0; i < 50; i++ {
		vals, ok := s.Next(buf)
		if !ok {
			t.Fatal("walk stream ended")
		}
		for _, v := range vals {
			if v < -1 || v > 1 {
				t.Fatalf("value %v escaped [-1, 1]", v)
			}
		}
	}
}

func TestWalkStreamMeanOscillates(t *testing.T) {
	src := ldprand.New(31)
	s := NewWalkStream(20000, 0.001, 0.4, 0.1, src)
	var means []float64
	buf := make([]float64, 20000)
	for i := 0; i < 70; i++ { // > one period at rate 0.1
		vals, _ := s.Next(buf)
		means = append(means, Mean(vals))
	}
	minM, maxM := means[0], means[0]
	for _, m := range means {
		minM = math.Min(minM, m)
		maxM = math.Max(maxM, m)
	}
	if maxM-minM < 0.3 {
		t.Fatalf("mean barely moved: [%v, %v]", minM, maxM)
	}
}

func TestMeanLPUTracksTruth(t *testing.T) {
	root := ldprand.New(37)
	n := 20000
	s := NewWalkStream(n, 0.001, 0.3, 0.05, root.Split())
	p := MeanParams{Eps: 1, W: 10, N: n, Src: root.Split()}
	m, err := NewMeanLPU(p)
	if err != nil {
		t.Fatal(err)
	}
	released, truth, err := RunMean(m, s, 100, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(released) != 100 {
		t.Fatal("run length")
	}
	mae := 0.0
	for i := range released {
		mae += math.Abs(released[i] - truth[i])
	}
	mae /= float64(len(released))
	if mae > 0.15 {
		t.Fatalf("MeanLPU MAE %v too large", mae)
	}
}

func TestMeanLPABeatsLPUOnFlatStream(t *testing.T) {
	root := ldprand.New(41)
	n := 20000
	run := func(mk func() (MeanMechanism, MeanParams)) float64 {
		s := NewWalkStream(n, 0.0001, 0.0, 0, ldprand.New(43).Split())
		m, p := mk()
		released, truth, err := RunMean(m, s, 150, p)
		if err != nil {
			t.Fatal(err)
		}
		mse := 0.0
		for i := range released {
			d := released[i] - truth[i]
			mse += d * d
		}
		return mse / float64(len(released))
	}
	lpu := run(func() (MeanMechanism, MeanParams) {
		p := MeanParams{Eps: 1, W: 20, N: n, Src: root.Split()}
		m, _ := NewMeanLPU(p)
		return m, p
	})
	lpa := run(func() (MeanMechanism, MeanParams) {
		p := MeanParams{Eps: 1, W: 20, N: n, Src: root.Split()}
		m, _ := NewMeanLPA(p)
		return m, p
	})
	if lpa >= lpu {
		t.Fatalf("MeanLPA MSE %v should beat MeanLPU %v on a flat stream", lpa, lpu)
	}
}

func TestMeanLPAUserOncePerWindow(t *testing.T) {
	// Track per-user participation windows by instrumenting the pool:
	// total draws within any w steps never exceed N (conservative check
	// via pool availability never going negative is implicit; here check
	// the recycling keeps the pool non-empty over a long run).
	root := ldprand.New(47)
	n, w := 4000, 8
	s := NewWalkStream(n, 0.01, 0.3, 0.1, root.Split())
	p := MeanParams{Eps: 1, W: w, N: n, Src: root.Split()}
	m, err := NewMeanLPA(p)
	if err != nil {
		t.Fatal(err)
	}
	released, _, err := RunMean(m, s, 200, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(released) != 200 {
		t.Fatal("mechanism stalled (pool exhaustion?)")
	}
}

func TestMeanParamsValidation(t *testing.T) {
	if _, err := NewMeanLPU(MeanParams{Eps: 0, W: 1, N: 1, Src: ldprand.New(1)}); err == nil {
		t.Error("bad eps accepted")
	}
	if _, err := NewMeanLPU(MeanParams{Eps: 1, W: 10, N: 5, Src: ldprand.New(1)}); err == nil {
		t.Error("N < w accepted")
	}
	if _, err := NewMeanLPA(MeanParams{Eps: 1, W: 10, N: 15, Src: ldprand.New(1)}); err == nil {
		t.Error("N < 2w accepted")
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
}

func BenchmarkDuchiPerturb(b *testing.B) {
	src := ldprand.New(1)
	for i := 0; i < b.N; i++ {
		Duchi{}.Perturb(0.5, 1, src)
	}
}

func BenchmarkPiecewisePerturb(b *testing.B) {
	src := ldprand.New(1)
	for i := 0; i < b.N; i++ {
		Piecewise{}.Perturb(0.5, 1, src)
	}
}
