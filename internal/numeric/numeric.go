// Package numeric extends LDP-IDS from frequency to mean estimation, the
// other aggregate the paper's problem statement covers ("other aggregate
// analyses, such as count and mean estimation, can be applicable", §4):
// users hold real values in [-1, 1]; the aggregator estimates the
// population mean per timestamp under w-event ε-LDP.
//
// Two standard one-dimensional LDP mean perturbers are provided — Duchi et
// al.'s binary mechanism and the Piecewise Mechanism (PM) of Wang et al. —
// plus streaming mean mechanisms that port the paper's population-division
// framework (uniform and absorption variants) to the numeric setting. Mean
// mechanisms step through a backend-agnostic Env, so they run over any
// collect.Collector — the in-process simulation, the in-memory channel
// backend, or the TCP transport.
package numeric

import (
	"errors"
	"fmt"
	"math"

	"ldpids/internal/collect"
	"ldpids/internal/ldprand"
	"ldpids/internal/window"
)

// Perturber is a one-shot LDP mechanism for a value v ∈ [-1, 1] whose
// output is an unbiased estimate of v.
type Perturber interface {
	// Name returns the mechanism's short name.
	Name() string
	// Perturb randomizes v with budget eps.
	Perturb(v, eps float64, src *ldprand.Source) float64
	// WorstVariance returns the per-report variance bound over v ∈
	// [-1, 1], used for publication-error estimates.
	WorstVariance(eps float64) float64
}

func checkValue(v float64) {
	if v < -1 || v > 1 || math.IsNaN(v) {
		panic(fmt.Sprintf("numeric: value %v outside [-1, 1]", v))
	}
}

// ---------------------------------------------------------------------------
// Duchi et al.'s binary mechanism.
// ---------------------------------------------------------------------------

// Duchi outputs ±(e^ε+1)/(e^ε-1), choosing the positive pole with
// probability (1 + v·(e^ε-1)/(e^ε+1))/2; the output is an unbiased
// estimator of v with variance C² − v² where C is the pole magnitude.
type Duchi struct{}

// Name implements Perturber.
func (Duchi) Name() string { return "Duchi" }

// Perturb implements Perturber.
func (Duchi) Perturb(v, eps float64, src *ldprand.Source) float64 {
	checkValue(v)
	e := math.Exp(eps)
	c := (e + 1) / (e - 1)
	pPos := 0.5 * (1 + v/c)
	if src.Bernoulli(pPos) {
		return c
	}
	return -c
}

// WorstVariance implements Perturber: C² − v² is maximal at v = 0.
func (Duchi) WorstVariance(eps float64) float64 {
	e := math.Exp(eps)
	c := (e + 1) / (e - 1)
	return c * c
}

// ---------------------------------------------------------------------------
// Piecewise Mechanism (Wang et al., ICDE 2019).
// ---------------------------------------------------------------------------

// Piecewise outputs a value in [-C, C] with a density concentrated in an
// interval around v: with probability e^{ε/2}/(e^{ε/2}+1) the output is
// uniform on [l(v), r(v)] (width C−1 around the scaled v), otherwise
// uniform on the complement. It is unbiased with lower variance than Duchi
// for moderate-to-large ε.
type Piecewise struct{}

// Name implements Perturber.
func (Piecewise) Name() string { return "Piecewise" }

// Perturb implements Perturber.
func (Piecewise) Perturb(v, eps float64, src *ldprand.Source) float64 {
	checkValue(v)
	e2 := math.Exp(eps / 2)
	c := (e2 + 1) / (e2 - 1)
	l := (c+1)/2*v - (c-1)/2
	r := l + c - 1
	if src.Bernoulli(e2 / (e2 + 1)) {
		return l + src.Float64()*(r-l)
	}
	// Uniform on [-C, l) ∪ (r, C]; the two segments have total length
	// (l - (-c)) + (c - r) = 2c - (r - l) - ... pick proportionally.
	left := l - (-c)
	right := c - r
	u := src.Float64() * (left + right)
	if u < left {
		return -c + u
	}
	return r + (u - left)
}

// WorstVariance implements Perturber: the PM variance
// v²/(e^{ε/2}−1) + (e^{ε/2}+3)/(3(e^{ε/2}−1)²) is maximal at |v| = 1.
func (Piecewise) WorstVariance(eps float64) float64 {
	e2 := math.Exp(eps / 2)
	return 1/(e2-1) + (e2+3)/(3*(e2-1)*(e2-1))
}

// BestPerturber picks Duchi for small ε and Piecewise for larger ε,
// following the crossover of their worst-case variances.
func BestPerturber(eps float64) Perturber {
	d, p := Duchi{}, Piecewise{}
	if d.WorstVariance(eps) <= p.WorstVariance(eps) {
		return d
	}
	return p
}

// ---------------------------------------------------------------------------
// Numeric streams.
// ---------------------------------------------------------------------------

// Stream produces each user's true value in [-1, 1] per timestamp.
type Stream interface {
	// N returns the population size.
	N() int
	// Next fills dst with the next timestamp's values.
	Next(dst []float64) ([]float64, bool)
}

// WalkStream gives each user a clamped random walk plus a shared
// sinusoidal drift, producing a population mean that oscillates smoothly —
// the numeric analogue of the Sin dataset.
type WalkStream struct {
	n    int
	step float64
	amp  float64
	rate float64
	vals []float64
	base []float64
	t    int
	src  *ldprand.Source
}

// NewWalkStream returns a stream of n users whose personal values random-
// walk with the given step size around a shared drift amp·sin(rate·t).
func NewWalkStream(n int, step, amp, rate float64, src *ldprand.Source) *WalkStream {
	if n <= 0 {
		panic("numeric: population must be positive")
	}
	base := make([]float64, n)
	for i := range base {
		base[i] = src.Float64()*0.6 - 0.3
	}
	return &WalkStream{
		n: n, step: step, amp: amp, rate: rate,
		vals: make([]float64, n), base: base, src: src,
	}
}

// N implements Stream.
func (w *WalkStream) N() int { return w.n }

// Next implements Stream.
func (w *WalkStream) Next(dst []float64) ([]float64, bool) {
	if cap(dst) < w.n {
		dst = make([]float64, w.n)
	}
	dst = dst[:w.n]
	w.t++
	drift := w.amp * math.Sin(w.rate*float64(w.t))
	for i := range w.base {
		w.base[i] += w.src.NormalScaled(0, w.step)
		if w.base[i] > 1 {
			w.base[i] = 1
		}
		if w.base[i] < -1 {
			w.base[i] = -1
		}
		v := w.base[i] + drift
		if v > 1 {
			v = 1
		}
		if v < -1 {
			v = -1
		}
		dst[i] = v
	}
	return dst, true
}

// Mean returns the mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---------------------------------------------------------------------------
// Streaming mean mechanisms under w-event LDP (population division).
// ---------------------------------------------------------------------------

// Env is the world a mean mechanism interacts with at one timestamp: the
// user population reachable through a numeric LDP perturber. collect.Env
// satisfies it for any collect.Collector backend, so the same mechanism
// runs over the in-process simulation, the in-memory channel backend, or
// the TCP transport.
type Env interface {
	// T returns the current (1-based) timestamp.
	T() int
	// N returns the total user population size.
	N() int
	// CollectMean asks the given users (nil means all) to perturb their
	// current value with budget eps and returns the mean of the perturbed
	// contributions together with the contribution count.
	CollectMean(users []int, eps float64) (mean float64, count int, err error)
}

// MeanMechanism releases one mean estimate per timestamp under w-event
// ε-LDP. Step must be called once per timestamp, in order; the mechanism
// only ever sees perturbed contributions through env.
type MeanMechanism interface {
	// Name returns the method's short name.
	Name() string
	// Step processes the next timestamp through env and returns the
	// released mean.
	Step(env Env) (float64, error)
}

// MeanParams configures a streaming mean mechanism.
type MeanParams struct {
	// Eps is the per-window budget; W the window size; N the population.
	Eps float64
	W   int
	N   int
	// Perturber is the one-shot mean mechanism (nil = BestPerturber).
	Perturber Perturber
	// Src drives sampling and perturbation.
	Src *ldprand.Source
}

func (p *MeanParams) validate() error {
	if p.Eps <= 0 || p.W < 1 || p.N < 1 || p.Src == nil {
		return errors.New("numeric: invalid mean params")
	}
	if p.Perturber == nil {
		p.Perturber = BestPerturber(p.Eps)
	}
	return nil
}

// MeanLPU is the population-uniform streaming mean: w disjoint groups,
// one reporting per timestamp with the full ε.
type MeanLPU struct {
	p      MeanParams
	groups [][]int
	t      int
}

// NewMeanLPU constructs the uniform population-division mean mechanism.
func NewMeanLPU(p MeanParams) (*MeanLPU, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.N < p.W {
		return nil, fmt.Errorf("numeric: MeanLPU needs N >= w, got N=%d w=%d", p.N, p.W)
	}
	perm := p.Src.Perm(p.N)
	groups := make([][]int, p.W)
	for i, u := range perm {
		groups[i%p.W] = append(groups[i%p.W], u)
	}
	return &MeanLPU{p: p, groups: groups}, nil
}

// Name implements MeanMechanism.
func (m *MeanLPU) Name() string { return "MeanLPU" }

// Step implements MeanMechanism.
func (m *MeanLPU) Step(env Env) (float64, error) {
	g := m.t % m.p.W
	m.t++
	mean, _, err := env.CollectMean(m.groups[g], m.p.Eps)
	return mean, err
}

// MeanLPA ports the population-absorption strategy (Algorithm 4) to mean
// estimation: per-timestamp dissimilarity groups estimate (mean_t − r_l)²,
// and publications absorb earmarked users of approximated timestamps.
type MeanLPA struct {
	p            MeanParams
	pool         *meanPool
	last         float64
	t            int
	lastPub      int
	lastPubUsers int
	m1Size       int
	pubUnit      int
	ledger       *window.Ledger
}

// meanPool reuses the sampling-with-recycling logic for numeric users.
type meanPool struct {
	avail []int
	used  [][]int
	w     int
	src   *ldprand.Source
}

func newMeanPool(n, w int, src *ldprand.Source) *meanPool {
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	return &meanPool{avail: avail, used: make([][]int, w), w: w, src: src}
}

func (p *meanPool) draw(t, k int) []int {
	if k > len(p.avail) {
		k = len(p.avail)
	}
	n := len(p.avail)
	for i := 0; i < k; i++ {
		j := p.src.Intn(n - i)
		p.avail[n-1-i], p.avail[j] = p.avail[j], p.avail[n-1-i]
	}
	out := make([]int, k)
	copy(out, p.avail[n-k:])
	p.avail = p.avail[:n-k]
	p.used[t%p.w] = append(p.used[t%p.w], out...)
	return out
}

func (p *meanPool) recycle(t int) {
	i := t % p.w
	p.avail = append(p.avail, p.used[i]...)
	p.used[i] = nil
}

// NewMeanLPA constructs the adaptive population-division mean mechanism.
func NewMeanLPA(p MeanParams) (*MeanLPA, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.N < 2*p.W {
		return nil, fmt.Errorf("numeric: MeanLPA needs N >= 2w, got N=%d w=%d", p.N, p.W)
	}
	unit := p.N / (2 * p.W)
	return &MeanLPA{
		p:       p,
		pool:    newMeanPool(p.N, p.W, p.Src.Split()),
		m1Size:  unit,
		pubUnit: unit,
		ledger:  window.NewLedger(p.W),
	}, nil
}

// Name implements MeanMechanism.
func (m *MeanLPA) Name() string { return "MeanLPA" }

// Step implements MeanMechanism.
func (m *MeanLPA) Step(env Env) (float64, error) {
	m.t++
	// M1: dissimilarity estimate, debiased by the estimator variance.
	u1 := m.pool.draw(m.t, m.m1Size)
	est, _, err := env.CollectMean(u1, m.p.Eps)
	if err != nil {
		return 0, err
	}
	estVar := m.p.Perturber.WorstVariance(m.p.Eps) / float64(len(u1))
	dis := (est-m.last)*(est-m.last) - estVar

	release, err := m.step2(env, dis)
	if err != nil {
		return 0, err
	}
	if m.t >= m.p.W {
		m.pool.recycle(m.t - m.p.W + 1)
	}
	return release, nil
}

func (m *MeanLPA) step2(env Env, dis float64) (float64, error) {
	tN := 0
	if m.lastPubUsers > 0 {
		tN = m.lastPubUsers/m.pubUnit - 1
	}
	if m.lastPub > 0 && m.t-m.lastPub <= tN {
		return m.last, nil
	}
	tA := m.t - (m.lastPub + tN)
	if tA > m.p.W {
		tA = m.p.W
	}
	nPP := m.pubUnit * tA
	errPub := math.Inf(1)
	if nPP > 0 {
		errPub = m.p.Perturber.WorstVariance(m.p.Eps) / float64(nPP)
	}
	if dis > errPub {
		u2 := m.pool.draw(m.t, nPP)
		mean, count, err := env.CollectMean(u2, m.p.Eps)
		if err != nil {
			return 0, err
		}
		m.last = mean
		m.lastPub = m.t
		m.lastPubUsers = count
	}
	return m.last, nil
}

// SimEnv returns an in-process collect environment for mean mechanisms:
// user u perturbs the value behind (*current)[u] with p's perturber and
// randomness. Callers update *current and call Advance once per timestamp.
// Pass the same MeanParams the mechanism was built with so the
// perturbation randomness is shared with its sampling source, keeping runs
// deterministic.
func SimEnv(p MeanParams, current *[]float64) (*collect.Env, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	sim := &collect.Sim{
		Users: p.N,
		NumericReport: func(u, _ int, eps float64) float64 {
			return p.Perturber.Perturb((*current)[u], eps, p.Src)
		},
	}
	return collect.NewEnv(sim), nil
}

// RunMean drives a mean mechanism over T timestamps of a numeric stream
// through the in-process backend, returning released and true mean series.
// p is normally the same MeanParams the mechanism was constructed with.
func RunMean(m MeanMechanism, s Stream, T int, p MeanParams) (released, truth []float64, err error) {
	var current []float64
	env, err := SimEnv(p, &current)
	if err != nil {
		return nil, nil, err
	}
	buf := make([]float64, s.N())
	for t := 1; t <= T; t++ {
		vals, ok := s.Next(buf)
		if !ok {
			break
		}
		current = vals
		env.Advance(t)
		r, err := m.Step(env)
		if err != nil {
			return nil, nil, fmt.Errorf("numeric: %s at t=%d: %w", m.Name(), t, err)
		}
		released = append(released, r)
		truth = append(truth, Mean(vals))
	}
	return released, truth, nil
}
