// Package comm accounts for the communication cost of LDP stream
// collection. The paper's headline metric is CFPU — communication frequency
// per user — the average number of reports each user uploads per timestamp
// (§5.4.3, §6.3.3, Table 2, Fig. 8). Byte-level totals are also tracked so
// oracle encodings can be compared.
package comm

import "fmt"

// Counter accumulates per-run communication statistics. The zero value is
// ready to use.
type Counter struct {
	n          int   // population size
	timestamps int   // number of timestamps observed
	reports    int64 // total reports uploaded
	bytes      int64 // total report bytes uploaded
	perT       []int64
}

// NewCounter returns a counter for a population of n users.
func NewCounter(n int) *Counter { return &Counter{n: n} }

// BeginTimestamp marks the start of a new timestamp.
func (c *Counter) BeginTimestamp() {
	c.timestamps++
	c.perT = append(c.perT, 0)
}

// Observe records that k users uploaded reports totalling b bytes during
// the current timestamp.
func (c *Counter) Observe(k int, b int) {
	c.reports += int64(k)
	c.bytes += int64(b)
	if len(c.perT) > 0 {
		c.perT[len(c.perT)-1] += int64(k)
	}
}

// Stats is an immutable summary of a Counter.
type Stats struct {
	// N is the population size.
	N int
	// Timestamps is the number of observed timestamps.
	Timestamps int
	// Reports is the total number of uploaded reports.
	Reports int64
	// Bytes is the total uploaded payload size.
	Bytes int64
	// CFPU is reports / (N * timestamps): the paper's communication
	// frequency per user.
	CFPU float64
	// ReportsPerT is the report count at each timestamp.
	ReportsPerT []int64
}

// Stats summarizes the counter.
func (c *Counter) Stats() Stats {
	s := Stats{
		N:          c.n,
		Timestamps: c.timestamps,
		Reports:    c.reports,
		Bytes:      c.bytes,
	}
	if c.n > 0 && c.timestamps > 0 {
		s.CFPU = float64(c.reports) / (float64(c.n) * float64(c.timestamps))
	}
	s.ReportsPerT = append(s.ReportsPerT, c.perT...)
	return s
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("N=%d T=%d reports=%d bytes=%d CFPU=%.4f",
		s.N, s.Timestamps, s.Reports, s.Bytes, s.CFPU)
}
