package comm

import (
	"math"
	"strings"
	"testing"
)

func TestCFPU(t *testing.T) {
	c := NewCounter(100)
	for ts := 0; ts < 10; ts++ {
		c.BeginTimestamp()
		c.Observe(100, 400) // all users report once
	}
	s := c.Stats()
	if math.Abs(s.CFPU-1.0) > 1e-12 {
		t.Fatalf("CFPU %v want 1", s.CFPU)
	}
	if s.Reports != 1000 || s.Bytes != 4000 {
		t.Fatalf("totals %d/%d", s.Reports, s.Bytes)
	}
}

func TestPartialParticipation(t *testing.T) {
	c := NewCounter(1000)
	for ts := 0; ts < 20; ts++ {
		c.BeginTimestamp()
		c.Observe(50, 200) // 1/20 of users per timestamp
	}
	s := c.Stats()
	if math.Abs(s.CFPU-0.05) > 1e-12 {
		t.Fatalf("CFPU %v want 0.05", s.CFPU)
	}
}

func TestMultipleObservationsPerTimestamp(t *testing.T) {
	c := NewCounter(10)
	c.BeginTimestamp()
	c.Observe(10, 40)
	c.Observe(10, 40) // second round (e.g. M1 then M2)
	s := c.Stats()
	if s.ReportsPerT[0] != 20 {
		t.Fatalf("per-timestamp reports %d want 20", s.ReportsPerT[0])
	}
	if math.Abs(s.CFPU-2.0) > 1e-12 {
		t.Fatalf("CFPU %v want 2", s.CFPU)
	}
}

func TestZeroSafety(t *testing.T) {
	s := NewCounter(0).Stats()
	if s.CFPU != 0 {
		t.Fatal("zero-population CFPU should be 0")
	}
}

func TestStringFormat(t *testing.T) {
	c := NewCounter(5)
	c.BeginTimestamp()
	c.Observe(5, 20)
	if got := c.Stats().String(); !strings.Contains(got, "CFPU=1.0000") {
		t.Fatalf("String() = %q", got)
	}
}

func TestStatsIsSnapshot(t *testing.T) {
	c := NewCounter(10)
	c.BeginTimestamp()
	c.Observe(10, 40)
	s := c.Stats()
	c.BeginTimestamp()
	c.Observe(10, 40)
	if s.Reports != 10 {
		t.Fatal("earlier snapshot mutated")
	}
	if len(s.ReportsPerT) != 1 {
		t.Fatal("snapshot per-timestamp slice aliased")
	}
}
