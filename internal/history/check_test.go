package history

import (
	"strings"
	"testing"

	"ldpids/internal/fo"
)

// grrCounters folds GRR value reports through the real oracle so the
// synthetic close records carry exactly reachable counters.
func grrCounters(t *testing.T, d int, eps float64, values []int) *Frame {
	t.Helper()
	o := fo.NewGRR(d)
	agg, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := agg.Add(fo.Report{Kind: fo.KindValue, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fo.ExportCounters(agg)
	if err != nil {
		t.Fatal(err)
	}
	return FrameOf(f)
}

// grrReports renders one value report per (user, value) pair.
func grrReports(users, values []int) []Report {
	out := make([]Report, len(users))
	for i, u := range users {
		out[i] = Report{User: u, Kind: "value", Value: values[i]}
	}
	return out
}

// okHistory is a minimal valid gateway history: one full-population GRR
// round, accepted in one batch, closed ok, released.
func okHistory(t *testing.T) []Record {
	t.Helper()
	users := []int{0, 1, 2, 3}
	values := []int{1, 0, 3, 1}
	return []Record{
		{Kind: KindConfig, Source: "gateway", N: 4, D: 4, Oracle: "GRR", W: 2, Budget: 1},
		{Kind: KindRound, Round: 1, Token: "tok-1", T: 1, Eps: 0.5, All: true},
		{Kind: KindBatch, Round: 1, Token: "tok-1", Verdict: VerdictAccepted, Status: 200,
			Folded: 4, Reports: grrReports(users, values)},
		{Kind: KindClose, Round: 1, T: 1, OK: true, Counters: grrCounters(t, 4, 0.5, values)},
		{Kind: KindRelease, T: 1, Values: []float64{1, 1, 0, 1}},
	}
}

// wantViolation replays recs and requires a violation containing want.
func wantViolation(t *testing.T, recs []Record, want string) {
	t.Helper()
	res := Check(recs)
	for _, v := range res.Violations {
		if strings.Contains(v, want) {
			return
		}
	}
	t.Fatalf("no violation containing %q; got %q", want, res.Violations)
}

func TestCheckOKHistory(t *testing.T) {
	res := Check(okHistory(t))
	if !res.OK() {
		t.Fatalf("valid history must pass, got %q", res.Violations)
	}
	s := res.Summary
	if s.Rounds != 1 || s.OKRounds != 1 || s.AcceptedBatches != 1 || s.FoldedReports != 4 || s.Releases != 1 {
		t.Fatalf("summary miscounts the replay: %+v", s)
	}
}

func TestCheckEmptyHistory(t *testing.T) {
	wantViolation(t, nil, "empty history")
}

func TestCheckConfigMustBeFirst(t *testing.T) {
	recs := okHistory(t)
	wantViolation(t, append(recs[1:2], recs...), "before the config record")
}

// Invariant 1: round ids strictly increase, one round open at a time.
func TestCheckRoundMonotonic(t *testing.T) {
	recs := okHistory(t)
	replayed := append(append([]Record{}, recs...),
		Record{Kind: KindRound, Round: 1, Token: "tok-x", T: 2, Eps: 0.5, All: true})
	wantViolation(t, replayed, "ids must strictly increase")

	overlapping := append(append([]Record{}, recs[:2]...),
		Record{Kind: KindRound, Round: 2, Token: "tok-2", T: 2, Eps: 0.5, All: true})
	wantViolation(t, overlapping, "still open")
}

// Invariant 2: tokens are fresh across rounds and never empty.
func TestCheckTokenFresh(t *testing.T) {
	recs := okHistory(t)
	reuse := append(append([]Record{}, recs...),
		Record{Kind: KindRound, Round: 2, Token: "tok-1", T: 2, Eps: 0.5, All: true})
	wantViolation(t, reuse, "reuses round 1's token")

	empty := append(append([]Record{}, recs...),
		Record{Kind: KindRound, Round: 2, Token: "", T: 2, Eps: 0.5, All: true})
	wantViolation(t, empty, "empty token")
}

// Invariant 3: nothing is accepted outside the open round's (id, token).
func TestCheckAcceptInRound(t *testing.T) {
	recs := okHistory(t)
	forged := append([]Record{}, recs...)
	forged[2].Token = "forged"
	wantViolation(t, forged, "accepted outside the open round")

	// An acceptance after the round closed is a cross-round replay.
	replay := append(append([]Record{}, recs...), recs[2])
	wantViolation(t, replay, "accepted outside the open round")
}

// Invariant 4: per-user report slots and ok-round completeness.
func TestCheckReportSlots(t *testing.T) {
	doubled := okHistory(t)
	doubled[2].Reports = grrReports([]int{0, 0, 2, 3}, []int{1, 0, 3, 1})
	wantViolation(t, doubled, "double fold")

	short := okHistory(t)
	short[2].Reports = grrReports([]int{0, 1, 2}, []int{1, 0, 3})
	short[2].Folded = 3
	short[3].Counters = grrCounters(t, 4, 0.5, []int{1, 0, 3})
	wantViolation(t, short, "requested reports missing")
}

// Invariant 5: refusals never influence counters.
func TestCheckRefusedNoInfluence(t *testing.T) {
	recs := okHistory(t)
	refused := append(append([]Record{}, recs[:3]...),
		Record{Kind: KindBatch, Round: 1, Token: "tok-1", Verdict: VerdictRefused,
			Reason: ReasonStaleToken, Status: 409, Folded: 1,
			Reports: grrReports([]int{0}, []int{1})})
	wantViolation(t, append(refused, recs[3:]...), "refusals must not influence counters")
}

// Invariant 6: no user exceeds the window budget.
func TestCheckEpsBudget(t *testing.T) {
	values := []int{1, 0, 3, 1}
	recs := []Record{
		{Kind: KindConfig, Source: "gateway", N: 4, D: 4, Oracle: "GRR", W: 2, Budget: 1},
	}
	// Two adjacent rounds at eps 0.8 each: any 2-window sums to 1.6 > 1.
	for i := 1; i <= 2; i++ {
		tok := []string{"", "tok-1", "tok-2"}[i]
		recs = append(recs,
			Record{Kind: KindRound, Round: int64(i), Token: tok, T: i, Eps: 0.8, All: true},
			Record{Kind: KindBatch, Round: int64(i), Token: tok, Verdict: VerdictAccepted,
				Status: 200, Folded: 4, Reports: grrReports([]int{0, 1, 2, 3}, values)},
			Record{Kind: KindClose, Round: int64(i), T: i, OK: true, Counters: grrCounters(t, 4, 0.8, values)},
		)
	}
	wantViolation(t, recs, "exceeding the budget")
}

// Invariant 7: ok counters are bit-identical to a refold.
func TestCheckRefold(t *testing.T) {
	recs := okHistory(t)
	recs[3].Counters.Counts[0]++
	wantViolation(t, recs, "not reachable from the accepted reports")
}

// coordHistory is a minimal valid coordinator history: one round fed by
// two shard frames, closed with their merge.
func coordHistory(t *testing.T) []Record {
	t.Helper()
	lo := grrCounters(t, 4, 0.5, []int{1, 0})
	hi := grrCounters(t, 4, 0.5, []int{3, 1})
	return []Record{
		{Kind: KindConfig, Source: "coordinator", N: 4, D: 4, Oracle: "GRR", W: 2, Budget: 1},
		{Kind: KindRound, Round: 1, Token: "tok-1", T: 1, Eps: 0.5, All: true},
		{Kind: KindFrame, Round: 1, Token: "tok-1", Verdict: VerdictAccepted, Status: 200,
			Replica: "rep-a", Lo: 0, Hi: 2, Frame: lo},
		{Kind: KindFrame, Round: 1, Token: "tok-1", Verdict: VerdictAccepted, Status: 200,
			Replica: "rep-b", Lo: 2, Hi: 4, Frame: hi},
		{Kind: KindClose, Round: 1, T: 1, OK: true, Counters: grrCounters(t, 4, 0.5, []int{1, 0, 3, 1})},
		{Kind: KindRelease, T: 1, Values: []float64{1, 1, 0, 1}},
	}
}

func TestCheckCoordinatorHistory(t *testing.T) {
	res := Check(coordHistory(t))
	if !res.OK() {
		t.Fatalf("valid coordinator history must pass, got %q", res.Violations)
	}
	if res.Summary.AcceptedFrames != 2 {
		t.Fatalf("summary miscounts frames: %+v", res.Summary)
	}
}

// Invariant 8: accepted shards exactly partition the population.
func TestCheckShardPartition(t *testing.T) {
	gap := coordHistory(t)
	wantViolation(t, append(gap[:3], gap[4:]...), "cover [0:2), want [0:4)")

	overlap := coordHistory(t)
	overlap[3].Lo, overlap[3].Hi = 1, 4
	wantViolation(t, overlap, "overlaps accepted shard")
}

// Invariant 9: releases cohere with round outcomes.
func TestCheckReleaseCoherence(t *testing.T) {
	recs := okHistory(t)
	outOfOrder := append(append([]Record{}, recs...),
		Record{Kind: KindRelease, T: 1, Values: []float64{1, 1, 0, 1}})
	wantViolation(t, outOfOrder, "timestamps must strictly increase")

	// t=2 had no ok round: the release must repeat t=1's verbatim.
	drifting := append(append([]Record{}, recs...),
		Record{Kind: KindRelease, T: 2, Values: []float64{2, 1, 0, 1}})
	wantViolation(t, drifting, "despite no completed round")

	approximated := append(append([]Record{}, recs...),
		Record{Kind: KindRelease, T: 2, Values: []float64{1, 1, 0, 1}})
	if res := Check(approximated); !res.OK() {
		t.Fatalf("verbatim approximation republish must pass, got %q", res.Violations)
	}
}

// A failed round makes no completeness or counter claims, and a history
// interrupted mid-round (no close for the last round) is not a
// violation.
func TestCheckFailedAndInterruptedRounds(t *testing.T) {
	failed := okHistory(t)[:2]
	failed = append(failed,
		Record{Kind: KindClose, Round: 1, T: 1, Err: "round timed out"})
	if res := Check(failed); !res.OK() {
		t.Fatalf("failed round must pass unchecked, got %q", res.Violations)
	}

	interrupted := okHistory(t)
	interrupted = append(interrupted,
		Record{Kind: KindRound, Round: 2, Token: "tok-2", T: 2, Eps: 0.5, All: true})
	if res := Check(interrupted); !res.OK() {
		t.Fatalf("interrupted trailing round must pass, got %q", res.Violations)
	}
}
