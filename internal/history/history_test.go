package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldpids/internal/fo"
)

// TestLogRoundTrip proves Append/ReadAll is a faithful transcript:
// every field written comes back, including report payloads and frames.
func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.jsonl")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindConfig, Source: "gateway", N: 4, D: 3, Oracle: "GRR", W: 2, Budget: 1},
		{Kind: KindRound, Round: 1, Token: "tok-1", T: 1, Eps: 0.5, Users: []int{0, 2}},
		{Kind: KindBatch, Round: 1, Token: "tok-1", Verdict: VerdictAccepted, Status: 200,
			Folded: 2, Bytes: 77, Reports: []Report{
				{User: 0, Kind: "value", Value: 2},
				{User: 2, Kind: "packed", Packed: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
			}},
		{Kind: KindFrame, Round: 1, Token: "tok-1", Verdict: VerdictAccepted, Status: 200,
			Replica: "rep-a", Lo: 0, Hi: 2, Frame: &Frame{Shape: "counts", N: 2, Counts: []int64{1, 0, 1}}},
		{Kind: KindClose, Round: 1, T: 1, OK: true,
			Counters: &Frame{Shape: "counts", N: 2, Counts: []int64{0, 1, 1}}},
		{Kind: KindRelease, T: 1, Values: []float64{0.25, 0.5, 0.25}},
	}
	for _, rec := range recs {
		l.Append(rec)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	if got[2].Reports[1].Kind != "packed" || len(got[2].Reports[1].Packed) != 8 {
		t.Errorf("packed report payload did not round-trip: %+v", got[2].Reports[1])
	}
	if !got[4].Counters.Equal(fo.CounterFrame{Shape: fo.FrameCounts, N: 2, Counts: []int64{0, 1, 1}}) {
		t.Errorf("close counters did not round-trip: %+v", got[4].Counters)
	}
	if got[5].Values[1] != 0.5 {
		t.Errorf("release values did not round-trip: %+v", got[5].Values)
	}
}

// TestReadAllTornTail proves the runlog crash discipline: a torn final
// line (no newline, or a truncated fragment) is dropped silently.
func TestReadAllTornTail(t *testing.T) {
	for name, tail := range map[string]string{
		"no-newline":    `{"kind":"round","round":2`,
		"torn-fragment": `{"kind":"rou` + "\n",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ingest.jsonl")
			body := `{"kind":"config","source":"gateway","n":1,"d":2,"oracle":"GRR"}` + "\n" +
				`{"kind":"round","round":1,"token":"a","t":1,"eps":1,"all":true}` + "\n" + tail
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			recs, err := ReadAll(path)
			if err != nil {
				t.Fatalf("a torn tail must be tolerated, got %v", err)
			}
			if len(recs) != 2 {
				t.Fatalf("read %d records, want 2 (torn tail dropped)", len(recs))
			}
		})
	}
}

// TestReadAllMidFileCorruption proves tampering detection: a damaged
// line that is not the final append cannot occur under append-only
// writes and must be reported, not skipped.
func TestReadAllMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.jsonl")
	body := `{"kind":"config","source":"gateway","n":1,"d":2,"oracle":"GRR"}` + "\n" +
		`{"kinX":"round"}` + "\n" +
		`{"kind":"round","round":1,"token":"a","t":1,"eps":1,"all":true}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(path); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("mid-file corruption must error, got %v", err)
	}
}

// TestNilLogIsSafe proves instrumented code paths need no guards.
func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Append(Record{Kind: KindRound})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogStickyError proves append failures surface at Close without
// failing the appends themselves.
func TestLogStickyError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.jsonl")
	l, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	l.f.Close() // force every subsequent write to fail
	l.Append(Record{Kind: KindRound, Round: 1})
	if l.Err() == nil {
		t.Fatal("append to a closed file must stick an error")
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close must surface the sticky append error")
	}
}
