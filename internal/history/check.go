package history

import (
	"fmt"
	"sort"

	"ldpids/internal/fo"
)

// The checker proves these invariants over a replayed history:
//
//  1. round-monotonic — round ids strictly increase and at most one
//     round is open at a time.
//  2. token-fresh — every round's token is non-empty and never reused by
//     a later round.
//  3. accept-in-round — accepted batches and frames carry exactly the
//     open round's (id, token): a replayed, forged, or stale token is
//     never accepted, in-round or across rounds.
//  4. report-slots — no user folds more reports into a round than the
//     round requested of them, and a round that closed ok received every
//     requested report.
//  5. refused-no-influence — a batch refused before the fold loop
//     (malformed, oversized, stale token, closed round) folded nothing;
//     a mid-batch refusal's folded prefix landed in the open round only.
//  6. eps-budget — no user's folded reports exceed the configured ε
//     budget over any window of W consecutive timestamps.
//  7. refold — an ok frequency round's closing counters are bit-identical
//     to re-folding its accepted report multiset (or re-merging its
//     accepted frames) from scratch.
//  8. shard-partition — the accepted frames of an ok coordinator round
//     exactly partition [0, n): no gap, no overlap, no duplicate shard.
//  9. release-coherence — release timestamps strictly increase, and a
//     release at a timestamp with no ok round repeats the previous
//     release bit-for-bit (the mechanisms' approximation step).

// Summary counts what the checker replayed.
type Summary struct {
	// Source echoes the config record's role.
	Source string
	// Rounds counts announced rounds; OKRounds those that closed ok.
	Rounds, OKRounds int
	// AcceptedBatches/RefusedBatches count batch verdicts; FoldedReports
	// the reports folded into sinks (accepted batches plus refused
	// batches' folded prefixes).
	AcceptedBatches, RefusedBatches, FoldedReports int
	// AcceptedFrames, RefusedFrames, and FailedFrames count frame
	// shipment verdicts.
	AcceptedFrames, RefusedFrames, FailedFrames int
	// Releases counts release records.
	Releases int
	// Refusals counts refused batches and frames per reason.
	Refusals map[string]int
}

// Result is one history's verdict: the replay summary and every
// invariant violation found. An empty Violations slice is a proof that
// the log satisfies the checker's invariants.
type Result struct {
	Summary    Summary
	Violations []string
}

// OK reports whether the history passed.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// spendEntry is one report's budget charge against a user.
type spendEntry struct {
	t   int
	eps float64
}

// openRound is the checker's state for the currently open round.
type openRound struct {
	rec     Record
	pending map[int]int // outstanding report slots per user
	total   int
	folded  []Report // reports folded, in log order
	frames  []Record // accepted frame shipments
}

// checker replays one history.
type checker struct {
	res    *Result
	cfg    *Record
	oracle fo.Oracle // nil until a valid config arrives

	tokens    map[string]int64 // round token -> round id
	lastRound int64
	open      *openRound

	spend    map[int][]spendEntry // user -> folded budget charges
	okRounds map[int]bool         // timestamp -> an ok round closed there
	lastRel  *Record
}

// Check replays the history and proves the package's invariants,
// returning the replay summary and every violation found. It never
// errors: a structurally unreadable log already fails in ReadAll, and
// everything else is a violation.
func Check(recs []Record) *Result {
	c := &checker{
		res:      &Result{Summary: Summary{Refusals: make(map[string]int)}},
		tokens:   make(map[string]int64),
		spend:    make(map[int][]spendEntry),
		okRounds: make(map[int]bool),
	}
	if len(recs) == 0 {
		c.violate("empty history: no records")
		return c.res
	}
	for i, rec := range recs {
		switch rec.Kind {
		case KindConfig:
			c.config(i, rec)
		case KindRound:
			c.round(rec)
		case KindBatch:
			c.batch(rec)
		case KindFrame:
			c.frame(rec)
		case KindClose:
			c.close(rec)
		case KindRelease:
			c.release(rec)
		default:
			c.violate("record %d: unknown kind %q", i, rec.Kind)
		}
	}
	// A round left open at EOF is an interrupted run, not a violation:
	// rounds are serial, so only the final one can be unclosed.
	c.checkBudget()
	return c.res
}

func (c *checker) violate(format string, args ...any) {
	c.res.Violations = append(c.res.Violations, fmt.Sprintf(format, args...))
}

// config handles the mandatory first record.
func (c *checker) config(i int, rec Record) {
	if i != 0 {
		c.violate("record %d: config record must be first", i)
		return
	}
	if rec.N < 1 || rec.D < 1 {
		c.violate("config: population %d and domain %d must be positive", rec.N, rec.D)
		return
	}
	cfg := rec
	c.cfg = &cfg
	c.res.Summary.Source = rec.Source
	if o, err := fo.New(rec.Oracle, rec.D); err == nil {
		c.oracle = o
	} else {
		c.violate("config: %v (refold checks disabled)", err)
	}
}

// round opens a new round.
func (c *checker) round(rec Record) {
	c.res.Summary.Rounds++
	if c.cfg == nil {
		c.violate("round %d announced before the config record", rec.Round)
		return
	}
	if c.open != nil {
		c.violate("round %d announced while round %d is still open", rec.Round, c.open.rec.Round)
		c.open = nil
	}
	if rec.Round <= c.lastRound {
		c.violate("round %d announced after round %d: ids must strictly increase", rec.Round, c.lastRound)
	}
	c.lastRound = max(c.lastRound, rec.Round)
	if rec.Token == "" {
		c.violate("round %d announced with an empty token", rec.Round)
	} else if prev, dup := c.tokens[rec.Token]; dup {
		c.violate("round %d reuses round %d's token %q", rec.Round, prev, rec.Token)
	} else {
		c.tokens[rec.Token] = rec.Round
	}
	if rec.Eps <= 0 {
		c.violate("round %d announced with non-positive eps %v", rec.Round, rec.Eps)
	}
	o := &openRound{rec: rec, pending: make(map[int]int)}
	if rec.All {
		for u := 0; u < c.cfg.N; u++ {
			o.pending[u] = 1
		}
		o.total = c.cfg.N
	} else {
		for _, u := range rec.Users {
			if u < 0 || u >= c.cfg.N {
				c.violate("round %d requests unknown user %d (population %d)", rec.Round, u, c.cfg.N)
				continue
			}
			o.pending[u]++
			o.total++
		}
	}
	c.open = o
}

// matchesOpen reports whether the record's (round, token) authenticates
// against the open round.
func (c *checker) matchesOpen(rec Record) bool {
	return c.open != nil && rec.Round == c.open.rec.Round && rec.Token == c.open.rec.Token
}

// batch handles one report-batch outcome.
func (c *checker) batch(rec Record) {
	switch rec.Verdict {
	case VerdictAccepted:
		c.res.Summary.AcceptedBatches++
		if !c.matchesOpen(rec) {
			c.violate("batch for round %d accepted outside the open round (token %q): replayed or cross-round acceptance", rec.Round, rec.Token)
			return
		}
		if rec.Folded != len(rec.Reports) {
			c.violate("round %d: accepted batch records %d reports but folded %d", rec.Round, len(rec.Reports), rec.Folded)
		}
		c.fold(rec.Reports)
	case VerdictRefused:
		c.res.Summary.RefusedBatches++
		c.res.Summary.Refusals[rec.Reason]++
		if rec.Folded == 0 {
			return
		}
		// Invariant 5: only a mid-batch refusal (bad report, exhausted
		// slot) may leave a folded prefix, and only in the open round.
		switch rec.Reason {
		case ReasonBadReport, ReasonNotAwaited, ReasonRoundClosed:
		default:
			c.violate("round %d: batch refused as %q yet folded %d reports: refusals must not influence counters", rec.Round, rec.Reason, rec.Folded)
		}
		if !c.matchesOpen(rec) {
			c.violate("round %d: refused batch folded %d reports outside the open round", rec.Round, rec.Folded)
			return
		}
		if len(rec.Reports) != rec.Folded {
			c.violate("round %d: refused batch records %d reports but folded %d", rec.Round, len(rec.Reports), rec.Folded)
		}
		c.fold(rec.Reports)
	default:
		c.violate("round %d: batch with unknown verdict %q", rec.Round, rec.Verdict)
	}
}

// fold charges folded reports against the open round's slots and the
// users' budgets.
func (c *checker) fold(reports []Report) {
	o := c.open
	for _, r := range reports {
		c.res.Summary.FoldedReports++
		if o.pending[r.User] == 0 {
			c.violate("round %d: user %d folded more reports than requested (double fold)", o.rec.Round, r.User)
		} else {
			o.pending[r.User]--
		}
		// Budget is charged at fold time: a report consumed the user's
		// randomness even if its round later failed.
		c.spend[r.User] = append(c.spend[r.User], spendEntry{t: o.rec.T, eps: o.rec.Eps})
	}
	o.folded = append(o.folded, reports...)
}

// frame handles one counter-frame shipment outcome.
func (c *checker) frame(rec Record) {
	switch rec.Verdict {
	case VerdictAccepted:
		c.res.Summary.AcceptedFrames++
		if !c.matchesOpen(rec) {
			c.violate("frame for round %d from %q accepted outside the open round: stale or replayed shipment", rec.Round, rec.Replica)
			return
		}
		if rec.Frame == nil {
			c.violate("round %d: accepted frame from %q carries no counters", rec.Round, rec.Replica)
			return
		}
		for _, prev := range c.open.frames {
			if rec.Lo < prev.Hi && prev.Lo < rec.Hi {
				c.violate("round %d: shard [%d:%d) of %q overlaps accepted shard [%d:%d) of %q (duplicate or overlapping shipment)",
					rec.Round, rec.Lo, rec.Hi, rec.Replica, prev.Lo, prev.Hi, prev.Replica)
			}
		}
		c.open.frames = append(c.open.frames, rec)
	case VerdictRefused:
		c.res.Summary.RefusedFrames++
		c.res.Summary.Refusals[rec.Reason]++
	case VerdictFailed:
		c.res.Summary.FailedFrames++
		c.res.Summary.Refusals[rec.Reason]++
	default:
		c.violate("round %d: frame with unknown verdict %q", rec.Round, rec.Verdict)
	}
}

// close handles the end of a round.
func (c *checker) close(rec Record) {
	o := c.open
	c.open = nil
	if o == nil || rec.Round != o.rec.Round {
		c.violate("close for round %d does not match the open round", rec.Round)
		return
	}
	if !rec.OK {
		return // failed rounds carry no completeness or counter claims
	}
	c.res.Summary.OKRounds++
	c.okRounds[o.rec.T] = true
	// Invariant 4 (completeness): an ok round heard from everyone. On a
	// coordinator the individual reports fold at the replicas — a round
	// fed by frame shipments answers completeness with invariant 8's
	// exact shard partition instead of per-user report slots.
	if missing := c.missing(o); missing > 0 && len(o.frames) == 0 {
		c.violate("round %d closed ok with %d of %d requested reports missing", rec.Round, missing, o.total)
	}
	if o.rec.Numeric {
		return // float accumulation is not re-foldable bit-exactly
	}
	if c.oracle == nil {
		return // config was unusable; already reported
	}
	if rec.Counters == nil {
		c.violate("round %d closed ok without counters", rec.Round)
		return
	}
	if len(o.frames) > 0 {
		c.refoldFrames(rec, o)
		return
	}
	c.refoldReports(rec, o)
}

// missing sums the open round's unconsumed report slots.
func (c *checker) missing(o *openRound) int {
	n := 0
	for _, k := range o.pending {
		n += k
	}
	return n
}

// refoldReports proves invariant 7 for a batch-fed round: re-fold the
// accepted report multiset into a fresh aggregator and compare counters
// bit-exactly.
func (c *checker) refoldReports(rec Record, o *openRound) {
	agg, err := c.oracle.NewAggregator(o.rec.Eps)
	if err != nil {
		c.violate("round %d: cannot build a refold aggregator: %v", rec.Round, err)
		return
	}
	for _, r := range o.folded {
		fr, err := r.Decode()
		if err != nil {
			c.violate("round %d: accepted report from user %d is undecodable: %v", rec.Round, r.User, err)
			return
		}
		if err := agg.Add(fr); err != nil {
			c.violate("round %d: accepted report from user %d does not refold: %v", rec.Round, r.User, err)
			return
		}
	}
	c.compareCounters(rec, agg)
}

// refoldFrames proves invariants 7 and 8 for a frame-fed (coordinator)
// round: the accepted shards exactly partition [0, n), and re-merging
// the frames reproduces the closing counters bit-exactly.
func (c *checker) refoldFrames(rec Record, o *openRound) {
	frames := append([]Record(nil), o.frames...)
	sort.Slice(frames, func(i, j int) bool { return frames[i].Lo < frames[j].Lo })
	expect := 0
	for _, f := range frames {
		if f.Lo != expect {
			c.violate("round %d: accepted shards do not partition [0:%d): gap or overlap at user %d (shard [%d:%d) of %q)",
				rec.Round, c.cfg.N, expect, f.Lo, f.Hi, f.Replica)
			return
		}
		expect = f.Hi
	}
	if expect != c.cfg.N {
		c.violate("round %d: accepted shards cover [0:%d), want [0:%d)", rec.Round, expect, c.cfg.N)
		return
	}
	agg, err := c.oracle.NewAggregator(o.rec.Eps)
	if err != nil {
		c.violate("round %d: cannot build a refold aggregator: %v", rec.Round, err)
		return
	}
	for _, f := range frames {
		cf, err := f.Frame.CounterFrame()
		if err != nil {
			c.violate("round %d: accepted frame from %q: %v", rec.Round, f.Replica, err)
			return
		}
		if err := fo.MergeCounters(agg, cf); err != nil {
			c.violate("round %d: accepted frame from %q does not re-merge: %v", rec.Round, f.Replica, err)
			return
		}
	}
	c.compareCounters(rec, agg)
}

// compareCounters exports the refolded aggregator and compares it
// bit-exactly against the close record's counters.
func (c *checker) compareCounters(rec Record, agg fo.Aggregator) {
	exported, err := fo.ExportCounters(agg)
	if err != nil {
		c.violate("round %d: refold aggregator cannot export counters: %v", rec.Round, err)
		return
	}
	if !rec.Counters.Equal(exported) {
		c.violate("round %d: closing counters are not reachable from the accepted reports: logged %s n=%d, refolded %s n=%d",
			rec.Round, rec.Counters.Shape, rec.Counters.N, exported.Shape, exported.N)
	}
}

// release proves invariant 9.
func (c *checker) release(rec Record) {
	c.res.Summary.Releases++
	if c.lastRel != nil && rec.T <= c.lastRel.T {
		c.violate("release at t=%d after release at t=%d: timestamps must strictly increase", rec.T, c.lastRel.T)
	}
	if !c.okRounds[rec.T] {
		// No round completed at this timestamp: the mechanism must have
		// approximated, republishing the previous release verbatim.
		if c.lastRel == nil {
			c.violate("release at t=%d with no completed round and no previous release to repeat", rec.T)
		} else if !sameValues(rec.Values, c.lastRel.Values) {
			c.violate("release at t=%d differs from the previous release despite no completed round at t=%d", rec.T, rec.T)
		}
	}
	r := rec
	c.lastRel = &r
}

// sameValues compares two releases bit-for-bit.
func sameValues(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// checkBudget proves invariant 6: for every user, the summed ε of their
// folded reports over any W consecutive timestamps stays within the
// configured window budget. W == 0 (replica logs, which cannot know the
// deployment window) disables the check.
func (c *checker) checkBudget() {
	if c.cfg == nil || c.cfg.W <= 0 || c.cfg.Budget <= 0 {
		return
	}
	w, budget := c.cfg.W, c.cfg.Budget
	// A hair of slack absorbs the float addition error of summing the
	// mechanisms' eps divisions; a real double-spend overshoots by far
	// more than one ulp per term.
	limit := budget * (1 + 1e-9)
	users := make([]int, 0, len(c.spend))
	for u := range c.spend {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		perT := make(map[int]float64)
		minT, maxT := int(^uint(0)>>1), 0
		for _, e := range c.spend[u] {
			perT[e.t] += e.eps
			minT = min(minT, e.t)
			maxT = max(maxT, e.t)
		}
		for t := minT; t <= maxT; t++ {
			sum := 0.0
			for s := t; s > t-w && s >= minT; s-- {
				sum += perT[s]
			}
			if sum > limit {
				c.violate("user %d spends eps %.6g over window (%d,%d], exceeding the budget %.6g",
					u, sum, t-w, t, budget)
				break // one violation per user keeps the output readable
			}
		}
	}
}
