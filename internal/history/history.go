// Package history records and verifies the gateway's observable ingest
// history. Following the black-box checking approach of PAPERS.md
// (Efficient Black-box Checking of Snapshot Isolation), the running
// aggregator is treated as a black box: serve.Backend and
// cluster.Coordinator append one structured Record per protocol event —
// round announcements, accepted and refused report batches, counter-frame
// shipments, round closes, releases — and Check replays the log offline,
// proving the protocol invariants the live code enforces only at the
// point of enforcement (see the checker's invariant list in check.go).
//
// The log format is JSONL, one Record per line, written with the same
// crash-safety discipline as internal/runlog: the file is opened
// O_APPEND and every Append is a single write syscall, so a crash can
// damage at most the final line. ReadAll tolerates exactly that — a torn
// final line is dropped — while torn lines in the middle of the file
// (impossible under append-only writes) are reported as corruption, which
// is what makes the CI mutation step bite.
//
// A Log is deliberately forgiving at runtime: Append on a nil *Log is a
// no-op, and write failures are sticky (surfaced by Err and Close) rather
// than failing the ingestion request that triggered them — the audit
// trail must never take the service down.
package history

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"ldpids/internal/fo"
)

// Record kinds, in the Kind field of every record.
const (
	// KindConfig is the first record of every log: the deployment
	// parameters the checker verifies against.
	KindConfig = "config"
	// KindRound is one round announcement (id, token, timestamp, budget,
	// requested users).
	KindRound = "round"
	// KindBatch is one POST /v1/report outcome: an accepted batch with
	// its full report payload, or a refusal with its machine-readable
	// reason and the prefix of reports folded before the refusal.
	KindBatch = "batch"
	// KindFrame is one replica counter-frame shipment outcome at the
	// coordinator.
	KindFrame = "frame"
	// KindClose is the end of one round: ok with the sink's exported
	// counters, or failed with the error.
	KindClose = "close"
	// KindRelease is one published release (timestamp and values).
	KindRelease = "release"
)

// Verdicts of batch and frame records.
const (
	// VerdictAccepted marks a batch or frame folded into the round.
	VerdictAccepted = "accepted"
	// VerdictRefused marks a batch or frame the protocol refused.
	VerdictRefused = "refused"
	// VerdictFailed marks a frame shipment that reported a replica-side
	// round failure instead of counters.
	VerdictFailed = "failed"
)

// Machine-readable refusal reasons. Batch reasons before ReasonBadReport
// are pre-fold refusals and must never carry folded reports.
const (
	// ReasonMalformed is an undecodable request body.
	ReasonMalformed = "malformed"
	// ReasonBodyTooLarge is a request body over the byte cap.
	ReasonBodyTooLarge = "body-too-large"
	// ReasonBatchTooLarge is a batch over the report-count cap.
	ReasonBatchTooLarge = "batch-too-large"
	// ReasonUnsupportedWire is a batch posted under a content type the
	// server does not speak (415; the client falls back to JSON). The
	// body is never read, so the record carries no round or token.
	ReasonUnsupportedWire = "unsupported-wire"
	// ReasonStaleToken is a batch or frame whose (round, token) pair does
	// not authenticate against the open round: a replay, a forgery, or a
	// post into a closed round.
	ReasonStaleToken = "stale-token"
	// ReasonRoundClosed is a batch or frame that authenticated but
	// arrived after the round finished.
	ReasonRoundClosed = "round-closed"
	// ReasonBadReport is an undecodable or shape-mismatched report inside
	// an otherwise well-formed batch.
	ReasonBadReport = "bad-report"
	// ReasonNotAwaited is a report from a user with no outstanding
	// report slot (not requested, or already reported — a double report).
	ReasonNotAwaited = "not-awaited"
	// ReasonBadFrame is a counter frame that failed validation.
	ReasonBadFrame = "bad-frame"
	// ReasonNotParticipant is a frame from a replica outside the round's
	// frozen participant set.
	ReasonNotParticipant = "not-participant"
	// ReasonDuplicate is a second frame from the same replica for the
	// same round.
	ReasonDuplicate = "duplicate"
	// ReasonReplicaError is a shipment carrying a replica-side round
	// failure.
	ReasonReplicaError = "replica-error"
)

// Record is one history line. Kind selects which fields are meaningful;
// unused fields stay at their zero value and are omitted from the JSON.
type Record struct {
	Kind string `json:"kind"`

	// Config fields.

	// Source names the writing process role: "gateway" (single-process
	// serve backend), "coordinator", or "replica".
	Source string `json:"source,omitempty"`
	// N is the population size.
	N int `json:"n,omitempty"`
	// D is the domain size.
	D int `json:"d,omitempty"`
	// Oracle is the frequency oracle name (fo.Names).
	Oracle string `json:"oracle,omitempty"`
	// W is the sliding-window length; 0 disables the checker's per-user
	// budget accounting (replicas see only their shard's rounds and
	// cannot know the deployment window).
	W int `json:"w,omitempty"`
	// Budget is the per-window privacy budget ε when W > 0.
	Budget float64 `json:"budget,omitempty"`

	// Round identification, shared by round, batch, frame, and close
	// records. On refusals it is the pair the request claimed, verbatim.
	Round int64  `json:"round,omitempty"`
	Token string `json:"token,omitempty"`

	// Round fields (T also on close and release records).

	// T is the mechanism timestamp.
	T int `json:"t,omitempty"`
	// Eps is the round's privacy budget.
	Eps float64 `json:"eps,omitempty"`
	// Numeric marks a numeric mean round.
	Numeric bool `json:"numeric,omitempty"`
	// All marks a whole-population round (Users elided); an absent Users
	// with All false means an empty request.
	All bool `json:"all,omitempty"`
	// Users lists the requested user ids, in request order and with
	// multiplicity.
	Users []int `json:"users,omitempty"`

	// Batch and frame fields.

	// Verdict is VerdictAccepted, VerdictRefused, or VerdictFailed.
	Verdict string `json:"verdict,omitempty"`
	// Reason is the machine-readable refusal reason.
	Reason string `json:"reason,omitempty"`
	// Status is the HTTP status answered.
	Status int `json:"status,omitempty"`
	// Reports carries the folded reports: the whole batch when accepted,
	// the folded prefix when a mid-batch refusal left earlier reports in
	// the sink.
	Reports []Report `json:"reports,omitempty"`
	// Folded is the number of the batch's reports folded into the sink.
	Folded int `json:"folded,omitempty"`
	// Bytes is the request body size read.
	Bytes int64 `json:"bytes,omitempty"`

	// Frame fields.

	// Replica names the shipping replica; Lo and Hi bound its shard.
	Replica string `json:"replica,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	// Frame is the shipped counter frame (accepted shipments).
	Frame *Frame `json:"frame,omitempty"`

	// Close fields.

	// OK marks a completed round; a false OK carries Err.
	OK bool `json:"ok,omitempty"`
	// Err is the round failure.
	Err string `json:"err,omitempty"`
	// Counters is the round sink's exported counter state (ok frequency
	// rounds only).
	Counters *Frame `json:"counters,omitempty"`

	// Release fields (with T).

	// Values is the released histogram or mean.
	Values []float64 `json:"values,omitempty"`
}

// Report mirrors the serve wire report: one user's perturbed contribution
// as it appeared on the wire. Packed unary payloads are little-endian
// uint64 words flattened to bytes (base64 in the JSON), exactly like the
// HTTP body, so the log is a faithful transcript.
type Report struct {
	User   int     `json:"user"`
	Kind   string  `json:"kind"`
	Value  int     `json:"value,omitempty"`
	Seed   uint64  `json:"seed,omitempty"`
	Bits   []byte  `json:"bits,omitempty"`
	Packed []byte  `json:"packed,omitempty"`
	Num    float64 `json:"num,omitempty"`
}

// Decode parses the logged report back into an fo.Report, mirroring the
// serve wire decoding, so the checker re-folds exactly what the handlers
// folded. Numeric reports have no fo representation and are rejected.
func (r Report) Decode() (fo.Report, error) {
	out := fo.Report{Value: r.Value, Seed: r.Seed}
	switch r.Kind {
	case "value":
		out.Kind = fo.KindValue
	case "unary":
		out.Kind = fo.KindUnary
		out.Bits = r.Bits
	case "packed":
		out.Kind = fo.KindPacked
		if len(r.Packed)%8 != 0 {
			return fo.Report{}, fmt.Errorf("history: packed payload of %d bytes is not a whole number of words", len(r.Packed))
		}
		words := make([]uint64, len(r.Packed)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(r.Packed[8*i:])
		}
		out.Packed = words
	case "hash":
		out.Kind = fo.KindHash
	case "cohort":
		out.Kind = fo.KindCohort
	default:
		return fo.Report{}, fmt.Errorf("history: report kind %q has no fo representation", r.Kind)
	}
	return out, nil
}

// Frame is a logged fo.CounterFrame: the integer counter state of one
// aggregator or shipment, with the shape spelled out as a string so the
// log stays readable with text tools.
type Frame struct {
	Shape  string  `json:"shape"`
	N      int     `json:"n"`
	K      int     `json:"k,omitempty"`
	G      int     `json:"g,omitempty"`
	Counts []int64 `json:"counts"`
}

// FrameOf converts a counter frame for logging.
func FrameOf(f fo.CounterFrame) *Frame {
	return &Frame{
		Shape:  f.Shape.String(),
		N:      f.N,
		K:      f.K,
		G:      f.G,
		Counts: append([]int64(nil), f.Counts...),
	}
}

// CounterFrame converts the logged frame back, rejecting unknown shapes.
func (f *Frame) CounterFrame() (fo.CounterFrame, error) {
	out := fo.CounterFrame{N: f.N, K: f.K, G: f.G, Counts: f.Counts}
	switch f.Shape {
	case fo.FrameCounts.String():
		out.Shape = fo.FrameCounts
	case fo.FrameCohort.String():
		out.Shape = fo.FrameCohort
	default:
		return fo.CounterFrame{}, fmt.Errorf("history: unknown frame shape %q", f.Shape)
	}
	return out, nil
}

// Equal reports whether the logged frame is bit-identical to g.
func (f *Frame) Equal(g fo.CounterFrame) bool {
	if f == nil {
		return false
	}
	if f.Shape != g.Shape.String() || f.N != g.N || f.K != g.K || f.G != g.G || len(f.Counts) != len(g.Counts) {
		return false
	}
	for i, v := range f.Counts {
		if v != g.Counts[i] {
			return false
		}
	}
	return true
}

// Log is an open ingest log. All methods are safe for concurrent use and
// on a nil receiver (no-ops), so instrumented code paths need no guards.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error // first append failure, sticky
}

// Create truncates (or creates) the log at path and opens it for
// appending.
func Create(path string) (*Log, error) {
	// O_APPEND makes every Append land at the true end of file in one
	// write syscall, the runlog crash-safety discipline: a crash tears at
	// most the final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	return &Log{f: f, path: path}, nil
}

// Append writes one record as a single JSONL line. Failures do not
// propagate to the caller — an ingestion request must not fail because
// the audit trail did — but stick and surface through Err and Close.
func (l *Log) Append(rec Record) {
	if l == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.fail(fmt.Errorf("history: marshaling %s record: %w", rec.Kind, err))
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.f.Write(line); err != nil {
		l.err = fmt.Errorf("history: append to %s: %w", l.path, err)
	}
}

// fail records the first failure.
func (l *Log) fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// Err returns the first append failure, if any.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close releases the file, returning the sticky append error (preferred)
// or the close error.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	closeErr := l.f.Close()
	if l.err != nil {
		return l.err
	}
	return closeErr
}

// ReadAll parses the log at path. A torn final line (a crash mid-append)
// is dropped; a torn or undecodable line anywhere else cannot result from
// append-only writes and is reported as corruption.
func ReadAll(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	var recs []Record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn final append
		}
		line := data[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Kind == "" {
			if off+nl+1 >= len(data) {
				break // torn final line that included a newline fragment
			}
			return nil, fmt.Errorf("history: %s: corrupt record at byte %d: %q", path, off, truncateLine(line))
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, nil
}

// truncateLine bounds a corrupt line quoted in an error.
func truncateLine(line []byte) string {
	const max = 120
	if len(line) <= max {
		return string(line)
	}
	return string(line[:max]) + "..."
}
