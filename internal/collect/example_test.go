package collect_test

import (
	"fmt"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// ExampleSim runs one collection round over the in-process backend: the
// collector asks every user's reporter closure for a perturbed report and
// folds it straight into a streaming aggregator sink — the same loop that
// runs unchanged over the Channel and TCP backends.
func ExampleSim() {
	const n = 20000
	oracle := fo.NewOLHC(16) // cohort-hashed OLH: O(1) server folds

	srcs := make([]*ldprand.Source, n)
	for u := range srcs {
		srcs[u] = ldprand.New(uint64(u) + 1)
	}
	backend := &collect.Sim{
		Users: n,
		Report: func(u, t int, eps float64) fo.Report {
			trueValue := u % 16 // each value held by 1/16 of the users
			return oracle.Perturb(trueValue, eps, srcs[u])
		},
	}

	agg, err := oracle.NewAggregator(1.0)
	if err != nil {
		panic(err)
	}
	sink := collect.AggregatorSink{Agg: agg}
	if err := backend.Collect(collect.Request{T: 1, Eps: 1.0}, sink); err != nil {
		panic(err)
	}

	est, err := agg.Estimate()
	if err != nil {
		panic(err)
	}
	fmt.Printf("contributions: %d\n", sink.Count())
	fmt.Printf("f(3) = %.2f (true 0.06)\n", est[3])
	// Output:
	// contributions: 20000
	// f(3) = 0.07 (true 0.06)
}
