// Package collect is the transport-agnostic ingestion layer of LDP-IDS.
//
// A mechanism asks a Collector to gather perturbed contributions from a
// subset of the user population under a privacy budget; the Collector folds
// each contribution into a pluggable Sink as it arrives. Mechanisms never
// see raw user data — only perturbed contributions — mirroring the paper's
// untrusted-aggregator trust model, and they never see the transport: the
// same mechanism runs unchanged over the in-process Sim backend, the
// in-memory Channel backend (one goroutine per user "process"), or the TCP
// gob transport in package transport.
//
// Contributions are either categorical frequency-oracle reports (frequency
// rounds) or perturbed real values (numeric mean rounds), so both the
// paper's histogram mechanisms and the numeric mean extension share one
// ingestion pipeline. Sinks include SliceSink (legacy batch materialization),
// AggregatorSink (streaming O(d) aggregation, including the shard-striped
// fo.ShardedAggregator for large domains), and MeanSink (numeric mean
// accumulation).
//
// Every backend must pass the conformance suite in collect/collecttest:
// identical seeds produce bit-identical released histograms regardless of
// backend, because per-round aggregation is order-independent integer
// counting.
package collect

import (
	"fmt"

	"ldpids/internal/fo"
)

// Contribution is one user's perturbed datum flowing from a backend into a
// Sink: a frequency-oracle report for frequency rounds, or a perturbed real
// value for numeric (mean) rounds.
type Contribution struct {
	// Numeric selects the payload: false means Report, true means Value.
	Numeric bool
	// Report is the frequency-oracle report (frequency rounds).
	Report fo.Report
	// Value is the perturbed real value (numeric rounds).
	Value float64
}

// Size returns the contribution's wire size in bytes for communication
// accounting: a float64 for numeric rounds, the report's encoding otherwise.
func (c Contribution) Size() int {
	if c.Numeric {
		return 8
	}
	return c.Report.Size()
}

// Sink folds one round's contributions into aggregate state. Collectors
// serialize Absorb calls, so implementations need no internal locking;
// contributions may arrive in any order.
type Sink interface {
	// Absorb folds one contribution. It rejects contributions whose kind
	// does not match the sink.
	Absorb(c Contribution) error
	// Count returns the number of contributions absorbed so far.
	Count() int
}

// StripedSink is an optional Sink extension for concurrent ingestion:
// backends whose contributions already arrive on many goroutines (HTTP
// handlers, per-user device goroutines) fold each one shard-locally through
// AbsorbStripe instead of serializing every report through one Absorb loop.
// AbsorbStripe is safe for concurrent use (including on the same stripe);
// aggregation is order-independent integer counting, so striped folds are
// bit-identical to serialized ones. Backends must check Stripes() > 1
// before taking the concurrent path — a sink that cannot stripe reports
// one stripe and rejects AbsorbStripe.
type StripedSink interface {
	Sink
	// Stripes returns the number of shard-local stripes, 1 when the sink
	// has no concurrent entry point.
	Stripes() int
	// AbsorbStripe folds one contribution into the given stripe. Callers
	// spread load deterministically, e.g. user id modulo Stripes.
	AbsorbStripe(stripe int, c Contribution) error
}

// CounterSink is an optional Sink extension for distributed ingestion:
// cluster replicas fold their shard's reports into local aggregators and
// ship whole integer counter frames (fo.CounterFrame) to the coordinator,
// which absorbs each frame here instead of re-folding individual
// contributions. Counter merges are commutative integer addition, so a
// frame-merged round is bit-identical to folding every underlying report
// into one sink. Collectors serialize AbsorbCounters with Absorb, like
// every Sink method.
type CounterSink interface {
	Sink
	// AbsorbCounters folds one exported counter frame into the sink. It
	// rejects frames whose shape or dimensions do not match the sink's
	// aggregator.
	AbsorbCounters(f fo.CounterFrame) error
}

// CounterExporter is an optional Sink extension: sinks backed by a
// counter-based aggregator expose their folded integer counter state, so
// an ingestion backend can record each round's closing counters in its
// audit trail (internal/history) without knowing the sink's concrete
// type. Exporting must not disturb the sink — the frame is a copy.
type CounterExporter interface {
	// ExportCounters returns the sink's counter state as a
	// self-describing frame.
	ExportCounters() (fo.CounterFrame, error)
}

// SinkCounters exports the sink's counter state when it (or a wrapper)
// supports it, and says which sinks do not.
func SinkCounters(s Sink) (fo.CounterFrame, error) {
	ce, ok := s.(CounterExporter)
	if !ok {
		return fo.CounterFrame{}, fmt.Errorf("collect: sink %T does not export counters", s)
	}
	return ce.ExportCounters()
}

// Striper is an optional Collector extension: backends whose ingestion is
// concurrent advertise how many shard-local stripes a round aggregator
// should expose so server folds scale with cores. Env.NewRoundAggregator
// consults it when a mechanism asks its environment for a round aggregator.
type Striper interface {
	// PreferredStripes returns the stripe count ingestion scales best
	// with; values < 2 select the plain serialized aggregator.
	PreferredStripes() int
}

// Framed is an optional Collector extension for network backends: it
// reports the per-contribution framing overhead the backend's wire format
// adds on top of the payload Contribution.Size, so communication metrics
// stay comparable across transports (TCP gob vs HTTP JSON) instead of
// charging every backend the bare payload bytes.
type Framed interface {
	// FrameOverhead returns the extra wire bytes the backend's encoding
	// adds for one contribution whose payload is the given size.
	FrameOverhead(payload int) int
}

// Request describes one collection round: ask the listed users to perturb
// their current value at timestamp T with budget Eps. A nil Users slice
// means "all users" (an empty non-nil slice means none). Numeric selects a
// numeric (mean) round instead of a frequency round.
type Request struct {
	T       int
	Users   []int
	Eps     float64
	Numeric bool
}

// Validate checks the round against a population of n users: the budget
// must be positive and every listed user in [0, n).
func (r Request) Validate(n int) error {
	if r.Eps <= 0 {
		return fmt.Errorf("collect: non-positive eps %v", r.Eps)
	}
	for _, u := range r.Users {
		if u < 0 || u >= n {
			return fmt.Errorf("collect: unknown user %d (population %d)", u, n)
		}
	}
	return nil
}

// forEachUser visits the round's users in request order (all n when Users
// is nil), stopping at the first error.
func (r Request) forEachUser(n int, fn func(u int) error) error {
	if r.Users == nil {
		for u := 0; u < n; u++ {
			if err := fn(u); err != nil {
				return err
			}
		}
		return nil
	}
	for _, u := range r.Users {
		if err := fn(u); err != nil {
			return err
		}
	}
	return nil
}

// Collector is a pluggable ingestion backend: it gathers one round of
// perturbed contributions from the population and folds them into a sink.
// Implementations must validate the request (Request.Validate), serialize
// Absorb calls, and surface failures as errors rather than hangs.
type Collector interface {
	// N returns the population size.
	N() int
	// Collect runs one collection round, folding every gathered
	// contribution into sink.
	Collect(req Request, sink Sink) error
}

// ---------------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------------

// SliceSink materializes a frequency round's reports — the legacy batch
// path behind mechanism.Env.Collect.
type SliceSink struct {
	Reports []fo.Report
}

// Absorb implements Sink.
func (s *SliceSink) Absorb(c Contribution) error {
	if c.Numeric {
		return fmt.Errorf("collect: SliceSink cannot absorb a numeric contribution")
	}
	s.Reports = append(s.Reports, c.Report)
	return nil
}

// Count implements Sink.
func (s *SliceSink) Count() int { return len(s.Reports) }

// AggregatorSink folds a frequency round into a streaming fo.Aggregator
// (the plain per-oracle aggregator or the sharded one), keeping server
// state at O(d).
type AggregatorSink struct {
	Agg fo.Aggregator
}

// Absorb implements Sink.
func (s AggregatorSink) Absorb(c Contribution) error {
	if c.Numeric {
		return fmt.Errorf("collect: AggregatorSink cannot absorb a numeric contribution")
	}
	return s.Agg.Add(c.Report)
}

// Count implements Sink.
func (s AggregatorSink) Count() int { return s.Agg.Reports() }

// stripeFolder is the fo-side concurrent fold entry point
// (fo.StripedAggregator).
type stripeFolder interface {
	Stripes() int
	AddStripe(stripe int, r fo.Report) error
}

// Stripes implements StripedSink: the wrapped aggregator's stripe count
// when it supports concurrent folding (fo.StripedAggregator), 1 otherwise.
func (s AggregatorSink) Stripes() int {
	if sf, ok := s.Agg.(stripeFolder); ok {
		return sf.Stripes()
	}
	return 1
}

// AbsorbStripe implements StripedSink by folding into the wrapped
// aggregator's stripe. It rejects sinks without a concurrent entry point —
// callers must check Stripes() > 1 first.
func (s AggregatorSink) AbsorbStripe(stripe int, c Contribution) error {
	sf, ok := s.Agg.(stripeFolder)
	if !ok {
		return fmt.Errorf("collect: aggregator %T has no concurrent stripe entry point", s.Agg)
	}
	if c.Numeric {
		return fmt.Errorf("collect: AggregatorSink cannot absorb a numeric contribution")
	}
	return sf.AddStripe(stripe, c.Report)
}

// AbsorbCounters implements CounterSink by merging the frame into the
// wrapped aggregator's counters.
func (s AggregatorSink) AbsorbCounters(f fo.CounterFrame) error {
	return fo.MergeCounters(s.Agg, f)
}

// ExportCounters implements CounterExporter via the wrapped aggregator.
func (s AggregatorSink) ExportCounters() (fo.CounterFrame, error) {
	return fo.ExportCounters(s.Agg)
}

// MeanSink accumulates a numeric round into a running mean.
type MeanSink struct {
	sum float64
	n   int
}

// Absorb implements Sink.
func (s *MeanSink) Absorb(c Contribution) error {
	if !c.Numeric {
		return fmt.Errorf("collect: MeanSink cannot absorb a %s report", c.Report.Kind)
	}
	s.sum += c.Value
	s.n++
	return nil
}

// Count implements Sink.
func (s *MeanSink) Count() int { return s.n }

// Sum returns the running sum of absorbed values.
func (s *MeanSink) Sum() float64 { return s.sum }

// Mean returns the mean of the absorbed values, or 0 before any Absorb.
func (s *MeanSink) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}
