package collect

import (
	"fmt"
	"runtime"
	"sync"

	"ldpids/internal/fo"
)

// chanJob is one report request delivered to a user goroutine's inbox.
// With sink set (a striped round), the user goroutine folds its
// contribution shard-locally into stripe user%stripes and replies with an
// ack only; otherwise the contribution travels back over reply and the
// Collect loop serializes the Absorb.
type chanJob struct {
	t       int
	eps     float64
	numeric bool
	sink    StripedSink
	stripes int
	reply   chan<- chanResult
}

// chanResult is one user's answer to a chanJob. folded marks contributions
// the user goroutine already absorbed shard-locally.
type chanResult struct {
	user   int
	c      Contribution
	folded bool
	err    error
}

// Channel is the in-memory queue backend: every user is a long-lived
// goroutine — a stand-in for a separate device process — consuming report
// requests from its own inbox channel and answering with perturbed
// contributions. It exercises real concurrency (request fan-out, unordered
// arrival) without sockets, sitting between the synchronous Sim backend and
// the TCP transport.
//
// Because each user goroutine serves its own requests serially, per-user
// randomness stays deterministic, and frequency aggregation is
// order-independent integer counting, so estimates are bit-identical to the
// Sim backend under identical seeds (see collecttest). When the round's
// sink stripes (StripedSink, e.g. an AggregatorSink over a
// fo.StripedAggregator), each user goroutine folds its own report
// shard-locally instead of funneling every contribution through the
// Collect loop's serialized Absorb — same estimates, no central
// serialization point at large n.
type Channel struct {
	n       int
	report  func(u, t int, eps float64) fo.Report
	numeric func(u, t int, eps float64) float64
	inbox   []chan chanJob
	done    chan struct{}
	once    sync.Once
}

// NewChannel starts n user goroutines answering report requests through
// the given closures (either may be nil to disable that round kind).
// Callers must Close the backend to release the goroutines.
func NewChannel(n int, report func(u, t int, eps float64) fo.Report, numeric func(u, t int, eps float64) float64) *Channel {
	if n < 1 {
		panic(fmt.Sprintf("collect: channel backend needs a positive population, got %d", n))
	}
	c := &Channel{
		n:       n,
		report:  report,
		numeric: numeric,
		inbox:   make([]chan chanJob, n),
		done:    make(chan struct{}),
	}
	for u := 0; u < n; u++ {
		c.inbox[u] = make(chan chanJob, 1)
		go c.serve(u)
	}
	return c
}

// serve is one user's device loop.
func (c *Channel) serve(u int) {
	for {
		select {
		case <-c.done:
			return
		case job := <-c.inbox[u]:
			job.reply <- c.answer(u, job)
		}
	}
}

// answer computes user u's contribution for one request, folding it
// shard-locally when the round's sink stripes.
func (c *Channel) answer(u int, job chanJob) chanResult {
	if job.numeric {
		if c.numeric == nil {
			return chanResult{user: u, err: fmt.Errorf("collect: user %d has no numeric reporter", u)}
		}
		return chanResult{user: u, c: Contribution{Numeric: true, Value: c.numeric(u, job.t, job.eps)}}
	}
	if c.report == nil {
		return chanResult{user: u, err: fmt.Errorf("collect: user %d has no frequency reporter", u)}
	}
	contribution := Contribution{Report: c.report(u, job.t, job.eps)}
	if job.sink != nil {
		// Shard-local fold: the report lands in stripe u%stripes straight
		// from this goroutine — no central Absorb serialization point.
		return chanResult{user: u, folded: true, err: job.sink.AbsorbStripe(u%job.stripes, contribution)}
	}
	return chanResult{user: u, c: contribution}
}

// N implements Collector.
func (c *Channel) N() int { return c.n }

// PreferredStripes implements Striper: one stripe per CPU, since every
// user goroutine can fold its own report.
func (c *Channel) PreferredStripes() int { return runtime.GOMAXPROCS(0) }

// Collect implements Collector: the round fans out to every requested
// user's inbox, responses are folded into sink in arrival order, and the
// first user error aborts the round (after draining outstanding replies).
func (c *Channel) Collect(req Request, sink Sink) error {
	if err := req.Validate(c.n); err != nil {
		return err
	}
	count := len(req.Users)
	if req.Users == nil {
		count = c.n
	}
	reply := make(chan chanResult, count)
	job := chanJob{t: req.T, eps: req.Eps, numeric: req.Numeric, reply: reply}
	if ss, ok := sink.(StripedSink); ok && !req.Numeric {
		if k := ss.Stripes(); k > 1 {
			job.sink, job.stripes = ss, k
		}
	}
	if err := req.forEachUser(c.n, func(u int) error {
		select {
		case c.inbox[u] <- job:
			return nil
		case <-c.done:
			return fmt.Errorf("collect: channel backend closed during round t=%d", req.T)
		}
	}); err != nil {
		return err
	}
	var firstErr error
	for i := 0; i < count; i++ {
		var res chanResult
		select {
		case res = <-reply:
		case <-c.done:
			// A concurrent Close can strand in-flight jobs; surface a
			// clean error instead of waiting for replies that never come.
			return fmt.Errorf("collect: channel backend closed during round t=%d", req.T)
		}
		if res.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("collect: user %d: %w", res.user, res.err)
			}
			continue
		}
		if res.folded {
			continue // already absorbed shard-locally on the user goroutine
		}
		if firstErr == nil {
			if err := sink.Absorb(res.c); err != nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Close stops all user goroutines. Collect must not be called after Close.
func (c *Channel) Close() {
	c.once.Do(func() { close(c.done) })
}
