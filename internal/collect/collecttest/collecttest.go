// Package collecttest is the shared conformance suite for collect.Collector
// backends: every backend — in-process Sim, in-memory Channel, TCP
// transport, HTTP serve backend, and any future one — must produce
// bit-identical frequency estimates from identical seeds, because
// per-round aggregation is order-independent integer counting over
// deterministic per-user perturbations.
//
// A backend test builds its Collector from a Spec's canonical reporters
// (per-user sources seeded Spec.BaseSeed+u, values from Value/NumericValue)
// and hands it to Run, which drives a scripted sequence of rounds and
// compares every estimate against a freshly built in-process reference. It
// also folds each round through the shard-striped fo.ShardedAggregator and
// requires equality with the plain aggregator, and checks that invalid
// rounds surface errors instead of hanging.
package collecttest

import (
	"math"
	"testing"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// Spec describes the canonical deterministic population a backend under
// test must expose through its reporters.
type Spec struct {
	// N is the population size.
	N int
	// Oracle is the frequency oracle shared by all users.
	Oracle fo.Oracle
	// BaseSeed derives user u's perturbation source as BaseSeed+u.
	BaseSeed uint64
	// Numeric enables the numeric mean rounds of the script (set it when
	// the backend wires a NumericReport path).
	Numeric bool
}

// Value is user u's canonical true categorical value at timestamp t.
func Value(u, t, d int) int {
	v := (u*31 + t*17) % d
	if v < 0 {
		v += d
	}
	return v
}

// NumericValue is user u's canonical true numeric value at timestamp t,
// in [-1, 1].
func NumericValue(u, t int) float64 {
	return math.Sin(float64(u)*0.7 + float64(t)*1.3)
}

// Reporters returns one backend instance's report closures: user u
// perturbs the canonical values with an independent source seeded
// BaseSeed+u. Every backend built from the same Spec therefore produces
// the same per-user contribution sequence regardless of transport or
// scheduling. Each backend instance (and the reference) needs its own
// closures, since the sources advance as rounds run.
func (s Spec) Reporters() (report func(u, t int, eps float64) fo.Report, numeric func(u, t int, eps float64) float64) {
	srcs := make([]*ldprand.Source, s.N)
	for u := range srcs {
		srcs[u] = ldprand.New(s.BaseSeed + uint64(u))
	}
	d := s.Oracle.Domain()
	report = func(u, t int, eps float64) fo.Report {
		return s.Oracle.Perturb(Value(u, t, d), eps, srcs[u])
	}
	if s.Numeric {
		// The numeric path draws from the same per-user source; rounds
		// are scripted so the draw order per user is identical everywhere.
		numeric = func(u, t int, eps float64) float64 {
			// Duchi's mechanism: one Bernoulli draw per report.
			return numericPerturb(NumericValue(u, t), eps, srcs[u])
		}
	}
	return report, numeric
}

// numericPerturb is the canonical numeric randomizer (Duchi et al.): one
// deterministic Bernoulli draw per report.
func numericPerturb(v, eps float64, src *ldprand.Source) float64 {
	e := math.Exp(eps)
	c := (e + 1) / (e - 1)
	if src.Bernoulli(0.5 * (1 + v/c)) {
		return c
	}
	return -c
}

// round is one scripted collection request.
type round struct {
	name    string
	t       int
	users   []int
	eps     float64
	numeric bool
}

// script returns the canonical round sequence for a population of n users:
// full rounds, subsets, out-of-order subsets, and repeated draws from the
// same users (advancing their sources), at several budgets.
func script(n int, numeric bool) []round {
	subset := []int{0, 2, 5, n / 2, n - 1}
	reversed := make([]int, 0, n/3)
	for u := n - 1; u >= 0; u -= 3 {
		reversed = append(reversed, u)
	}
	rounds := []round{
		{name: "full", t: 1, users: nil, eps: 1.0},
		{name: "subset", t: 2, users: subset, eps: 0.5},
		{name: "reversed", t: 3, users: reversed, eps: 2.0},
		{name: "subset-again", t: 4, users: subset, eps: 1.0},
	}
	if numeric {
		rounds = append(rounds,
			round{name: "numeric-full", t: 5, users: nil, eps: 1.0, numeric: true},
			round{name: "numeric-subset", t: 6, users: subset, eps: 0.8, numeric: true},
		)
	}
	return rounds
}

// Run drives the backend built by build through the canonical script and
// requires bit-identical frequency estimates (and report counts) against
// the in-process reference, plus fo.ShardedAggregator equality and clean
// errors on invalid rounds. build receives nothing: the backend must
// already be wired to the Spec's Reporters; cleanup (if non-nil) runs at
// the end.
func Run(t *testing.T, s Spec, build func(t *testing.T) (collect.Collector, func())) {
	t.Helper()
	backend, cleanup := build(t)
	if cleanup != nil {
		defer cleanup()
	}
	if got := backend.N(); got != s.N {
		t.Fatalf("backend population %d, want %d", got, s.N)
	}

	refReport, refNumeric := s.Reporters()
	reference := &collect.Sim{Users: s.N, Report: refReport, NumericReport: refNumeric}

	for _, r := range s.script() {
		req := collect.Request{T: r.t, Users: r.users, Eps: r.eps, Numeric: r.numeric}
		if r.numeric {
			want := &collect.MeanSink{}
			if err := reference.Collect(req, want); err != nil {
				t.Fatalf("%s: reference: %v", r.name, err)
			}
			got := &collect.MeanSink{}
			if err := backend.Collect(req, got); err != nil {
				t.Fatalf("%s: backend: %v", r.name, err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("%s: backend folded %d contributions, want %d", r.name, got.Count(), want.Count())
			}
			// Float summation order differs across transports; the means
			// must agree to summation roundoff.
			if math.Abs(got.Mean()-want.Mean()) > 1e-9 {
				t.Fatalf("%s: backend mean %v, want %v", r.name, got.Mean(), want.Mean())
			}
			continue
		}

		wantAgg, err := s.Oracle.NewAggregator(r.eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := reference.Collect(req, collect.AggregatorSink{Agg: wantAgg}); err != nil {
			t.Fatalf("%s: reference: %v", r.name, err)
		}
		want, err := wantAgg.Estimate()
		if err != nil {
			t.Fatal(err)
		}

		// The backend's round folds into a plain aggregator and, in
		// parallel, the shard-striped one: all three estimates must be
		// bit-identical.
		gotAgg, err := s.Oracle.NewAggregator(r.eps)
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := fo.NewShardedAggregator(s.Oracle, r.eps, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(req, teeSink{collect.AggregatorSink{Agg: gotAgg}, collect.AggregatorSink{Agg: sharded}}); err != nil {
			t.Fatalf("%s: backend: %v", r.name, err)
		}
		if gotAgg.Reports() != wantAgg.Reports() {
			t.Fatalf("%s: backend folded %d reports, want %d", r.name, gotAgg.Reports(), wantAgg.Reports())
		}
		got, err := gotAgg.Estimate()
		if err != nil {
			t.Fatalf("%s: backend estimate: %v", r.name, err)
		}
		shardedEst, err := sharded.Estimate()
		if err != nil {
			t.Fatalf("%s: sharded estimate: %v", r.name, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: estimate diverged at k=%d: backend %v, reference %v", r.name, k, got[k], want[k])
			}
			if shardedEst[k] != want[k] {
				t.Fatalf("%s: sharded estimate diverged at k=%d: %v != %v", r.name, k, shardedEst[k], want[k])
			}
		}
	}

	// Invalid rounds surface clean errors on every backend.
	if err := backend.Collect(collect.Request{T: 99, Eps: 0}, &collect.SliceSink{}); err == nil {
		t.Fatal("zero eps accepted")
	}
	if err := backend.Collect(collect.Request{T: 99, Users: []int{s.N}, Eps: 1}, &collect.SliceSink{}); err == nil {
		t.Fatal("out-of-range user accepted")
	}
}

// RunStriped drives a backend built by build through the canonical script
// folding every frequency round into a stripe-folding fo.StripedAggregator
// (via an AggregatorSink, which exposes the concurrent shard-local
// ingestion path to backends that support it — Channel's per-user
// goroutines, serve's HTTP handlers) and requires bit-identical estimates
// against the in-process reference. Numeric rounds run through MeanSinks on
// both sides so per-user sources stay in lockstep with the script.
func RunStriped(t *testing.T, s Spec, stripes int, build func(t *testing.T) (collect.Collector, func())) {
	t.Helper()
	backend, cleanup := build(t)
	if cleanup != nil {
		defer cleanup()
	}
	refReport, refNumeric := s.Reporters()
	reference := &collect.Sim{Users: s.N, Report: refReport, NumericReport: refNumeric}

	for _, r := range s.script() {
		req := collect.Request{T: r.t, Users: r.users, Eps: r.eps, Numeric: r.numeric}
		if r.numeric {
			want, got := &collect.MeanSink{}, &collect.MeanSink{}
			if err := reference.Collect(req, want); err != nil {
				t.Fatalf("%s: reference: %v", r.name, err)
			}
			if err := backend.Collect(req, got); err != nil {
				t.Fatalf("%s: backend: %v", r.name, err)
			}
			if got.Count() != want.Count() {
				t.Fatalf("%s: backend folded %d contributions, want %d", r.name, got.Count(), want.Count())
			}
			if math.Abs(got.Mean()-want.Mean()) > 1e-9 {
				t.Fatalf("%s: backend mean %v, want %v", r.name, got.Mean(), want.Mean())
			}
			continue
		}

		wantAgg, err := s.Oracle.NewAggregator(r.eps)
		if err != nil {
			t.Fatal(err)
		}
		if err := reference.Collect(req, collect.AggregatorSink{Agg: wantAgg}); err != nil {
			t.Fatalf("%s: reference: %v", r.name, err)
		}
		want, err := wantAgg.Estimate()
		if err != nil {
			t.Fatal(err)
		}

		striped, err := fo.NewStripedAggregator(s.Oracle, r.eps, stripes)
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(req, collect.AggregatorSink{Agg: striped}); err != nil {
			t.Fatalf("%s: backend: %v", r.name, err)
		}
		if striped.Reports() != wantAgg.Reports() {
			t.Fatalf("%s: backend folded %d reports, want %d", r.name, striped.Reports(), wantAgg.Reports())
		}
		got, err := striped.Estimate()
		if err != nil {
			t.Fatalf("%s: striped estimate: %v", r.name, err)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s: striped estimate diverged at k=%d: backend %v, reference %v", r.name, k, got[k], want[k])
			}
		}
	}
}

// script binds the package-level script to the spec.
func (s Spec) script() []round { return script(s.N, s.Numeric) }

// teeSink duplicates contributions into two sinks.
type teeSink struct {
	a, b collect.Sink
}

func (t teeSink) Absorb(c collect.Contribution) error {
	if err := t.a.Absorb(c); err != nil {
		return err
	}
	return t.b.Absorb(c)
}

func (t teeSink) Count() int { return t.a.Count() }
