package collect

import (
	"fmt"
	"sync/atomic"

	"ldpids/internal/comm"
	"ldpids/internal/fo"
)

// Env drives a Collector one timestamp at a time and adapts it to the
// mechanism-facing collection interfaces: it satisfies mechanism.Env and
// mechanism.StreamEnv (frequency mechanisms) and numeric.Env (mean
// mechanisms), layering communication accounting and an optional per-round
// observer on top of any backend. The driver calls Advance once per
// timestamp before the mechanism's Step.
type Env struct {
	// Observer, when non-nil, is invoked with every validated collection
	// round before it reaches the backend. The privacy accountant hooks in
	// here.
	Observer func(t int, users []int, eps float64)

	c       Collector
	counter *comm.Counter
	t       int
}

// NewEnv returns an Env over the given backend.
func NewEnv(c Collector) *Env {
	return &Env{c: c, counter: comm.NewCounter(c.N())}
}

// Advance moves the environment to timestamp t and opens a new
// communication accounting period.
func (e *Env) Advance(t int) {
	e.t = t
	e.counter.BeginTimestamp()
}

// T implements mechanism.Env and numeric.Env.
func (e *Env) T() int { return e.t }

// N implements mechanism.Env and numeric.Env.
func (e *Env) N() int { return e.c.N() }

// Backend returns the underlying Collector.
func (e *Env) Backend() Collector { return e.c }

// Stats returns the accumulated communication statistics.
func (e *Env) Stats() comm.Stats { return e.counter.Stats() }

// countingSink tracks report and byte totals on the way into the wrapped
// sink, feeding the communication accountant. Counters are atomic and the
// striped entry point forwards to the inner sink, so backends that fold
// concurrently (StripedSink) keep their shard-local path through the
// accounting layer. Bytes include the backend's per-contribution framing
// overhead (Framed) so network transports report comparable wire totals.
type countingSink struct {
	inner   Sink
	frame   func(payload int) int // nil means no framing overhead
	reports atomic.Int64
	bytes   atomic.Int64
}

// observe records one absorbed contribution.
func (s *countingSink) observe(c Contribution) {
	size := c.Size()
	if s.frame != nil {
		size += s.frame(size)
	}
	s.reports.Add(1)
	s.bytes.Add(int64(size))
}

func (s *countingSink) Absorb(c Contribution) error {
	if err := s.inner.Absorb(c); err != nil {
		return err
	}
	s.observe(c)
	return nil
}

// Stripes implements StripedSink by forwarding the inner sink's stripe
// count (1 when the inner sink cannot stripe).
func (s *countingSink) Stripes() int {
	if ss, ok := s.inner.(StripedSink); ok {
		return ss.Stripes()
	}
	return 1
}

// AbsorbStripe implements StripedSink.
func (s *countingSink) AbsorbStripe(stripe int, c Contribution) error {
	ss, ok := s.inner.(StripedSink)
	if !ok {
		return s.Absorb(c)
	}
	if err := ss.AbsorbStripe(stripe, c); err != nil {
		return err
	}
	s.observe(c)
	return nil
}

// AbsorbCounters implements CounterSink by forwarding whole counter
// frames (cluster replicas shipping merged shard counters) and accounting
// them as the frame's report count and flat wire size; the backend's
// per-contribution framing does not apply to a frame shipment.
func (s *countingSink) AbsorbCounters(f fo.CounterFrame) error {
	cs, ok := s.inner.(CounterSink)
	if !ok {
		return fmt.Errorf("collect: sink %T cannot absorb counter frames", s.inner)
	}
	if err := cs.AbsorbCounters(f); err != nil {
		return err
	}
	s.reports.Add(int64(f.N))
	s.bytes.Add(int64(f.WireSize()))
	return nil
}

// ExportCounters implements CounterExporter by forwarding to the inner
// sink, so the accounting wrapper stays transparent to audit logging.
func (s *countingSink) ExportCounters() (fo.CounterFrame, error) {
	return SinkCounters(s.inner)
}

func (s *countingSink) Count() int { return int(s.reports.Load()) }

// collect runs one validated, observed, accounted round through the
// backend.
func (e *Env) collect(users []int, eps float64, numeric bool, sink Sink) error {
	req := Request{T: e.t, Users: users, Eps: eps, Numeric: numeric}
	if err := req.Validate(e.c.N()); err != nil {
		return err
	}
	if e.Observer != nil {
		e.Observer(e.t, users, eps)
	}
	cs := &countingSink{inner: sink}
	if f, ok := e.c.(Framed); ok {
		cs.frame = f.FrameOverhead
	}
	if err := e.c.Collect(req, cs); err != nil {
		return err
	}
	e.counter.Observe(int(cs.reports.Load()), int(cs.bytes.Load()))
	return nil
}

// NewRoundAggregator implements mechanism.AggregatorEnv: it returns the
// aggregator one collection round should fold into. Backends with
// concurrent ingestion (Striper) get a stripe-folding fo.StripedAggregator
// so the server fold scales with cores; everything else gets the oracle's
// plain aggregator. Striped and plain folds are bit-identical, so the
// choice never changes an estimate.
func (e *Env) NewRoundAggregator(o fo.Oracle, eps float64) (fo.Aggregator, error) {
	if s, ok := e.c.(Striper); ok {
		if k := s.PreferredStripes(); k > 1 {
			return fo.NewStripedAggregator(o, eps, k)
		}
	}
	return o.NewAggregator(eps)
}

// Collect implements mechanism.Env by materializing the round's reports.
func (e *Env) Collect(users []int, eps float64) ([]fo.Report, error) {
	n := len(users)
	if users == nil {
		n = e.c.N()
	}
	sink := &SliceSink{Reports: make([]fo.Report, 0, n)}
	if err := e.collect(users, eps, false, sink); err != nil {
		return nil, err
	}
	return sink.Reports, nil
}

// CollectStream implements mechanism.StreamEnv: each report folds straight
// into agg, so a full-population round allocates no O(n) report buffer.
func (e *Env) CollectStream(users []int, eps float64, agg fo.Aggregator) error {
	return e.collect(users, eps, false, AggregatorSink{Agg: agg})
}

// CollectMean implements numeric.Env: a numeric round folded into a mean
// accumulator. It returns the mean of the perturbed values and the
// contribution count.
func (e *Env) CollectMean(users []int, eps float64) (mean float64, count int, err error) {
	sink := &MeanSink{}
	if err := e.collect(users, eps, true, sink); err != nil {
		return 0, 0, err
	}
	return sink.Mean(), sink.Count(), nil
}
