package collect

import (
	"ldpids/internal/comm"
	"ldpids/internal/fo"
)

// Env drives a Collector one timestamp at a time and adapts it to the
// mechanism-facing collection interfaces: it satisfies mechanism.Env and
// mechanism.StreamEnv (frequency mechanisms) and numeric.Env (mean
// mechanisms), layering communication accounting and an optional per-round
// observer on top of any backend. The driver calls Advance once per
// timestamp before the mechanism's Step.
type Env struct {
	// Observer, when non-nil, is invoked with every validated collection
	// round before it reaches the backend. The privacy accountant hooks in
	// here.
	Observer func(t int, users []int, eps float64)

	c       Collector
	counter *comm.Counter
	t       int
}

// NewEnv returns an Env over the given backend.
func NewEnv(c Collector) *Env {
	return &Env{c: c, counter: comm.NewCounter(c.N())}
}

// Advance moves the environment to timestamp t and opens a new
// communication accounting period.
func (e *Env) Advance(t int) {
	e.t = t
	e.counter.BeginTimestamp()
}

// T implements mechanism.Env and numeric.Env.
func (e *Env) T() int { return e.t }

// N implements mechanism.Env and numeric.Env.
func (e *Env) N() int { return e.c.N() }

// Backend returns the underlying Collector.
func (e *Env) Backend() Collector { return e.c }

// Stats returns the accumulated communication statistics.
func (e *Env) Stats() comm.Stats { return e.counter.Stats() }

// countingSink tracks report and byte totals on the way into the wrapped
// sink, feeding the communication accountant.
type countingSink struct {
	inner   Sink
	reports int
	bytes   int
}

func (s *countingSink) Absorb(c Contribution) error {
	if err := s.inner.Absorb(c); err != nil {
		return err
	}
	s.reports++
	s.bytes += c.Size()
	return nil
}

func (s *countingSink) Count() int { return s.reports }

// collect runs one validated, observed, accounted round through the
// backend.
func (e *Env) collect(users []int, eps float64, numeric bool, sink Sink) error {
	req := Request{T: e.t, Users: users, Eps: eps, Numeric: numeric}
	if err := req.Validate(e.c.N()); err != nil {
		return err
	}
	if e.Observer != nil {
		e.Observer(e.t, users, eps)
	}
	cs := &countingSink{inner: sink}
	if err := e.c.Collect(req, cs); err != nil {
		return err
	}
	e.counter.Observe(cs.reports, cs.bytes)
	return nil
}

// Collect implements mechanism.Env by materializing the round's reports.
func (e *Env) Collect(users []int, eps float64) ([]fo.Report, error) {
	n := len(users)
	if users == nil {
		n = e.c.N()
	}
	sink := &SliceSink{Reports: make([]fo.Report, 0, n)}
	if err := e.collect(users, eps, false, sink); err != nil {
		return nil, err
	}
	return sink.Reports, nil
}

// CollectStream implements mechanism.StreamEnv: each report folds straight
// into agg, so a full-population round allocates no O(n) report buffer.
func (e *Env) CollectStream(users []int, eps float64, agg fo.Aggregator) error {
	return e.collect(users, eps, false, AggregatorSink{Agg: agg})
}

// CollectMean implements numeric.Env: a numeric round folded into a mean
// accumulator. It returns the mean of the perturbed values and the
// contribution count.
func (e *Env) CollectMean(users []int, eps float64) (mean float64, count int, err error) {
	sink := &MeanSink{}
	if err := e.collect(users, eps, true, sink); err != nil {
		return 0, 0, err
	}
	return sink.Mean(), sink.Count(), nil
}
