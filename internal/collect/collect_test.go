package collect_test

import (
	"strings"
	"testing"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
)

func specs() map[string]collecttest.Spec {
	return map[string]collecttest.Spec{
		"GRR":        {N: 40, Oracle: fo.NewGRR(6), BaseSeed: 1000, Numeric: true},
		"OUE-packed": {N: 30, Oracle: fo.NewOUEPacked(130), BaseSeed: 2000},
		"OLH":        {N: 25, Oracle: fo.NewOLH(12), BaseSeed: 3000},
		"OLH-C":      {N: 25, Oracle: fo.NewOLHC(12), BaseSeed: 4000},
	}
}

func TestConformanceSim(t *testing.T) {
	for name, spec := range specs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			collecttest.Run(t, spec, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := spec.Reporters()
				return &collect.Sim{Users: spec.N, Report: report, NumericReport: numeric}, nil
			})
		})
	}
}

func TestConformanceChannel(t *testing.T) {
	for name, spec := range specs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			collecttest.Run(t, spec, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := spec.Reporters()
				ch := collect.NewChannel(spec.N, report, numeric)
				return ch, ch.Close
			})
		})
	}
}

// TestConformanceChannelStriped drives the Channel backend with
// stripe-folding round aggregators: user goroutines absorb shard-locally
// (no central Absorb loop) and estimates stay bit-identical.
func TestConformanceChannelStriped(t *testing.T) {
	for name, spec := range specs() {
		spec := spec
		t.Run(name, func(t *testing.T) {
			collecttest.RunStriped(t, spec, 4, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := spec.Reporters()
				ch := collect.NewChannel(spec.N, report, numeric)
				return ch, ch.Close
			})
		})
	}
}

// framedSim wraps Sim with a fixed per-contribution framing overhead, like
// a network backend.
type framedSim struct {
	collect.Sim
	overhead int
}

func (f *framedSim) FrameOverhead(payload int) int { return f.overhead }

// stripedSim wraps Sim advertising concurrent ingestion.
type stripedSim struct {
	collect.Sim
	stripes int
}

func (s *stripedSim) PreferredStripes() int { return s.stripes }

func TestEnvFramingAccounting(t *testing.T) {
	spec := collecttest.Spec{N: 8, Oracle: fo.NewGRR(4), BaseSeed: 11, Numeric: true}
	report, numeric := spec.Reporters()
	backend := &framedSim{Sim: collect.Sim{Users: spec.N, Report: report, NumericReport: numeric}, overhead: 13}
	env := collect.NewEnv(backend)

	env.Advance(1)
	reports, err := env.Collect(nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	payload := 0
	for _, r := range reports {
		payload += r.Size()
	}
	stats := env.Stats()
	want := int64(payload + 13*spec.N)
	if stats.Bytes != want {
		t.Fatalf("framed bytes = %d, want payload %d + overhead %d = %d", stats.Bytes, payload, 13*spec.N, want)
	}
	// Numeric rounds are framed too.
	env.Advance(2)
	if _, _, err := env.CollectMean([]int{0, 1}, 1.0); err != nil {
		t.Fatal(err)
	}
	if got := env.Stats().Bytes - stats.Bytes; got != 2*(8+13) {
		t.Fatalf("framed numeric bytes = %d, want %d", got, 2*(8+13))
	}
}

func TestNewRoundAggregator(t *testing.T) {
	oracle := fo.NewGRR(4)
	spec := collecttest.Spec{N: 4, Oracle: oracle, BaseSeed: 3}
	report, _ := spec.Reporters()

	// Plain backends get the oracle's serialized aggregator.
	plainEnv := collect.NewEnv(&collect.Sim{Users: spec.N, Report: report})
	agg, err := plainEnv.NewRoundAggregator(oracle, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := agg.(*fo.StripedAggregator); ok {
		t.Fatal("plain backend got a striped aggregator")
	}

	// Backends advertising concurrent ingestion get a striped one.
	stripedEnv := collect.NewEnv(&stripedSim{Sim: collect.Sim{Users: spec.N, Report: report}, stripes: 3})
	agg, err = stripedEnv.NewRoundAggregator(oracle, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sa, ok := agg.(*fo.StripedAggregator)
	if !ok {
		t.Fatalf("striper backend got %T, want *fo.StripedAggregator", agg)
	}
	if sa.Stripes() != 3 {
		t.Fatalf("striped aggregator has %d stripes, want 3", sa.Stripes())
	}

	// A striper preferring < 2 stripes falls back to the plain aggregator.
	oneEnv := collect.NewEnv(&stripedSim{Sim: collect.Sim{Users: spec.N, Report: report}, stripes: 1})
	agg, err = oneEnv.NewRoundAggregator(oracle, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := agg.(*fo.StripedAggregator); ok {
		t.Fatal("single-stripe striper got a striped aggregator")
	}
}

func TestSinkKindMismatch(t *testing.T) {
	numeric := collect.Contribution{Numeric: true, Value: 0.5}
	freq := collect.Contribution{Report: fo.Report{Kind: fo.KindValue, Value: 1}}

	if err := (&collect.SliceSink{}).Absorb(numeric); err == nil {
		t.Error("SliceSink absorbed a numeric contribution")
	}
	if err := (&collect.MeanSink{}).Absorb(freq); err == nil {
		t.Error("MeanSink absorbed a frequency report")
	}
	agg, err := fo.NewGRR(2).NewAggregator(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := (collect.AggregatorSink{Agg: agg}).Absorb(numeric); err == nil {
		t.Error("AggregatorSink absorbed a numeric contribution")
	}
}

func TestContributionSize(t *testing.T) {
	if got := (collect.Contribution{Numeric: true, Value: 1}).Size(); got != 8 {
		t.Errorf("numeric contribution size %d, want 8", got)
	}
	r := fo.Report{Kind: fo.KindValue, Value: 3}
	if got := (collect.Contribution{Report: r}).Size(); got != r.Size() {
		t.Errorf("frequency contribution size %d, want %d", got, r.Size())
	}
}

func TestMeanSink(t *testing.T) {
	s := &collect.MeanSink{}
	if s.Mean() != 0 {
		t.Error("empty mean not 0")
	}
	for _, v := range []float64{1, 2, 3} {
		if err := s.Absorb(collect.Contribution{Numeric: true, Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Count() != 3 || s.Mean() != 2 || s.Sum() != 6 {
		t.Errorf("mean sink state: count=%d sum=%v mean=%v", s.Count(), s.Sum(), s.Mean())
	}
}

func TestEnvAccounting(t *testing.T) {
	spec := collecttest.Spec{N: 10, Oracle: fo.NewGRR(4), BaseSeed: 7, Numeric: true}
	report, numeric := spec.Reporters()
	env := collect.NewEnv(&collect.Sim{Users: spec.N, Report: report, NumericReport: numeric})

	var observed int
	env.Observer = func(t int, users []int, eps float64) { observed++ }

	env.Advance(1)
	reports, err := env.Collect(nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != spec.N {
		t.Fatalf("collected %d reports, want %d", len(reports), spec.N)
	}
	agg, err := spec.Oracle.NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.CollectStream([]int{1, 2, 3}, 1.0, agg); err != nil {
		t.Fatal(err)
	}
	if agg.Reports() != 3 {
		t.Fatalf("streamed %d reports, want 3", agg.Reports())
	}
	env.Advance(2)
	if _, count, err := env.CollectMean([]int{0, 4}, 1.0); err != nil || count != 2 {
		t.Fatalf("CollectMean: count=%d err=%v", count, err)
	}
	if observed != 3 {
		t.Fatalf("observer saw %d rounds, want 3", observed)
	}
	stats := env.Stats()
	if stats.N != spec.N || stats.Timestamps != 2 || stats.Reports != int64(spec.N+3+2) || stats.Bytes == 0 {
		t.Fatalf("comm stats: %+v", stats)
	}
	// Invalid rounds error before reaching the observer or the backend.
	if _, err := env.Collect(nil, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
	if _, err := env.Collect([]int{99}, 1); err == nil {
		t.Fatal("unknown user accepted")
	}
	if observed != 3 {
		t.Fatalf("observer saw invalid rounds: %d", observed)
	}
}

func TestChannelErrorPaths(t *testing.T) {
	// No numeric reporter: numeric rounds error cleanly.
	ch := collect.NewChannel(4, func(u, ts int, eps float64) fo.Report {
		return fo.Report{Kind: fo.KindValue, Value: 0}
	}, nil)
	defer ch.Close()
	err := ch.Collect(collect.Request{T: 1, Eps: 1, Numeric: true}, &collect.MeanSink{})
	if err == nil || !strings.Contains(err.Error(), "numeric") {
		t.Fatalf("numeric round without reporter: %v", err)
	}
	// The backend stays usable after a failed round.
	if err := ch.Collect(collect.Request{T: 2, Eps: 1}, &collect.SliceSink{}); err != nil {
		t.Fatalf("frequency round after failed numeric round: %v", err)
	}

	// Collect on a closed backend errors instead of hanging.
	ch2 := collect.NewChannel(2, nil, nil)
	ch2.Close()
	if err := ch2.Collect(collect.Request{T: 1, Eps: 1}, &collect.SliceSink{}); err == nil {
		t.Fatal("collect on closed backend succeeded")
	}
}
