package collect

import (
	"fmt"

	"ldpids/internal/fo"
)

// Sim is the in-process simulation backend: it calls the report closures
// synchronously for each requested user, in request order. It is the
// reference implementation of Collector — the conformance suite compares
// every other backend against it — and the backbone of mechanism.Runner
// and numeric.RunMean. The closures own the users' true values and
// perturbation randomness; only perturbed contributions cross the boundary.
type Sim struct {
	// Users is the population size.
	Users int
	// Report produces user u's perturbed frequency report at timestamp t
	// with budget eps (nil disables frequency rounds).
	Report func(u, t int, eps float64) fo.Report
	// NumericReport produces user u's perturbed real value (nil disables
	// numeric rounds).
	NumericReport func(u, t int, eps float64) float64
}

// N implements Collector.
func (s *Sim) N() int { return s.Users }

// Collect implements Collector: users are visited synchronously in request
// order, so runs driven through Sim are fully deterministic even with a
// single shared randomness source.
func (s *Sim) Collect(req Request, sink Sink) error {
	if err := req.Validate(s.Users); err != nil {
		return err
	}
	if req.Numeric && s.NumericReport == nil {
		return fmt.Errorf("collect: sim backend has no numeric reporter")
	}
	if !req.Numeric && s.Report == nil {
		return fmt.Errorf("collect: sim backend has no frequency reporter")
	}
	return req.forEachUser(s.Users, func(u int) error {
		if req.Numeric {
			return sink.Absorb(Contribution{Numeric: true, Value: s.NumericReport(u, req.T, req.Eps)})
		}
		return sink.Absorb(Contribution{Report: s.Report(u, req.T, req.Eps)})
	})
}
