package device

import (
	"reflect"
	"testing"

	"ldpids/internal/fo"
)

// TestPopulationDeterminism: two populations with the same seed produce
// identical value streams and identical perturbed reports, regardless of
// how they are sharded across processes — the property that lets a
// networked run be diffed against an in-process run.
func TestPopulationDeterminism(t *testing.T) {
	const n, d = 20, 5
	oracle := fo.NewGRR(d)

	whole := NewPopulation(42, 0, n, d)
	again := NewPopulation(42, 0, n, d)
	wholeReport := whole.Report(oracle)
	againReport := again.Report(oracle)
	wholeNum := whole.NumericReport()
	againNum := again.NumericReport()

	for ts := 1; ts <= 8; ts++ {
		for id := 0; id < n; id++ {
			a, b := wholeReport(id, ts, 1.0), againReport(id, ts, 1.0)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("t=%d id=%d: reports diverged: %+v vs %+v", ts, id, a, b)
			}
		}
		// Numeric rounds advance the same per-device sources.
		if a, b := wholeNum(0, ts, 1.0), againNum(0, ts, 1.0); a != b {
			t.Fatalf("t=%d: numeric reports diverged: %v vs %v", ts, a, b)
		}
	}
}

// TestPopulationLazyAdvance: devices answer for whatever timestamp they
// are asked, skipping intermediate ones deterministically.
func TestPopulationLazyAdvance(t *testing.T) {
	a := NewPopulation(7, 0, 3, 4)
	b := NewPopulation(7, 0, 3, 4)
	// a visits t=1..5, b jumps straight to 5: same value at 5.
	for ts := 1; ts <= 5; ts++ {
		a.Device(1).Value(ts)
	}
	if got, want := b.Device(1).Value(5), a.Device(1).Value(5); got != want {
		t.Fatalf("lazy advance diverged: %d vs %d", got, want)
	}
}

func TestPopulationBounds(t *testing.T) {
	p := NewPopulation(1, 10, 5, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range device access did not panic")
		}
	}()
	p.Device(3)
}

// TestPopulationShardAlignment: a shard population [first, first+n) hosts
// devices identical to the same id range of one full population sharing
// the seed — the derivation burns the preceding devices' root splits. This
// is what makes a cluster of shard-hosting client processes bit-identical
// to one process hosting everyone.
func TestPopulationShardAlignment(t *testing.T) {
	const n, d, shard = 12, 5, 4
	oracle := fo.NewGRR(d)

	whole := NewPopulation(99, 0, n, d)
	wholeReport := whole.Report(oracle)
	for first := 0; first < n; first += shard {
		part := NewPopulation(99, first, shard, d)
		partReport := part.Report(oracle)
		for ts := 1; ts <= 4; ts++ {
			for id := first; id < first+shard; id++ {
				a, b := wholeReport(id, ts, 1.0), partReport(id, ts, 1.0)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("first=%d t=%d id=%d: shard report diverged from the full population: %+v vs %+v",
						first, ts, id, a, b)
				}
			}
		}
	}
}
