// Package device simulates user devices with private value streams: each
// device holds a sticky Markov chain over the categorical domain and a
// clamped random walk in [-1, 1] for numeric mean rounds, advancing lazily
// to whatever timestamp it is asked to report for, and perturbing locally —
// raw values never leave the device.
//
// The same Population drives every transport: cmd/ldpids-client hosts one
// over TCP or HTTP, and cmd/ldpids-gateway's -backend sim mode hosts one
// in-process. Seed derivation is identical everywhere (one root source
// split per device, in id order), so a networked run and an in-process run
// with the same seeds produce bit-identical perturbed report streams — the
// property CI's gateway-smoke job checks end to end. Devices are also
// wire-independent: randomness is consumed per report, never per byte, so
// the HTTP client's -wire json and -wire binary encodings carry the same
// perturbed reports and fold to the same counters.
package device

import (
	"fmt"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/numeric"
)

// Device is one simulated user device's private state.
type Device struct {
	src      *ldprand.Source // perturbation randomness
	valueSrc *ldprand.Source // value-stream randomness
	cur      int
	walk     float64
	lastT    int
	d        int
}

// advance moves the device's value stream to timestamp t (no-op when
// already there).
func (dv *Device) advance(t int) {
	for dv.lastT < t {
		if !dv.valueSrc.Bernoulli(0.9) {
			dv.cur = dv.valueSrc.Intn(dv.d)
		}
		dv.walk += dv.valueSrc.NormalScaled(0, 0.05)
		if dv.walk > 1 {
			dv.walk = 1
		}
		if dv.walk < -1 {
			dv.walk = -1
		}
		dv.lastT++
	}
}

// Value returns the device's categorical value at timestamp t.
func (dv *Device) Value(t int) int {
	dv.advance(t)
	return dv.cur
}

// NumericValue returns the device's numeric walk value at timestamp t.
func (dv *Device) NumericValue(t int) float64 {
	dv.advance(t)
	return dv.walk
}

// Population hosts devices for users [First, First+len) with deterministic
// per-device randomness.
type Population struct {
	first   int
	d       int
	devices []*Device
}

// NewPopulation returns n devices for users [first, first+n) over a
// categorical domain of size d, deriving each device's sources by
// splitting a root source seeded with seed, in id order. The first 2*first
// root splits are burned, so user u's devices are identical whether hosted
// by one full population or by shard populations sharing the seed — the
// property that makes a sharded cluster deployment bit-identical to a
// single process.
func NewPopulation(seed uint64, first, n, d int) *Population {
	if first < 0 || n < 1 || d < 1 {
		panic(fmt.Sprintf("device: population needs non-negative first and positive n and d, got first=%d n=%d d=%d", first, n, d))
	}
	root := ldprand.New(seed)
	for i := 0; i < 2*first; i++ {
		root.Split()
	}
	p := &Population{first: first, d: d, devices: make([]*Device, n)}
	for i := range p.devices {
		dv := &Device{src: root.Split(), valueSrc: root.Split(), d: d}
		dv.cur = dv.valueSrc.Intn(d)
		p.devices[i] = dv
	}
	return p
}

// Device returns the device hosting absolute user id.
func (p *Population) Device(id int) *Device {
	i := id - p.first
	if i < 0 || i >= len(p.devices) {
		panic(fmt.Sprintf("device: user %d outside hosted range [%d,%d)", id, p.first, p.first+len(p.devices)))
	}
	return p.devices[i]
}

// Report returns the frequency-round randomizer: user id's value at t,
// perturbed through o with the device's private source.
func (p *Population) Report(o fo.Oracle) func(id, t int, eps float64) fo.Report {
	return func(id, t int, eps float64) fo.Report {
		dv := p.Device(id)
		return o.Perturb(dv.Value(t), eps, dv.src)
	}
}

// NumericReport returns the numeric-round randomizer: user id's walk value
// at t, perturbed with the budget's best one-shot mean perturber.
func (p *Population) NumericReport() func(id, t int, eps float64) float64 {
	return func(id, t int, eps float64) float64 {
		dv := p.Device(id)
		return numeric.BestPerturber(eps).Perturb(dv.NumericValue(t), eps, dv.src)
	}
}
