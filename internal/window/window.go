// Package window provides sliding-window ledgers used by the w-event LDP
// mechanisms to track per-timestamp resource consumption — privacy budget
// for the budget-division methods and participating-user counts for the
// population-division methods — and to answer windowed sums in O(1).
//
// The mechanisms and the privacy accountant consume the same ledger, so the
// invariant the accountant audits (Σ over any w consecutive timestamps ≤
// capacity) is exactly the one the mechanism enforced.
package window

import "fmt"

// Ledger records one non-negative float per timestamp and maintains the
// rolling sum over the most recent w entries. Timestamps are appended in
// order starting at t=1.
type Ledger struct {
	w       int
	entries []float64 // ring buffer of the last w entries
	head    int       // index in entries of the oldest retained entry
	n       int       // number of entries currently retained (≤ w)
	t       int       // last appended timestamp (0 before first append)
	sum     float64   // sum of retained entries
	history []float64 // full history when retention is enabled
	retain  bool
}

// NewLedger returns a ledger with window size w (w >= 1).
func NewLedger(w int) *Ledger {
	if w < 1 {
		panic(fmt.Sprintf("window: window size must be >= 1, got %d", w))
	}
	return &Ledger{w: w, entries: make([]float64, w)}
}

// NewRetainingLedger returns a ledger that additionally keeps the full
// history of appended values, for auditing.
func NewRetainingLedger(w int) *Ledger {
	l := NewLedger(w)
	l.retain = true
	return l
}

// W returns the window size.
func (l *Ledger) W() int { return l.w }

// T returns the last appended timestamp (0 if empty).
func (l *Ledger) T() int { return l.t }

// Append records value v (must be >= 0) for the next timestamp and returns
// that timestamp.
func (l *Ledger) Append(v float64) int {
	if v < 0 {
		panic(fmt.Sprintf("window: negative ledger entry %v", v))
	}
	if l.n == l.w {
		l.sum -= l.entries[l.head]
		l.entries[l.head] = v
		l.head = (l.head + 1) % l.w
	} else {
		l.entries[(l.head+l.n)%l.w] = v
		l.n++
	}
	l.sum += v
	l.t++
	if l.retain {
		l.history = append(l.history, v)
	}
	return l.t
}

// WindowSum returns the sum of entries over the most recent min(w, t)
// timestamps, i.e. the active window ending at the current timestamp.
func (l *Ledger) WindowSum() float64 { return l.sum }

// Remaining returns capacity - WindowSum(), clamped at zero.
func (l *Ledger) Remaining(capacity float64) float64 {
	r := capacity - l.sum
	if r < 0 {
		return 0
	}
	return r
}

// At returns the entry recorded at absolute timestamp ts (1-based). It
// panics if ts is outside the retained window (or the full history when
// retention is enabled).
func (l *Ledger) At(ts int) float64 {
	if l.retain {
		if ts < 1 || ts > l.t {
			panic(fmt.Sprintf("window: timestamp %d outside history [1,%d]", ts, l.t))
		}
		return l.history[ts-1]
	}
	oldest := l.t - l.n + 1
	if ts < oldest || ts > l.t {
		panic(fmt.Sprintf("window: timestamp %d outside retained window [%d,%d]", ts, oldest, l.t))
	}
	return l.entries[(l.head+(ts-oldest))%l.w]
}

// History returns a copy of the full appended history. It panics unless the
// ledger was built with NewRetainingLedger.
func (l *Ledger) History() []float64 {
	if !l.retain {
		panic("window: History on non-retaining ledger")
	}
	out := make([]float64, len(l.history))
	copy(out, l.history)
	return out
}

// MaxWindowSum scans the retained history and returns the maximum sum over
// any window of w consecutive timestamps. It panics unless retaining.
func (l *Ledger) MaxWindowSum() float64 {
	if !l.retain {
		panic("window: MaxWindowSum on non-retaining ledger")
	}
	maxSum, cur := 0.0, 0.0
	for i, v := range l.history {
		cur += v
		if i >= l.w {
			cur -= l.history[i-l.w]
		}
		if cur > maxSum {
			maxSum = cur
		}
	}
	return maxSum
}

// CheckCapacity verifies that no window of w consecutive timestamps in the
// retained history exceeds capacity (within tol for float slack). It
// returns an error naming the first violating window.
func (l *Ledger) CheckCapacity(capacity, tol float64) error {
	if !l.retain {
		panic("window: CheckCapacity on non-retaining ledger")
	}
	cur := 0.0
	for i, v := range l.history {
		cur += v
		if i >= l.w {
			cur -= l.history[i-l.w]
		}
		if cur > capacity+tol {
			start := i - l.w + 2 // 1-based window start
			if start < 1 {
				start = 1
			}
			return fmt.Errorf("window: window [%d,%d] consumed %.6g > capacity %.6g",
				start, i+1, cur, capacity)
		}
	}
	return nil
}
