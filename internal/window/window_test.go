package window

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAppendAndWindowSum(t *testing.T) {
	l := NewLedger(3)
	if l.T() != 0 {
		t.Fatal("fresh ledger has nonzero T")
	}
	l.Append(1)
	l.Append(2)
	l.Append(3)
	if got := l.WindowSum(); got != 6 {
		t.Fatalf("window sum %v want 6", got)
	}
	l.Append(4) // evicts the 1
	if got := l.WindowSum(); got != 9 {
		t.Fatalf("window sum %v want 9", got)
	}
	if l.T() != 4 {
		t.Fatalf("T = %d want 4", l.T())
	}
}

func TestWindowSumPartialWindow(t *testing.T) {
	l := NewLedger(10)
	l.Append(5)
	l.Append(7)
	if got := l.WindowSum(); got != 12 {
		t.Fatalf("partial window sum %v want 12", got)
	}
}

func TestRemaining(t *testing.T) {
	l := NewLedger(4)
	l.Append(0.3)
	l.Append(0.4)
	if got := l.Remaining(1.0); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("remaining %v want 0.3", got)
	}
	l.Append(0.5)
	if got := l.Remaining(1.0); got != 0 {
		t.Fatalf("remaining clamped %v want 0", got)
	}
}

func TestAt(t *testing.T) {
	l := NewLedger(3)
	for i := 1; i <= 5; i++ {
		l.Append(float64(i))
	}
	// Retained window is timestamps 3..5.
	for ts := 3; ts <= 5; ts++ {
		if got := l.At(ts); got != float64(ts) {
			t.Fatalf("At(%d) = %v", ts, got)
		}
	}
}

func TestAtPanicsOutsideWindow(t *testing.T) {
	l := NewLedger(2)
	l.Append(1)
	l.Append(2)
	l.Append(3)
	defer func() {
		if recover() == nil {
			t.Fatal("At(1) outside retained window did not panic")
		}
	}()
	l.At(1)
}

func TestRetainingHistory(t *testing.T) {
	l := NewRetainingLedger(2)
	vals := []float64{1, 0, 2, 0, 3}
	for _, v := range vals {
		l.Append(v)
	}
	h := l.History()
	if len(h) != len(vals) {
		t.Fatalf("history length %d", len(h))
	}
	for i, v := range vals {
		if h[i] != v {
			t.Fatalf("history[%d] = %v want %v", i, h[i], v)
		}
		if l.At(i+1) != v {
			t.Fatalf("At(%d) = %v want %v", i+1, l.At(i+1), v)
		}
	}
}

func TestMaxWindowSum(t *testing.T) {
	l := NewRetainingLedger(2)
	for _, v := range []float64{1, 2, 3, 0, 0, 5} {
		l.Append(v)
	}
	if got := l.MaxWindowSum(); got != 5 {
		t.Fatalf("MaxWindowSum %v want 5 (window [2,3])", got)
	}
}

func TestCheckCapacity(t *testing.T) {
	l := NewRetainingLedger(3)
	for _, v := range []float64{0.3, 0.3, 0.3, 0.3} {
		l.Append(v)
	}
	if err := l.CheckCapacity(1.0, 1e-9); err != nil {
		t.Fatalf("capacity 1.0 violated: %v", err)
	}
	if err := l.CheckCapacity(0.8, 1e-9); err == nil {
		t.Fatal("capacity 0.8 should be violated (0.9 per window)")
	}
}

func TestNegativeAppendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative append did not panic")
		}
	}()
	NewLedger(2).Append(-1)
}

func TestBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLedger(0) did not panic")
		}
	}()
	NewLedger(0)
}

func TestHistoryPanicsWithoutRetention(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("History on non-retaining ledger did not panic")
		}
	}()
	NewLedger(2).History()
}

func TestQuickWindowSumMatchesNaive(t *testing.T) {
	f := func(wRaw uint8, raw []uint8) bool {
		w := int(wRaw%20) + 1
		l := NewRetainingLedger(w)
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) / 10
			l.Append(vals[i])
		}
		// Naive rolling sum.
		naive := 0.0
		start := len(vals) - w
		if start < 0 {
			start = 0
		}
		for _, v := range vals[start:] {
			naive += v
		}
		return math.Abs(naive-l.WindowSum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxWindowSumMatchesNaive(t *testing.T) {
	f := func(wRaw uint8, raw []uint8) bool {
		w := int(wRaw%10) + 1
		l := NewRetainingLedger(w)
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
			l.Append(vals[i])
		}
		naiveMax := 0.0
		for i := range vals {
			sum := 0.0
			for j := i; j < i+w && j < len(vals); j++ {
				sum += vals[j]
			}
			if sum > naiveMax {
				naiveMax = sum
			}
		}
		return math.Abs(naiveMax-l.MaxWindowSum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	l := NewLedger(50)
	for i := 0; i < b.N; i++ {
		l.Append(0.1)
	}
}
