// Package driver loads type-checked packages and runs analyzers over
// them. It is the stdlib-only stand-in for golang.org/x/tools/go/packages
// plus the analysis runner: the module deliberately has no external
// dependencies, so instead of x/tools' loader it shells out to
//
//	go list -export -deps -json ...
//
// and type-checks each requested package's sources against the compiler
// export data the go command just produced (the same data a real build
// uses, read through go/importer's lookup hook). The result is full
// go/types information — identical to what x/tools-based linters see —
// without vendoring the dependency.
package driver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"ldpids/internal/analysis"
)

// A Package is one loaded, parsed, and type-checked package.
type Package struct {
	// PkgPath is the import path.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// Fset maps positions (shared by every package of one Load).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, with comments. Test files
	// are not analyzed: the invariants the analyzers encode guard
	// production behavior, and several (epsbudget) explicitly exempt
	// tests.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's findings for Files.
	Info *types.Info
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go command (run in dir; "" means the
// current directory) and returns the matched packages, parsed and
// type-checked. Dependencies are imported from compiler export data, so
// only the matched packages themselves are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("driver: go %v: %v\n%s", args, err, stderr.Bytes())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("driver: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("driver: loading %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}
	if len(targets) == 0 {
		return nil, errors.New("driver: no packages matched")
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("driver: no export data for %q", path)
		}
		return os.Open(f)
	}
	// One importer for the whole load: it caches imported packages, so
	// shared dependencies resolve to identical type objects across the
	// analyzed packages.
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, tgt := range targets {
		if len(tgt.GoFiles) == 0 {
			continue
		}
		files := make([]*ast.File, 0, len(tgt.GoFiles))
		for _, name := range tgt.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(tgt.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("driver: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(tgt.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("driver: type-checking %s: %v", tgt.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: tgt.ImportPath,
			Dir:     tgt.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// A Diagnostic is one analyzer finding, resolved to a file position.
type Diagnostic struct {
	// Analyzer names the check that reported it.
	Analyzer string
	// Position locates the finding.
	Position token.Position
	// Message states the finding.
	Message string
}

// String renders the diagnostic the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Position, d.Message, d.Analyzer)
}

// Run applies every analyzer to every package and returns the collected
// diagnostics sorted by position. A nil error with a non-empty slice is
// the "lint found problems" outcome; an error means an analyzer itself
// failed.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: name,
					Position: pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("driver: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
