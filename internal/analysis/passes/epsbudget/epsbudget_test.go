package epsbudget_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/epsbudget"
)

func TestEpsBudget(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), epsbudget.Analyzer, "a")
}
