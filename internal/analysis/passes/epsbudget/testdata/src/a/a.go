// Package a builds the real config structs in every way the epsbudget
// analyzer distinguishes: flowing into constructors (clean), dead-ending
// in locals, hand-rolling oracles, and reassigning budgets (reported).
package a

import (
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
)

// Direct passes the literal straight into the constructor.
func Direct() (mechanism.Mechanism, error) {
	return mechanism.New("LBU", mechanism.Params{
		Eps: 1, W: 10, N: 100, Oracle: fo.NewGRR(4), Src: ldprand.New(1),
	})
}

// ViaLocal binds the literal to a variable first; the constructor call
// later in the same function still counts.
func ViaLocal() (mechanism.Mechanism, error) {
	p := mechanism.Params{Eps: 1, W: 10, N: 100, Oracle: fo.NewGRR(4), Src: ldprand.New(1)}
	p.W = 20 // tuning a non-budget knob before construction is fine
	return mechanism.New("LSP", p)
}

// ViaPointer reaches a constructor through an address-of.
func ViaPointer() error {
	_, err := NewFrom(&mechanism.Params{Eps: 1})
	return err
}

// NewFrom forwards to the real constructor.
func NewFrom(p *mechanism.Params) (mechanism.Mechanism, error) {
	return mechanism.New("LBD", *p)
}

// DeadEnd builds a budget-carrying config that no constructor ever sees.
func DeadEnd() float64 {
	p := mechanism.Params{Eps: 2} // want `does not reach a New\* constructor`
	return p.Eps
}

// Escaping returns the raw config for some caller to construct with later;
// the budget leaves the function unvalidated, so it is reported too.
func Escaping() mechanism.Params {
	return mechanism.Params{Eps: 2} // want `does not reach a New\* constructor`
}

// HandRolledOracle assembles an oracle without deriving p, q from the
// domain.
func HandRolledOracle() fo.Oracle {
	return &fo.GRR{} // want `composite literal of oracle type fo.GRR`
}

// Retune mutates a sealed budget.
func Retune(p *mechanism.Params) {
	p.Eps = 0.5 // want `assigning mechanism.Eps after construction`
}

// Report literals are plain data, not configs: never reported.
func MakeReport() fo.Report {
	return fo.Report{Kind: fo.KindValue, Value: 3}
}

// localConfig has an Eps field but lives in this package, so the analyzer
// leaves it alone.
type localConfig struct{ Eps float64 }

// Local builds the local struct freely.
func Local() localConfig {
	return localConfig{Eps: 3}
}
