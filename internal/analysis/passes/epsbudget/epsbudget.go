// Package epsbudget defines an Analyzer that forces privacy budgets
// through validated constructors.
package epsbudget

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldpids/internal/analysis"
)

// Analyzer reports config-struct constructions and mutations that bypass
// ε validation.
var Analyzer = &analysis.Analyzer{
	Name: "epsbudget",
	Doc: `route every privacy budget through a validated constructor

Each mechanism/oracle constructor validates its ε, window, and population
before anything is perturbed; a config object built or mutated around the
constructor can carry ε <= 0 (no privacy at all, or a division by zero
deep in the estimator) without tripping a check. Outside the defining
packages (internal/fo, mechanism, numeric, cdp) this analyzer reports:

  - composite literals of types implementing fo.Oracle — oracle state
    (probabilities p and q, hash ranges) is derived from the domain in
    fo.New*, never assembled by hand;
  - composite literals of config structs with an Eps field that do not
    flow into a New* constructor call, directly or via a local variable
    in the same function;
  - assignments to a config struct's Eps field after construction.

Test files are never analyzed, so tests may build fixtures freely.`,
	Run: run,
}

// configPkgs declare the validated config structs and their constructors.
var configPkgs = map[string]bool{
	"ldpids/internal/fo":        true,
	"ldpids/internal/mechanism": true,
	"ldpids/internal/numeric":   true,
	"ldpids/internal/cdp":       true,
}

func run(pass *analysis.Pass) error {
	if configPkgs[pass.Pkg.Path()] {
		// The defining package owns its invariants and constructs freely.
		return nil
	}
	analysis.WithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			checkLit(pass, n, stack)
		case *ast.AssignStmt:
			checkEpsWrite(pass, n)
		}
		return true
	})
	return nil
}

func checkLit(pass *analysis.Pass, lit *ast.CompositeLit, stack []ast.Node) {
	named, ok := pass.TypesInfo.TypeOf(lit).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !configPkgs[obj.Pkg().Path()] {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if implementsOracle(named) {
		pass.Reportf(lit.Pos(),
			"composite literal of oracle type %s.%s: construct oracles with fo.New so p, q, and hash ranges are derived from the domain",
			obj.Pkg().Name(), obj.Name())
		return
	}
	if !hasEpsField(st) {
		return
	}
	if !flowsToConstructor(pass, stack) {
		pass.Reportf(lit.Pos(),
			"%s.%s carries a privacy budget but does not reach a New* constructor: ε validation never runs",
			obj.Pkg().Name(), obj.Name())
	}
}

// checkEpsWrite reports assignments to a config struct's Eps field: after
// construction the budget is sealed.
func checkEpsWrite(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Eps" {
			continue
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || !s.Obj().(*types.Var).IsField() {
			continue
		}
		if pkg := s.Obj().Pkg(); pkg != nil && configPkgs[pkg.Path()] {
			pass.Reportf(lhs.Pos(),
				"assigning %s.Eps after construction bypasses ε validation: build a fresh config and reconstruct", s.Obj().Pkg().Name())
		}
	}
}

func hasEpsField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Eps" {
			return true
		}
	}
	return false
}

// implementsOracle reports whether T or *T satisfies fo.Oracle. The
// interface is looked up through T's own package (or its imports), so the
// check works on export data without loading fo from source.
func implementsOracle(named *types.Named) bool {
	foPkg := named.Obj().Pkg()
	if foPkg.Path() != "ldpids/internal/fo" {
		foPkg = nil
		for _, imp := range named.Obj().Pkg().Imports() {
			if imp.Path() == "ldpids/internal/fo" {
				foPkg = imp
				break
			}
		}
		if foPkg == nil {
			return false
		}
	}
	o := foPkg.Scope().Lookup("Oracle")
	if o == nil {
		return false
	}
	iface, ok := o.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface)
}

// flowsToConstructor reports whether the composite literal at the top of
// stack is consumed by a New* call: directly as an argument (possibly
// through & or parens), or by being bound to a local variable that is later
// passed to a New* call inside the same function.
func flowsToConstructor(pass *analysis.Pass, stack []ast.Node) bool {
	i := len(stack) - 1
	for i > 0 {
		switch parent := stack[i-1].(type) {
		case *ast.UnaryExpr:
			if parent.Op != token.AND {
				return false
			}
			i--
		case *ast.ParenExpr:
			i--
		case *ast.CallExpr:
			for _, a := range parent.Args {
				if a == stack[i] {
					return isNewCall(pass, parent)
				}
			}
			return false
		case *ast.AssignStmt:
			obj := boundVar(pass, parent.Lhs, parent.Rhs, stack[i].(ast.Expr))
			return obj != nil && varReachesNew(pass, stack, obj)
		case *ast.ValueSpec:
			obj := boundVar(pass, identExprs(parent.Names), parent.Values, stack[i].(ast.Expr))
			return obj != nil && varReachesNew(pass, stack, obj)
		default:
			return false
		}
	}
	return false
}

func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// boundVar resolves which variable a parallel assignment binds rhs to.
func boundVar(pass *analysis.Pass, lhs, rhs []ast.Expr, target ast.Expr) types.Object {
	if len(lhs) != len(rhs) {
		return nil
	}
	for i, r := range rhs {
		if r != target {
			continue
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	return nil
}

// varReachesNew scans the innermost enclosing function for a New* call
// taking obj (or &obj) as an argument.
func varReachesNew(pass *analysis.Pass, stack []ast.Node, obj types.Object) bool {
	var body *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			break
		}
	}
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isNewCall(pass, call) {
			return true
		}
		for _, a := range call.Args {
			if u, ok := a.(*ast.UnaryExpr); ok && u.Op == token.AND {
				a = u.X
			}
			if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return true
	})
	return found
}

// isNewCall reports whether call's callee is a function whose name starts
// with "New" (fo.New, mechanism.New, NewMeanLPU, ldpids.NewMechanism, ...).
func isNewCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	var id *ast.Ident
	switch fun := fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && strings.HasPrefix(fn.Name(), "New")
}
