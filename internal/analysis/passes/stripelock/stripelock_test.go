package stripelock_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/stripelock"
)

func TestStripeLock(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), stripelock.Analyzer, "a")
}
