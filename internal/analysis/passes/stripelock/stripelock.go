// Package stripelock defines an Analyzer that checks lock-guard
// annotations on struct fields.
package stripelock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"ldpids/internal/analysis"
)

// Analyzer enforces //ldpids:guardedby annotations.
var Analyzer = &analysis.Analyzer{
	Name: "stripelock",
	Doc: `require annotated guarded fields to be accessed under their lock

StripedAggregator's correctness argument is that every read or write of a
stripe's counters happens inside that stripe's locked region (or under
the aggregator's exclusive outer lock, which serializes everything) — a
bare access compiles fine and only fails as a rare torn read under load.
The invariant is declared in the source:

	agg shardMergeable //ldpids:guardedby mu <why>

names the sibling lock field guarding agg. Within the declaring package,
every selector reaching an annotated field must be preceded (in the same
function) by base.mu.Lock() or base.mu.RLock() on the same base
expression, or by an exclusive recv.mu.Lock() on the method's receiver.
Pre-publication access — a constructor filling fields before any other
goroutine can see the value — is excused by //ldpids:unshared <why>.

The check is lexical, not a happens-before proof: it catches the "forgot
to take the stripe lock on the merged fast path" class, and the race
detector remains the backstop.`,
	Run: run,
}

// guard records one annotated field: the lock's field name.
type guard struct {
	lock string
}

// lockCall is one base.lock.Lock()/RLock() observed in a function.
type lockCall struct {
	base      string
	lock      string
	exclusive bool
	pos       token.Pos
}

func run(pass *analysis.Pass) error {
	guarded := collectGuards(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
	return nil
}

// collectGuards finds every struct field annotated //ldpids:guardedby.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guarded := make(map[types.Object]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				d, ok := pass.Directive(field.Pos(), "guardedby")
				if !ok {
					continue
				}
				parts := strings.Fields(d.Justification)
				if len(parts) == 0 {
					pass.Reportf(field.Pos(), "//ldpids:guardedby needs a lock field name and a justification")
					continue
				}
				if len(parts) == 1 {
					pass.Reportf(field.Pos(), "//ldpids:guardedby %s needs a justification", parts[0])
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guarded[obj] = guard{lock: parts[0]}
					}
				}
			}
			return true
		})
	}
	return guarded
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[types.Object]guard) {
	recv := ""
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		recv = fn.Recv.List[0].Names[0].Name
	}

	var locks []lockCall
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
			return true
		}
		inner, ok := outer.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		locks = append(locks, lockCall{
			base:      types.ExprString(inner.X),
			lock:      inner.Sel.Name,
			exclusive: outer.Sel.Name == "Lock",
			pos:       call.Pos(),
		})
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		g, ok := guarded[s.Obj()]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		held := false
		for _, lc := range locks {
			if lc.pos >= sel.Pos() || lc.lock != g.lock {
				continue
			}
			if lc.base == base || (recv != "" && lc.base == recv && lc.exclusive) {
				held = true
				break
			}
		}
		if held || pass.Exempted(sel.Pos(), "unshared") {
			return true
		}
		pass.Reportf(sel.Pos(),
			"%s.%s is guarded by %s.%s, which is not held here: take the lock, or annotate //ldpids:unshared <why> for pre-publication access",
			base, sel.Sel.Name, base, g.lock)
		return true
	})
}
