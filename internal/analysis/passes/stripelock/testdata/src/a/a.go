// Package a declares its own lock-guarded structs — the stripelock
// analyzer is driven entirely by //ldpids:guardedby annotations, so the
// golden package exercises it without importing internal/fo.
package a

import "sync"

// counter is the minimal guarded shape: a lock and the field it guards.
type counter struct {
	mu sync.Mutex
	n  int //ldpids:guardedby mu concurrent folds tear the counter without the stripe lock
}

// inc holds the lock over the write.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// racyRead skips the lock.
func (c *counter) racyRead() int {
	return c.n // want `guarded by c.mu, which is not held`
}

// lateLock takes the lock only after the access; lexical order matters.
func (c *counter) lateLock() int {
	v := c.n // want `guarded by c.mu, which is not held`
	c.mu.Lock()
	defer c.mu.Unlock()
	return v
}

// newCounter fills the field before the value can be shared, and says so.
func newCounter() *counter {
	c := &counter{}
	//ldpids:unshared c has not escaped the constructor; no goroutine can hold it
	c.n = 1
	return c
}

// newCounterBad uses the escape hatch without a reason.
func newCounterBad() *counter {
	c := &counter{}
	//ldpids:unshared
	c.n = 1 // want `needs a justification`
	return c
}

// rwcounter shows that a read lock on the same base satisfies the guard.
type rwcounter struct {
	mu sync.RWMutex
	n  int //ldpids:guardedby mu readers and the fold path share this counter
}

func (c *rwcounter) get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// pool shows the receiver rule: an exclusive lock named like the guard on
// the method's receiver serializes every stripe, covering element access.
type pool struct {
	mu    sync.Mutex
	items []counter
}

func (p *pool) total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := 0
	for i := range p.items {
		t += p.items[i].n
	}
	return t
}

// rlockedPool only holds a read lock on the receiver, which does not
// exclude concurrent folds into an individual stripe.
type rlockedPool struct {
	mu    sync.RWMutex
	items []rwcounter
}

func (p *rlockedPool) total() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	t := 0
	for i := range p.items {
		t += p.items[i].n // want `guarded by p.items\[i\].mu, which is not held`
	}
	return t
}

// badguard's annotation names no lock field at all.
type badguard struct {
	mu sync.Mutex
	//ldpids:guardedby
	n int // want `needs a lock field name`
}

// unguarded fields are never checked.
type plain struct{ n int }

func bump(p *plain) { p.n++ }
