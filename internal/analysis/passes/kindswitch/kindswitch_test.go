package kindswitch_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/kindswitch"
)

func TestKindSwitch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), kindswitch.Analyzer, "a")
}
