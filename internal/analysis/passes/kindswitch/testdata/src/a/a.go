// Package a switches over the real fo.Kind enum in every shape the
// kindswitch analyzer distinguishes: exhaustive, guarded, and the two
// silent-decay shapes it must report.
package a

import (
	"errors"
	"fmt"

	"ldpids/internal/fo"
)

// Exhaustive covers every registered kind; no default needed.
func Exhaustive(k fo.Kind) int {
	switch k {
	case fo.KindValue:
		return 1
	case fo.KindUnary:
		return 2
	case fo.KindPacked:
		return 3
	case fo.KindHash:
		return 4
	case fo.KindCohort:
		return 5
	}
	return 0
}

// ExhaustiveWithDefault may carry any default it likes once all kinds are
// enumerated: the default is unreachable for known kinds, so it is the
// forward-compatibility path and need not error.
func ExhaustiveWithDefault(k fo.Kind) int {
	switch k {
	case fo.KindValue, fo.KindUnary, fo.KindPacked, fo.KindHash, fo.KindCohort:
		return 1
	default:
		return 0
	}
}

// GuardedSubset handles two kinds and errors on the rest.
func GuardedSubset(k fo.Kind) (int, error) {
	switch k {
	case fo.KindUnary:
		return 1, nil
	case fo.KindPacked:
		return 2, nil
	default:
		return 0, fmt.Errorf("unsupported kind %v", k)
	}
}

// GuardedNested errors from inside a conditional in the default; that
// still counts as failing loudly.
func GuardedNested(k fo.Kind, strict bool) (int, error) {
	switch k {
	case fo.KindValue:
		return 1, nil
	default:
		if strict {
			return 0, errors.New("unknown kind")
		}
		return -1, errors.New("unknown kind (lenient)")
	}
}

// PanicDefault panics on unknown kinds, which is as loud as an error.
func PanicDefault(k fo.Kind) int {
	switch k {
	case fo.KindValue, fo.KindUnary:
		return 1
	default:
		panic("unknown kind")
	}
}

// Bare misses kinds with no default at all.
func Bare(k fo.Kind) int {
	switch k { // want `does not cover fo.KindCohort, fo.KindHash, fo.KindPacked and has no default`
	case fo.KindValue:
		return 1
	case fo.KindUnary:
		return 2
	}
	return 0
}

// SwallowingDefault decays unknown kinds into a zero value.
func SwallowingDefault(k fo.Kind) int {
	switch k { // want `default neither returns an error nor panics`
	case fo.KindValue, fo.KindUnary, fo.KindPacked, fo.KindHash:
		return 1
	default:
		return 0
	}
}

// NilErrorDefault returns a nil error from the default, which is just as
// silent as returning zero.
func NilErrorDefault(k fo.Kind) (int, error) {
	switch k { // want `default neither returns an error nor panics`
	case fo.KindValue:
		return 1, nil
	default:
		return 0, nil
	}
}

// StringSwitch is the wire-format shape: switching on strings is out of
// scope for this analyzer.
func StringSwitch(kind string) int {
	switch kind {
	case "value":
		return 1
	}
	return 0
}

// IntSwitch is an unrelated typed switch; also out of scope.
func IntSwitch(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
