// Package kindswitch defines an Analyzer that keeps every switch over
// fo.Report kinds either exhaustive or guarded by an error-returning
// default.
package kindswitch

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"ldpids/internal/analysis"
)

// foPath is the package that declares the Kind enum and its registry.
const foPath = "ldpids/internal/fo"

// Analyzer reports fo.Kind switches that would silently misprice or drop a
// report kind added after the switch was written.
var Analyzer = &analysis.Analyzer{
	Name: "kindswitch",
	Doc: `require switches over fo.Kind to cover every registered kind or fail loudly

The frequency-oracle registry grows: PR 1 shipped three report kinds, the
tree now has five, and a switch written against three of them compiles
clean while silently mishandling the other two (the wire encoder once
dropped KindPacked payloads exactly this way). For every switch whose tag
has type fo.Kind, this analyzer demands one of:

  - every exported Kind constant in internal/fo appears in a case; or
  - a default clause that returns a non-nil error or panics, so an
    unknown kind surfaces instead of decaying into zero values.

Switches over the wire-format strings are out of scope; decode paths must
already treat unknown strings as errors to accept logs from newer
versions.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	named, ok := pass.TypesInfo.TypeOf(sw.Tag).(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Kind" || obj.Pkg() == nil || obj.Pkg().Path() != foPath {
		return
	}
	kinds := kindConsts(obj.Pkg(), named)

	covered := make(map[string]bool)
	var defaultBody []ast.Stmt
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			defaultBody = cc.Body
			continue
		}
		for _, e := range cc.List {
			if c := constOf(pass, e); c != nil && types.Identical(c.Type(), named) {
				covered[c.Name()] = true
			}
		}
	}

	var missing []string
	for _, k := range kinds {
		if !covered[k] {
			missing = append(missing, "fo."+k)
		}
	}
	if len(missing) == 0 {
		return
	}
	switch {
	case !hasDefault:
		pass.Reportf(sw.Pos(),
			"switch on fo.Kind does not cover %s and has no default: add the cases or an error-returning default",
			strings.Join(missing, ", "))
	case !failsLoudly(pass, defaultBody):
		pass.Reportf(sw.Pos(),
			"switch on fo.Kind does not cover %s and its default neither returns an error nor panics: an unknown kind would decay into zero values",
			strings.Join(missing, ", "))
	}
}

// kindConsts returns the sorted names of the exported constants of the Kind
// type declared in fo's package scope — the registered kinds.
func kindConsts(pkg *types.Package, named *types.Named) []string {
	var out []string
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Exported() && types.Identical(c.Type(), named) {
			out = append(out, c.Name())
		}
	}
	sort.Strings(out)
	return out
}

// constOf resolves a case expression to the constant it names, if any.
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, _ := pass.TypesInfo.Uses[id].(*types.Const)
	return c
}

// failsLoudly reports whether body contains a return statement whose
// results include a (statically) non-nil error, or a panic call. Either
// guarantees an unrecognized kind cannot be processed as if it were known.
func failsLoudly(pass *analysis.Pass, body []ast.Stmt) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	loud := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if loud {
				return false
			}
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					// `return nil` stays untyped nil here, so a default that
					// swallows the unknown kind does not count as loud.
					if t := pass.TypesInfo.TypeOf(res); t != nil && types.Implements(t, errType) {
						loud = true
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
						loud = true
					}
				}
			}
			return true
		})
		if loud {
			return true
		}
	}
	return false
}
