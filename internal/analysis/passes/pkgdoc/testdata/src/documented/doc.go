// Package documented carries its doc comment in a dedicated file, the
// same layout several real packages use; the analyzer accepts a comment
// in any file of the package.
package documented
