package documented

// V exists so the package has content beyond its doc file.
var V = 1
