package undocumented // want `package undocumented has no package doc comment`

// V is documented, but the package itself is not.
var V = 1
