package pkgdoc_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/pkgdoc"
)

func TestPkgDoc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), pkgdoc.Analyzer, "documented", "undocumented")
}
