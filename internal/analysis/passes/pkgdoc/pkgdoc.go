// Package pkgdoc defines an Analyzer that enforces the repo's
// documentation floor: a package doc comment on every module package.
package pkgdoc

import (
	"strings"

	"ldpids/internal/analysis"
)

// Analyzer requires a package doc comment on every module package.
var Analyzer = &analysis.Analyzer{
	Name: "pkgdoc",
	Doc: `require a package doc comment on every module package

go doc should read as a coherent tour of the reproduction: which paper
section a package implements, what its entry points are. Any package in
the ldpids module (the root, internal/..., cmd/..., examples/...) with no
non-empty package doc comment in any of its files is reported at its
package clause. Packages outside the module — dependencies loaded for
type information — are never checked.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path != "ldpids" && !strings.HasPrefix(path, "ldpids/") {
		return nil
	}
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return nil
		}
	}
	if len(pass.Files) == 0 {
		return nil
	}
	pass.Reportf(pass.Files[0].Name.Pos(),
		"package %s has no package doc comment: state what it implements and how it is entered", pass.Pkg.Name())
	return nil
}
