package determinism_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), determinism.Analyzer, "a", "b")
}
