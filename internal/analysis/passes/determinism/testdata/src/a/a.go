// Package a seeds every violation class the determinism analyzer knows,
// alongside clean code it must not flag. It opts into checking with the
// package-level directive below, the same way a new critical package
// outside the hardcoded list would.
//
//ldpids:deterministic golden test package
package a

import (
	_ "math/rand" // want `imports math/rand`
	"time"
)

// Wall reads the clock with no annotation.
func Wall() int64 {
	return time.Now().UnixNano() // want `wall-clock read time.Now`
}

// Since is one of the other banned time functions.
func Since(t0 time.Time) time.Duration {
	return time.Since(t0) // want `wall-clock read time.Since`
}

// Stamped carries a justified escape hatch and is not reported.
func Stamped() time.Time {
	//ldpids:wallclock journal header records submission time, which is never hashed
	return time.Now()
}

// Unjustified carries the escape hatch without a reason, which is itself
// the finding.
func Unjustified() time.Time {
	//ldpids:wallclock
	return time.Now() // want `needs a justification`
}

// FromUnix only converts a recorded stamp; no clock is read.
func FromUnix(s int64) time.Time {
	return time.Unix(s, 0)
}

// Leak lets map iteration order reach an output slice.
func Leak(src map[int]int) []int {
	var out []int
	for _, v := range src { // want `map iteration order`
		out = append(out, v)
	}
	return out
}

// Keys does the same but justifies it.
func Keys(src map[int]struct{}) []int {
	out := make([]int, 0, len(src))
	//ldpids:orderinvariant caller sorts before any output
	for k := range src {
		out = append(out, k)
	}
	return out
}

// Fold copies map to map: order cannot be observed, so no report.
func Fold(src map[int]int) map[int]int {
	dst := make(map[int]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Sum accumulates a commutative reduction: no report.
func Sum(src map[int]int) int {
	total := 0
	for _, v := range src {
		total += v
	}
	return total
}

// Slice ranges over a slice, which is ordered; appends are fine.
func Slice(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
