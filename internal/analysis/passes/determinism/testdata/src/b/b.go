// Package b is the false-positive guard: a package outside the critical
// list that never opted in with //ldpids:deterministic is not checked at
// all, so this clock read must not be reported.
package b

import "time"

// Wall would be a violation in a critical package.
func Wall() time.Time { return time.Now() }
