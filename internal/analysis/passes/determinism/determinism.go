// Package determinism defines an Analyzer that keeps bit-identity-critical
// packages free of wall-clock reads, global randomness, and order-sensitive
// map iteration.
package determinism

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"ldpids/internal/analysis"
)

// Analyzer flags the three nondeterminism sources that have each broken a
// replayed run at least once.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: `forbid wall-clock, math/rand, and ordered map iteration in bit-identity-critical packages

The resumable run journal deduplicates experiment cells by a content hash
of their outputs, so any nondeterminism silently defeats resume and makes
paper figures unreproducible. In the critical packages (internal/fo,
mechanism, collect, device, runlog — or any package carrying a
//ldpids:deterministic directive above its package clause) this analyzer
reports:

  - calls to time.Now, time.Since, and friends (escape hatch:
    //ldpids:wallclock <why> on or above the line);
  - imports of math/rand or math/rand/v2 — randomness must come from
    internal/ldprand so it replays from a recorded seed;
  - range over a map whose body appends, sends, writes, or encodes —
    iteration order would leak into output (escape hatch:
    //ldpids:orderinvariant <why>).

Map ranges that only fill another map or accumulate a commutative
reduction are not reported.`,
	Run: run,
}

// critical lists the packages whose outputs feed content hashes in the run
// journal. A package outside this list opts in with //ldpids:deterministic.
var critical = map[string]bool{
	"ldpids/internal/fo":                  true,
	"ldpids/internal/mechanism":           true,
	"ldpids/internal/collect":             true,
	"ldpids/internal/collect/collecttest": true,
	"ldpids/internal/device":              true,
	"ldpids/internal/runlog":              true,
}

// wallclock lists the time package functions that read or schedule against
// the wall clock. Duration arithmetic (time.Duration, constants) is fine.
var wallclock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"Tick": true, "NewTicker": true, "NewTimer": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	if !critical[pass.Pkg.Path()] {
		if _, ok := pass.PackageDirective("deterministic"); !ok {
			return nil
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"bit-identity-critical package imports %s: draw randomness from internal/ldprand so seeded runs replay", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkWallclock(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkWallclock(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallclock[obj.Name()] {
		return
	}
	if pass.Exempted(call.Pos(), "wallclock") {
		return
	}
	pass.Reportf(call.Pos(),
		"wall-clock read time.%s in a bit-identity-critical package: thread a clock in, or annotate //ldpids:wallclock <why>", obj.Name())
}

func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, ok := tv.Type.Underlying().(*types.Map); !ok {
		return
	}
	if !orderSensitive(pass, rng.Body) {
		return
	}
	if pass.Exempted(rng.Pos(), "orderinvariant") {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order reaches output (append/send/write in the loop body): iterate sorted keys, or annotate //ldpids:orderinvariant <why>")
}

// outputMethod matches method names that move bytes or elements somewhere
// order-visible.
var outputMethod = regexp.MustCompile(`^(Write|Print|Fprint|Encode|Append|Push|Add)`)

// outputPkgs are packages whose functions emit in call order.
var outputPkgs = map[string]bool{
	"fmt": true, "io": true, "bufio": true, "os": true,
	"encoding/json": true, "encoding/csv": true,
	"encoding/gob": true, "encoding/binary": true,
}

// orderSensitive reports whether executing body in a different order could
// produce a different observable result: it appends to a slice, sends on a
// channel, or calls into an output package or an output-shaped method.
func orderSensitive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	sensitive := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sensitive {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sensitive = true
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					sensitive = true
				}
			case *ast.SelectorExpr:
				obj := pass.TypesInfo.Uses[fun.Sel]
				if obj == nil {
					return true
				}
				if obj.Pkg() != nil && outputPkgs[obj.Pkg().Path()] {
					sensitive = true
				} else if outputMethod.MatchString(obj.Name()) {
					sensitive = true
				}
			}
		}
		return true
	})
	return sensitive
}
