package metricnames_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/metricnames"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metricnames.Analyzer, "a")
}
