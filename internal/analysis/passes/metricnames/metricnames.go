// Package metricnames defines an Analyzer that keeps every metric family
// registered on an obs.Registry inside the repo's naming contract:
// constant ldpids_-prefixed snake_case names, type-appropriate suffixes,
// and labels drawn from the small closed vocabulary dashboards rely on.
package metricnames

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"

	"ldpids/internal/analysis"
)

// obsPath is the package that declares the metric registry.
const obsPath = "ldpids/internal/obs"

// Analyzer reports metric registrations whose names or labels drift from
// the exposition contract pinned by obs.CheckExposition and the dashboards.
var Analyzer = &analysis.Analyzer{
	Name: "metricnames",
	Doc: `require obs.Registry metric names and labels to follow the naming contract

Metric names are an API consumed by scrapers and dashboards long after the
registering code changes, and the Prometheus text format reserves the
_bucket/_sum/_count suffixes for histogram series (the gateway once
exported a counter family named *_seconds_sum and broke every conformant
parser). For every registration call on an obs.Registry this analyzer
demands:

  - the name is a compile-time constant: grep must find every family;
  - it matches ^ldpids(_[a-z0-9]+)+$ — one namespace, snake_case;
  - counters end in _total; gauges do not; histograms end in a unit
    (_seconds, _bytes, or _reports) and never in _total;
  - no name ends in the reserved _bucket/_sum/_count suffixes; and
  - vec labels are constants from the closed set {oracle, wire, reason,
    replica, stage} — "le" is reserved by the exposition format.

New label keys are a deliberate API decision: extend the set here and in
the dashboards together.`,
	Run: run,
}

// registerMethods maps each Registry registration method to the index of
// its first label argument (-1 when the method takes no labels).
var registerMethods = map[string]int{
	"Counter":      -1,
	"CounterVec":   2,
	"CounterFunc":  -1,
	"Gauge":        -1,
	"GaugeFunc":    -1,
	"Histogram":    -1,
	"HistogramVec": 3,
}

var nameRE = regexp.MustCompile(`^ldpids(_[a-z0-9]+)+$`)

// allowedLabels is the closed label vocabulary. "le" is excluded on
// purpose: the exposition format owns it.
var allowedLabels = map[string]bool{
	"oracle":  true,
	"wire":    true,
	"reason":  true,
	"replica": true,
	"stage":   true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

// checkCall validates one registration call on an obs.Registry, if that is
// what the call is.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return
	}
	labelStart, ok := registerMethods[fn.Name()]
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isRegistryPtr(sig.Recv().Type()) {
		return
	}
	if len(call.Args) == 0 {
		return // does not type-check anyway
	}

	method := fn.Name()
	name, isConst := constString(pass, call.Args[0])
	if !isConst {
		pass.Reportf(call.Args[0].Pos(),
			"obs.Registry.%s name is not a constant string: metric families must be greppable", method)
		return
	}
	checkName(pass, call, method, name)

	if labelStart < 0 {
		return
	}
	for i := labelStart; i < len(call.Args); i++ {
		label, isConst := constString(pass, call.Args[i])
		if !isConst {
			pass.Reportf(call.Args[i].Pos(),
				"label of metric %q is not a constant string: labels are a closed vocabulary", name)
			continue
		}
		switch {
		case label == "le":
			pass.Reportf(call.Args[i].Pos(),
				`metric %q declares label "le", which the exposition format reserves for histogram buckets`, name)
		case !allowedLabels[label]:
			pass.Reportf(call.Args[i].Pos(),
				"metric %q uses label %q outside the allowed set {oracle, wire, reason, replica, stage}", name, label)
		}
	}
}

// checkName enforces the shape and suffix rules for one metric family name.
func checkName(pass *analysis.Pass, call *ast.CallExpr, method, name string) {
	report := func(format string, args ...any) {
		pass.Reportf(call.Args[0].Pos(), "metric %q %s", name, fmt.Sprintf(format, args...))
	}
	if !nameRE.MatchString(name) {
		report("does not match ^ldpids(_[a-z0-9]+)+$: one namespace, lower snake_case")
		return
	}
	for _, reserved := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, reserved) {
			report("ends in %s, which the exposition format reserves for histogram series", reserved)
			return
		}
	}
	switch method {
	case "Counter", "CounterVec", "CounterFunc":
		if !strings.HasSuffix(name, "_total") {
			report("is a counter and must end in _total")
		}
	case "Gauge", "GaugeFunc":
		if strings.HasSuffix(name, "_total") {
			report("is a gauge and must not end in _total")
		}
	case "Histogram", "HistogramVec":
		if strings.HasSuffix(name, "_total") {
			report("is a histogram and must not end in _total")
		} else if !hasUnitSuffix(name) {
			report("is a histogram and must end in a unit suffix (_seconds, _bytes, or _reports)")
		}
	}
}

// hasUnitSuffix reports whether a histogram name ends in one of the unit
// suffixes the repo's histograms measure.
func hasUnitSuffix(name string) bool {
	for _, unit := range []string{"_seconds", "_bytes", "_reports"} {
		if strings.HasSuffix(name, unit) {
			return true
		}
	}
	return false
}

// constString resolves an expression to its compile-time string value.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isRegistryPtr reports whether t is *obs.Registry.
func isRegistryPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Path() == obsPath
}
