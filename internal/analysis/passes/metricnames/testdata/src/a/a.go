// Package a registers metric families on the real obs.Registry in every
// shape the metricnames analyzer distinguishes: conformant names, each
// suffix violation, non-constant names, and off-vocabulary labels.
package a

import "ldpids/internal/obs"

// bucketsVar keeps the histogram bucket argument out of the analyzer's
// way; only names and labels are checked.
var bucketsVar = []float64{0.1, 1}

const goodName = "ldpids_gateway_demo_total"

// Conformant registrations: constant names, right suffixes, closed labels.
func Good(r *obs.Registry) {
	r.Counter(goodName, "help")
	r.Counter("ldpids_cluster_frames_merged_total", "help")
	r.CounterVec("ldpids_gateway_refusals_total", "help", "reason")
	r.Gauge("ldpids_cluster_replicas", "help")
	r.GaugeFunc("ldpids_runtime_heap_alloc_bytes", "help", func() float64 { return 0 })
	r.Histogram("ldpids_gateway_round_latency_seconds", "help", bucketsVar)
	r.HistogramVec("ldpids_gateway_stage_seconds", "help", bucketsVar, "stage", "wire", "oracle")
	r.HistogramVec("ldpids_gateway_batch_reports", "help", bucketsVar, "wire")
}

// Bad registrations, one diagnostic each.
func Bad(r *obs.Registry, dynamic string) {
	r.Counter(dynamic, "help")                                              // want `name is not a constant string`
	r.Counter("gateway_reports_total", "help")                              // want `does not match`
	r.Counter("ldpids_Gateway_reports_total", "help")                       // want `does not match`
	r.Counter("ldpids_gateway_reports", "help")                             // want `is a counter and must end in _total`
	r.CounterFunc("ldpids_gateway_gc", "help", func() float64 { return 0 }) // want `is a counter and must end in _total`
	r.Gauge("ldpids_gateway_replicas_total", "help")                        // want `is a gauge and must not end in _total`
	r.Counter("ldpids_gateway_latency_sum", "help")                         // want `reserves for histogram series`
	r.Counter("ldpids_gateway_latency_count", "help")                       // want `reserves for histogram series`
	r.Histogram("ldpids_gateway_latency_bucket", "help", bucketsVar)        // want `reserves for histogram series`
	r.Histogram("ldpids_gateway_latency", "help", bucketsVar)               // want `must end in a unit suffix`
	r.Histogram("ldpids_gateway_latency_total", "help", bucketsVar)         // want `is a histogram and must not end in _total`
	r.CounterVec("ldpids_gateway_hits_total", "help", dynamic)              // want `is not a constant string`
	r.CounterVec("ldpids_gateway_hits2_total", "help", "shard")             // want `outside the allowed set`
	r.HistogramVec("ldpids_gateway_hit_seconds", "help", bucketsVar, "le")  // want `reserves for histogram buckets`
}
