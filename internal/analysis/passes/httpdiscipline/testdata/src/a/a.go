// Package a seeds each handler mistake the httpdiscipline analyzer
// reports, next to the disciplined versions it must accept.
package a

import "net/http"

// sloppy mutates a header after the status line is out and writes the
// status twice.
func sloppy(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Header().Set("X-Late", "1") // want `header mutated after WriteHeader`
	w.WriteHeader(http.StatusOK)  // want `second WriteHeader`
}

// fallsThrough keeps writing after an error response.
func fallsThrough(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "post only", http.StatusMethodNotAllowed) // want `not followed by return`
		w.Write([]byte("extra"))
	}
}

// writeError is this package's own error responder; callers owe it the
// same discipline as http.Error.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write([]byte(msg))
}

func usesHelper(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("q") == "" {
		writeError(w, http.StatusBadRequest, "missing q") // want `not followed by return`
		w.Write(nil)
	}
}

// disciplined is the shape every serve handler follows: error, return,
// then headers before status before body.
func disciplined(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "post only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok"))
}

// lastError ends the handler; the implicit return is fine.
func lastError(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusTeapot)
}

// branches write once per branch; separate statement lists are never
// counted as a double write.
func branches(w http.ResponseWriter, ok bool) {
	if ok {
		w.WriteHeader(http.StatusOK)
	} else {
		w.WriteHeader(http.StatusAccepted)
	}
}

// deferredWrite builds a send closure; the closure's WriteHeader belongs
// to a different execution and must not flag the header set below it.
func deferredWrite(w http.ResponseWriter) {
	send := func(code int) {
		w.WriteHeader(code)
	}
	w.Header().Set("Content-Type", "text/plain")
	send(http.StatusOK)
}

// panicky asserts the Flusher without the comma-ok form.
func panicky(w http.ResponseWriter) {
	f := w.(http.Flusher) // want `single-value assertion to http.Flusher`
	f.Flush()
}

// graceful degrades when the middleware buffers.
func graceful(w http.ResponseWriter) {
	f, ok := w.(http.Flusher)
	if !ok {
		return
	}
	f.Flush()
}

// typeSwitchOK dispatches on capability; a type switch is comma-ok by
// construction.
func typeSwitchOK(w http.ResponseWriter) {
	switch v := w.(type) {
	case http.Flusher:
		v.Flush()
	default:
	}
}
