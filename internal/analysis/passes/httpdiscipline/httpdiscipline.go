// Package httpdiscipline defines an Analyzer for handler hygiene in
// packages that serve HTTP.
package httpdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"ldpids/internal/analysis"
)

// Analyzer reports the handler mistakes that corrupt responses or streams.
var Analyzer = &analysis.Analyzer{
	Name: "httpdiscipline",
	Doc: `catch handler bugs that corrupt responses: late headers, double WriteHeader, fallthrough after errors, unchecked Flusher

In any package importing net/http this analyzer reports, per statement
list:

  - a header mutation (w.Header().Set/Add/Del) positioned after
    WriteHeader — the header map is already serialized, the write is
    silently ignored;
  - a second WriteHeader — "superfluous response.WriteHeader" at runtime;
  - a statement calling an error responder (http.Error, or any function
    whose name contains "error" taking a ResponseWriter first) that is
    not immediately followed by return/break/continue/goto — the handler
    falls through and appends a success body to an error response;
  - a single-value type assertion to an http.* streaming interface
    (Flusher, Hijacker, Pusher) — behind a buffering middleware the
    assertion panics the handler; use the comma-ok form.

The positional checks stay within one statement list and do not cross
into nested function literals, so branches that each write once are not
confused for double writes.`,
	Run: run,
}

// streamIfaces are the net/http interfaces a ResponseWriter may or may not
// implement depending on middleware wrapping.
var streamIfaces = map[string]bool{"Flusher": true, "Hijacker": true, "Pusher": true}

// errorish matches functions that write an error response.
var errorish = regexp.MustCompile(`(?i)error`)

func run(pass *analysis.Pass) error {
	if !importsNetHTTP(pass.Pkg) {
		return nil
	}
	for _, f := range pass.Files {
		checkAssertions(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkList(pass, n.List)
			case *ast.CaseClause:
				checkList(pass, n.Body)
			case *ast.CommClause:
				checkList(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

func importsNetHTTP(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == "net/http" {
			return true
		}
	}
	return false
}

// checkAssertions flags single-value assertions to streaming interfaces.
func checkAssertions(pass *analysis.Pass, f *ast.File) {
	analysis.WithStack([]*ast.File{f}, func(n ast.Node, stack []ast.Node) bool {
		ta, ok := n.(*ast.TypeAssertExpr)
		if !ok || ta.Type == nil {
			return true
		}
		named, ok := pass.TypesInfo.TypeOf(ta.Type).(*types.Named)
		if !ok {
			return true
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" || !streamIfaces[obj.Name()] {
			return true
		}
		if commaOK(stack) {
			return true
		}
		pass.Reportf(ta.Pos(),
			"single-value assertion to http.%s panics behind buffering middleware: use the comma-ok form and degrade gracefully", obj.Name())
		return true
	})
}

// commaOK reports whether the assertion at the top of stack is consumed in
// a two-value context.
func commaOK(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	switch p := stack[len(stack)-2].(type) {
	case *ast.AssignStmt:
		return len(p.Lhs) == 2 && len(p.Rhs) == 1
	case *ast.ValueSpec:
		return len(p.Names) == 2 && len(p.Values) == 1
	case *ast.TypeSwitchStmt:
		return true
	}
	return false
}

// checkList runs the positional checks over one statement list.
func checkList(pass *analysis.Pass, list []ast.Stmt) {
	wroteHeader := token.NoPos
	for i, stmt := range list {
		if pos := findHeaderMutation(pass, stmt); pos.IsValid() && wroteHeader.IsValid() {
			pass.Reportf(pos, "header mutated after WriteHeader: the header map is already serialized, this write is ignored")
		}
		if pos := findWriteHeader(pass, stmt); pos.IsValid() {
			if wroteHeader.IsValid() {
				pass.Reportf(pos, "second WriteHeader in the same block: the status line is already out")
			}
			wroteHeader = pos
		}
		if pos := errorResponderStmt(pass, stmt); pos.IsValid() && i+1 < len(list) {
			if !diverts(list[i+1]) {
				pass.Reportf(pos, "error response is not followed by return: the handler falls through and appends to the error body")
			}
		}
	}
}

// diverts reports whether stmt transfers control out of the list.
func diverts(stmt ast.Stmt) bool {
	switch stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// errorResponderStmt returns the position of a bare call statement writing
// an error response, if stmt is one.
func errorResponderStmt(pass *analysis.Pass, stmt ast.Stmt) token.Pos {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return token.NoPos
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return token.NoPos
	}
	if !isResponseWriter(pass.TypesInfo.TypeOf(call.Args[0])) {
		return token.NoPos
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return token.NoPos
	}
	if !errorish.MatchString(name) {
		return token.NoPos
	}
	return call.Pos()
}

func isResponseWriter(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// findWriteHeader returns the position of a ResponseWriter.WriteHeader call
// directly inside stmt (not inside a nested function literal).
func findWriteHeader(pass *analysis.Pass, stmt ast.Stmt) token.Pos {
	return findCall(stmt, func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "WriteHeader" {
			return false
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
	})
}

// findHeaderMutation returns the position of a w.Header().Set/Add/Del chain
// directly inside stmt.
func findHeaderMutation(pass *analysis.Pass, stmt ast.Stmt) token.Pos {
	return findCall(stmt, func(call *ast.CallExpr) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch sel.Sel.Name {
		case "Set", "Add", "Del":
		default:
			return false
		}
		inner, ok := sel.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		innerSel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok || innerSel.Sel.Name != "Header" {
			return false
		}
		obj := pass.TypesInfo.Uses[innerSel.Sel]
		return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
	})
}

// findCall scans stmt for a call matching ok, skipping nested function
// literals (their statements belong to a different execution).
func findCall(stmt ast.Stmt, ok func(*ast.CallExpr) bool) token.Pos {
	pos := token.NoPos
	ast.Inspect(stmt, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall && ok(call) {
			pos = call.Pos()
		}
		return true
	})
	return pos
}
