package httpdiscipline_test

import (
	"testing"

	"ldpids/internal/analysis/analysistest"
	"ldpids/internal/analysis/passes/httpdiscipline"
)

func TestHTTPDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), httpdiscipline.Analyzer, "a")
}
