// Package analysis is the repo's static-analysis framework: a small,
// dependency-free core (Analyzer, Pass, Diagnostic) whose shapes mirror
// golang.org/x/tools/go/analysis, so the domain passes could migrate to
// the upstream framework unchanged if the module ever takes that
// dependency. Packages are loaded and type-checked by the sibling driver
// package (go list -export plus the gc importer — no x/tools), golden
// tests run through analysistest, and cmd/ldpids-lint is the multichecker
// CI runs over ./...
//
// Analyzers communicate with the code they check through //ldpids:
// directive comments (see DirectivePrefix): //ldpids:wallclock,
// //ldpids:orderinvariant, and //ldpids:unshared excuse an individual
// finding but only when they carry a justification — a bare escape hatch
// is itself a diagnostic; //ldpids:deterministic opts a whole package into
// checking; //ldpids:guardedby declares a lock-guard invariant for a
// struct field.
//
// The passes, each born from a bug this repo actually had:
//
//   - determinism (passes/determinism) forbids wall-clock reads,
//     math/rand, and order-sensitive map iteration in the packages whose
//     outputs feed the run journal's content hashes. Motivated by
//     ChurnPool.Advance readmitting users in map order, which made
//     identically-seeded churn runs draw different reporters.
//
//   - kindswitch (passes/kindswitch) requires every switch over fo.Kind
//     to cover all registered kinds or fail loudly in its default.
//     Motivated by the wire encoder silently dropping payloads of kinds
//     added after it was written, and Report.Size mispricing them.
//
//   - epsbudget (passes/epsbudget) keeps privacy budgets inside
//     validated constructors: no hand-built oracles, no Eps-carrying
//     config literal that never reaches a New* call, no post-construction
//     Eps assignment. An unvalidated ε ≤ 0 silently abolishes privacy.
//
//   - stripelock (passes/stripelock) checks //ldpids:guardedby fields
//     are only touched under their lock. Motivated by
//     StripedAggregator.Reports reading merged stripe counters outside
//     any stripe's locked region.
//
//   - httpdiscipline (passes/httpdiscipline) catches handler shapes that
//     corrupt responses: header writes after WriteHeader, double
//     WriteHeader, error responses not followed by return, and
//     single-value Flusher assertions that panic behind buffering
//     middleware.
//
//   - pkgdoc (passes/pkgdoc) requires a package doc comment on every
//     module package.
package analysis
