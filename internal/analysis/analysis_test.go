package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const directiveSrc = `// Package p is a directive parsing fixture.
//
//ldpids:deterministic fixture opts in
package p

func f() int {
	//ldpids:wallclock recorded stamp only
	x := 1
	//ldpids:unshared
	y := 2
	return x + y // plain comment; "ldpids:" mid-text is not a directive
}
`

func TestDirectives(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", directiveSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var reported []Diagnostic
	pass := &Pass{
		Fset:   fset,
		Files:  []*ast.File{f},
		Report: func(d Diagnostic) { reported = append(reported, d) },
	}

	if _, ok := pass.PackageDirective("deterministic"); !ok {
		t.Fatal("package directive above the clause not found")
	}
	if _, ok := pass.PackageDirective("wallclock"); ok {
		t.Fatal("function-body directive must not count as a package directive")
	}

	ds := fileDirectives(f)
	if len(ds) != 3 {
		t.Fatalf("parsed %d directives, want 3", len(ds))
	}
	if ds[1].Name != "wallclock" || ds[1].Justification != "recorded stamp only" {
		t.Fatalf("wallclock directive parsed as %+v", ds[1])
	}

	// x := 1 sits on the line after the justified wallclock directive.
	if !pass.Exempted(posOnLine(fset, f, srcLine(t, "x := 1")), "wallclock") {
		t.Fatal("justified directive on the previous line must exempt")
	}
	if len(reported) != 0 {
		t.Fatalf("justified exemption reported %v", reported)
	}

	// y := 2 follows the bare unshared directive: the underlying finding
	// is suppressed, and the missing justification is reported instead.
	if !pass.Exempted(posOnLine(fset, f, srcLine(t, "y := 2")), "unshared") {
		t.Fatal("bare directive must still suppress the underlying finding")
	}
	if len(reported) != 1 {
		t.Fatalf("bare directive reported %d diagnostics, want 1", len(reported))
	}
	if got := reported[0].Message; got != "//ldpids:unshared directive needs a justification" {
		t.Fatalf("unexpected message %q", got)
	}

	// A directive two lines up does not reach.
	if pass.Exempted(posOnLine(fset, f, srcLine(t, "return x + y")), "unshared") {
		t.Fatal("directive must only reach its own and the next line")
	}
}

// srcLine returns the 1-based line of the first source line containing
// needle.
func srcLine(t *testing.T, needle string) int {
	t.Helper()
	for i, line := range strings.Split(directiveSrc, "\n") {
		if strings.Contains(line, needle) {
			return i + 1
		}
	}
	t.Fatalf("%q not in fixture", needle)
	return 0
}

// posOnLine returns a position on the given line of f.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}
