package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix marks an ldpids analyzer directive comment. Directives
// are machine-readable comments of the form
//
//	//ldpids:NAME justification...
//
// (no space after //, like //go: directives, so gofmt and godoc treat
// them as directives rather than documentation). Every directive must
// carry a justification: an escape hatch without a recorded reason is
// itself a diagnostic.
const DirectivePrefix = "//ldpids:"

// A Directive is one parsed //ldpids: comment.
type Directive struct {
	// Name is the directive word after the colon ("wallclock", ...).
	Name string
	// Justification is the free text after the name. Analyzers honoring a
	// directive must reject an empty justification.
	Justification string
	// Pos is the comment's position.
	Pos token.Pos
}

// fileDirectives parses every //ldpids: directive in f.
func fileDirectives(f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			name, just, _ := strings.Cut(rest, " ")
			if name == "" {
				continue
			}
			out = append(out, Directive{
				Name:          name,
				Justification: strings.TrimSpace(just),
				Pos:           c.Pos(),
			})
		}
	}
	return out
}

// Directive returns the named directive annotating pos: one on the same
// line as pos, or on the line immediately above it, in the same file.
// This is the escape-hatch lookup — an analyzer that finds a violation at
// pos honors the directive (after checking its Justification is
// non-empty) instead of reporting.
func (p *Pass) Directive(pos token.Pos, name string) (Directive, bool) {
	f := p.fileOf(pos)
	if f == nil {
		return Directive{}, false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range p.directivesOf(f) {
		if d.Name != name {
			continue
		}
		if dl := p.Fset.Position(d.Pos).Line; dl == line || dl == line-1 {
			return d, true
		}
	}
	return Directive{}, false
}

// PackageDirective returns the named directive if any file of the package
// carries it above (or on the line of) its package clause — the way a
// whole package opts into a package-scoped check.
func (p *Pass) PackageDirective(name string) (Directive, bool) {
	for _, f := range p.Files {
		clause := p.Fset.Position(f.Name.Pos()).Line
		for _, d := range p.directivesOf(f) {
			if d.Name == name && p.Fset.Position(d.Pos).Line <= clause {
				return d, true
			}
		}
	}
	return Directive{}, false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

func (p *Pass) directivesOf(f *ast.File) []Directive {
	if p.directives == nil {
		p.directives = make(map[*ast.File][]Directive)
	}
	ds, ok := p.directives[f]
	if !ok {
		ds = fileDirectives(f)
		p.directives[f] = ds
	}
	return ds
}
