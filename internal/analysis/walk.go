package analysis

import (
	"go/ast"
	"go/token"
)

// WithStack traverses every node of every file in depth-first order,
// calling fn with each node and the stack of its ancestors: stack[0] is
// the enclosing *ast.File and stack[len(stack)-1] is n itself. Returning
// false skips n's children. It is the stdlib stand-in for
// x/tools/go/ast/inspector's WithStack, which several passes need to see
// a node's context (is this composite literal a constructor argument?).
func WithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if !fn(n, stack) {
				stack = stack[:len(stack)-1]
				return false
			}
			return true
		})
	}
}

// Exempted reports whether a violation at pos is excused by the named
// escape-hatch directive on the same or the preceding line. A directive
// without a justification never excuses silently: the missing
// justification is reported in place of the violation, so every escape
// hatch in the tree carries a recorded reason.
func (p *Pass) Exempted(pos token.Pos, name string) bool {
	d, ok := p.Directive(pos, name)
	if !ok {
		return false
	}
	if d.Justification == "" {
		p.Reportf(pos, "//ldpids:%s directive needs a justification", name)
		return true
	}
	return true
}
