package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named, documented static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer (the de-facto standard), so the
// domain analyzers in passes/ can migrate to the upstream framework
// unchanged if the module ever takes the x/tools dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the ldpids-lint
	// command line. By convention it is a single lowercase word.
	Name string
	// Doc states the invariant the analyzer encodes: the first line is a
	// summary, the rest explains what is reported, what is not, and which
	// escape-hatch directive (if any) suppresses a report.
	Doc string
	// Run analyzes one package, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions in Files.
	Fset *token.FileSet
	// Files are the package's parsed non-test Go files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and objects for the expressions in Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	directives map[*ast.File][]Directive
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The analyzer name
// is attached by the driver.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
