// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A test package lives under <testdata>/src/<name> (an ordinary in-module
// package, so it may import real repo packages like ldpids/internal/fo;
// the go tool never builds testdata trees into ./...). Lines that should
// be reported carry a trailing expectation comment:
//
//	time.Now() // want `wall-clock read`
//
// Each backquoted or double-quoted argument is a regular expression; one
// expectation may list several. Every diagnostic on a line must match an
// expectation on that line and every expectation must be matched by at
// least one diagnostic — so golden packages double as false-positive
// guards: clean declarations with no // want comments fail the test if
// the analyzer fires on them.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ldpids/internal/analysis"
	"ldpids/internal/analysis/driver"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each pattern package from <testdata>/src and checks a's
// diagnostics against the package's // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	for _, pattern := range patterns {
		dir := filepath.Join(testdata, "src", pattern)
		pkgs, err := driver.Load(dir, ".")
		if err != nil {
			t.Errorf("%s: %v", pattern, err)
			continue
		}
		diags, err := driver.Run(pkgs, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: %v", pattern, err)
			continue
		}
		check(t, pattern, pkgs, diags)
	}
}

// expectation is one // want comment: the regexes that must be matched by
// diagnostics on its line.
type expectation struct {
	file    string
	line    int
	regexps []*regexp.Regexp
	matched []bool
}

func check(t *testing.T, pattern string, pkgs []*driver.Package, diags []driver.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					w, err := parseWant(pkg.Fset.Position(c.Pos()), c.Text)
					if err != nil {
						t.Errorf("%s: %v", pattern, err)
						continue
					}
					if w != nil {
						wants = append(wants, w)
					}
				}
			}
		}
	}

	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", pattern, d)
		}
	}
	for _, w := range wants {
		for i, re := range w.regexps {
			if !w.matched[i] {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", pattern, filepath.Base(w.file), w.line, re)
			}
		}
	}
}

func matchWant(wants []*expectation, d driver.Diagnostic) bool {
	for _, w := range wants {
		if w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		for i, re := range w.regexps {
			if re.MatchString(d.Message) {
				w.matched[i] = true
				return true
			}
		}
	}
	return false
}

// parseWant extracts the expectation from one comment, if it carries one.
// Supported argument forms: `regexp` and "regexp".
func parseWant(pos token.Position, text string) (*expectation, error) {
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(text[idx+len("// want "):])
	w := &expectation{file: pos.Filename, line: pos.Line}
	for rest != "" {
		var quote byte = rest[0]
		if quote != '`' && quote != '"' {
			return nil, fmt.Errorf("%s: malformed // want argument %q", pos, rest)
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("%s: unterminated // want argument %q", pos, rest)
		}
		re, err := regexp.Compile(rest[1 : 1+end])
		if err != nil {
			return nil, fmt.Errorf("%s: bad // want regexp: %v", pos, err)
		}
		w.regexps = append(w.regexps, re)
		w.matched = append(w.matched, false)
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(w.regexps) == 0 {
		return nil, fmt.Errorf("%s: // want with no arguments", pos)
	}
	return w, nil
}
