// Package ldprand provides the deterministic randomness substrate used by
// every stochastic component in this repository: frequency-oracle
// perturbation, synthetic stream generation, user-set sampling, and the
// Laplace noise of the centralized baselines.
//
// All randomness flows from a single root seed through splittable Sources,
// so every experiment in the benchmark harness is exactly replayable. The
// generator is SplitMix64 followed by an xoshiro256** core, both public
// domain constructions with good statistical behaviour and no locking.
package ldprand

import (
	"math"
	"math/bits"
)

// Source is a deterministic, splittable pseudo-random source. It is NOT
// safe for concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output. It is
// used to seed the xoshiro state and to derive split seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from the given 64-bit seed.
func New(seed uint64) *Source {
	st := seed
	var s Source
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
	// xoshiro must not start from the all-zero state.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	return &s
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Split derives an independent child Source. The child's stream is
// decorrelated from the parent's continuation, so subsystems can be given
// their own sources without coordinating consumption order.
func (s *Source) Split() *Source {
	seed := s.Uint64() ^ 0xd1b54a32d192ed03
	return New(seed)
}

// SplitN returns n independent child sources.
func (s *Source) SplitN(n int) []*Source {
	out := make([]*Source, n)
	for i := range out {
		out[i] = s.Split()
	}
	return out
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("ldprand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	v := s.Uint64()
	hi, lo := bits.Mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-n) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = bits.Mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Normal returns a sample from the standard normal distribution using the
// polar (Marsaglia) method.
func (s *Source) Normal() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// NormalScaled returns a sample from N(mu, sigma^2).
func (s *Source) NormalScaled(mu, sigma float64) float64 {
	return mu + sigma*s.Normal()
}

// Laplace returns a sample from the Laplace distribution with mean 0 and
// scale b (variance 2b^2). This is the noise primitive of the centralized
// DP baselines (BD/BA).
func (s *Source) Laplace(b float64) float64 {
	u := s.Float64() - 0.5
	if u < 0 {
		return b * math.Log(1+2*u)
	}
	return -b * math.Log(1-2*u)
}

// Exponential returns a sample from the exponential distribution with the
// given rate.
func (s *Source) Exponential(rate float64) float64 {
	return -math.Log(1-s.Float64()) / rate
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle shuffles the given int slice in place.
func (s *Source) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// SampleInts draws k distinct values uniformly from xs without replacement
// and without modifying xs. It panics if k > len(xs).
func (s *Source) SampleInts(xs []int, k int) []int {
	n := len(xs)
	if k > n {
		panic("ldprand: SampleInts k exceeds population")
	}
	if k == n {
		out := make([]int, n)
		copy(out, xs)
		s.Shuffle(out)
		return out
	}
	// Partial Fisher–Yates over a copy when k is a large fraction;
	// reservoir-free selection via index swaps otherwise.
	if k*3 >= n {
		tmp := make([]int, n)
		copy(tmp, xs)
		for i := 0; i < k; i++ {
			j := i + s.Intn(n-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
		}
		out := make([]int, k)
		copy(out, tmp[:k])
		return out
	}
	// Floyd's algorithm for small k: O(k) expected work, no copy of xs.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for i := n - k; i < n; i++ {
		j := s.Intn(i + 1)
		if _, dup := chosen[j]; dup {
			j = i
		}
		chosen[j] = struct{}{}
		out = append(out, xs[j])
	}
	return out
}

// Zipf draws from a Zipf distribution over {0, ..., n-1} with exponent
// alpha > 0 using inversion on the precomputed CDF held by z.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf CDF over n categories with exponent alpha.
func NewZipf(n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("ldprand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of categories.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a category index.
func (z *Zipf) Draw(s *Source) int {
	u := s.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
