package ldprand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	s := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if s.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 1 {
		t.Fatalf("seed 0 produced %d zero outputs", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent continuation should not be identical streams.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split child correlates with parent: %d/100", same)
	}
}

func TestSplitNCount(t *testing.T) {
	ss := New(3).SplitN(5)
	if len(ss) != 5 {
		t.Fatalf("SplitN(5) returned %d sources", len(ss))
	}
	for i, s := range ss {
		if s == nil {
			t.Fatalf("source %d is nil", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(11)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(13)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(19)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", k, c, want)
		}
	}
}

func TestBernoulliEdge(t *testing.T) {
	s := New(23)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(29)
	const p = 0.3
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(31)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Normal()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestNormalScaled(t *testing.T) {
	s := New(37)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.NormalScaled(5, 2)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("scaled normal mean %v, want ~5", mean)
	}
}

func TestLaplaceMoments(t *testing.T) {
	s := New(41)
	const n = 300000
	const b = 1.5
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Laplace(b)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("laplace mean %v", mean)
	}
	want := 2 * b * b
	if math.Abs(variance-want)/want > 0.05 {
		t.Fatalf("laplace variance %v want %v", variance, want)
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(43)
	const n = 200000
	const rate = 2.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exponential mean %v want %v", mean, 1/rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(47)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation element %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(53)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(xs)
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d want %d", got, sum)
	}
}

func TestSampleIntsProperties(t *testing.T) {
	s := New(59)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i * 10
		}
		out := s.SampleInts(xs, k)
		if len(out) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range out {
			if v%10 != 0 || v < 0 || v >= n*10 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIntsUniform(t *testing.T) {
	s := New(61)
	xs := []int{0, 1, 2, 3, 4}
	counts := make([]int, 5)
	const draws = 50000
	for i := 0; i < draws; i++ {
		for _, v := range s.SampleInts(xs, 2) {
			counts[v]++
		}
	}
	want := float64(2*draws) / 5
	for k, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("element %d sampled %d times, want ~%v", k, c, want)
		}
	}
}

func TestSampleIntsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInts with k>n did not panic")
		}
	}()
	New(1).SampleInts([]int{1, 2}, 3)
}

func TestZipfDistribution(t *testing.T) {
	s := New(67)
	z := NewZipf(10, 1.0)
	if z.N() != 10 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Draw(s)]++
	}
	// Monotone non-increasing frequency in expectation; check the strong
	// ordering between well-separated ranks only.
	if counts[0] <= counts[4] || counts[4] <= counts[9] {
		t.Fatalf("zipf counts not decreasing: %v", counts)
	}
	// Rank-1 to rank-2 ratio should be about 2 for alpha=1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.7 || ratio > 2.3 {
		t.Fatalf("zipf rank ratio %v, want ~2", ratio)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(0, 1)
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal()
	}
}

func BenchmarkSampleInts(b *testing.B) {
	s := New(1)
	xs := make([]int, 100000)
	for i := range xs {
		xs[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.SampleInts(xs, 1000)
	}
}
