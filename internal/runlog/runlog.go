// Package runlog persists completed experiment cells in an append-only,
// content-addressed journal, so interrupted evaluation runs resume instead
// of restarting (the experiment scheduler skips any run whose hash is
// already journaled).
//
// The format is JSONL: one Record per line, carrying the run's canonical
// content hash, an optional human-readable key (the preimage of the hash,
// for auditing), and a map of named metric values. The file is only ever
// appended to; a crash can therefore damage at most the final line, and
// Open detects a partial tail line (no trailing newline, or torn JSON) and
// drops it by truncating the file back to the last intact record. Torn
// lines in the middle of the file cannot result from append-only writes
// and are reported as corruption.
//
// Records with the same hash may appear more than once (for example when a
// later run computes additional metrics for an already-journaled cell);
// their metric maps merge in file order, later values winning per key.
// Because metric values are float64s serialized by encoding/json (shortest
// round-trippable form), a value read back from the journal is bit-identical
// to the value that was appended — resumed runs reproduce fresh runs
// exactly.
package runlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Metrics maps metric selector names (for example "MRE" or "CFPU") to
// their computed values for one run.
type Metrics map[string]float64

// Record is one journal line: the content hash of a run, an optional
// human-readable canonical key, and the run's metric values.
type Record struct {
	// Hash is the canonical content hash addressing the run.
	Hash string `json:"hash"`
	// Key optionally carries the hash preimage, so journals stay
	// auditable with standard text tools.
	Key string `json:"key,omitempty"`
	// Metrics holds the run's named metric values.
	Metrics Metrics `json:"metrics"`
}

// Journal is an open run journal. All methods are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	recs map[string]Metrics
}

// Open loads (or creates) the journal at path, drops a partial tail line
// left by a crash, and positions the file for appending.
func Open(path string) (*Journal, error) {
	// O_APPEND enforces the append-only invariant at the fd level: every
	// write lands at the true end of file, so even two processes sharing
	// a journal interleave whole records instead of silently overwriting
	// each other at stale offsets.
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, path: path, recs: make(map[string]Metrics)}
	valid := 0 // byte offset past the last intact record
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No newline: a torn final append. Drop it.
			break
		}
		line := data[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil || rec.Hash == "" {
			if off+nl+1 >= len(data) {
				// Torn final line that happened to include a newline
				// fragment; drop it like any other partial tail.
				break
			}
			f.Close()
			return nil, fmt.Errorf("runlog: %s: corrupt record at byte %d: %q", path, off, line)
		}
		j.merge(rec)
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// merge folds rec into the in-memory index; callers hold mu (or are still
// single-goroutine in Open).
func (j *Journal) merge(rec Record) {
	m := j.recs[rec.Hash]
	if m == nil {
		m = make(Metrics, len(rec.Metrics))
		j.recs[rec.Hash] = m
	}
	for k, v := range rec.Metrics {
		m[k] = v
	}
}

// Append writes rec as one journal line and folds it into the index. The
// write is a single syscall, so a crash leaves at most a droppable partial
// tail.
func (j *Journal) Append(rec Record) error {
	if rec.Hash == "" {
		return fmt.Errorf("runlog: record without hash")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runlog: append to %s: %w", j.path, err)
	}
	j.merge(rec)
	return nil
}

// Lookup returns the merged metrics journaled for hash.
func (j *Journal) Lookup(hash string) (Metrics, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	m, ok := j.recs[hash]
	if !ok {
		return nil, false
	}
	cp := make(Metrics, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp, true
}

// All returns a copy of every journaled record's merged metrics, keyed by
// hash.
func (j *Journal) All() map[string]Metrics {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]Metrics, len(j.recs))
	for h, m := range j.recs {
		cp := make(Metrics, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[h] = cp
	}
	return out
}

// Len reports the number of distinct journaled hashes.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
