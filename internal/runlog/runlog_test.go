package runlog

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "runlog.jsonl")
}

func TestAppendLookupReopen(t *testing.T) {
	path := tmpPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := Metrics{"MRE": math.Pi * 1e-7, "CFPU": 0.05, "neg": -0.0}
	if err := j.Append(Record{Hash: "h1", Key: "v1|ds=Sin", Metrics: want}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Hash: "h2", Metrics: Metrics{"MRE": 2}}); err != nil {
		t.Fatal(err)
	}
	got, ok := j.Lookup("h1")
	if !ok {
		t.Fatal("h1 missing before reopen")
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("pre-reopen %s = %v, want %v", k, got[k], v)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", j2.Len())
	}
	got, ok = j2.Lookup("h1")
	if !ok {
		t.Fatal("h1 missing after reopen")
	}
	// The JSON round trip must be bit-identical, including the sign of
	// zero — this is what makes resumed tables byte-equal to fresh ones.
	for k, v := range want {
		if math.Float64bits(got[k]) != math.Float64bits(v) {
			t.Fatalf("round trip %s = %x, want %x", k, math.Float64bits(got[k]), math.Float64bits(v))
		}
	}
}

func TestPartialTailDropped(t *testing.T) {
	path := tmpPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Hash: "h1", Metrics: Metrics{"MRE": 1}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a torn, newline-less final line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"hash":"h2","metr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatalf("partial tail not tolerated: %v", err)
	}
	if j2.Len() != 1 {
		t.Fatalf("Len = %d after torn tail, want 1", j2.Len())
	}
	if _, ok := j2.Lookup("h2"); ok {
		t.Fatal("torn record resurrected")
	}
	// Appending after recovery must yield a clean, fully-parsable file.
	if err := j2.Append(Record{Hash: "h3", Metrics: Metrics{"MRE": 3}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 2 {
		t.Fatalf("Len = %d after recovery append, want 2", j3.Len())
	}
	if _, ok := j3.Lookup("h3"); !ok {
		t.Fatal("post-recovery record lost")
	}
}

func TestCorruptMiddleLineRejected(t *testing.T) {
	path := tmpPath(t)
	content := `{"hash":"h1","metrics":{"MRE":1}}
not json at all
{"hash":"h2","metrics":{"MRE":2}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-file corruption not reported, err=%v", err)
	}
}

func TestDuplicateHashMerges(t *testing.T) {
	path := tmpPath(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Hash: "h", Metrics: Metrics{"MRE": 1, "MAE": 2}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Hash: "h", Metrics: Metrics{"MRE": 10, "KalmanMSE": 3}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m, ok := j2.Lookup("h")
	if !ok {
		t.Fatal("merged hash missing")
	}
	if m["MRE"] != 10 || m["MAE"] != 2 || m["KalmanMSE"] != 3 {
		t.Fatalf("merge wrong: %v", m)
	}
	if j2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", j2.Len())
	}
}

func TestAppendRequiresHash(t *testing.T) {
	j, err := Open(tmpPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Metrics: Metrics{"MRE": 1}}); err == nil {
		t.Fatal("hashless record accepted")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	j, err := Open(tmpPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Hash: "h", Metrics: Metrics{"MRE": 1}}); err != nil {
		t.Fatal(err)
	}
	m, _ := j.Lookup("h")
	m["MRE"] = 99
	again, _ := j.Lookup("h")
	if again["MRE"] != 1 {
		t.Fatal("Lookup exposed internal state")
	}
}
