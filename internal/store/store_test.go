package store

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "releases.ldps")
}

func TestRoundTrip(t *testing.T) {
	path := tmpPath(t)
	w, err := Create(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	recs := [][]float64{{0.1, 0.2, 0.7}, {0.0, -0.05, 1.05}, {0.3, 0.3, 0.4}}
	for i, h := range recs {
		if err := w.Append(i+1, h); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	ts, hists, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("read %d records", len(ts))
	}
	for i := range recs {
		if ts[i] != i+1 {
			t.Fatalf("timestamp %d want %d", ts[i], i+1)
		}
		for k := range recs[i] {
			if hists[i][k] != recs[i][k] {
				t.Fatalf("record %d element %d: %v want %v", i, k, hists[i][k], recs[i][k])
			}
		}
	}
}

func TestSpecialFloats(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path, 2)
	if err := w.Append(1, []float64{math.Inf(1), math.SmallestNonzeroFloat64}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, hists, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hists[0][0], 1) || hists[0][1] != math.SmallestNonzeroFloat64 {
		t.Fatalf("special floats mangled: %v", hists[0])
	}
}

func TestAppendValidation(t *testing.T) {
	w, _ := Create(tmpPath(t), 2)
	defer w.Close()
	if err := w.Append(1, []float64{1}); err == nil {
		t.Fatal("wrong-size histogram accepted")
	}
	if err := w.Append(-1, []float64{1, 2}); err == nil {
		t.Fatal("negative timestamp accepted")
	}
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(tmpPath(t), 0); err == nil {
		t.Fatal("zero domain accepted")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	path := tmpPath(t)
	os.WriteFile(path, []byte("not a log file at all"), 0o644)
	if _, err := Open(path); err == nil {
		t.Fatal("garbage file opened")
	}
}

func TestTornFinalRecordTolerated(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path, 2)
	w.Append(1, []float64{0.5, 0.5})
	w.Append(2, []float64{0.4, 0.6})
	w.Close()
	// Chop bytes off the final record (simulated crash mid-write).
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-7], 0o644)

	ts, hists, err := ReadAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || hists[0][1] != 0.5 {
		t.Fatalf("torn log read %d records", len(ts))
	}
}

func TestCorruptRecordDetected(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path, 2)
	w.Append(1, []float64{0.5, 0.5})
	w.Close()
	data, _ := os.ReadFile(path)
	data[headerSize+6] ^= 0xFF // flip a payload byte
	os.WriteFile(path, data, 0o644)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Next(); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestEmptyLog(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path, 4)
	w.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Domain() != 4 {
		t.Fatalf("domain %d", r.Domain())
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSync(t *testing.T) {
	path := tmpPath(t)
	w, _ := Create(path, 1)
	w.Append(1, []float64{0.9})
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Readable while still open for append.
	ts, _, err := ReadAll(path)
	if err != nil || len(ts) != 1 {
		t.Fatalf("sync visibility: %v %d", err, len(ts))
	}
	w.Close()
}

func TestQuickRoundTrip(t *testing.T) {
	path := tmpPath(t)
	f := func(raw []uint16) bool {
		d := 3
		w, err := Create(path, d)
		if err != nil {
			return false
		}
		var want [][]float64
		for i, r := range raw {
			h := []float64{float64(r) / 65536, float64(r%97) / 97, float64(r % 7)}
			if w.Append(i, h) != nil {
				return false
			}
			want = append(want, h)
		}
		if w.Close() != nil {
			return false
		}
		_, got, err := ReadAll(path)
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			for k := range want[i] {
				if got[i][k] != want[i][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.ldps")
	w, _ := Create(path, 100)
	h := make([]float64, 100)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Append(i, h); err != nil {
			b.Fatal(err)
		}
	}
	w.Close()
}
