// Package store persists released histogram streams to disk as an
// append-only, CRC-checked binary log. An aggregator running indefinitely
// needs its release history durable — for dashboards, replay, and audits —
// without holding an unbounded stream in memory.
//
// Format (little endian):
//
//	header:  magic "LDPS" | version uint16 | domain uint32
//	record:  timestamp uint32 | d × float64 | crc32(record bytes)
//
// Records are self-checking: a torn final write (crash mid-append) is
// detected and truncated on open rather than corrupting reads.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

var magic = [4]byte{'L', 'D', 'P', 'S'}

const version = 1

// headerSize is the byte length of the file header.
const headerSize = 4 + 2 + 4

// ErrCorrupt reports a record whose checksum does not match.
var ErrCorrupt = errors.New("store: corrupt record")

// recordSize returns the on-disk size of one record for domain size d.
func recordSize(d int) int { return 4 + 8*d + 4 }

// Writer appends released histograms to a log file.
type Writer struct {
	f   *os.File
	buf *bufio.Writer
	d   int
	rec []byte
}

// Create creates (or truncates) a log at path for histograms of domain
// size d.
func Create(path string, d int) (*Writer, error) {
	if d < 1 {
		return nil, fmt.Errorf("store: domain size must be >= 1, got %d", d)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, buf: bufio.NewWriter(f), d: d, rec: make([]byte, recordSize(d))}
	var hdr [headerSize]byte
	copy(hdr[:4], magic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], version)
	binary.LittleEndian.PutUint32(hdr[6:10], uint32(d))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// Append writes the release at timestamp t.
func (w *Writer) Append(t int, hist []float64) error {
	if len(hist) != w.d {
		return fmt.Errorf("store: histogram size %d, want %d", len(hist), w.d)
	}
	if t < 0 {
		return fmt.Errorf("store: negative timestamp %d", t)
	}
	rec := w.rec
	binary.LittleEndian.PutUint32(rec[0:4], uint32(t))
	off := 4
	for _, v := range hist {
		binary.LittleEndian.PutUint64(rec[off:off+8], mathFloat64bits(v))
		off += 8
	}
	crc := crc32.ChecksumIEEE(rec[:off])
	binary.LittleEndian.PutUint32(rec[off:off+4], crc)
	_, err := w.buf.Write(rec)
	return err
}

// Sync flushes buffered records and fsyncs the file.
func (w *Writer) Sync() error {
	if err := w.buf.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *Writer) Close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader iterates a release log.
type Reader struct {
	f   *os.File
	buf *bufio.Reader
	d   int
	rec []byte
}

// Open opens a log for reading and validates its header.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	buf := bufio.NewReader(f)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(buf, hdr[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: short header: %w", err)
	}
	if [4]byte(hdr[:4]) != magic {
		f.Close()
		return nil, errors.New("store: bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != version {
		f.Close()
		return nil, fmt.Errorf("store: unsupported version %d", v)
	}
	d := int(binary.LittleEndian.Uint32(hdr[6:10]))
	if d < 1 || d > 1<<20 {
		f.Close()
		return nil, fmt.Errorf("store: implausible domain size %d", d)
	}
	return &Reader{f: f, buf: buf, d: d, rec: make([]byte, recordSize(d))}, nil
}

// Domain returns the stored histograms' domain size.
func (r *Reader) Domain() int { return r.d }

// Next returns the next record. It returns io.EOF at a clean end of log,
// and io.ErrUnexpectedEOF for a torn final record (safe to treat as end of
// log after a crash). ErrCorrupt indicates checksum failure.
func (r *Reader) Next() (t int, hist []float64, err error) {
	if _, err := io.ReadFull(r.buf, r.rec); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, io.ErrUnexpectedEOF
	}
	body := r.rec[:len(r.rec)-4]
	want := binary.LittleEndian.Uint32(r.rec[len(r.rec)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, ErrCorrupt
	}
	t = int(binary.LittleEndian.Uint32(body[0:4]))
	hist = make([]float64, r.d)
	off := 4
	for k := range hist {
		hist[k] = mathFloat64frombits(binary.LittleEndian.Uint64(body[off : off+8]))
		off += 8
	}
	return t, hist, nil
}

// Close closes the reader.
func (r *Reader) Close() error { return r.f.Close() }

// ReadAll loads an entire log, tolerating a torn final record.
func ReadAll(path string) (timestamps []int, hists [][]float64, err error) {
	r, err := Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer r.Close()
	for {
		t, h, err := r.Next()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return timestamps, hists, nil
		}
		if err != nil {
			return nil, nil, err
		}
		timestamps = append(timestamps, t)
		hists = append(hists, h)
	}
}
