package privacy

import (
	"testing"

	"ldpids/internal/ldprand"
)

func TestNoViolationWithinBudget(t *testing.T) {
	a := NewAccountant(1.0, 3, 10, ldprand.New(1))
	// Each user spends 0.3 per timestamp: window sum 0.9 <= 1.
	for ts := 1; ts <= 10; ts++ {
		a.Observe(ts, nil, 0.3, 10)
	}
	if v := a.Check(1e-9); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}
	if got := a.MaxWindowSpend(); got < 0.9-1e-9 || got > 0.9+1e-9 {
		t.Fatalf("max window spend %v want 0.9", got)
	}
}

func TestDetectsOverrun(t *testing.T) {
	a := NewAccountant(1.0, 3, 5, ldprand.New(1))
	for ts := 1; ts <= 4; ts++ {
		a.Observe(ts, nil, 0.4, 5)
	}
	v := a.Check(1e-9)
	if len(v) == 0 {
		t.Fatal("overrun not detected (1.2 per window)")
	}
	if v[0].Spent < 1.2-1e-9 {
		t.Fatalf("reported spend %v", v[0].Spent)
	}
	if v[0].Error() == "" {
		t.Fatal("violation has empty error")
	}
}

func TestWindowSlidesCorrectly(t *testing.T) {
	// Spending eps at t=1 and t=5 with w=3 is fine; at t=1 and t=3 is not.
	a := NewAccountant(1.0, 3, 2, ldprand.New(1))
	a.Observe(1, []int{0}, 1.0, 2)
	a.Observe(5, []int{0}, 1.0, 2)
	if v := a.Check(1e-9); len(v) != 0 {
		t.Fatalf("spaced spends flagged: %v", v)
	}
	b := NewAccountant(1.0, 3, 2, ldprand.New(1))
	b.Observe(1, []int{0}, 1.0, 2)
	b.Observe(3, []int{0}, 1.0, 2)
	if v := b.Check(1e-9); len(v) == 0 {
		t.Fatal("overlapping spends not flagged")
	}
}

func TestPerUserTracking(t *testing.T) {
	// Only user 1 overspends.
	a := NewAccountant(1.0, 2, 3, ldprand.New(1))
	a.Observe(1, []int{0}, 0.5, 3)
	a.Observe(1, []int{1}, 0.8, 3)
	a.Observe(2, []int{1}, 0.8, 3)
	v := a.Check(1e-9)
	if len(v) != 1 || v[0].User != 1 {
		t.Fatalf("violations %v, want exactly user 1", v)
	}
}

func TestSamplingOnLargePopulation(t *testing.T) {
	n := 100000
	a := NewAccountant(1.0, 5, n, ldprand.New(7))
	if a.TrackedUsers() != MaxTrackedUsers {
		t.Fatalf("tracked %d users, want %d", a.TrackedUsers(), MaxTrackedUsers)
	}
	// Broadcast exposures are charged to tracked users; 5 x 0.2 = 1.0
	// exactly fills the window budget.
	for ts := 1; ts <= 5; ts++ {
		a.Observe(ts, nil, 0.2, n)
	}
	if v := a.Check(1e-9); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	a.Observe(6, nil, 0.2, n)
	a.Observe(6, nil, 0.2, n) // double-charge timestamp 6: 1.2 over window
	if v := a.Check(1e-9); len(v) == 0 {
		t.Fatal("sampled accountant missed overrun")
	}
}

func TestMaxReportsPerWindow(t *testing.T) {
	a := NewAccountant(5.0, 4, 3, ldprand.New(1))
	a.Observe(1, []int{0}, 1, 3)
	a.Observe(2, []int{0}, 1, 3)
	a.Observe(9, []int{0}, 1, 3)
	if got := a.MaxReportsPerWindow(); got != 2 {
		t.Fatalf("max reports per window %d want 2", got)
	}
}

func TestEmptyAccountant(t *testing.T) {
	a := NewAccountant(1, 3, 10, ldprand.New(1))
	if v := a.Check(0); len(v) != 0 {
		t.Fatal("empty accountant reported violations")
	}
	if a.MaxWindowSpend() != 0 {
		t.Fatal("empty accountant nonzero spend")
	}
	if a.MaxReportsPerWindow() != 0 {
		t.Fatal("empty accountant nonzero reports")
	}
}
