// Package privacy provides a runtime w-event LDP accountant: it observes
// every (user, timestamp, ε) exposure a mechanism incurs through the
// simulation Env and verifies, post-hoc, that no user's privacy loss over
// any window of w consecutive timestamps exceeds the total budget ε.
//
// Because exposures are identical across users within each collected set,
// auditing a uniform sample of users is sufficient to catch mechanism-level
// bugs while keeping memory bounded on large populations; the accountant
// audits all users when the population is small and a deterministic sample
// otherwise.
package privacy

import (
	"fmt"
	"sort"

	"ldpids/internal/ldprand"
)

// exposure is one LDP interaction: user u reported at timestamp t with
// budget eps.
type exposure struct {
	t   int
	eps float64
}

// Accountant audits per-user w-event privacy loss.
type Accountant struct {
	w       int
	eps     float64
	tracked map[int][]exposure
	all     bool
}

// MaxTrackedUsers bounds the audited-user sample on large populations.
const MaxTrackedUsers = 512

// NewAccountant returns an accountant for budget eps per window of size w
// over a population of n users. When n exceeds MaxTrackedUsers, a uniform
// deterministic sample of users is audited instead of all of them.
func NewAccountant(eps float64, w, n int, src *ldprand.Source) *Accountant {
	a := &Accountant{w: w, eps: eps, tracked: make(map[int][]exposure)}
	if n <= MaxTrackedUsers {
		a.all = true
		return a
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	for _, u := range src.SampleInts(ids, MaxTrackedUsers) {
		a.tracked[u] = nil
	}
	return a
}

// Observe records that each user in users was exposed with budget eps at
// timestamp t. users == nil means the whole population, in which case
// every tracked user is charged.
func (a *Accountant) Observe(t int, users []int, eps float64, n int) {
	charge := func(u int) {
		if a.all {
			a.tracked[u] = append(a.tracked[u], exposure{t: t, eps: eps})
			return
		}
		if _, ok := a.tracked[u]; ok {
			a.tracked[u] = append(a.tracked[u], exposure{t: t, eps: eps})
		}
	}
	if users == nil {
		if a.all {
			for u := 0; u < n; u++ {
				charge(u)
			}
		} else {
			for u := range a.tracked {
				charge(u)
			}
		}
		return
	}
	for _, u := range users {
		charge(u)
	}
}

// Violation describes a w-event budget overrun found by Check.
type Violation struct {
	User        int
	WindowStart int
	WindowEnd   int
	Spent       float64
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("privacy: user %d spent %.6g > budget in window [%d,%d]",
		v.User, v.Spent, v.WindowStart, v.WindowEnd)
}

// Check scans every audited user's exposure history and returns all
// w-event violations (empty means the invariant held). tol absorbs float
// rounding in budget arithmetic.
func (a *Accountant) Check(tol float64) []Violation {
	var out []Violation
	users := make([]int, 0, len(a.tracked))
	for u := range a.tracked {
		users = append(users, u)
	}
	sort.Ints(users)
	for _, u := range users {
		exps := a.tracked[u]
		sort.Slice(exps, func(i, j int) bool { return exps[i].t < exps[j].t })
		// Two-pointer sliding window over exposures.
		sum := 0.0
		lo := 0
		for hi := 0; hi < len(exps); hi++ {
			sum += exps[hi].eps
			for exps[hi].t-exps[lo].t+1 > a.w {
				sum -= exps[lo].eps
				lo++
			}
			if sum > a.eps+tol {
				out = append(out, Violation{
					User:        u,
					WindowStart: exps[hi].t - a.w + 1,
					WindowEnd:   exps[hi].t,
					Spent:       sum,
				})
			}
		}
	}
	return out
}

// MaxWindowSpend returns the largest privacy loss any audited user incurred
// in any w-window — useful for asserting budgets are actually used, not
// just not exceeded.
func (a *Accountant) MaxWindowSpend() float64 {
	maxSpend := 0.0
	for _, exps := range a.tracked {
		sort.Slice(exps, func(i, j int) bool { return exps[i].t < exps[j].t })
		sum := 0.0
		lo := 0
		for hi := 0; hi < len(exps); hi++ {
			sum += exps[hi].eps
			for exps[hi].t-exps[lo].t+1 > a.w {
				sum -= exps[lo].eps
				lo++
			}
			if sum > maxSpend {
				maxSpend = sum
			}
		}
	}
	return maxSpend
}

// TrackedUsers returns how many users are being audited.
func (a *Accountant) TrackedUsers() int { return len(a.tracked) }

// MaxReportsPerWindow returns the largest number of reports any audited
// user made within any w-window; population-division methods must keep
// this at 1.
func (a *Accountant) MaxReportsPerWindow() int {
	maxReports := 0
	for _, exps := range a.tracked {
		sort.Slice(exps, func(i, j int) bool { return exps[i].t < exps[j].t })
		lo := 0
		for hi := 0; hi < len(exps); hi++ {
			for exps[hi].t-exps[lo].t+1 > a.w {
				lo++
			}
			if n := hi - lo + 1; n > maxReports {
				maxReports = n
			}
		}
	}
	return maxReports
}
