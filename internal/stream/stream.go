// Package stream defines the streaming data model of LDP-IDS: a population
// of N users, each holding a value from a categorical domain Ω of size d at
// every discrete timestamp, and the aggregate frequency histogram c_t the
// server wants to estimate.
//
// The package also provides the paper's synthetic stream generators — the
// LNS (linear/Gaussian-walk), Sin, and Log(istic) probability processes of
// §7.1.1 — plus generic building blocks (time-varying categorical draws and
// per-user Markov walkers) used by the simulated real-world traces in
// package trace.
package stream

import (
	"fmt"
	"math"

	"ldpids/internal/ldprand"
)

// Stream produces, per timestamp, the true values of every user in the
// population. Implementations may be infinite (Next never returns false)
// or finite.
type Stream interface {
	// Domain returns the domain size d.
	Domain() int
	// N returns the population size.
	N() int
	// Next fills dst (len N) with each user's value at the next
	// timestamp and reports whether the stream produced one. dst may be
	// nil, in which case a new slice is allocated. The returned slice is
	// only valid until the next call when dst is reused.
	Next(dst []int) ([]int, bool)
}

// Histogram computes the frequency vector (fractions summing to 1) of vals
// over a domain of size d.
func Histogram(vals []int, d int) []float64 {
	h := make([]float64, d)
	if len(vals) == 0 {
		return h
	}
	for _, v := range vals {
		if v < 0 || v >= d {
			panic(fmt.Sprintf("stream: value %d outside domain [0,%d)", v, d))
		}
		h[v]++
	}
	inv := 1 / float64(len(vals))
	for k := range h {
		h[k] *= inv
	}
	return h
}

// Materialize runs the stream for at most T timestamps and returns the
// per-timestamp user values. It is a convenience for tests and finite
// experiments; real consumers should iterate.
func Materialize(s Stream, T int) [][]int {
	out := make([][]int, 0, T)
	for t := 0; t < T; t++ {
		vals, ok := s.Next(nil)
		if !ok {
			break
		}
		out = append(out, vals)
	}
	return out
}

// Histograms computes the true histogram at every timestamp of a
// materialized stream.
func Histograms(snapshots [][]int, d int) [][]float64 {
	out := make([][]float64, len(snapshots))
	for t, vals := range snapshots {
		out[t] = Histogram(vals, d)
	}
	return out
}

// ---------------------------------------------------------------------------
// Probability processes (binary streams, §7.1.1).
// ---------------------------------------------------------------------------

// Process is a scalar probability sequence p_t = f(t) driving a binary
// stream: at each timestamp a p_t fraction of users holds value 1.
type Process interface {
	// P returns the probability at (1-based) timestamp t, clamped to
	// [0, 1] by the caller.
	P(t int) float64
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// LNSProcess is the paper's LNS model: a Gaussian random walk
// p_t = p_{t-1} + N(0, Q) with p_0 = 0.05 and sqrt(Q) = 0.0025 by default.
// The walk is stateful, so P must be called with strictly increasing t.
type LNSProcess struct {
	p   float64
	std float64
	t   int
	src *ldprand.Source
}

// NewLNS returns an LNS process with initial probability p0, step standard
// deviation std (the paper's sqrt(Q)), and its own randomness source.
func NewLNS(p0, std float64, src *ldprand.Source) *LNSProcess {
	return &LNSProcess{p: p0, std: std, src: src}
}

// DefaultLNS returns the paper-default LNS process (p0 = 0.05,
// sqrt(Q) = 0.0025).
func DefaultLNS(src *ldprand.Source) *LNSProcess {
	return NewLNS(0.05, 0.0025, src)
}

// P implements Process; it advances the walk once per increasing t.
func (l *LNSProcess) P(t int) float64 {
	for l.t < t {
		l.p = clamp01(l.p + l.src.NormalScaled(0, l.std))
		l.t++
	}
	return l.p
}

// SinProcess is the paper's Sin model p_t = A·sin(b·t) + h, defaults
// A = 0.05, b = 0.01, h = 0.075.
type SinProcess struct {
	A, B, H float64
}

// NewSin returns a sine process with amplitude A, angular rate b, offset h.
func NewSin(a, b, h float64) *SinProcess { return &SinProcess{A: a, B: b, H: h} }

// DefaultSin returns the paper-default Sin process.
func DefaultSin() *SinProcess { return NewSin(0.05, 0.01, 0.075) }

// P implements Process.
func (s *SinProcess) P(t int) float64 {
	return clamp01(s.A*math.Sin(s.B*float64(t)) + s.H)
}

// LogProcess is the paper's Log model p_t = A/(1+e^{-b·t}), defaults
// A = 0.25, b = 0.01.
type LogProcess struct {
	A, B float64
}

// NewLog returns a logistic process with ceiling A and rate b.
func NewLog(a, b float64) *LogProcess { return &LogProcess{A: a, B: b} }

// DefaultLog returns the paper-default Log process.
func DefaultLog() *LogProcess { return NewLog(0.25, 0.01) }

// P implements Process.
func (l *LogProcess) P(t int) float64 {
	return clamp01(l.A / (1 + math.Exp(-l.B*float64(t))))
}

// ---------------------------------------------------------------------------
// Binary stream driven by a probability process.
// ---------------------------------------------------------------------------

// BinaryStream realizes a Process as a population stream over the binary
// domain {0, 1}: at timestamp t, a ⌊p_t·N⌉ subset of users (chosen uniformly
// at random each step, as in §7.1.1) holds value 1.
type BinaryStream struct {
	n    int
	proc Process
	t    int
	src  *ldprand.Source
	perm []int
}

// NewBinaryStream returns an infinite binary stream over n users driven by
// proc, using src for the per-timestamp user selection.
func NewBinaryStream(n int, proc Process, src *ldprand.Source) *BinaryStream {
	if n <= 0 {
		panic("stream: population must be positive")
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return &BinaryStream{n: n, proc: proc, src: src, perm: perm}
}

// Domain implements Stream.
func (b *BinaryStream) Domain() int { return 2 }

// N implements Stream.
func (b *BinaryStream) N() int { return b.n }

// Next implements Stream.
func (b *BinaryStream) Next(dst []int) ([]int, bool) {
	if cap(dst) < b.n {
		dst = make([]int, b.n)
	}
	dst = dst[:b.n]
	b.t++
	p := clamp01(b.proc.P(b.t))
	ones := int(math.Round(p * float64(b.n)))
	// Re-randomize which users hold 1 every timestamp.
	b.src.Shuffle(b.perm)
	for i := range dst {
		dst[i] = 0
	}
	for _, u := range b.perm[:ones] {
		dst[u] = 1
	}
	return dst, true
}

// ---------------------------------------------------------------------------
// Generic categorical streams.
// ---------------------------------------------------------------------------

// DistStream draws each user's value IID from a time-varying categorical
// distribution dist(t) (len d, summing to ~1).
type DistStream struct {
	n, d int
	dist func(t int) []float64
	t    int
	src  *ldprand.Source
	cdf  []float64
}

// NewDistStream returns an infinite stream over n users and domain size d
// where at each timestamp every user draws from dist(t).
func NewDistStream(n, d int, dist func(t int) []float64, src *ldprand.Source) *DistStream {
	if n <= 0 || d < 2 {
		panic("stream: invalid population or domain")
	}
	return &DistStream{n: n, d: d, dist: dist, src: src, cdf: make([]float64, d)}
}

// Domain implements Stream.
func (ds *DistStream) Domain() int { return ds.d }

// N implements Stream.
func (ds *DistStream) N() int { return ds.n }

// Next implements Stream.
func (ds *DistStream) Next(dst []int) ([]int, bool) {
	if cap(dst) < ds.n {
		dst = make([]int, ds.n)
	}
	dst = dst[:ds.n]
	ds.t++
	p := ds.dist(ds.t)
	if len(p) != ds.d {
		panic(fmt.Sprintf("stream: dist returned %d probs, want %d", len(p), ds.d))
	}
	acc := 0.0
	for k, v := range p {
		acc += v
		ds.cdf[k] = acc
	}
	if acc <= 0 {
		panic("stream: dist sums to zero")
	}
	for i := range dst {
		u := ds.src.Float64() * acc
		lo, hi := 0, ds.d-1
		for lo < hi {
			mid := (lo + hi) / 2
			if ds.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		dst[i] = lo
	}
	return dst, true
}

// MarkovStream gives each user an independent Markov chain over the domain:
// with probability stay the user keeps its value, otherwise it jumps to a
// value drawn from the (possibly time-varying) jump distribution. This
// produces the per-user temporal autocorrelation that real mobility and
// click traces exhibit.
type MarkovStream struct {
	n, d  int
	stay  float64
	jump  func(t int, cur int) int
	state []int
	t     int
	src   *ldprand.Source
}

// NewMarkovStream returns an infinite Markov stream. init gives each user's
// starting value; jump(t, cur) draws a new value for a user leaving cur.
func NewMarkovStream(n, d int, stay float64, init func(u int) int, jump func(t, cur int) int, src *ldprand.Source) *MarkovStream {
	if n <= 0 || d < 2 {
		panic("stream: invalid population or domain")
	}
	if stay < 0 || stay > 1 {
		panic("stream: stay probability outside [0,1]")
	}
	state := make([]int, n)
	for u := range state {
		v := init(u)
		if v < 0 || v >= d {
			panic(fmt.Sprintf("stream: init value %d outside domain", v))
		}
		state[u] = v
	}
	return &MarkovStream{n: n, d: d, stay: stay, jump: jump, state: state, src: src}
}

// Domain implements Stream.
func (m *MarkovStream) Domain() int { return m.d }

// N implements Stream.
func (m *MarkovStream) N() int { return m.n }

// Next implements Stream.
func (m *MarkovStream) Next(dst []int) ([]int, bool) {
	if cap(dst) < m.n {
		dst = make([]int, m.n)
	}
	dst = dst[:m.n]
	m.t++
	for u := range m.state {
		if !m.src.Bernoulli(m.stay) {
			v := m.jump(m.t, m.state[u])
			if v < 0 || v >= m.d {
				panic(fmt.Sprintf("stream: jump value %d outside domain", v))
			}
			m.state[u] = v
		}
		dst[u] = m.state[u]
	}
	return dst, true
}

// ---------------------------------------------------------------------------
// Wrappers.
// ---------------------------------------------------------------------------

// Finite truncates an inner stream after T timestamps.
type Finite struct {
	Inner Stream
	T     int
	t     int
}

// Limit wraps s so that it ends after T timestamps.
func Limit(s Stream, T int) *Finite { return &Finite{Inner: s, T: T} }

// Domain implements Stream.
func (f *Finite) Domain() int { return f.Inner.Domain() }

// N implements Stream.
func (f *Finite) N() int { return f.Inner.N() }

// Next implements Stream.
func (f *Finite) Next(dst []int) ([]int, bool) {
	if f.t >= f.T {
		return nil, false
	}
	f.t++
	return f.Inner.Next(dst)
}

// Replay replays pre-materialized snapshots as a Stream.
type Replay struct {
	Snapshots [][]int
	D         int
	t         int
}

// NewReplay wraps materialized snapshots (all of equal length) into a
// finite Stream with the given domain size.
func NewReplay(snapshots [][]int, d int) *Replay {
	if len(snapshots) == 0 {
		panic("stream: empty replay")
	}
	n := len(snapshots[0])
	for _, s := range snapshots {
		if len(s) != n {
			panic("stream: ragged replay snapshots")
		}
	}
	return &Replay{Snapshots: snapshots, D: d}
}

// Domain implements Stream.
func (r *Replay) Domain() int { return r.D }

// N implements Stream.
func (r *Replay) N() int { return len(r.Snapshots[0]) }

// Next implements Stream.
func (r *Replay) Next(dst []int) ([]int, bool) {
	if r.t >= len(r.Snapshots) {
		return nil, false
	}
	snap := r.Snapshots[r.t]
	r.t++
	if cap(dst) < len(snap) {
		dst = make([]int, len(snap))
	}
	dst = dst[:len(snap)]
	copy(dst, snap)
	return dst, true
}
