package stream

import (
	"math"
	"testing"
	"testing/quick"

	"ldpids/internal/ldprand"
)

func TestHistogram(t *testing.T) {
	h := Histogram([]int{0, 0, 1, 2}, 3)
	want := []float64{0.5, 0.25, 0.25}
	for k := range want {
		if math.Abs(h[k]-want[k]) > 1e-12 {
			t.Fatalf("histogram %v want %v", h, want)
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := Histogram(nil, 3)
	for _, v := range h {
		if v != 0 {
			t.Fatalf("empty histogram non-zero: %v", h)
		}
	}
}

func TestHistogramPanicsOutOfDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-domain value accepted")
		}
	}()
	Histogram([]int{5}, 3)
}

func TestHistogramSumsToOne(t *testing.T) {
	f := func(raw []uint8, dRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d := int(dRaw%20) + 2
		vals := make([]int, len(raw))
		for i, r := range raw {
			vals[i] = int(r) % d
		}
		h := Histogram(vals, d)
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLNSProcessStatefulWalk(t *testing.T) {
	src := ldprand.New(201)
	l := DefaultLNS(src)
	p1 := l.P(1)
	p1again := l.P(1)
	if p1 != p1again {
		t.Fatal("repeated P(t) changed value")
	}
	// Walk should stay within [0,1] and mostly near p0 for small std.
	var maxDev float64
	for tt := 2; tt <= 800; tt++ {
		p := l.P(tt)
		if p < 0 || p > 1 {
			t.Fatalf("p_t=%v out of range", p)
		}
		if dev := math.Abs(p - 0.05); dev > maxDev {
			maxDev = dev
		}
	}
	// std 0.0025 over 800 steps: sigma of sum ~ 0.0025*sqrt(800) ≈ 0.07.
	if maxDev > 0.5 {
		t.Fatalf("LNS walk drifted implausibly far: %v", maxDev)
	}
}

func TestSinProcessValues(t *testing.T) {
	s := DefaultSin()
	if got := s.P(0); math.Abs(got-0.075) > 1e-12 {
		t.Fatalf("sin P(0) = %v want 0.075", got)
	}
	// Peak of sine: b*t = pi/2 -> t = 157.
	peak := s.P(157)
	if math.Abs(peak-0.125) > 1e-3 {
		t.Fatalf("sin peak %v want ~0.125", peak)
	}
}

func TestLogProcessMonotone(t *testing.T) {
	l := DefaultLog()
	prev := l.P(1)
	for tt := 2; tt <= 500; tt++ {
		cur := l.P(tt)
		if cur < prev-1e-12 {
			t.Fatalf("logistic not monotone at t=%d", tt)
		}
		prev = cur
	}
	if asym := l.P(100000); math.Abs(asym-0.25) > 1e-6 {
		t.Fatalf("logistic asymptote %v want 0.25", asym)
	}
}

func TestBinaryStreamFractions(t *testing.T) {
	src := ldprand.New(211)
	bs := NewBinaryStream(10000, DefaultSin(), src)
	if bs.Domain() != 2 || bs.N() != 10000 {
		t.Fatal("binary stream metadata")
	}
	var buf []int
	for tt := 1; tt <= 20; tt++ {
		var ok bool
		buf, ok = bs.Next(buf)
		if !ok {
			t.Fatal("infinite stream ended")
		}
		h := Histogram(buf, 2)
		want := DefaultSin().P(tt)
		if math.Abs(h[1]-want) > 1e-3 {
			t.Fatalf("t=%d ones fraction %v want %v", tt, h[1], want)
		}
	}
}

func TestBinaryStreamReassignsUsers(t *testing.T) {
	// The set of 1-holders should change between timestamps.
	src := ldprand.New(223)
	bs := NewBinaryStream(1000, NewSin(0, 0, 0.5), src)
	a, _ := bs.Next(nil)
	aCopy := make([]int, len(a))
	copy(aCopy, a)
	b, _ := bs.Next(nil)
	same := 0
	for i := range b {
		if aCopy[i] == b[i] {
			same++
		}
	}
	if same > 990 {
		t.Fatalf("user assignment barely changed: %d/1000 identical", same)
	}
}

func TestDistStream(t *testing.T) {
	src := ldprand.New(227)
	dist := func(t int) []float64 { return []float64{0.7, 0.2, 0.1} }
	ds := NewDistStream(20000, 3, dist, src)
	vals, ok := ds.Next(nil)
	if !ok {
		t.Fatal("stream ended")
	}
	h := Histogram(vals, 3)
	for k, want := range []float64{0.7, 0.2, 0.1} {
		if math.Abs(h[k]-want) > 0.02 {
			t.Fatalf("dist stream histogram %v", h)
		}
	}
}

func TestDistStreamTimeVarying(t *testing.T) {
	src := ldprand.New(229)
	dist := func(t int) []float64 {
		if t == 1 {
			return []float64{1, 0}
		}
		return []float64{0, 1}
	}
	ds := NewDistStream(100, 2, dist, src)
	v1, _ := ds.Next(nil)
	v2, _ := ds.Next(nil)
	for _, v := range v1 {
		if v != 0 {
			t.Fatal("t=1 should be all zeros")
		}
	}
	for _, v := range v2 {
		if v != 1 {
			t.Fatal("t=2 should be all ones")
		}
	}
}

func TestMarkovStreamStayProbability(t *testing.T) {
	src := ldprand.New(233)
	ms := NewMarkovStream(10000, 4, 0.9,
		func(u int) int { return u % 4 },
		func(t, cur int) int { return (cur + 1) % 4 },
		src)
	prev, _ := ms.Next(nil)
	prevCopy := make([]int, len(prev))
	copy(prevCopy, prev)
	cur, _ := ms.Next(nil)
	stayed := 0
	for i := range cur {
		if cur[i] == prevCopy[i] {
			stayed++
		}
	}
	rate := float64(stayed) / float64(len(cur))
	if math.Abs(rate-0.9) > 0.02 {
		t.Fatalf("stay rate %v want ~0.9", rate)
	}
}

func TestMarkovStreamInitValues(t *testing.T) {
	src := ldprand.New(239)
	ms := NewMarkovStream(100, 5, 1.0,
		func(u int) int { return u % 5 },
		func(t, cur int) int { return cur },
		src)
	vals, _ := ms.Next(nil)
	for u, v := range vals {
		if v != u%5 {
			t.Fatalf("user %d value %d want %d", u, v, u%5)
		}
	}
}

func TestLimit(t *testing.T) {
	src := ldprand.New(241)
	s := Limit(NewBinaryStream(10, DefaultSin(), src), 3)
	count := 0
	for {
		_, ok := s.Next(nil)
		if !ok {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("limited stream yielded %d timestamps, want 3", count)
	}
}

func TestMaterializeAndHistograms(t *testing.T) {
	src := ldprand.New(251)
	s := NewBinaryStream(50, DefaultSin(), src)
	snaps := Materialize(s, 5)
	if len(snaps) != 5 {
		t.Fatalf("materialized %d snapshots", len(snaps))
	}
	hs := Histograms(snaps, 2)
	if len(hs) != 5 || len(hs[0]) != 2 {
		t.Fatal("histograms shape")
	}
}

func TestReplayRoundTrip(t *testing.T) {
	src := ldprand.New(257)
	orig := Materialize(NewBinaryStream(20, DefaultSin(), src), 4)
	r := NewReplay(orig, 2)
	if r.N() != 20 || r.Domain() != 2 {
		t.Fatal("replay metadata")
	}
	for t2 := 0; t2 < 4; t2++ {
		vals, ok := r.Next(nil)
		if !ok {
			t.Fatal("replay ended early")
		}
		for i := range vals {
			if vals[i] != orig[t2][i] {
				t.Fatal("replay mismatch")
			}
		}
	}
	if _, ok := r.Next(nil); ok {
		t.Fatal("replay did not end")
	}
}

func TestReplayPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged replay accepted")
		}
	}()
	NewReplay([][]int{{1, 2}, {1}}, 3)
}

func TestNextReusesBuffer(t *testing.T) {
	src := ldprand.New(263)
	s := NewBinaryStream(100, DefaultSin(), src)
	buf := make([]int, 100)
	got, _ := s.Next(buf)
	if &got[0] != &buf[0] {
		t.Fatal("Next did not reuse provided buffer")
	}
}

func BenchmarkBinaryStreamNext(b *testing.B) {
	src := ldprand.New(1)
	s := NewBinaryStream(100000, DefaultLNS(src.Split()), src)
	buf := make([]int, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(buf)
	}
}

func BenchmarkMarkovStreamNext(b *testing.B) {
	src := ldprand.New(1)
	jsrc := src.Split()
	s := NewMarkovStream(100000, 10, 0.95,
		func(u int) int { return u % 10 },
		func(t, cur int) int { return jsrc.Intn(10) },
		src)
	buf := make([]int, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(buf)
	}
}
