package monitor

import (
	"math"
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/stream"
)

func TestScalarTaskPerfectRelease(t *testing.T) {
	truth := [][]float64{{0.9, 0.1}, {0.5, 0.5}, {0.2, 0.8}, {0.9, 0.1}}
	task := ScalarTask(truth, truth, 1)
	if got := task.AUC(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("perfect release AUC %v", got)
	}
	if task.Positives() != 1 {
		t.Fatalf("positives %d want 1 (only 0.8 > 0.75*(0.8-0.1)+0.1)", task.Positives())
	}
}

func TestPooledTaskShapes(t *testing.T) {
	truth := [][]float64{{0.2, 0.8}, {0.8, 0.2}}
	task := PooledTask(truth, truth)
	if len(task.Scores) != 4 || len(task.Labels) != 4 {
		t.Fatalf("pooled task size %d", len(task.Scores))
	}
	if got := task.AUC(); got < 0.99 {
		t.Fatalf("perfect pooled AUC %v", got)
	}
}

func TestPooledTaskPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched streams accepted")
		}
	}()
	PooledTask([][]float64{{1}}, [][]float64{{1}, {2}})
}

func TestNoisyReleaseDegradesAUC(t *testing.T) {
	// A noisy detector should sit between random (0.5) and perfect (1.0).
	src := ldprand.New(71)
	var truth, noisy [][]float64
	for i := 0; i < 400; i++ {
		v := 0.1
		if i%10 == 0 {
			v = 0.5 // occasional spikes: the events to detect
		}
		truth = append(truth, []float64{1 - v, v})
		noisy = append(noisy, []float64{1 - v + src.NormalScaled(0, 0.1), v + src.NormalScaled(0, 0.1)})
	}
	auc := ScalarTask(noisy, truth, 1).AUC()
	if auc < 0.7 || auc > 1.0 {
		t.Fatalf("noisy AUC %v outside (0.7, 1.0]", auc)
	}
	perfect := ScalarTask(truth, truth, 1).AUC()
	if auc > perfect {
		t.Fatalf("noisy AUC %v beats perfect %v", auc, perfect)
	}
}

func TestDetectorEdgeTriggered(t *testing.T) {
	d := NewDetector([]float64{0.5})
	ev1 := d.Observe([]float64{0.6})
	ev2 := d.Observe([]float64{0.7}) // still above: no new event
	ev3 := d.Observe([]float64{0.4}) // drops below
	ev4 := d.Observe([]float64{0.6}) // crosses again
	if len(ev1) != 1 || ev1[0].T != 1 || ev1[0].Element != 0 {
		t.Fatalf("first crossing %v", ev1)
	}
	if len(ev2) != 0 {
		t.Fatalf("sustained excursion re-fired: %v", ev2)
	}
	if len(ev3) != 0 {
		t.Fatalf("fall below fired: %v", ev3)
	}
	if len(ev4) != 1 || ev4[0].T != 4 {
		t.Fatalf("re-crossing %v", ev4)
	}
}

func TestDetectorMultiElement(t *testing.T) {
	d := NewDetector([]float64{0.5, 0.2})
	ev := d.Observe([]float64{0.6, 0.3})
	if len(ev) != 2 {
		t.Fatalf("expected two events, got %v", ev)
	}
}

func TestDetectorPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad release size accepted")
		}
	}()
	NewDetector([]float64{0.5}).Observe([]float64{0.1, 0.2})
}

func TestEndToEndEventMonitoring(t *testing.T) {
	// Full pipeline: LPA on a spiky stream should detect events far
	// better than chance.
	root := ldprand.New(4242)
	n := 30000
	proc := stream.NewSin(0.06, 0.05, 0.08) // strong oscillation: clear events
	s := stream.NewBinaryStream(n, proc, root.Split())
	oracle := fo.NewGRR(2)
	m, err := mechanism.NewLPA(mechanism.Params{
		Eps: 1, W: 10, N: n, Oracle: oracle, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	r := &mechanism.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := r.Run(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	task := ScalarTask(res.Released, res.True, 1)
	if task.Positives() == 0 {
		t.Fatal("stream produced no events to detect")
	}
	if auc := task.AUC(); auc < 0.8 {
		t.Fatalf("LPA event-monitoring AUC %v < 0.8", auc)
	}
}

func TestTopKTaskSelectsHeadDimensions(t *testing.T) {
	// Three dims: one dominant with real events, two flat tails. TopK(1)
	// must isolate the head dimension.
	var truth, released [][]float64
	for i := 0; i < 100; i++ {
		head := 0.5
		if i%10 == 0 {
			head = 0.9
		}
		truth = append(truth, []float64{head, 0.05, 0.02})
		released = append(released, []float64{head, 0.05, 0.02})
	}
	task := TopKTask(released, truth, 1)
	if len(task.Scores) != 100 {
		t.Fatalf("topk task size %d, want 100 (one dimension)", len(task.Scores))
	}
	if got := task.AUC(); got < 0.99 {
		t.Fatalf("perfect head-dimension AUC %v", got)
	}
}

func TestTopKTaskKClamping(t *testing.T) {
	truth := [][]float64{{0.6, 0.4}, {0.4, 0.6}}
	// k out of range falls back to all dimensions.
	for _, k := range []int{0, -1, 10} {
		task := TopKTask(truth, truth, k)
		if len(task.Scores) != 4 {
			t.Fatalf("k=%d task size %d", k, len(task.Scores))
		}
	}
}

func TestTopKTaskPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched streams accepted")
		}
	}()
	TopKTask([][]float64{{1}}, nil, 1)
}
