// Package monitor implements the real-time event-monitoring task of the
// paper's §7.4: detecting, from LDP-released statistics, the timestamps at
// which the true statistic exceeds a threshold δ = 0.75·(max−min)+min.
//
// Two task constructions are provided. ScalarTask monitors a single
// histogram element (the "1" frequency of the binary synthetic streams).
// PooledTask applies the threshold rule to every histogram dimension
// independently and pools the per-(t, k) decisions, which exercises all
// dimensions of the non-binary traces. Both yield score/label pairs for
// ROC analysis in package metrics.
package monitor

import (
	"fmt"

	"ldpids/internal/metrics"
)

// Task is an above-threshold detection instance: per item, the detector's
// score (higher = more confident the event happened) and the ground truth.
type Task struct {
	Scores []float64
	Labels []bool
}

// ROC computes the task's ROC curve.
func (t Task) ROC() []metrics.ROCPoint { return metrics.ROC(t.Scores, t.Labels) }

// AUC computes the task's area under the ROC curve.
func (t Task) AUC() float64 { return metrics.AUC(t.ROC()) }

// Positives returns the number of ground-truth positive items.
func (t Task) Positives() int {
	n := 0
	for _, l := range t.Labels {
		if l {
			n++
		}
	}
	return n
}

// ScalarTask builds an above-threshold task over a single histogram element
// k: ground truth comes from the true series and the paper's δ rule; the
// score at each timestamp is the released value of that element.
func ScalarTask(released, truth [][]float64, k int) Task {
	trueSeries := metrics.ElementSeries(truth, k)
	relSeries := metrics.ElementSeries(released, k)
	delta := metrics.PaperThreshold(trueSeries)
	return Task{
		Scores: relSeries,
		Labels: metrics.AboveThresholdLabels(trueSeries, delta),
	}
}

// PooledTask builds an above-threshold task over every histogram dimension:
// dimension k gets its own threshold δ_k from its true series, and the
// pooled score of item (t, k) is the released margin r_t[k] − δ_k, making
// scores comparable across dimensions.
func PooledTask(released, truth [][]float64) Task {
	if len(released) != len(truth) || len(truth) == 0 {
		panic(fmt.Sprintf("monitor: bad stream shapes %d vs %d", len(released), len(truth)))
	}
	d := len(truth[0])
	var task Task
	for k := 0; k < d; k++ {
		trueSeries := metrics.ElementSeries(truth, k)
		delta := metrics.PaperThreshold(trueSeries)
		labels := metrics.AboveThresholdLabels(trueSeries, delta)
		for t := range released {
			task.Scores = append(task.Scores, released[t][k]-delta)
			task.Labels = append(task.Labels, labels[t])
		}
	}
	return task
}

// TopKTask is PooledTask restricted to the k dimensions with the largest
// mean true frequency. On skewed categorical streams (check-ins, ad
// clicks) the tail dimensions' thresholds sit inside the noise floor and
// pooling them buries the detector's real signal; events of interest live
// in the head categories.
func TopKTask(released, truth [][]float64, k int) Task {
	if len(released) != len(truth) || len(truth) == 0 {
		panic(fmt.Sprintf("monitor: bad stream shapes %d vs %d", len(released), len(truth)))
	}
	d := len(truth[0])
	if k <= 0 || k > d {
		k = d
	}
	// Rank dimensions by mean true frequency.
	means := make([]float64, d)
	for t := range truth {
		for dim, v := range truth[t] {
			means[dim] += v
		}
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ { // partial selection sort for top-k
		best := i
		for j := i + 1; j < d; j++ {
			if means[idx[j]] > means[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	var task Task
	for _, dim := range idx[:k] {
		trueSeries := metrics.ElementSeries(truth, dim)
		delta := metrics.PaperThreshold(trueSeries)
		labels := metrics.AboveThresholdLabels(trueSeries, delta)
		for t := range released {
			task.Scores = append(task.Scores, released[t][dim]-delta)
			task.Labels = append(task.Labels, labels[t])
		}
	}
	return task
}

// Event is a detected above-threshold crossing in a live stream.
type Event struct {
	// T is the (1-based) timestamp of the detection.
	T int
	// Element is the histogram dimension that crossed.
	Element int
	// Value is the released value that triggered the detection.
	Value float64
}

// Detector watches a released stream online and emits an Event whenever an
// element's released value rises above its threshold (edge-triggered: a
// sustained excursion yields one event).
type Detector struct {
	thresholds []float64
	above      []bool
	t          int
}

// NewDetector returns a detector with one threshold per histogram element.
func NewDetector(thresholds []float64) *Detector {
	return &Detector{
		thresholds: append([]float64(nil), thresholds...),
		above:      make([]bool, len(thresholds)),
	}
}

// Observe processes the next released histogram and returns any new
// crossings.
func (d *Detector) Observe(release []float64) []Event {
	if len(release) != len(d.thresholds) {
		panic(fmt.Sprintf("monitor: release size %d, want %d", len(release), len(d.thresholds)))
	}
	d.t++
	var events []Event
	for k, v := range release {
		crossed := v > d.thresholds[k]
		if crossed && !d.above[k] {
			events = append(events, Event{T: d.t, Element: k, Value: v})
		}
		d.above[k] = crossed
	}
	return events
}
