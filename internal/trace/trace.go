// Package trace provides synthetic equivalents of the three real-world
// datasets used in the paper's evaluation (§7.1.2). The originals (T-Drive
// taxi trajectories, Foursquare check-ins, Taobao ad clicks) are not
// redistributable, so each simulator reproduces the statistical properties
// the LDP-IDS mechanisms are sensitive to — population size N, stream
// length T, domain size d, category skew, and temporal autocorrelation
// (smooth drift with occasional bursts) — as documented in DESIGN.md §4.
package trace

import (
	"math"

	"ldpids/internal/ldprand"
	"ldpids/internal/stream"
)

// Spec describes a trace's shape, mirroring the paper's dataset table.
type Spec struct {
	Name string
	N    int // population
	T    int // stream length
	D    int // domain size
}

// Paper-reported dataset shapes. The large populations are scaled down by
// default in the experiment harness (frequency shapes are population-
// invariant; see Fig. 6 for the explicit N sweep) but full sizes are
// available behind a flag.
var (
	TaxiSpec       = Spec{Name: "Taxi", N: 10357, T: 886, D: 5}
	FoursquareSpec = Spec{Name: "Foursquare", N: 265149, T: 447, D: 77}
	TaobaoSpec     = Spec{Name: "Taobao", N: 1023154, T: 432, D: 117}
)

// Taxi returns an infinite stream simulating the T-Drive workload: n
// walkers over a d-region partition of a city. Each taxi mostly stays in
// its region (stay = 0.92 at 10-minute resolution) and otherwise moves to
// an adjacent region; a slow diurnal drift pushes density toward a
// "downtown" region during rush windows, reproducing the smooth-with-bursts
// histogram evolution of the original.
func Taxi(n, d int, src *ldprand.Source) stream.Stream {
	if d < 2 {
		panic("trace: taxi needs d >= 2")
	}
	jumpSrc := src.Split()
	initSrc := src.Split()
	// Rush-hour attraction: region 0 is downtown. The pull strength
	// oscillates with a ~144-step (1 day at 10 min) period.
	jump := func(t, cur int) int {
		pull := 0.25 + 0.2*math.Sin(2*math.Pi*float64(t)/144)
		if jumpSrc.Bernoulli(pull) {
			return 0
		}
		// Move to a ring-adjacent region.
		if jumpSrc.Bernoulli(0.5) {
			return (cur + 1) % d
		}
		return (cur + d - 1) % d
	}
	return stream.NewMarkovStream(n, d, 0.92,
		func(u int) int { return initSrc.Intn(d) }, jump, src.Split())
}

// Foursquare returns an infinite stream simulating check-in countries: a
// Zipf(1.05) popularity law over d countries, modulated by a diurnal cycle
// that shifts mass between two hemispheres, with per-user inertia (people
// check in repeatedly from the same country).
func Foursquare(n, d int, src *ldprand.Source) stream.Stream {
	if d < 2 {
		panic("trace: foursquare needs d >= 2")
	}
	z := ldprand.NewZipf(d, 1.05)
	jumpSrc := src.Split()
	initSrc := src.Split()
	jump := func(t, cur int) int {
		v := z.Draw(jumpSrc)
		// Diurnal shift: during the "eastern" half-cycle, bias odd
		// (eastern-hemisphere) countries by re-drawing mismatches.
		eastern := math.Sin(2*math.Pi*float64(t)/48) > 0
		if eastern == (v%2 == 0) && jumpSrc.Bernoulli(0.3) {
			v = z.Draw(jumpSrc)
		}
		return v
	}
	return stream.NewMarkovStream(n, d, 0.97,
		func(u int) int { return z.Draw(initSrc) }, jump, src.Split())
}

// Taobao returns an infinite stream simulating last-clicked ad categories:
// a Zipf(0.9) law over d categories with campaign shocks — every ~90 steps
// a random category receives a temporary popularity boost, reproducing the
// bursty non-stationarity of ad-click streams.
func Taobao(n, d int, src *ldprand.Source) stream.Stream {
	if d < 2 {
		panic("trace: taobao needs d >= 2")
	}
	z := ldprand.NewZipf(d, 0.9)
	jumpSrc := src.Split()
	initSrc := src.Split()
	campaignSrc := src.Split()
	campaignCat := campaignSrc.Intn(d)
	campaignEnd := 0
	jump := func(t, cur int) int {
		if t > campaignEnd {
			// Launch a new campaign: hot category for 20-60 steps,
			// then a quiet gap.
			campaignCat = campaignSrc.Intn(d)
			campaignEnd = t + 20 + campaignSrc.Intn(40) + 30 + campaignSrc.Intn(60)
		}
		active := t <= campaignEnd-30 // hot portion of the cycle
		if active && jumpSrc.Bernoulli(0.25) {
			return campaignCat
		}
		return z.Draw(jumpSrc)
	}
	return stream.NewMarkovStream(n, d, 0.9,
		func(u int) int { return z.Draw(initSrc) }, jump, src.Split())
}

// ByName constructs one of the three simulated traces with the given
// population override (0 means the paper's full N) and a fresh source. The
// domain size and length always follow the paper's spec.
func ByName(name string, n int, src *ldprand.Source) (stream.Stream, Spec, bool) {
	var spec Spec
	var build func(n, d int, src *ldprand.Source) stream.Stream
	switch name {
	case "Taxi", "taxi":
		spec, build = TaxiSpec, Taxi
	case "Foursquare", "foursquare":
		spec, build = FoursquareSpec, Foursquare
	case "Taobao", "taobao":
		spec, build = TaobaoSpec, Taobao
	default:
		return nil, Spec{}, false
	}
	if n <= 0 {
		n = spec.N
	}
	s := build(n, spec.D, src)
	spec.N = n
	return s, spec, true
}
