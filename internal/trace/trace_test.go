package trace

import (
	"math"
	"testing"

	"ldpids/internal/ldprand"
	"ldpids/internal/stream"
)

// autocorr returns the mean per-user one-step agreement rate over steps.
func autocorr(s stream.Stream, steps int) float64 {
	prev, _ := s.Next(nil)
	prevCopy := make([]int, len(prev))
	copy(prevCopy, prev)
	agree, total := 0, 0
	buf := make([]int, len(prev))
	for i := 0; i < steps; i++ {
		cur, _ := s.Next(buf)
		for u := range cur {
			if cur[u] == prevCopy[u] {
				agree++
			}
			total++
		}
		copy(prevCopy, cur)
	}
	return float64(agree) / float64(total)
}

func TestSpecs(t *testing.T) {
	if TaxiSpec.D != 5 || TaxiSpec.T != 886 || TaxiSpec.N != 10357 {
		t.Fatal("taxi spec mismatch with paper")
	}
	if FoursquareSpec.D != 77 || FoursquareSpec.T != 447 {
		t.Fatal("foursquare spec mismatch with paper")
	}
	if TaobaoSpec.D != 117 || TaobaoSpec.T != 432 {
		t.Fatal("taobao spec mismatch with paper")
	}
}

func TestTaxiBasics(t *testing.T) {
	src := ldprand.New(301)
	s := Taxi(2000, 5, src)
	if s.Domain() != 5 || s.N() != 2000 {
		t.Fatal("taxi stream metadata")
	}
	vals, ok := s.Next(nil)
	if !ok {
		t.Fatal("taxi stream ended")
	}
	for _, v := range vals {
		if v < 0 || v >= 5 {
			t.Fatalf("taxi value %d out of domain", v)
		}
	}
}

func TestTaxiAutocorrelation(t *testing.T) {
	src := ldprand.New(307)
	got := autocorr(Taxi(3000, 5, src), 30)
	if got < 0.85 || got > 0.99 {
		t.Fatalf("taxi autocorrelation %v, want smooth (~0.92)", got)
	}
}

func TestTaxiDiurnalDrift(t *testing.T) {
	// Downtown (region 0) share should vary over a simulated day.
	src := ldprand.New(311)
	s := Taxi(20000, 5, src)
	var shares []float64
	buf := make([]int, 20000)
	for i := 0; i < 144; i++ {
		vals, _ := s.Next(buf)
		shares = append(shares, stream.Histogram(vals, 5)[0])
	}
	minS, maxS := shares[0], shares[0]
	for _, v := range shares {
		minS = math.Min(minS, v)
		maxS = math.Max(maxS, v)
	}
	if maxS-minS < 0.03 {
		t.Fatalf("taxi downtown share flat: min %v max %v", minS, maxS)
	}
}

func TestFoursquareSkew(t *testing.T) {
	src := ldprand.New(313)
	s := Foursquare(30000, 77, src)
	// Warm up a few steps, then check Zipf-like skew.
	var vals []int
	buf := make([]int, 30000)
	for i := 0; i < 5; i++ {
		vals, _ = s.Next(buf)
	}
	h := stream.Histogram(vals, 77)
	maxF, sumTop5 := 0.0, 0.0
	top := make([]float64, len(h))
	copy(top, h)
	// Partial selection of top-5.
	for i := 0; i < 5; i++ {
		best := i
		for j := i + 1; j < len(top); j++ {
			if top[j] > top[best] {
				best = j
			}
		}
		top[i], top[best] = top[best], top[i]
		sumTop5 += top[i]
	}
	for _, f := range h {
		maxF = math.Max(maxF, f)
	}
	if maxF < 0.05 {
		t.Fatalf("foursquare max frequency %v too flat for Zipf", maxF)
	}
	if sumTop5 < 0.2 {
		t.Fatalf("foursquare top-5 mass %v too flat", sumTop5)
	}
}

func TestFoursquareHighInertia(t *testing.T) {
	src := ldprand.New(317)
	got := autocorr(Foursquare(5000, 77, src), 20)
	if got < 0.93 {
		t.Fatalf("foursquare autocorrelation %v, want >= 0.93", got)
	}
}

func TestTaobaoCampaignBursts(t *testing.T) {
	// Track the max single-category share over time; campaigns should
	// create visible spikes above the Zipf baseline head.
	src := ldprand.New(331)
	s := Taobao(20000, 117, src)
	buf := make([]int, 20000)
	var maxShare, minShare float64 = 0, 1
	for i := 0; i < 200; i++ {
		vals, _ := s.Next(buf)
		h := stream.Histogram(vals, 117)
		best := 0.0
		for _, f := range h {
			best = math.Max(best, f)
		}
		maxShare = math.Max(maxShare, best)
		minShare = math.Min(minShare, best)
	}
	if maxShare-minShare < 0.02 {
		t.Fatalf("taobao head share range [%v,%v] lacks bursts", minShare, maxShare)
	}
}

func TestByName(t *testing.T) {
	src := ldprand.New(337)
	for _, name := range []string{"Taxi", "Foursquare", "Taobao", "taxi"} {
		s, spec, ok := ByName(name, 500, src)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		if s.N() != 500 || spec.N != 500 {
			t.Fatalf("population override ignored for %q", name)
		}
		if s.Domain() != spec.D {
			t.Fatalf("domain mismatch for %q", name)
		}
	}
	if _, _, ok := ByName("nope", 0, src); ok {
		t.Fatal("unknown trace accepted")
	}
	// n<=0 means full paper population.
	_, spec, _ := ByName("Taxi", 0, src)
	if spec.N != TaxiSpec.N {
		t.Fatalf("default population %d want %d", spec.N, TaxiSpec.N)
	}
}

func TestTracesDeterministic(t *testing.T) {
	a, _, _ := ByName("Taobao", 1000, ldprand.New(99))
	b, _, _ := ByName("Taobao", 1000, ldprand.New(99))
	for i := 0; i < 10; i++ {
		av, _ := a.Next(nil)
		bv, _ := b.Next(nil)
		for u := range av {
			if av[u] != bv[u] {
				t.Fatalf("same-seed traces diverged at t=%d user %d", i, u)
			}
		}
	}
}

func BenchmarkTaxiNext(b *testing.B) {
	s := Taxi(10357, 5, ldprand.New(1))
	buf := make([]int, 10357)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(buf)
	}
}
