package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the HTTP header that carries a span context between
// processes: `trace-span`, hex-encoded, as rendered by
// SpanContext.String.
const TraceHeader = "X-Ldpids-Trace"

// SpanContext identifies a position in a trace: the shared trace id
// plus the id of one span, which children adopt as their parent.
type SpanContext struct {
	Trace string // 16-byte hex trace id, shared by every span in a round
	Span  string // 8-byte hex span id
}

// Valid reports whether both ids are present.
func (sc SpanContext) Valid() bool { return sc.Trace != "" && sc.Span != "" }

// String renders the wire form `trace-span`, or "" if invalid.
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return ""
	}
	return sc.Trace + "-" + sc.Span
}

// ParseSpanContext parses the wire form produced by String. A missing
// or malformed value yields ok=false and a zero context — propagation
// is best-effort, never a request error.
func ParseSpanContext(s string) (sc SpanContext, ok bool) {
	tr, sp, found := strings.Cut(s, "-")
	if !found || !isHex(tr) || !isHex(sp) || tr == "" || sp == "" {
		return SpanContext{}, false
	}
	return SpanContext{Trace: tr, Span: sp}, true
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// newID returns n crypto-random bytes hex-encoded. Trace ids draw from
// crypto/rand, not the mechanisms' seeded streams, so tracing can never
// consume privacy randomness or perturb a seeded run.
func newID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; ids going
		// static degrades trace grouping, nothing else.
		return strings.Repeat("00", n)
	}
	return hex.EncodeToString(b)
}

// Tracer mints spans for one process (its src tag) and records them to
// a TraceLog. A nil Tracer is the disabled state: Start returns a nil
// span whose methods all no-op, and ContextOr passes the parent
// through, so propagation still works across an untraced hop.
type Tracer struct {
	src string
	log *TraceLog
}

// NewTracer returns a tracer stamping src on every span, or nil if log
// is nil (tracing disabled).
func NewTracer(src string, log *TraceLog) *Tracer {
	if log == nil {
		return nil
	}
	return &Tracer{src: src, log: log}
}

// Span is one in-flight timed operation. Create with Tracer.Start,
// finish with End. All methods are nil-safe.
type Span struct {
	t      *Tracer
	name   string
	start  time.Time
	mu     sync.Mutex
	ctx    SpanContext
	parent string
	round  int64
	ended  bool
}

// Start begins a span. If parent is valid the span joins its trace;
// otherwise a fresh trace id is minted (a root span). round tags the
// span with the protocol round it serves (0 if not yet known; see
// SetRound).
func (t *Tracer) Start(name string, parent SpanContext, round int64) *Span {
	if t == nil {
		return nil
	}
	s := &Span{
		t:     t,
		name:  name,
		start: time.Now(),
		round: round,
		ctx:   SpanContext{Trace: parent.Trace, Span: newID(8)},
	}
	if parent.Valid() {
		s.parent = parent.Span
	} else {
		s.ctx.Trace = newID(16)
	}
	return s
}

// Context returns the span's context for propagation to children.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctx
}

// ContextOr returns the span's context, or fallback when the span is
// nil — the pass-through that keeps a trace connected across a process
// that has tracing disabled.
func (s *Span) ContextOr(fallback SpanContext) SpanContext {
	if s == nil {
		return fallback
	}
	return s.Context()
}

// SetParent late-binds the span into parent's trace. Used when the
// parent context arrives after the span started (e.g. a report batch
// without a trace header joining the backend's round span).
func (s *Span) SetParent(parent SpanContext) {
	if s == nil || !parent.Valid() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctx.Trace = parent.Trace
	s.parent = parent.Span
}

// SetRound tags the span with its round id once known.
func (s *Span) SetRound(round int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round = round
}

// End records the span to the trace log with optional attributes.
// Ending twice records once.
func (s *Span) End(attrs map[string]any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
		Name:   s.name,
		Src:    s.t.src,
		Round:  s.round,
		Start:  s.start.UnixNano(),
		Dur:    time.Since(s.start).Nanoseconds(),
		Attrs:  attrs,
	}
	s.mu.Unlock()
	s.t.log.Append(rec)
}
