package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSpanContextRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: "0123456789abcdef0123456789abcdef", Span: "0123456789abcdef"}
	got, ok := ParseSpanContext(sc.String())
	if !ok || got != sc {
		t.Errorf("round trip: got %+v, %v", got, ok)
	}
	for _, bad := range []string{"", "abc", "xyz-123", "ABC-def", "-", "abc-", "-def"} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Errorf("ParseSpanContext(%q) = ok, want reject", bad)
		}
	}
	if (SpanContext{}).String() != "" {
		t.Error("zero context should render empty")
	}
}

func TestTracerSpanLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	log, err := CreateTraceLog(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer("gateway", log)

	root := tr.Start("round", SpanContext{}, 7)
	if !root.Context().Valid() {
		t.Fatal("root span has invalid context")
	}
	child := tr.Start("batch", root.Context(), 0)
	child.SetRound(7)
	child.End(map[string]any{"reports": 3})
	root.End(nil)
	root.End(nil) // double End records once
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	batch, round := spans[0], spans[1]
	if batch.Name != "batch" || round.Name != "round" {
		t.Fatalf("span order: %s, %s", batch.Name, round.Name)
	}
	if batch.Trace != round.Trace {
		t.Errorf("trace ids differ: %s vs %s", batch.Trace, round.Trace)
	}
	if batch.Parent != round.Span {
		t.Errorf("batch parent %s != round span %s", batch.Parent, round.Span)
	}
	if round.Parent != "" {
		t.Errorf("root span has parent %s", round.Parent)
	}
	if batch.Round != 7 || round.Round != 7 {
		t.Errorf("rounds: %d, %d; want 7, 7", batch.Round, round.Round)
	}
	if batch.Src != "gateway" {
		t.Errorf("src = %s", batch.Src)
	}
}

func TestNilTracerPassesContextThrough(t *testing.T) {
	var tr *Tracer
	parent := SpanContext{Trace: "aa", Span: "bb"}
	sp := tr.Start("x", parent, 1)
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if got := sp.ContextOr(parent); got != parent {
		t.Errorf("ContextOr = %+v, want parent", got)
	}
	sp.SetRound(2)
	sp.SetParent(parent)
	sp.End(nil)
	if NewTracer("x", nil) != nil {
		t.Error("NewTracer with nil log should return nil")
	}
}

func TestTraceLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	log, err := CreateTraceLog(path)
	if err != nil {
		t.Fatal(err)
	}
	log.Append(SpanRecord{Trace: "t", Span: "a", Name: "one", Src: "s"})
	log.Append(SpanRecord{Trace: "t", Span: "b", Name: "two", Src: "s"})
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: tear the final line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(path)
	if err != nil {
		t.Fatalf("torn tail should be dropped, got error: %v", err)
	}
	if len(spans) != 1 || spans[0].Span != "a" {
		t.Fatalf("got %d spans, want the single intact record", len(spans))
	}

	// Mid-file corruption (complete lines after the bad one) is an error.
	if err := os.WriteFile(path, append([]byte("{garbage\n"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpans(path); err == nil {
		t.Error("mid-file corruption not reported")
	}
}

func TestTraceLogAppendsAcrossIncarnations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	for i := 0; i < 2; i++ {
		log, err := CreateTraceLog(path)
		if err != nil {
			t.Fatal(err)
		}
		log.Append(SpanRecord{Trace: "t", Span: "s", Name: "n", Src: "s"})
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
	}
	spans, err := ReadSpans(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans after two incarnations, want 2", len(spans))
	}
}

func TestChromeTrace(t *testing.T) {
	spans := []SpanRecord{
		{Trace: "t1", Span: "a", Name: "round", Src: "coordinator", Round: 3, Start: 2000, Dur: 5000},
		{Trace: "t1", Span: "b", Parent: "a", Name: "shard-round", Src: "replica-r1", Round: 3, Start: 2500, Dur: 2000},
		{Trace: "t1", Span: "c", Parent: "b", Name: "post", Src: "client", Round: 3, Start: 2600, Dur: 100},
	}
	out, err := ChromeTrace(spans)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var metas, complete int
	procs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			metas++
			if args, ok := ev["args"].(map[string]any); ok {
				procs[args["name"].(string)] = true
			}
		case "X":
			complete++
		}
	}
	if metas != 3 || complete != 3 {
		t.Fatalf("got %d metadata + %d complete events, want 3 + 3", metas, complete)
	}
	for _, p := range []string{"client", "replica-r1", "coordinator"} {
		if !procs[p] {
			t.Errorf("missing process_name metadata for %s", p)
		}
	}
	if !strings.Contains(string(out), `"traceEvents"`) {
		t.Error("missing traceEvents key")
	}
}
