// Package obs is the gateway's dependency-free telemetry subsystem: a
// small metric registry rendered in Prometheus text exposition format,
// and round-lifecycle tracing recorded to a crash-safe JSONL log.
//
// The registry supports exactly three instrument kinds — counters,
// gauges, and fixed-bucket histograms — with optional label vectors.
// That is deliberately less than a full metrics library: every series
// is pre-registered with a bounded label set, so the exposition surface
// is enumerable at review time and the metricnames analyzer can lint
// names and labels statically. All instrument methods are safe on nil
// receivers, so telemetry wiring never forces a caller to branch: a
// component without a registry simply records nothing.
//
// Telemetry is strictly observe-only. Nothing in this package feeds
// back into mechanism state, randomness, or wire payload bytes, which
// preserves the repo-wide bit-identity contract: runs with tracing and
// metrics enabled release byte-identical estimates to uninstrumented
// runs.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ContentType is the Prometheus text exposition content type served by
// Registry.ServeHTTP.
const ContentType = "text/plain; version=0.0.4"

// LatencyBuckets is the default upper-bound set for per-stage latency
// histograms: 1µs to 10s in decade steps, wide enough for both the
// in-process fold path (~µs) and cross-process round trips (~ms–s).
var LatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Registry holds a set of metric families and renders them in
// Prometheus text exposition format. The zero value is not usable; use
// NewRegistry. A nil *Registry is safe: every registration method
// returns a nil instrument whose methods no-op.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one metric name: its metadata plus every labeled series
// registered or materialized under it.
type family struct {
	name    string
	help    string
	typ     string // "counter", "gauge", "histogram"
	labels  []string
	buckets []float64      // histogram upper bounds, ascending, no +Inf
	fn      func() float64 // value callback for *Func instruments

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) time series. Counters and
// gauges use val; histograms use buckets/sum/count.
type series struct {
	values  []string
	bounds  []float64 // shared with family.buckets
	val     atomic.Int64
	sum     atomicFloat
	count   atomic.Int64
	buckets []atomic.Int64 // per-bound occupancy, cumulated at render
}

// atomicFloat is a CAS-loop float64 accumulator, enough for histogram
// sums without importing a metrics dependency.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, want) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// register installs a family, panicking on a duplicate name — metric
// names are program constants, so a collision is a programming error,
// not a runtime condition to paper over.
func (r *Registry) register(name, help, typ string, labels []string, buckets []float64, fn func() float64) *family {
	if r == nil {
		return nil
	}
	if name == "" {
		panic("obs: empty metric name")
	}
	for _, l := range labels {
		if l == "le" {
			panic("obs: label name \"le\" is reserved for histogram buckets")
		}
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	for i := 1; i < len(bs); i++ {
		if bs[i] == bs[i-1] {
			panic(fmt.Sprintf("obs: duplicate histogram bucket %v in %s", bs[i], name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.families == nil {
		r.families = make(map[string]*family)
	}
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric family " + name)
	}
	f := &family{
		name:    name,
		help:    help,
		typ:     typ,
		labels:  append([]string(nil), labels...),
		buckets: bs,
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// get materializes (or returns) the series for the given label values.
func (f *family) get(values []string) *series {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{
		values: append([]string(nil), values...),
		bounds: f.buckets,
	}
	if f.typ == "histogram" {
		s.buckets = make([]atomic.Int64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing integer series.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) {
	if c == nil || c.s == nil {
		return
	}
	c.s.val.Add(n)
}

// Gauge is a series that can go up and down.
type Gauge struct{ s *series }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Store(n)
}

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.val.Add(n)
}

// Histogram is a fixed-bucket distribution series.
type Histogram struct{ s *series }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil {
		return
	}
	s := h.s
	if i := sort.SearchFloat64s(s.bounds, v); i < len(s.buckets) {
		s.buckets[i].Add(1)
	}
	s.sum.Add(v)
	s.count.Add(1)
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// CounterVec is a counter family with labels; With selects a series.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (registration
// order). Nil-safe: a nil vec yields a nil, no-op counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{s: v.f.get(values)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{s: v.f.get(values)}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil, nil)
	if f == nil {
		return nil
	}
	return &Counter{s: f.get(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, "counter", labels, nil, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// CounterFunc registers a counter whose value is read from fn at
// render time (for monotone runtime totals like GC pause time).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, "counter", nil, nil, fn)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil, nil)
	if f == nil {
		return nil
	}
	return &Gauge{s: f.get(nil)}
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time (for runtime stats like goroutine count).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", nil, nil, fn)
}

// Histogram registers an unlabeled histogram with the given ascending
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, "histogram", nil, buckets, nil)
	if f == nil {
		return nil
	}
	return &Histogram{s: f.get(nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := r.register(name, help, "histogram", labels, buckets, nil)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// Value returns the current value of the series identified by name and
// label values: counter/gauge value, or sample count for a histogram.
// The second result is false if no such series exists. Intended for
// tests and in-process assertions, not for rendering.
func (r *Registry) Value(name string, values ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil {
		return 0, false
	}
	if f.fn != nil {
		return f.fn(), true
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	s := f.series[key]
	f.mu.Unlock()
	if s == nil {
		return 0, false
	}
	if f.typ == "histogram" {
		return float64(s.count.Load()), true
	}
	return float64(s.val.Load()), true
}

// Render writes every family in Prometheus text exposition format
// (version 0.0.4), sorted by family name with series sorted by label
// values, so output is deterministic for a given registry state.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		f.render(w)
	}
}

func (f *family) render(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	if f.fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	all := make([]*series, 0, len(keys))
	for _, k := range keys {
		all = append(all, f.series[k])
	}
	f.mu.Unlock()
	for _, s := range all {
		switch f.typ {
		case "histogram":
			f.renderHistogram(w, s)
		default:
			fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.values, "", ""), strconv.FormatInt(s.val.Load(), 10))
		}
	}
}

func (f *family) renderHistogram(w io.Writer, s *series) {
	// Snapshot count first: concurrent Observe calls bump count after
	// their bucket, so reading count before buckets keeps the rendered
	// +Inf bucket (== count) at least as large as the bucket sums.
	count := s.count.Load()
	var cum int64
	for i := range s.buckets {
		cum += s.buckets[i].Load()
		if cum > count {
			cum = count
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", formatFloat(f.buckets[i])), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.values, "le", "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.values, "", ""), formatFloat(s.sum.Load()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.values, "", ""), count)
}

// labelString renders {k="v",...}, appending the extra pair (used for
// le) last; it returns "" when there are no labels at all.
func labelString(labels, values []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP renders the registry, making it mountable at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", ContentType)
	r.Render(w)
}
