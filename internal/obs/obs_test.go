package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ldpids_test_events_total", "Events seen.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("ldpids_test_workers", "Current workers.")
	g.Set(7)
	g.Add(-2)
	v := r.CounterVec("ldpids_test_refusals_total", "Refusals by reason.", "reason")
	v.With("stale_token").Add(3)
	v.With("malformed").Inc()

	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ldpids_test_events_total counter\n",
		"ldpids_test_events_total 5\n",
		"# TYPE ldpids_test_workers gauge\n",
		"ldpids_test_workers 5\n",
		`ldpids_test_refusals_total{reason="malformed"} 1` + "\n",
		`ldpids_test_refusals_total{reason="stale_token"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Errorf("rendered output fails conformance: %v", err)
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ldpids_test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.02, 0.5, 3} {
		h.Observe(v)
	}
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE ldpids_test_latency_seconds histogram\n",
		`ldpids_test_latency_seconds_bucket{le="0.01"} 1` + "\n",
		`ldpids_test_latency_seconds_bucket{le="0.1"} 2` + "\n",
		`ldpids_test_latency_seconds_bucket{le="1"} 3` + "\n",
		`ldpids_test_latency_seconds_bucket{le="+Inf"} 4` + "\n",
		"ldpids_test_latency_seconds_sum 3.525\n",
		"ldpids_test_latency_seconds_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Errorf("rendered output fails conformance: %v", err)
	}
}

func TestHistogramVecLabelOrder(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("ldpids_test_stage_seconds", "Stage latency.", []float64{1}, "stage", "wire")
	v.With("fold", "json").ObserveDuration(50 * time.Millisecond)
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	want := `ldpids_test_stage_seconds_bucket{stage="fold",wire="json",le="1"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("output missing %q:\n%s", want, out)
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Errorf("rendered output fails conformance: %v", err)
	}
}

func TestValueAccessor(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldpids_test_a_total", "a").Add(2)
	r.CounterVec("ldpids_test_b_total", "b", "wire").With("json").Add(9)
	r.Histogram("ldpids_test_c_seconds", "c", []float64{1}).Observe(0.5)
	if v, ok := r.Value("ldpids_test_a_total"); !ok || v != 2 {
		t.Errorf("Value(a) = %v, %v; want 2, true", v, ok)
	}
	if v, ok := r.Value("ldpids_test_b_total", "json"); !ok || v != 9 {
		t.Errorf("Value(b, json) = %v, %v; want 9, true", v, ok)
	}
	if v, ok := r.Value("ldpids_test_c_seconds"); !ok || v != 1 {
		t.Errorf("Value(c) = %v, %v; want count 1, true", v, ok)
	}
	if _, ok := r.Value("ldpids_test_missing"); ok {
		t.Error("Value(missing) reported ok")
	}
	if _, ok := r.Value("ldpids_test_b_total", "binary"); ok {
		t.Error("Value(b, binary) reported ok for unmaterialized series")
	}
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	r.Counter("ldpids_test_x_total", "x").Inc()
	r.CounterVec("ldpids_test_y_total", "y", "reason").With("a").Add(2)
	r.Gauge("ldpids_test_z", "z").Set(1)
	r.GaugeFunc("ldpids_test_fn", "fn", func() float64 { return 1 })
	r.Histogram("ldpids_test_h_seconds", "h", LatencyBuckets).Observe(1)
	r.HistogramVec("ldpids_test_hv_seconds", "hv", LatencyBuckets, "wire").With("json").Observe(1)
	RegisterRuntimeGauges(r)
	var b strings.Builder
	r.Render(&b)
	if b.Len() != 0 {
		t.Errorf("nil registry rendered output: %q", b.String())
	}
	if _, ok := r.Value("ldpids_test_x_total"); ok {
		t.Error("nil registry Value reported ok")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ldpids_test_dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("ldpids_test_dup_total", "second")
}

func TestRuntimeGaugesRender(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeGauges(r)
	var b strings.Builder
	r.Render(&b)
	out := b.String()
	for _, want := range []string{
		"ldpids_runtime_goroutines ",
		"ldpids_runtime_heap_alloc_bytes ",
		"ldpids_runtime_gc_pause_seconds_total ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := CheckExposition(strings.NewReader(out)); err != nil {
		t.Errorf("runtime gauges fail conformance: %v", err)
	}
}
