package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// SpanRecord is one completed span as a JSONL trace-log line.
type SpanRecord struct {
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Src    string         `json:"src"`
	Round  int64          `json:"round,omitempty"`
	Start  int64          `json:"start"` // wall clock, Unix nanoseconds
	Dur    int64          `json:"dur"`   // nanoseconds
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// TraceLog is a crash-safe JSONL span log with the same append
// discipline as the history journal: O_APPEND fd, one write syscall
// per record under a mutex, so a crash tears at most the final line.
// Append failures stick and surface through Err/Close rather than
// failing the traced operation. All methods are nil-safe.
type TraceLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error
}

// CreateTraceLog opens path for appending, creating it if absent.
// Unlike the history journal it does not truncate: multiple process
// incarnations (e.g. a restarted replica) may share one trace file.
func CreateTraceLog(path string) (*TraceLog, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return &TraceLog{f: f, path: path}, nil
}

// Append writes one record as a single JSONL line.
func (l *TraceLog) Append(rec SpanRecord) {
	if l == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		l.fail(fmt.Errorf("obs: marshaling span %s: %w", rec.Name, err))
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.f.Write(line); err != nil {
		l.err = fmt.Errorf("obs: append to %s: %w", l.path, err)
	}
}

func (l *TraceLog) fail(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// Err returns the first append failure, if any.
func (l *TraceLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close syncs and closes the log, returning any sticky append error.
func (l *TraceLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	closeErr := l.f.Close()
	l.f = nil
	if l.err != nil {
		return l.err
	}
	return closeErr
}

// ReadSpans reads every complete span record from a trace-log file. A
// torn final line (a crash mid-append) is dropped; corruption anywhere
// else is an error, since O_APPEND single-write discipline cannot
// produce it.
func ReadSpans(path string) ([]SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	defer f.Close()
	var spans []SpanRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pendingErr error
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			// The bad line had complete lines after it: mid-file
			// corruption, not a torn tail.
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			pendingErr = fmt.Errorf("obs: %s:%d: corrupt span record: %w", path, lineNo, err)
			continue
		}
		spans = append(spans, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading %s: %w", path, err)
	}
	return spans, nil
}
