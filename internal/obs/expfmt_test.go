package obs

import (
	"strings"
	"testing"
)

func TestCheckExpositionAccepts(t *testing.T) {
	good := `# HELP ldpids_gateway_reports_folded_total Perturbed reports folded.
# TYPE ldpids_gateway_reports_folded_total counter
ldpids_gateway_reports_folded_total 42
# HELP ldpids_cluster_replicas Live replicas.
# TYPE ldpids_cluster_replicas gauge
ldpids_cluster_replicas 2
# HELP ldpids_gateway_round_latency_seconds Round latency.
# TYPE ldpids_gateway_round_latency_seconds histogram
ldpids_gateway_round_latency_seconds_bucket{le="0.1"} 1
ldpids_gateway_round_latency_seconds_bucket{le="1"} 3
ldpids_gateway_round_latency_seconds_bucket{le="+Inf"} 3
ldpids_gateway_round_latency_seconds_sum 0.9
ldpids_gateway_round_latency_seconds_count 3
# HELP ldpids_gateway_stage_seconds Stage latency.
# TYPE ldpids_gateway_stage_seconds histogram
ldpids_gateway_stage_seconds_bucket{stage="fold",wire="json",le="0.01"} 5
ldpids_gateway_stage_seconds_bucket{stage="fold",wire="json",le="+Inf"} 5
ldpids_gateway_stage_seconds_sum{stage="fold",wire="json"} 0.002
ldpids_gateway_stage_seconds_count{stage="fold",wire="json"} 5
`
	if err := CheckExposition(strings.NewReader(good)); err != nil {
		t.Errorf("well-formed exposition rejected: %v", err)
	}
}

// TestCheckExpositionRejectsLegacyRoundLatency pins the satellite bug:
// the pre-registry serve.Metrics emitted round latency as bare
// _sum/_count samples each declared TYPE counter, with no _bucket
// series — a shape scrapers reject as a half-declared histogram.
func TestCheckExpositionRejectsLegacyRoundLatency(t *testing.T) {
	legacy := `# HELP ldpids_gateway_round_latency_seconds_sum Total time spent in rounds.
# TYPE ldpids_gateway_round_latency_seconds_sum counter
ldpids_gateway_round_latency_seconds_sum 0.35
# HELP ldpids_gateway_round_latency_seconds_count Rounds timed.
# TYPE ldpids_gateway_round_latency_seconds_count counter
ldpids_gateway_round_latency_seconds_count 2
`
	if err := CheckExposition(strings.NewReader(legacy)); err == nil {
		t.Error("legacy _sum/_count-as-counter exposition accepted; want rejection")
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"sample without TYPE", "ldpids_x_total 1\n"},
		{"duplicate TYPE", "# TYPE ldpids_x_total counter\n# TYPE ldpids_x_total counter\nldpids_x_total 1\n"},
		{"duplicate sample", "# TYPE ldpids_x_total counter\nldpids_x_total 1\nldpids_x_total 2\n"},
		{"bad value", "# TYPE ldpids_x_total counter\nldpids_x_total zero\n"},
		{"unknown type", "# TYPE ldpids_x_total countr\nldpids_x_total 1\n"},
		{"histogram bare sample", "# TYPE ldpids_h_seconds histogram\nldpids_h_seconds 1\n"},
		{
			"histogram no +Inf",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{le=\"1\"} 1\nldpids_h_seconds_sum 1\nldpids_h_seconds_count 1\n",
		},
		{
			"histogram missing sum",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{le=\"+Inf\"} 1\nldpids_h_seconds_count 1\n",
		},
		{
			"histogram missing count",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{le=\"+Inf\"} 1\nldpids_h_seconds_sum 1\n",
		},
		{
			"non-cumulative buckets",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{le=\"1\"} 5\nldpids_h_seconds_bucket{le=\"2\"} 3\nldpids_h_seconds_bucket{le=\"+Inf\"} 5\nldpids_h_seconds_sum 1\nldpids_h_seconds_count 5\n",
		},
		{
			"+Inf bucket disagrees with count",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{le=\"+Inf\"} 4\nldpids_h_seconds_sum 1\nldpids_h_seconds_count 5\n",
		},
		{
			"bucket missing le",
			"# TYPE ldpids_h_seconds histogram\nldpids_h_seconds_bucket{wire=\"json\"} 4\nldpids_h_seconds_sum 1\nldpids_h_seconds_count 4\n",
		},
	}
	for _, tc := range cases {
		if err := CheckExposition(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: accepted, want rejection", tc.name)
		}
	}
}
