package obs

import "runtime"

// RegisterRuntimeGauges installs process-health metrics read at scrape
// time: goroutine count, live heap bytes, and cumulative GC pause
// time. Nil-safe; registering twice on one registry panics like any
// duplicate family.
func RegisterRuntimeGauges(r *Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("ldpids_runtime_goroutines", "Current number of goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.GaugeFunc("ldpids_runtime_heap_alloc_bytes", "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	r.CounterFunc("ldpids_runtime_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
}
