package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// CheckExposition validates a Prometheus text exposition (version
// 0.0.4) stream the way a strict scraper would: every sample must
// belong to a declared family, histogram families must expose
// cumulative _bucket series ending in le="+Inf" plus matching _sum and
// _count, and no family may reuse a reserved histogram suffix as a
// standalone counter — the exact malformation the pre-registry
// round-latency metric shipped (_sum/_count declared TYPE counter with
// no buckets). It is used by the conformance tests and by
// `ldpids-dump -metrics` in CI smoke jobs.
func CheckExposition(r io.Reader) error {
	metricName := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	types := make(map[string]string)     // family -> type
	helps := make(map[string]bool)       // family -> HELP seen
	sampled := make(map[string]bool)     // family -> samples seen
	seen := make(map[string]bool)        // full sample identity -> dedupe
	hists := make(map[string]*histCheck) // family \x00 labels(less le) -> state

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := checkComment(line, metricName, types, helps, sampled); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := checkSample(line, metricName, types, sampled, seen, hists); err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, typ := range types {
		if typ != "histogram" {
			// A counter or gauge squatting on a histogram suffix is how a
			// half-migrated histogram escapes detection; reject it.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(fam, suffix) {
					return fmt.Errorf("family %s: reserved histogram suffix %s declared TYPE %s", fam, suffix, typ)
				}
			}
		}
	}
	for key, h := range hists {
		fam := key[:strings.IndexByte(key, '\x00')]
		if err := h.validate(); err != nil {
			return fmt.Errorf("histogram %s%s: %w", fam, h.labels, err)
		}
	}
	return nil
}

func checkComment(line string, metricName *regexp.Regexp, types map[string]string, helps, sampled map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil // free-form comment
	}
	name := fields[2]
	if !metricName.MatchString(name) {
		return fmt.Errorf("invalid metric name %q in %s line", name, fields[1])
	}
	switch fields[1] {
	case "HELP":
		if helps[name] {
			return fmt.Errorf("duplicate HELP for %s", name)
		}
		helps[name] = true
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("TYPE line for %s missing type", name)
		}
		typ := fields[3]
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if sampled[name] {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		types[name] = typ
	}
	return nil
}

// histCheck accumulates one labeled histogram series' buckets, sum, and
// count for end-of-stream validation.
type histCheck struct {
	labels string
	les    []float64
	counts []int64
	sum    *float64
	count  *int64
}

func (h *histCheck) validate() error {
	if len(h.les) == 0 {
		return fmt.Errorf("no _bucket series")
	}
	if h.sum == nil {
		return fmt.Errorf("missing _sum")
	}
	if h.count == nil {
		return fmt.Errorf("missing _count")
	}
	if !sort.Float64sAreSorted(h.les) {
		return fmt.Errorf("le bounds out of order")
	}
	for i := 1; i < len(h.les); i++ {
		if h.les[i] == h.les[i-1] {
			return fmt.Errorf("duplicate le bound %v", h.les[i])
		}
		if h.counts[i] < h.counts[i-1] {
			return fmt.Errorf("bucket counts not cumulative at le=%v", h.les[i])
		}
	}
	last := h.les[len(h.les)-1]
	if last != inf() {
		return fmt.Errorf("last bucket le=%v, want +Inf", last)
	}
	if h.counts[len(h.counts)-1] != *h.count {
		return fmt.Errorf("+Inf bucket %d != _count %d", h.counts[len(h.counts)-1], *h.count)
	}
	return nil
}

func inf() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }

func checkSample(line string, metricName *regexp.Regexp, types map[string]string, sampled, seen map[string]bool, hists map[string]*histCheck) error {
	name, labels, valueStr, err := splitSample(line)
	if err != nil {
		return err
	}
	if !metricName.MatchString(name) {
		return fmt.Errorf("invalid sample name %q", name)
	}
	value, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return fmt.Errorf("sample %s: bad value %q", name, valueStr)
	}
	id := name + "\x00" + canonicalLabels(labels, "")
	if seen[id] {
		return fmt.Errorf("duplicate sample %s{%s}", name, canonicalLabels(labels, ""))
	}
	seen[id] = true

	// Resolve the owning family: exact name, or a histogram/summary
	// child suffix of a declared family.
	if typ, ok := types[name]; ok {
		sampled[name] = true
		if typ == "histogram" {
			return fmt.Errorf("histogram %s exposes a bare sample; want _bucket/_sum/_count", name)
		}
		return nil
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		typ, ok := types[base]
		if !ok {
			continue
		}
		if typ != "histogram" && !(typ == "summary" && suffix != "_bucket") {
			return fmt.Errorf("sample %s does not match TYPE %s of %s", name, typ, base)
		}
		sampled[base] = true
		if typ != "histogram" {
			return nil
		}
		le, rest := extractLE(labels)
		h := hists[base+"\x00"+rest]
		if h == nil {
			h = &histCheck{labels: rest}
			hists[base+"\x00"+rest] = h
		}
		switch suffix {
		case "_bucket":
			if le == "" {
				return fmt.Errorf("%s missing le label", name)
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", name, le)
			}
			h.les = append(h.les, bound)
			h.counts = append(h.counts, int64(value))
		case "_sum":
			v := value
			h.sum = &v
		case "_count":
			c := int64(value)
			h.count = &c
		}
		return nil
	}
	return fmt.Errorf("sample %s has no TYPE declaration", name)
}

// splitSample parses `name{labels} value` or `name value`.
func splitSample(line string) (name, labels, value string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		return line[:i], line[i+1 : j], strings.TrimSpace(line[j+1:]), nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", "", "", fmt.Errorf("malformed sample line %q", line)
	}
	return fields[0], "", fields[1], nil
}

// splitLabels breaks `k1="v1",k2="v2"` into pairs; values may contain
// escaped quotes.
func splitLabels(labels string) []string {
	var pairs []string
	for len(labels) > 0 {
		eq := strings.IndexByte(labels, '=')
		if eq < 0 {
			pairs = append(pairs, labels)
			break
		}
		// Value starts at the quote after '='; scan to the closing
		// unescaped quote.
		i := eq + 1
		if i < len(labels) && labels[i] == '"' {
			i++
			for i < len(labels) && (labels[i] != '"' || labels[i-1] == '\\') {
				i++
			}
			i++ // past closing quote
		}
		pairs = append(pairs, strings.TrimSuffix(labels[:min(i, len(labels))], ","))
		if i >= len(labels) {
			break
		}
		labels = strings.TrimPrefix(labels[i:], ",")
	}
	return pairs
}

// canonicalLabels sorts label pairs (dropping the named key) so sample
// identity and histogram grouping ignore exposition order.
func canonicalLabels(labels, drop string) string {
	pairs := splitLabels(labels)
	kept := pairs[:0]
	for _, p := range pairs {
		if drop != "" && strings.HasPrefix(p, drop+"=") {
			continue
		}
		kept = append(kept, p)
	}
	sort.Strings(kept)
	return strings.Join(kept, ",")
}

// extractLE pulls the le label value out and returns the remaining
// canonicalized label set.
func extractLE(labels string) (le, rest string) {
	for _, p := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(p, "le="); ok {
			le = strings.Trim(v, `"`)
		}
	}
	return le, canonicalLabels(labels, "le")
}
