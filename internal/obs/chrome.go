package obs

import (
	"encoding/json"
	"sort"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (the `traceEvents` array consumed by chrome://tracing and Perfetto).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// ChromeTrace converts span records (typically merged from several
// processes' trace logs) to Chrome trace-event JSON. Each distinct Src
// becomes a process row (named via process_name metadata), each round
// a thread row within it, and each span an "X" complete event, so a
// distributed round renders as client → replica → coordinator lanes in
// Perfetto. Output is deterministic for a given span set.
func ChromeTrace(spans []SpanRecord) ([]byte, error) {
	srcs := make(map[string]int)
	var names []string
	for _, s := range spans {
		if _, ok := srcs[s.Src]; !ok {
			srcs[s.Src] = 0
			names = append(names, s.Src)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		srcs[n] = i + 1
	}

	sorted := append([]SpanRecord(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Span < sorted[j].Span
	})

	events := make([]chromeEvent, 0, len(sorted)+len(names))
	for _, n := range names {
		events = append(events, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   srcs[n],
			Args:  map[string]any{"name": n},
		})
	}
	for _, s := range sorted {
		args := map[string]any{
			"trace": s.Trace,
			"span":  s.Span,
			"src":   s.Src,
		}
		if s.Parent != "" {
			args["parent"] = s.Parent
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		dur := float64(s.Dur) / 1e3
		if dur < 1 {
			dur = 1 // sub-µs spans still render as a visible slice
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Phase: "X",
			TS:    float64(s.Start) / 1e3,
			Dur:   dur,
			PID:   srcs[s.Src],
			TID:   s.Round,
			Args:  args,
		})
	}
	return json.MarshalIndent(chromeTrace{TraceEvents: events}, "", " ")
}
