package filter

import (
	"math"
	"testing"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/metrics"
	"ldpids/internal/stream"
)

func TestKalmanConvergesOnConstantSignal(t *testing.T) {
	k := NewKalman1D(1e-6)
	src := ldprand.New(5)
	const truth = 0.3
	var last float64
	for i := 0; i < 2000; i++ {
		last = k.Update(truth+src.NormalScaled(0, 0.1), 0.01)
	}
	if math.Abs(last-truth) > 0.01 {
		t.Fatalf("kalman estimate %v want %v", last, truth)
	}
	_, p := k.State()
	if p <= 0 || p > 0.01 {
		t.Fatalf("posterior covariance %v", p)
	}
}

func TestKalmanTracksDrift(t *testing.T) {
	k := NewKalman1D(1e-4)
	src := ldprand.New(7)
	var maxErr float64
	for i := 0; i < 3000; i++ {
		truth := 0.001 * float64(i)
		got := k.Update(truth+src.NormalScaled(0, 0.05), 0.0025)
		if i > 500 {
			if e := math.Abs(got - truth); e > maxErr {
				maxErr = e
			}
		}
	}
	// Steady-state estimate std is ~0.02 with this (q, R); allow a 5-sigma
	// worst case over 2500 steps while still proving the filter tracks
	// (raw measurement noise alone would exceed this bound).
	if maxErr > 0.1 {
		t.Fatalf("kalman lagged drifting signal by %v", maxErr)
	}
}

func TestKalmanInfVariancePredictsForward(t *testing.T) {
	k := NewKalman1D(1e-4)
	k.Update(0.5, 0.01)
	got := k.Update(999, math.Inf(1)) // no measurement: ignore the 999
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("prediction-only step returned %v", got)
	}
}

func TestKalmanUnreadyInfPassThrough(t *testing.T) {
	k := NewKalman1D(1e-4)
	if got := k.Update(0.7, math.Inf(1)); got != 0.7 {
		t.Fatalf("unready filter returned %v", got)
	}
}

func TestKalmanReducesNoiseVariance(t *testing.T) {
	src := ldprand.New(11)
	const truth = 0.2
	const r = 0.04
	k := NewKalman1D(1e-7)
	rawSSE, filtSSE := 0.0, 0.0
	for i := 0; i < 5000; i++ {
		z := truth + src.NormalScaled(0, math.Sqrt(r))
		f := k.Update(z, r)
		rawSSE += (z - truth) * (z - truth)
		filtSSE += (f - truth) * (f - truth)
	}
	if filtSSE > rawSSE/10 {
		t.Fatalf("kalman barely reduced error: raw %v filtered %v", rawSSE, filtSSE)
	}
}

func TestKalmanStreamShapes(t *testing.T) {
	released := [][]float64{{0.1, 0.9}, {0.2, 0.8}}
	out := KalmanStream(released, []float64{0.01, 0.01}, 1e-4)
	if len(out) != 2 || len(out[0]) != 2 {
		t.Fatal("shape")
	}
}

func TestKalmanStreamMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch accepted")
		}
	}()
	KalmanStream([][]float64{{1}}, []float64{1, 2}, 1e-4)
}

func TestEWMASmooths(t *testing.T) {
	e := NewEWMA(0.1)
	e.Update(0)
	var last float64
	for i := 0; i < 100; i++ {
		last = e.Update(1)
	}
	if last < 0.9 || last > 1 {
		t.Fatalf("ewma %v", last)
	}
}

func TestEWMAStream(t *testing.T) {
	out := EWMAStream([][]float64{{0, 1}, {1, 0}, {1, 0}}, 0.5)
	if len(out) != 3 {
		t.Fatal("length")
	}
	if out[1][0] != 0.5 {
		t.Fatalf("ewma stream %v", out)
	}
}

func TestMovingAverage(t *testing.T) {
	out := MovingAverage([][]float64{{2}, {4}, {6}, {8}}, 2)
	want := []float64{2, 3, 5, 7}
	for i := range want {
		if math.Abs(out[i][0]-want[i]) > 1e-12 {
			t.Fatalf("moving average %v want %v", out, want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewKalman1D(0) },
		func() { NewEWMA(0) },
		func() { NewEWMA(1.5) },
		func() { MovingAverage(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad constructor arg accepted")
				}
			}()
			f()
		}()
	}
}

func TestEmptyStreams(t *testing.T) {
	if KalmanStream(nil, nil, 1e-4) != nil {
		t.Fatal("empty kalman")
	}
	if EWMAStream(nil, 0.5) != nil {
		t.Fatal("empty ewma")
	}
	if MovingAverage(nil, 3) != nil {
		t.Fatal("empty moving average")
	}
}

func TestKalmanImprovesLPUReleases(t *testing.T) {
	// End-to-end: filtering LPU's raw releases with the oracle's known
	// variance should reduce MSE on a slowly-drifting stream.
	root := ldprand.New(99)
	n, w, T := 20000, 20, 200
	s := stream.NewBinaryStream(n, stream.DefaultLNS(root.Split()), root.Split())
	oracle := fo.NewGRR(2)
	m, err := mechanism.NewLPU(mechanism.Params{Eps: 1, W: w, N: n, Oracle: oracle, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	r := &mechanism.Runner{Stream: s, Oracle: oracle, Src: root.Split()}
	res, err := r.Run(m, T)
	if err != nil {
		t.Fatal(err)
	}
	// LPU measurement variance per timestamp: V(eps, N/w).
	mv := oracle.VarianceApprox(1, n/w)
	measVar := make([]float64, T)
	for i := range measVar {
		measVar[i] = mv
	}
	filtered := KalmanStream(res.Released, measVar, 1e-5)
	rawMSE := metrics.MSE(res.Released, res.True)
	filtMSE := metrics.MSE(filtered, res.True)
	if filtMSE >= rawMSE {
		t.Fatalf("kalman did not help: raw %v filtered %v", rawMSE, filtMSE)
	}
}
