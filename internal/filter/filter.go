// Package filter provides server-side stream post-processing for released
// LDP estimates. Post-processing is free under differential privacy, and
// the paper's Remark 3 points to FAST/PeGaSus-style filtering as a natural
// extension of the population-division framework: the aggregator knows the
// exact estimation variance of each release (from the oracle's closed
// form), so a Kalman filter with a random-walk state model can trade a
// little lag for a large variance reduction on slowly-drifting streams.
package filter

import (
	"fmt"
	"math"
)

// Kalman1D is a scalar Kalman filter with a random-walk process model:
//
//	x_t = x_{t-1} + w_t,  w_t ~ N(0, Q)
//	z_t = x_t + v_t,      v_t ~ N(0, R_t)
//
// It tracks one histogram element of a released stream; R_t is the known
// per-release estimation variance (math.Inf(1) for approximated timestamps
// that carry no fresh measurement).
type Kalman1D struct {
	q     float64 // process noise variance
	x     float64 // state estimate
	p     float64 // state covariance
	ready bool
}

// NewKalman1D returns a filter with process-noise variance q (> 0).
func NewKalman1D(q float64) *Kalman1D {
	if q <= 0 {
		panic(fmt.Sprintf("filter: process noise must be positive, got %v", q))
	}
	return &Kalman1D{q: q}
}

// Update feeds measurement z with variance r and returns the filtered
// estimate. r = +Inf means "no fresh measurement": the filter predicts
// forward only.
func (k *Kalman1D) Update(z, r float64) float64 {
	if !k.ready {
		if math.IsInf(r, 1) {
			// No information at all yet; pass the input through.
			return z
		}
		k.x, k.p, k.ready = z, r, true
		return k.x
	}
	// Predict.
	k.p += k.q
	if math.IsInf(r, 1) {
		return k.x
	}
	// Correct.
	gain := k.p / (k.p + r)
	k.x += gain * (z - k.x)
	k.p *= 1 - gain
	return k.x
}

// State returns the current estimate and covariance.
func (k *Kalman1D) State() (x, p float64) { return k.x, k.p }

// KalmanStream filters every element of a released histogram stream.
// measVar[t] is the estimation variance of release t (use math.Inf(1) at
// approximated timestamps); q is the per-step process noise.
func KalmanStream(released [][]float64, measVar []float64, q float64) [][]float64 {
	if len(released) != len(measVar) {
		panic(fmt.Sprintf("filter: %d releases but %d variances", len(released), len(measVar)))
	}
	if len(released) == 0 {
		return nil
	}
	d := len(released[0])
	filters := make([]*Kalman1D, d)
	for k := range filters {
		filters[k] = NewKalman1D(q)
	}
	out := make([][]float64, len(released))
	for t := range released {
		out[t] = make([]float64, d)
		for k := 0; k < d; k++ {
			out[t][k] = filters[k].Update(released[t][k], measVar[t])
		}
	}
	return out
}

// EWMA is an exponentially-weighted moving average smoother: a cheap
// alternative when release variances are unknown.
type EWMA struct {
	alpha float64
	x     float64
	ready bool
}

// NewEWMA returns a smoother with weight alpha in (0, 1]; larger alpha
// follows the input more closely.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("filter: alpha must lie in (0, 1], got %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update feeds the next value and returns the smoothed output.
func (e *EWMA) Update(z float64) float64 {
	if !e.ready {
		e.x, e.ready = z, true
		return z
	}
	e.x += e.alpha * (z - e.x)
	return e.x
}

// EWMAStream smooths every element of a histogram stream.
func EWMAStream(released [][]float64, alpha float64) [][]float64 {
	if len(released) == 0 {
		return nil
	}
	d := len(released[0])
	smoothers := make([]*EWMA, d)
	for k := range smoothers {
		smoothers[k] = NewEWMA(alpha)
	}
	out := make([][]float64, len(released))
	for t := range released {
		out[t] = make([]float64, d)
		for k := 0; k < d; k++ {
			out[t][k] = smoothers[k].Update(released[t][k])
		}
	}
	return out
}

// MovingAverage smooths each element with a trailing window of the given
// size (PeGaSus-style group-then-smooth, with fixed groups).
func MovingAverage(released [][]float64, window int) [][]float64 {
	if window < 1 {
		panic(fmt.Sprintf("filter: window must be >= 1, got %d", window))
	}
	if len(released) == 0 {
		return nil
	}
	d := len(released[0])
	out := make([][]float64, len(released))
	sums := make([]float64, d)
	for t := range released {
		out[t] = make([]float64, d)
		for k := 0; k < d; k++ {
			sums[k] += released[t][k]
			if t >= window {
				sums[k] -= released[t-window][k]
			}
			n := t + 1
			if n > window {
				n = window
			}
			out[t][k] = sums[k] / float64(n)
		}
	}
	return out
}
