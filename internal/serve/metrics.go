package serve

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ldpids/internal/obs"
)

// Pipeline stage names stamped on the ldpids_gateway_stage_seconds
// histogram. decode/fold/journal are per-batch server-side stages;
// release times the publish+persist hook after a mechanism releases.
const (
	stageDecode  = "decode"
	stageFold    = "fold"
	stageJournal = "journal"
	stageRelease = "release"
)

var (
	// roundLatencyBuckets spans in-process rounds (~ms) to distributed
	// rounds waiting on slow clients (~tens of seconds).
	roundLatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 30}
	batchReportBuckets  = []float64{1, 4, 16, 64, 256, 1024, 4096}
	reportByteBuckets   = []float64{4, 8, 16, 32, 64, 128, 256, 1024}
)

// Metrics holds the gateway's operational metrics on an obs.Registry
// and renders them in Prometheus text exposition format at /metrics.
// All methods are safe for concurrent use and nil-safe, so
// instrumented code never checks whether metrics are attached. The
// zero value is usable (it lazily creates its own registry); use
// NewMetrics to mount the gateway families on a shared registry.
type Metrics struct {
	once sync.Once
	reg  *obs.Registry

	// oracle and wire hold the deployment-level label values stamped on
	// stage histograms, settable once the flags are parsed (SetLabels).
	oracle atomic.Value // string
	wire   atomic.Value // string

	reportsFolded *obs.Counter
	bytesIn       *obs.Counter
	rounds        *obs.Counter
	roundFailures *obs.Counter
	releases      *obs.Counter
	roundLatency  *obs.Histogram
	refusals      *obs.CounterVec
	stageSeconds  *obs.HistogramVec
	batchReports  *obs.HistogramVec
	reportBytes   *obs.HistogramVec
}

// NewMetrics returns gateway metrics registered on reg, or on a fresh
// private registry when reg is nil.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{reg: reg}
	m.init()
	return m
}

// init registers every family exactly once. Kept lazy so that the
// zero-value construction `&Metrics{}` (used throughout tests and the
// gateway's default path) keeps working unchanged.
func (m *Metrics) init() {
	m.once.Do(func() {
		if m.reg == nil {
			m.reg = obs.NewRegistry()
		}
		m.reportsFolded = m.reg.Counter("ldpids_gateway_reports_folded_total",
			"Perturbed reports folded into round aggregates.")
		m.bytesIn = m.reg.Counter("ldpids_gateway_bytes_in_total",
			"Request body bytes ingested on /v1/report.")
		m.rounds = m.reg.Counter("ldpids_gateway_rounds_total",
			"Collection rounds finished (complete or failed).")
		m.roundFailures = m.reg.Counter("ldpids_gateway_round_failures_total",
			"Collection rounds that timed out or failed.")
		m.releases = m.reg.Counter("ldpids_gateway_releases_total",
			"Releases published to the snapshot store.")
		m.roundLatency = m.reg.Histogram("ldpids_gateway_round_latency_seconds",
			"Wall-clock latency of collection rounds.", roundLatencyBuckets)
		m.refusals = m.reg.CounterVec("ldpids_gateway_refusals_total",
			"Report batches refused, by history journal reason.", "reason")
		m.stageSeconds = m.reg.HistogramVec("ldpids_gateway_stage_seconds",
			"Per-stage ingestion latency (decode, fold, journal, release).",
			obs.LatencyBuckets, "stage", "wire", "oracle")
		m.batchReports = m.reg.HistogramVec("ldpids_gateway_batch_reports",
			"Reports per accepted batch.", batchReportBuckets, "wire")
		m.reportBytes = m.reg.HistogramVec("ldpids_gateway_report_bytes",
			"Request-body bytes per report in accepted batches.", reportByteBuckets, "wire")
	})
}

// Registry exposes the underlying registry so callers can co-register
// other families (cluster metrics, runtime gauges) on one /metrics
// surface. Nil-safe: returns nil on a nil receiver.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	m.init()
	return m.reg
}

// SetLabels pins the deployment-level oracle and wire label values
// stamped on stage histograms whose samples are not tied to a specific
// request (release latency uses the configured wire; decode/fold use
// the batch's actual wire).
func (m *Metrics) SetLabels(oracle string, wire Wire) {
	if m == nil {
		return
	}
	m.init()
	m.oracle.Store(oracle)
	m.wire.Store(wireLabel(wire))
}

func (m *Metrics) oracleLabel() string {
	if v, ok := m.oracle.Load().(string); ok {
		return v
	}
	return ""
}

func (m *Metrics) wireLabelDefault() string {
	if v, ok := m.wire.Load().(string); ok {
		return v
	}
	return wireLabel(WireJSON)
}

// wireLabel normalizes a Wire to its metric label value; the zero Wire
// is the JSON default.
func wireLabel(w Wire) string {
	if w == WireBinary {
		return string(WireBinary)
	}
	return string(WireJSON)
}

// addReport counts one folded report.
func (m *Metrics) addReport() {
	if m == nil {
		return
	}
	m.init()
	m.reportsFolded.Inc()
}

// addBytes counts ingested request-body bytes.
func (m *Metrics) addBytes(n int64) {
	if m == nil {
		return
	}
	m.init()
	m.bytesIn.Add(n)
}

// addRefusal counts one refused batch under its history.Reason* label.
func (m *Metrics) addRefusal(reason string) {
	if m == nil {
		return
	}
	m.init()
	m.refusals.With(reason).Inc()
}

// observeStage records one pipeline-stage latency sample.
func (m *Metrics) observeStage(stage string, wire Wire, d time.Duration) {
	if m == nil {
		return
	}
	m.init()
	m.stageSeconds.With(stage, wireLabel(wire), m.oracleLabel()).ObserveDuration(d)
}

// observeBatch records an accepted batch's size and bytes-per-report.
func (m *Metrics) observeBatch(wire Wire, reports int, bodyBytes int64) {
	if m == nil || reports <= 0 {
		return
	}
	m.init()
	wl := wireLabel(wire)
	m.batchReports.With(wl).Observe(float64(reports))
	m.reportBytes.With(wl).Observe(float64(bodyBytes) / float64(reports))
}

// observeRound records one finished collection round and its latency.
func (m *Metrics) observeRound(d time.Duration, ok bool) {
	if m == nil {
		return
	}
	m.init()
	m.rounds.Inc()
	if !ok {
		m.roundFailures.Inc()
	}
	m.roundLatency.ObserveDuration(d)
}

// addRelease counts one published release.
func (m *Metrics) addRelease() {
	if m == nil {
		return
	}
	m.init()
	m.releases.Inc()
}

// ObserveRelease records the latency of publishing and persisting one
// release (the release stage on ldpids_gateway_stage_seconds, labeled
// with the deployment wire from SetLabels).
func (m *Metrics) ObserveRelease(d time.Duration) {
	if m == nil {
		return
	}
	m.init()
	m.stageSeconds.With(stageRelease, m.wireLabelDefault(), m.oracleLabel()).ObserveDuration(d)
}

// ServeHTTP implements http.Handler, rendering every family on the
// registry in Prometheus text exposition format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if m == nil {
		m = NewMetrics(nil)
	}
	m.init()
	m.reg.ServeHTTP(w, r)
}
