package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Metrics holds the gateway's operational counters and renders them in
// Prometheus text exposition format at /metrics. All methods are safe for
// concurrent use and nil-safe, so instrumented code never checks whether
// metrics are attached.
type Metrics struct {
	reportsFolded  atomic.Int64
	bytesIn        atomic.Int64
	rounds         atomic.Int64
	roundFailures  atomic.Int64
	roundLatencyNS atomic.Int64
	releases       atomic.Int64
}

// addReport counts one folded report.
func (m *Metrics) addReport() {
	if m == nil {
		return
	}
	m.reportsFolded.Add(1)
}

// addBytes counts ingested request-body bytes.
func (m *Metrics) addBytes(n int64) {
	if m == nil {
		return
	}
	m.bytesIn.Add(n)
}

// observeRound records one finished collection round and its latency.
func (m *Metrics) observeRound(d time.Duration, ok bool) {
	if m == nil {
		return
	}
	m.rounds.Add(1)
	if !ok {
		m.roundFailures.Add(1)
	}
	m.roundLatencyNS.Add(int64(d))
}

// addRelease counts one published release.
func (m *Metrics) addRelease() {
	if m == nil {
		return
	}
	m.releases.Add(1)
}

// ServeHTTP implements http.Handler, rendering the counters in Prometheus
// text exposition format.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	write := func(name, help, typ string, value string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
	}
	write("ldpids_gateway_reports_folded_total",
		"Perturbed reports folded into round aggregates.", "counter",
		fmt.Sprintf("%d", m.reportsFolded.Load()))
	write("ldpids_gateway_bytes_in_total",
		"Request body bytes ingested on /v1/report.", "counter",
		fmt.Sprintf("%d", m.bytesIn.Load()))
	write("ldpids_gateway_rounds_total",
		"Collection rounds finished (complete or failed).", "counter",
		fmt.Sprintf("%d", m.rounds.Load()))
	write("ldpids_gateway_round_failures_total",
		"Collection rounds that timed out or failed.", "counter",
		fmt.Sprintf("%d", m.roundFailures.Load()))
	write("ldpids_gateway_round_latency_seconds_sum",
		"Total time spent in collection rounds.", "counter",
		fmt.Sprintf("%g", time.Duration(m.roundLatencyNS.Load()).Seconds()))
	write("ldpids_gateway_round_latency_seconds_count",
		"Collection rounds measured.", "counter",
		fmt.Sprintf("%d", m.rounds.Load()))
	write("ldpids_gateway_releases_total",
		"Releases published to the snapshot store.", "counter",
		fmt.Sprintf("%d", m.releases.Load()))
}
