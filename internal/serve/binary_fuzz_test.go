package serve

import (
	"testing"

	"ldpids/internal/fo"
)

// FuzzBinaryBatchDecode drives the binary batch decoder with arbitrary
// bytes: header parsing, structural validation, per-report parsing, and
// contribution decoding must refuse malformed framing — truncated
// frames, oversized length fields, word-count mismatches — with errors,
// never panics or out-of-bounds reads, and anything that validates must
// fold into an aggregator without panicking.
func FuzzBinaryBatchDecode(f *testing.F) {
	seed := func(batch reportBatch) []byte {
		body, err := encodeBinary(batch)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	honest := seed(reportBatch{Round: 1, Token: "tok", Reports: []wireReport{
		{User: 0, Kind: "value", Value: 3},
		{User: 1, Kind: "hash", Value: 2, Seed: 77},
		{User: 2, Kind: "cohort", Value: 1, Seed: 3},
		{User: 3, Kind: "numeric", Num: -0.25},
	}})
	f.Add(honest)
	packed := seed(reportBatch{Round: 2, Token: "tok", Reports: []wireReport{
		{User: 0, Kind: "packed", Value: -1, Packed: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
		{User: 1, Kind: "unary", Value: -1, Bits: []byte{0, 1, 0, 0, 0, 0, 0, 1}},
	}})
	f.Add(packed)
	// Truncated mid-report.
	f.Add(packed[:len(packed)-3])
	// Truncated mid-header.
	f.Add(honest[:7])
	// Oversized word count: claims 2^30 words with one present.
	lie := seed(reportBatch{Round: 3, Token: "t", Reports: []wireReport{
		{User: 0, Kind: "packed", Value: -1, Packed: []byte{0, 0, 0, 0, 0, 0, 0, 1}},
	}})
	lie[len(lie)-12] = 0
	lie[len(lie)-10] = 0
	lie[len(lie)-9] = 0x40 // words = 1<<30, little-endian
	f.Add(lie)
	// Count field larger than the reports present.
	short := seed(reportBatch{Round: 4, Token: "t", Reports: []wireReport{
		{User: 0, Kind: "value", Value: 1},
	}})
	short[len(binaryMagic)+1+8+1+1] = 9 // count byte: 9 reports claimed, 1 present
	f.Add(short)
	f.Add([]byte("LDPB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := parseBinaryHeader(data)
		if err != nil {
			return
		}
		if batch.count < 0 || batch.count > 1<<12 {
			return // the server's batch cap refuses these before validation
		}
		if err := validateBinaryReports(batch.reports, batch.count); err != nil {
			return
		}
		agg, err := fo.NewOUEPacked(64).NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		var scratch []uint64
		off := 0
		for i := 0; i < batch.count; i++ {
			br, next, err := parseBinaryReport(batch.reports, off)
			if err != nil {
				t.Fatalf("validated report %d failed to parse: %v", i, err)
			}
			off = next
			if c, err := br.contribution(false, &scratch); err == nil && !c.Numeric {
				_ = agg.Add(c.Report) // mismatched shapes error; panics fail the fuzz
			}
			if _, err := br.contribution(true, nil); err == nil && br.kind != bwNumeric {
				t.Fatalf("non-numeric kind %d decoded in a numeric round", br.kind)
			}
		}
	})
}
