package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ldpids/internal/fo"
)

// FuzzReportBatchDecode drives the /v1/report body decoding with
// arbitrary JSON: the batch decoder and both per-report decode modes
// (frequency and numeric) must refuse garbage with errors, never
// panics, and anything the frequency decode accepts must fold into an
// aggregator without panicking.
func FuzzReportBatchDecode(f *testing.F) {
	seed := func(batch reportBatch) []byte {
		body, err := json.Marshal(batch)
		if err != nil {
			f.Fatal(err)
		}
		return body
	}
	f.Add(seed(reportBatch{Round: 1, Token: "tok", Reports: []wireReport{
		{User: 0, Kind: "value", Value: 3},
		{User: 1, Kind: "hash", Value: 2, Seed: 77},
	}}))
	f.Add(seed(reportBatch{Round: 2, Token: "tok", Reports: []wireReport{
		{User: 0, Kind: "packed", Value: -1, Packed: []byte{1, 0, 0, 0, 0, 0, 0, 0}},
		{User: 1, Kind: "unary", Value: -1, Bits: []byte{0, 1, 0, 0, 0, 0, 0, 1}},
	}}))
	f.Add(seed(reportBatch{Round: 3, Token: "tok", Reports: []wireReport{
		{User: 5, Kind: "numeric", Num: -0.25},
		{User: 6, Kind: "cohort", Value: 1, Seed: 3},
	}}))
	f.Add([]byte(`{"round":1,"token":"t","reports":[{"user":0,"kind":"packed","packed":"AQ=="}]}`))
	f.Add([]byte(`{"reports":[{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var batch reportBatch
		if err := json.Unmarshal(data, &batch); err != nil {
			return
		}
		agg, err := fo.NewOUEPacked(64).NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		for _, wr := range batch.Reports {
			if c, err := wr.decode(false); err == nil && !c.Numeric {
				_ = agg.Add(c.Report) // mismatched shapes error; panics fail the fuzz
			}
			_, _ = wr.decode(true)
		}
	})
}

// FuzzReportHandler posts arbitrary bodies at a live backend with no
// open round: every request must be refused with a protocol status —
// 400 (malformed), 409 (no round to authenticate against), or 413
// (oversized) — and the backend must stay up.
func FuzzReportHandler(f *testing.F) {
	backend, err := NewBackend(4)
	if err != nil {
		f.Fatal(err)
	}
	backend.MaxBody = 1 << 16
	ts := httptest.NewServer(backend)
	f.Cleanup(func() {
		backend.Close()
		ts.Close()
	})
	f.Add([]byte(`{"round":1,"token":"tok","reports":[{"user":0,"kind":"value","value":1}]}`))
	f.Add([]byte(`{"round":9,"token":"","reports":[]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{`))
	f.Add(bytes.Repeat([]byte("a"), 1<<10))
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusBadRequest, http.StatusConflict, http.StatusRequestEntityTooLarge:
		default:
			t.Fatalf("closed-round report answered %d, want 400/409/413", resp.StatusCode)
		}
	})
}
