package serve

import (
	"testing"
	"time"
)

// TestBackoffDeterministic: identical seeds produce identical delay
// schedules — the property that keeps retry timing replayable and the
// determinism analyzer's no-ambient-randomness rule intact.
func TestBackoffDeterministic(t *testing.T) {
	a := NewBackoff(50*time.Millisecond, time.Second, 42)
	b := NewBackoff(50*time.Millisecond, time.Second, 42)
	for i := 0; i < 20; i++ {
		if da, db := a.Next(), b.Next(); da != db {
			t.Fatalf("attempt %d: schedules diverged: %v vs %v", i, da, db)
		}
	}
}

// TestBackoffEnvelope: attempt k's delay lies in [d/2, d) for
// d = min(base<<k, cap) — exponential growth, capped, never zero.
func TestBackoffEnvelope(t *testing.T) {
	const base, cap = 100 * time.Millisecond, 2 * time.Second
	bo := NewBackoff(base, cap, 7)
	for k := 0; k < 12; k++ {
		d := base << uint(k)
		if d <= 0 || d > cap {
			d = cap
		}
		got := bo.Next()
		if got < d/2 || got >= d {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", k, got, d/2, d)
		}
	}
}

// TestBackoffReset rewinds the envelope to the base delay, but keeps the
// jitter stream advancing so post-reset schedules are not replays.
func TestBackoffReset(t *testing.T) {
	bo := NewBackoff(100*time.Millisecond, 10*time.Second, 1)
	first := bo.Next()
	for i := 0; i < 5; i++ {
		bo.Next()
	}
	bo.Reset()
	if got := bo.Attempt(); got != 0 {
		t.Fatalf("attempt counter %d after Reset, want 0", got)
	}
	second := bo.Next()
	if second < 50*time.Millisecond || second >= 100*time.Millisecond {
		t.Fatalf("post-reset delay %v escaped the base envelope", second)
	}
	// Equality would mean the jitter stream rewound with the counter.
	if first == second {
		t.Fatalf("post-reset delay replayed the first delay exactly (%v)", first)
	}
}

// TestBackoffDefaults: non-positive knobs select the documented defaults.
func TestBackoffDefaults(t *testing.T) {
	bo := NewBackoff(0, 0, 3)
	d := bo.Next()
	if d < DefaultBackoffBase/2 || d >= DefaultBackoffBase {
		t.Fatalf("default first delay %v outside [%v, %v)", d, DefaultBackoffBase/2, DefaultBackoffBase)
	}
	for i := 0; i < 30; i++ {
		if got := bo.Next(); got >= DefaultBackoffCap {
			t.Fatalf("delay %v at attempt %d exceeds the default cap", got, i)
		}
	}
}
