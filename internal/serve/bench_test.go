package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// BenchmarkHTTPFold measures ingestion throughput through POST /v1/report
// at d=65536: one pre-encoded batch of perturbed reports per round, folded
// into shard-local fo.StripedAggregator stripes by the handler. The
// reported reports/s includes HTTP transport, JSON+base64 decoding, and
// the fold itself — the full server-side cost of one uploaded report.
//
//	go test -bench BenchmarkHTTPFold -run xxx ./internal/serve
func BenchmarkHTTPFold(b *testing.B) {
	const (
		d     = 65536
		batch = 256
		eps   = 1.0
	)
	for _, tc := range []struct {
		name   string
		oracle fo.Oracle
	}{
		{"OUE-packed-d65536", fo.NewOUEPacked(d)},
		{"OLH-C-d65536", fo.NewOLHC(d)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			backend, err := NewBackend(batch)
			if err != nil {
				b.Fatal(err)
			}
			backend.Timeout = time.Minute
			backend.tokens = func() string { return "bench" }
			ts := httptest.NewServer(backend)
			defer ts.Close()
			defer backend.Close()

			// Pre-encode one round's reports; only the round id changes
			// between iterations.
			src := ldprand.New(7)
			reports := make([]wireReport, batch)
			users := make([]int, batch)
			for u := range reports {
				users[u] = u
				reports[u] = encodeContribution(u, collect.Contribution{
					Report: tc.oracle.Perturb(u%d, eps, src),
				})
			}
			reportsJSON, err := json.Marshal(reports)
			if err != nil {
				b.Fatal(err)
			}
			body := func(round int64) []byte {
				var buf bytes.Buffer
				fmt.Fprintf(&buf, `{"round":%d,"token":"bench","reports":`, round)
				buf.Write(reportsJSON)
				buf.WriteByte('}')
				return buf.Bytes()
			}
			client := ts.Client()

			b.SetBytes(int64(len(body(1))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg, err := fo.NewStripedAggregator(tc.oracle, eps, 0)
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan error, 1)
				go func() {
					done <- backend.Collect(collect.Request{T: i + 1, Users: users, Eps: eps},
						collect.AggregatorSink{Agg: agg})
				}()
				// Wait for the round to open before posting, or the batch
				// races the Collect goroutine and bounces with a 409.
				for {
					if rd, _, _ := backend.currentRound(); rd != nil && rd.id == int64(i+1) {
						break
					}
					time.Sleep(10 * time.Microsecond)
				}
				resp, err := client.Post(ts.URL+"/v1/report", "application/json",
					bytes.NewReader(body(int64(i+1))))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					b.Fatalf("POST status %d: %s", resp.StatusCode, msg)
				}
				resp.Body.Close()
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}
