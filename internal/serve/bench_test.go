package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// BenchmarkHTTPFold measures ingestion throughput through POST /v1/report
// at d=65536: one pre-encoded batch of perturbed reports per round, folded
// into shard-local fo.StripedAggregator stripes by the handler. The
// reported reports/s includes HTTP transport, batch decoding (JSON+base64
// or the binary framing, per the -wire suffix), and the fold itself — the
// full server-side cost of one uploaded report.
//
//	go test -bench BenchmarkHTTPFold -run xxx ./internal/serve
func BenchmarkHTTPFold(b *testing.B) {
	const (
		d     = 65536
		batch = 256
		eps   = 1.0
	)
	for _, tc := range []struct {
		name   string
		oracle fo.Oracle
		wire   Wire
	}{
		{"OUE-packed-d65536", fo.NewOUEPacked(d), WireJSON},
		{"OLH-C-d65536", fo.NewOLHC(d), WireJSON},
		{"OUE-packed-d65536-binary", fo.NewOUEPacked(d), WireBinary},
		{"OLH-C-d65536-binary", fo.NewOLHC(d), WireBinary},
	} {
		b.Run(tc.name, func(b *testing.B) {
			backend, err := NewBackend(batch)
			if err != nil {
				b.Fatal(err)
			}
			backend.Timeout = time.Minute
			backend.tokens = func() string { return "bench" }
			ts := httptest.NewServer(backend)
			defer ts.Close()
			defer backend.Close()

			// Pre-encode one round's reports; only the round id changes
			// between iterations.
			src := ldprand.New(7)
			reports := make([]wireReport, batch)
			users := make([]int, batch)
			for u := range reports {
				users[u] = u
				reports[u] = encodeContribution(u, collect.Contribution{
					Report: tc.oracle.Perturb(u%d, eps, src),
				})
			}
			var body func(round int64) []byte
			contentType := ContentTypeJSON
			if tc.wire == WireBinary {
				contentType = ContentTypeBinary
				frame, err := encodeBinary(reportBatch{Round: 0, Token: "bench", Reports: reports})
				if err != nil {
					b.Fatal(err)
				}
				body = func(round int64) []byte {
					// The round id sits at a fixed offset after magic+version.
					binary.LittleEndian.PutUint64(frame[5:], uint64(round))
					return frame
				}
			} else {
				reportsJSON, err := json.Marshal(reports)
				if err != nil {
					b.Fatal(err)
				}
				body = func(round int64) []byte {
					var buf bytes.Buffer
					fmt.Fprintf(&buf, `{"round":%d,"token":"bench","reports":`, round)
					buf.Write(reportsJSON)
					buf.WriteByte('}')
					return buf.Bytes()
				}
			}
			client := ts.Client()

			b.SetBytes(int64(len(body(1))))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg, err := fo.NewStripedAggregator(tc.oracle, eps, 0)
				if err != nil {
					b.Fatal(err)
				}
				done := make(chan error, 1)
				go func() {
					done <- backend.Collect(collect.Request{T: i + 1, Users: users, Eps: eps},
						collect.AggregatorSink{Agg: agg})
				}()
				// Wait for the round to open before posting, or the batch
				// races the Collect goroutine and bounces with a 409.
				for {
					if rd, _, _ := backend.currentRound(); rd != nil && rd.id == int64(i+1) {
						break
					}
					time.Sleep(10 * time.Microsecond)
				}
				resp, err := client.Post(ts.URL+"/v1/report", contentType,
					bytes.NewReader(body(int64(i+1))))
				if err != nil {
					b.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					msg, _ := io.ReadAll(resp.Body)
					b.Fatalf("POST status %d: %s", resp.StatusCode, msg)
				}
				resp.Body.Close()
				if err := <-done; err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "reports/s")
		})
	}
}

// BenchmarkBinaryDecodeFold isolates the steady-state server decode+fold
// path of the binary wire — header parse, structural validation, packed
// decode into pooled scratch, stripe fold — without HTTP. With the pools
// warm this path must not allocate: -benchmem should report ~0 allocs/op.
//
//	go test -bench BenchmarkBinaryDecodeFold -benchmem -run xxx ./internal/serve
func BenchmarkBinaryDecodeFold(b *testing.B) {
	const (
		d     = 65536
		batch = 256
		eps   = 1.0
	)
	oracle := fo.NewOUEPacked(d)
	src := ldprand.New(7)
	reports := make([]wireReport, batch)
	for u := range reports {
		reports[u] = encodeContribution(u, collect.Contribution{
			Report: oracle.Perturb(u%d, eps, src),
		})
	}
	frame, err := encodeBinary(reportBatch{Round: 1, Token: "bench", Reports: reports})
	if err != nil {
		b.Fatal(err)
	}
	agg, err := fo.NewStripedAggregator(oracle, eps, 0)
	if err != nil {
		b.Fatal(err)
	}
	sink := collect.AggregatorSink{Agg: agg}
	stripes := sink.Stripes()

	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb, err := parseBinaryHeader(frame)
		if err != nil {
			b.Fatal(err)
		}
		if err := validateBinaryReports(bb.reports, bb.count); err != nil {
			b.Fatal(err)
		}
		scratch := wordBufPool.Get().(*[]uint64)
		off := 0
		for j := 0; j < bb.count; j++ {
			br, next, err := parseBinaryReport(bb.reports, off)
			if err != nil {
				b.Fatal(err)
			}
			off = next
			c, err := br.contribution(false, scratch)
			if err != nil {
				b.Fatal(err)
			}
			if err := sink.AbsorbStripe(br.user%stripes, c); err != nil {
				b.Fatal(err)
			}
		}
		wordBufPool.Put(scratch)
	}
	b.StopTimer()
	b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "reports/s")
}
