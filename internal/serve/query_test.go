package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ldpids/internal/obs"
)

func TestSnapshotsPublishLatest(t *testing.T) {
	s := NewSnapshots()
	if _, ok := s.Latest(); ok {
		t.Fatal("empty store has a latest snapshot")
	}
	release := []float64{0.5, 0.5}
	s.Publish(1, release)
	release[0] = 99 // Publish must have copied
	snap, ok := s.Latest()
	if !ok || snap.Version != 1 || snap.T != 1 || snap.Estimate[0] != 0.5 {
		t.Fatalf("latest = %+v, ok=%v", snap, ok)
	}
	s.Publish(2, []float64{0.25, 0.75})
	snap, _ = s.Latest()
	if snap.Version != 2 || snap.T != 2 {
		t.Fatalf("latest after second publish = %+v", snap)
	}
}

func TestSnapshotsSubscribe(t *testing.T) {
	s := NewSnapshots()
	ch, cancel := s.Subscribe()
	s.Publish(1, []float64{1})
	select {
	case snap := <-ch:
		if snap.Version != 1 {
			t.Fatalf("subscriber got version %d", snap.Version)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never notified")
	}
	// A slow consumer misses releases instead of blocking Publish.
	for i := 0; i < subBuffer+10; i++ {
		s.Publish(2+i, []float64{1})
	}
	cancel()
	cancel() // idempotent
	// The channel is closed after cancel; drain to the close.
	deadline := time.After(time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscriber channel never closed")
		}
	}
}

func TestEstimateEndpoint(t *testing.T) {
	s := NewSnapshots()
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("estimate before any release: status %d, want 404", resp.StatusCode)
	}

	s.Publish(3, []float64{0.125, 0.875})
	resp, err = http.Get(ts.URL + "/v1/estimate")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate status %d", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.T != 3 || len(snap.Estimate) != 2 || snap.Estimate[1] != 0.875 {
		t.Fatalf("estimate = %+v", snap)
	}
}

func TestStreamSSE(t *testing.T) {
	s := NewSnapshots()
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.Publish(1, []float64{0.5, 0.5})

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	// Publish two more releases while the stream is attached.
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.Publish(2, []float64{0.4, 0.6})
		s.Publish(3, []float64{0.3, 0.7})
	}()

	scanner := bufio.NewScanner(resp.Body)
	var events []Snapshot
	var sawEventLine bool
	for scanner.Scan() && len(events) < 3 {
		line := scanner.Text()
		if line == "event: release" {
			sawEventLine = true
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var snap Snapshot
			if err := json.Unmarshal([]byte(data), &snap); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, snap)
		}
	}
	if !sawEventLine {
		t.Fatal("no 'event: release' line seen")
	}
	if len(events) != 3 {
		t.Fatalf("received %d releases, want 3 (got %+v)", len(events), events)
	}
	// The first event replays the latest snapshot; the rest arrive live in
	// version order.
	for i, snap := range events {
		if snap.Version != int64(i+1) || snap.T != i+1 {
			t.Fatalf("event %d = %+v", i, snap)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	m := &Metrics{}
	m.addReport()
	m.addReport()
	m.addBytes(100)
	m.observeRound(250*time.Millisecond, true)
	m.observeRound(100*time.Millisecond, false)
	m.addRelease()

	m.SetLabels("GRR", WireJSON)
	m.addRefusal("stale_token")
	m.observeStage(stageFold, WireJSON, 2*time.Millisecond)
	m.observeBatch(WireJSON, 8, 640)
	m.ObserveRelease(time.Millisecond)

	// All recorders are nil-safe.
	var nilM *Metrics
	nilM.addReport()
	nilM.addBytes(1)
	nilM.observeRound(time.Second, true)
	nilM.addRelease()
	nilM.addRefusal("stale_token")
	nilM.observeStage(stageFold, WireJSON, time.Second)
	nilM.observeBatch(WireJSON, 1, 1)
	nilM.ObserveRelease(time.Second)
	nilM.SetLabels("GRR", WireJSON)
	nilM.Registry()

	ts := httptest.NewServer(m)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE ldpids_gateway_reports_folded_total counter",
		"ldpids_gateway_reports_folded_total 2",
		"ldpids_gateway_bytes_in_total 100",
		"ldpids_gateway_rounds_total 2",
		"ldpids_gateway_round_failures_total 1",
		"ldpids_gateway_round_latency_seconds_sum 0.35",
		"ldpids_gateway_round_latency_seconds_count 2",
		"ldpids_gateway_releases_total 1",
		// The satellite fix: round latency is a real histogram now, with
		// cumulative buckets ending at +Inf under one TYPE histogram.
		"# TYPE ldpids_gateway_round_latency_seconds histogram",
		`ldpids_gateway_round_latency_seconds_bucket{le="+Inf"} 2`,
		`ldpids_gateway_refusals_total{reason="stale_token"} 1`,
		`ldpids_gateway_stage_seconds_bucket{stage="fold",wire="json",oracle="GRR",le="+Inf"} 1`,
		`ldpids_gateway_stage_seconds_bucket{stage="release",wire="json",oracle="GRR",le="+Inf"} 1`,
		`ldpids_gateway_batch_reports_bucket{wire="json",le="16"} 1`,
		`ldpids_gateway_report_bytes_count{wire="json"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
	// Exposition-format conformance: /metrics must parse as well-formed
	// Prometheus text the way a strict scraper reads it, line by line.
	if err := obs.CheckExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("metrics output fails exposition conformance: %v\n%s", err, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.ContentType)
	}
}
