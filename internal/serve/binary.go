package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
)

// Content types negotiated on POST /v1/report. Negotiation is per batch:
// a client advertises an encoding by posting with its content type; a
// server that does not speak it answers 415 (Unsupported Media Type) and
// the client falls back to JSON, which every server speaks.
const (
	// ContentTypeJSON is the compatible default batch encoding: a JSON
	// envelope whose bit-packed payloads travel as base64.
	ContentTypeJSON = "application/json"
	// ContentTypeBinary is the negotiated flat little-endian batch
	// framing: the batch header followed by packed-word payloads exactly
	// as fo lays them out — no base64, no per-report JSON.
	ContentTypeBinary = "application/x-ldpids-batch"
)

// Wire names a report-batch encoding, for -wire flags and the byte
// accounting of Backend.FrameOverhead.
type Wire string

const (
	// WireJSON selects the JSON+base64 batch encoding (the default).
	WireJSON Wire = "json"
	// WireBinary selects the flat little-endian batch framing.
	WireBinary Wire = "binary"
)

// ParseWire parses a -wire flag value.
func ParseWire(s string) (Wire, error) {
	switch Wire(s) {
	case "", WireJSON:
		return WireJSON, nil
	case WireBinary:
		return WireBinary, nil
	default:
		return "", fmt.Errorf("serve: unknown wire %q (want json or binary)", s)
	}
}

// The binary batch framing (all integers little-endian):
//
//	magic   "LDPB"                        4 bytes
//	version 0x01                          1 byte
//	round   int64                         8 bytes
//	token   length byte + raw bytes       1 + len
//	count   uint32                        4 bytes
//	count reports, each:
//	  user  uint32                        4 bytes
//	  kind  byte                          1 byte
//	  payload by kind:
//	    value    value int32              4 bytes
//	    unary    len uint32 + len bytes   4 + len
//	    packed   words uint32 + 8*words   4 + 8*words (fo packed layout)
//	    hash     value int32 + seed       4 + 8 bytes
//	    cohort   value int32 + cohort     4 + 8 bytes
//	    numeric  float64 bits             8 bytes
//
// Unary and packed reports decode to Value -1, the in-memory convention;
// trailing bytes after the last report are malformed.
const (
	binaryMagic   = "LDPB"
	binaryVersion = 1
)

// Binary kind tags. These are wire constants: their values are part of
// the format and must never be renumbered.
const (
	bwValue   = 0
	bwUnary   = 1
	bwPacked  = 2
	bwHash    = 3
	bwCohort  = 4
	bwNumeric = 5
)

// binaryKindName maps a kind tag to the kind string used by the JSON wire
// and the history journal, so both wires journal identical canonical
// batches.
func binaryKindName(kind byte) string {
	switch kind {
	case bwValue:
		return "value"
	case bwUnary:
		return "unary"
	case bwPacked:
		return "packed"
	case bwHash:
		return "hash"
	case bwCohort:
		return "cohort"
	case bwNumeric:
		return "numeric"
	default:
		return fmt.Sprintf("kind-%d", kind)
	}
}

// le32/le64 append little-endian integers.
func le32(buf []byte, v uint32) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func le64(buf []byte, v uint64) []byte {
	return append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// encodeBinary renders one report batch in the binary framing. Packed
// payloads are already little-endian word bytes in wireReport, so they
// copy straight onto the wire.
func encodeBinary(batch reportBatch) ([]byte, error) {
	if len(batch.Token) > 255 {
		return nil, fmt.Errorf("serve: round token of %d bytes exceeds the binary framing's 255", len(batch.Token))
	}
	buf := make([]byte, 0, 18+len(batch.Token)+17*len(batch.Reports))
	buf = append(buf, binaryMagic...)
	buf = append(buf, binaryVersion)
	buf = le64(buf, uint64(batch.Round))
	buf = append(buf, byte(len(batch.Token)))
	buf = append(buf, batch.Token...)
	buf = le32(buf, uint32(len(batch.Reports)))
	for _, wr := range batch.Reports {
		if wr.User < 0 || int64(wr.User) > math.MaxUint32 {
			return nil, fmt.Errorf("serve: user id %d outside the binary framing's uint32 range", wr.User)
		}
		buf = le32(buf, uint32(wr.User))
		switch wr.Kind {
		case "value":
			buf = append(buf, bwValue)
			buf = le32(buf, uint32(int32(wr.Value)))
		case "unary":
			buf = append(buf, bwUnary)
			buf = le32(buf, uint32(len(wr.Bits)))
			buf = append(buf, wr.Bits...)
		case "packed":
			if len(wr.Packed)%8 != 0 {
				return nil, fmt.Errorf("serve: packed payload of %d bytes is not a whole number of words", len(wr.Packed))
			}
			buf = append(buf, bwPacked)
			buf = le32(buf, uint32(len(wr.Packed)/8))
			buf = append(buf, wr.Packed...)
		case "hash":
			buf = append(buf, bwHash)
			buf = le32(buf, uint32(int32(wr.Value)))
			buf = le64(buf, wr.Seed)
		case "cohort":
			buf = append(buf, bwCohort)
			buf = le32(buf, uint32(int32(wr.Value)))
			buf = le64(buf, wr.Seed)
		case "numeric":
			buf = append(buf, bwNumeric)
			buf = le64(buf, math.Float64bits(wr.Num))
		default:
			return nil, fmt.Errorf("serve: cannot binary-encode report kind %q", wr.Kind)
		}
	}
	return buf, nil
}

// binaryBatch is the parsed header of a binary batch. token and reports
// alias the request body buffer — they are only valid while it is.
type binaryBatch struct {
	round   int64
	token   []byte
	count   int
	reports []byte // the raw report region after the header
}

// parseBinaryHeader parses and validates the batch header, leaving the
// raw report region for validateBinaryReports (the caller checks the
// report count against its batch cap first, so a hostile count cannot
// buy a long validation walk).
func parseBinaryHeader(data []byte) (binaryBatch, error) {
	var b binaryBatch
	if len(data) < len(binaryMagic)+1 {
		return b, fmt.Errorf("serve: binary batch of %d bytes is shorter than its magic", len(data))
	}
	if string(data[:4]) != binaryMagic {
		return b, fmt.Errorf("serve: bad binary batch magic %q", data[:4])
	}
	if data[4] != binaryVersion {
		return b, fmt.Errorf("serve: unknown binary batch version %d", data[4])
	}
	off := 5
	if len(data)-off < 9 {
		return b, fmt.Errorf("serve: binary batch truncated in its header")
	}
	b.round = int64(binary.LittleEndian.Uint64(data[off:]))
	off += 8
	tokenLen := int(data[off])
	off++
	if len(data)-off < tokenLen+4 {
		return b, fmt.Errorf("serve: binary batch truncated in its token")
	}
	b.token = data[off : off+tokenLen]
	off += tokenLen
	b.count = int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	b.reports = data[off:]
	return b, nil
}

// binaryReport is one parsed report. bits and packed alias the request
// body buffer.
type binaryReport struct {
	user   int
	kind   byte
	value  int
	seed   uint64
	num    float64
	bits   []byte
	packed []byte // 8*words little-endian bytes, the fo packed layout
}

// parseBinaryReport parses the report at data[off:], returning it and the
// offset of the next one. Every length field is bounds-checked against
// the remaining bytes, so a lying length cannot reach past the body.
func parseBinaryReport(data []byte, off int) (binaryReport, int, error) {
	var br binaryReport
	if len(data)-off < 5 {
		return br, 0, fmt.Errorf("serve: binary report truncated in its header")
	}
	br.user = int(binary.LittleEndian.Uint32(data[off:]))
	br.kind = data[off+4]
	off += 5
	need := func(n int) bool { return len(data)-off >= n }
	switch br.kind {
	case bwValue:
		if !need(4) {
			return br, 0, fmt.Errorf("serve: value report truncated")
		}
		br.value = int(int32(binary.LittleEndian.Uint32(data[off:])))
		off += 4
	case bwUnary:
		if !need(4) {
			return br, 0, fmt.Errorf("serve: unary report truncated in its length")
		}
		n := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if uint64(n) > uint64(len(data)-off) {
			return br, 0, fmt.Errorf("serve: unary report claims %d bytes, only %d remain", n, len(data)-off)
		}
		br.value = -1
		br.bits = data[off : off+int(n)]
		off += int(n)
	case bwPacked:
		if !need(4) {
			return br, 0, fmt.Errorf("serve: packed report truncated in its word count")
		}
		words := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if uint64(words)*8 > uint64(len(data)-off) {
			return br, 0, fmt.Errorf("serve: packed report claims %d words, only %d bytes remain", words, len(data)-off)
		}
		br.value = -1
		br.packed = data[off : off+8*int(words)]
		off += 8 * int(words)
	case bwHash, bwCohort:
		if !need(12) {
			return br, 0, fmt.Errorf("serve: %s report truncated", binaryKindName(br.kind))
		}
		br.value = int(int32(binary.LittleEndian.Uint32(data[off:])))
		br.seed = binary.LittleEndian.Uint64(data[off+4:])
		off += 12
	case bwNumeric:
		if !need(8) {
			return br, 0, fmt.Errorf("serve: numeric report truncated")
		}
		br.num = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	default:
		return br, 0, fmt.Errorf("serve: unknown binary report kind %d", br.kind)
	}
	return br, off, nil
}

// validateBinaryReports structurally validates the whole report region —
// every report parses, and no trailing bytes follow the last one — so the
// fold pass never fails on framing and a structurally broken batch folds
// nothing, exactly like a JSON batch that fails to decode.
func validateBinaryReports(reports []byte, count int) error {
	off := 0
	for i := 0; i < count; i++ {
		_, next, err := parseBinaryReport(reports, off)
		if err != nil {
			return fmt.Errorf("report %d: %w", i, err)
		}
		off = next
	}
	if off != len(reports) {
		return fmt.Errorf("serve: %d trailing bytes after the last report", len(reports)-off)
	}
	return nil
}

// contribution decodes a parsed report, mirroring wireReport.decode:
// numeric says which round kind the report must answer, and mismatches
// are rejected here, before the sink sees anything. When scratch is
// non-nil the packed payload decodes into it (grown once, reused across
// the batch) — the caller guarantees the sink does not retain payload
// slices past the fold, as fo's aggregators do not. A nil scratch
// allocates fresh payload slices the sink may keep.
func (br binaryReport) contribution(numeric bool, scratch *[]uint64) (collect.Contribution, error) {
	if numeric {
		if br.kind != bwNumeric {
			return collect.Contribution{}, fmt.Errorf("serve: %s report in a numeric round", binaryKindName(br.kind))
		}
		return collect.Contribution{Numeric: true, Value: br.num}, nil
	}
	r := fo.Report{Value: br.value, Seed: br.seed}
	switch br.kind {
	case bwValue:
		r.Kind = fo.KindValue
	case bwUnary:
		r.Kind = fo.KindUnary
		r.Bits = br.bits
		if scratch == nil {
			r.Bits = append([]byte(nil), br.bits...)
		}
	case bwPacked:
		r.Kind = fo.KindPacked
		n := len(br.packed) / 8
		var words []uint64
		if scratch == nil {
			words = make([]uint64, n)
		} else {
			if cap(*scratch) < n {
				*scratch = make([]uint64, n)
			}
			words = (*scratch)[:n]
		}
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(br.packed[8*i:])
		}
		r.Packed = words
	case bwHash:
		r.Kind = fo.KindHash
	case bwCohort:
		r.Kind = fo.KindCohort
	case bwNumeric:
		return collect.Contribution{}, fmt.Errorf("serve: numeric report in a frequency round")
	default:
		return collect.Contribution{}, fmt.Errorf("serve: unknown binary report kind %d", br.kind)
	}
	return collect.Contribution{Report: r}, nil
}

// binaryHistoryReports converts the first n validated reports of the raw
// region into their history transcript form, copying every payload out of
// the request buffer. The canonical form is identical to the JSON wire's
// (packed payloads are little-endian word bytes on both), so ldpids-check
// refolds identically regardless of wire.
func binaryHistoryReports(reports []byte, n int) []history.Report {
	out := make([]history.Report, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		br, next, err := parseBinaryReport(reports, off)
		if err != nil {
			break // unreachable after validateBinaryReports
		}
		off = next
		hr := history.Report{User: br.user, Kind: binaryKindName(br.kind),
			Value: br.value, Seed: br.seed, Num: br.num}
		switch br.kind {
		case bwUnary:
			hr.Bits = append([]byte(nil), br.bits...)
		case bwPacked:
			hr.Packed = append([]byte(nil), br.packed...)
		}
		out = append(out, hr)
	}
	return out
}

// tokenEqual compares a body-buffer token against the round token in
// constant time for equal lengths, like subtle.ConstantTimeCompare but
// without converting the round token to a byte slice per request.
func tokenEqual(got []byte, want string) bool {
	if len(got) != len(want) {
		return false
	}
	var v byte
	for i := 0; i < len(got); i++ {
		v |= got[i] ^ want[i]
	}
	return v == 0
}

// mediaType extracts the essence of a Content-Type header: parameters
// stripped, trimmed, lowercased (already-lowercase headers, the common
// case, do not allocate).
func mediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// Pooled scratch for the steady-state binary decode path: request bodies
// and packed-word buffers are reused across batches, so decoding and
// folding a binary batch allocates nothing once the pools are warm.
var (
	frameBufPool = sync.Pool{New: func() any { return new([]byte) }}
	wordBufPool  = sync.Pool{New: func() any { return new([]uint64) }}
)

// readFrame reads r to EOF into buf's capacity, growing it at most a few
// times; the grown buffer returns to its pool with the capacity kept.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	if cap(buf) == 0 {
		buf = make([]byte, 0, 4096)
	}
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}
