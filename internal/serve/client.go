package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/obs"
)

// Funcs holds a client process's local randomizers, mirroring
// transport.Funcs: Report answers frequency rounds, NumericReport numeric
// mean rounds. Both receive the absolute user id, the timestamp, and the
// round budget; the user's true value never leaves the client process. A
// nil function skips that round kind (the aggregator prunes the silent
// users at the round deadline).
type Funcs struct {
	Report        func(id, t int, eps float64) fo.Report
	NumericReport func(id, t int, eps float64) float64
}

// Client hosts a contiguous range of users against an aggregator's HTTP
// ingestion endpoint: it long-polls /v1/round and answers each round with
// batched /v1/report posts, perturbing locally. Serve loops until Close or
// until the aggregator goes away.
type Client struct {
	// PollWait is the long-poll parking time requested per /v1/round call.
	// Zero selects 10s.
	PollWait time.Duration
	// ChunkSize caps the reports per POST; larger rounds are split into
	// several posts. Zero selects DefaultMaxBatch.
	ChunkSize int
	// Retry schedules the delays between retries of transient failures
	// (transport errors, 502/503/504). Nil selects a default Backoff
	// seeded from the client's first user id, so two clients never share
	// a jitter stream.
	Retry *Backoff
	// MaxRetries bounds consecutive transient failures before Serve gives
	// up. Zero selects DefaultMaxRetries; negative disables retrying.
	MaxRetries int
	// Wire selects the report-batch encoding posted to /v1/report:
	// WireJSON (the default) or WireBinary. Negotiation is per batch — a
	// server that does not speak the advertised encoding answers 415, and
	// the client re-posts the same batch as JSON and stays on JSON from
	// then on, so a mixed fleet degrades instead of stalling.
	Wire Wire
	// Tracer, when non-nil, records a span per report post, parented
	// under the round span the announcement's Trace names. With a nil
	// Tracer the announced context is still echoed on the trace header,
	// so an untraced client does not break the aggregator's trace.
	Tracer *obs.Tracer

	jsonOnly bool // a 415 turned the binary wire down for good

	base   string
	first  int
	count  int
	fns    Funcs
	hc     *http.Client
	stop   chan struct{}
	cancel context.CancelFunc
	once   sync.Once
}

// NewClient returns a client for users [first, first+count) against the
// aggregator at base (e.g. "http://127.0.0.1:8080").
func NewClient(base string, first, count int, fns Funcs) (*Client, error) {
	if fns.Report == nil && fns.NumericReport == nil {
		return nil, errors.New("serve: client needs at least one report function")
	}
	if first < 0 || count < 1 {
		return nil, fmt.Errorf("serve: client needs a non-negative first id and positive count, got [%d,%d)", first, first+count)
	}
	if _, err := url.Parse(base); err != nil {
		return nil, fmt.Errorf("serve: bad base URL: %w", err)
	}
	return &Client{
		base:  base,
		first: first,
		count: count,
		fns:   fns,
		hc:    &http.Client{},
		stop:  make(chan struct{}),
	}, nil
}

// Close stops the serve loop, cancelling any in-flight long poll.
func (c *Client) Close() {
	c.once.Do(func() { close(c.stop) })
}

// stopped reports whether Close was called.
func (c *Client) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

// retry reports the client's retry budget and schedule, applying the
// defaults.
func (c *Client) retry() (*Backoff, int) {
	if c.Retry == nil {
		// Seed from the hosted range: deterministic per client, distinct
		// across the clients of one process.
		c.Retry = NewBackoff(0, 0, 0x6c647069647331^uint64(c.first)*0x9e3779b97f4a7c15)
	}
	max := c.MaxRetries
	if max == 0 {
		max = DefaultMaxRetries
	}
	return c.Retry, max
}

// sleep pauses for d, returning false when Close interrupted the pause.
func (c *Client) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.stop:
		return false
	}
}

// retryable reports whether a poll/post outcome is transient: transport
// errors and upstream-unavailable statuses. 503 is transient because a
// cluster replica restarting between rounds answers it briefly — a device
// client must ride that out, since its perturbation state cannot be
// rebuilt elsewhere. A permanently closed aggregator stops answering
// entirely, which exhausts the retry budget.
func retryable(status int, err error) bool {
	if err != nil {
		return true
	}
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	default:
		return false
	}
}

// ctx returns a request context cancelled by Close, with the given
// timeout.
func (c *Client) ctx(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	go func() {
		select {
		case <-c.stop:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}

// Serve long-polls for rounds and answers them until Close is called
// (returns nil), the aggregator stays unavailable past the retry budget
// (returns nil after sustained 503s — it is shutting down — and the last
// transport error otherwise), or a request fails non-transiently (returns
// that error). Transient failures — transport errors, 502/503/504 — are
// retried with capped jittered exponential backoff (Retry/MaxRetries), so
// a flaky network or a replica restarting between rounds does not strand
// the client's irreplaceable device state.
func (c *Client) Serve() error {
	var after int64
	bo, maxRetries := c.retry()
	retries := 0
	for {
		if c.stopped() {
			return nil
		}
		ri, status, err := c.poll(after)
		if retryable(status, err) {
			if c.stopped() {
				return nil
			}
			retries++
			if retries > maxRetries {
				if err != nil {
					return fmt.Errorf("serve: polling for rounds: giving up after %d retries: %w", retries-1, err)
				}
				return nil // sustained 503: the aggregator is shutting down
			}
			if !c.sleep(bo.Next()) {
				return nil
			}
			continue
		}
		retries = 0
		bo.Reset()
		switch status {
		case http.StatusOK:
		case http.StatusNoContent:
			continue // long poll expired with no new round
		default:
			return fmt.Errorf("serve: /v1/round returned status %d", status)
		}
		after = ri.Round
		if err := c.answer(ri); err != nil {
			if c.stopped() {
				return nil
			}
			return err
		}
	}
}

// poll issues one long-poll for a round with id > after.
func (c *Client) poll(after int64) (*RoundInfo, int, error) {
	wait := c.PollWait
	if wait == 0 {
		wait = 10 * time.Second
	}
	ctx, cancel := c.ctx(wait + 15*time.Second)
	defer cancel()
	u := fmt.Sprintf("%s/v1/round?after=%d&wait=%s", c.base, after, wait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode, nil
	}
	var ri RoundInfo
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		return nil, 0, fmt.Errorf("decoding round announcement: %w", err)
	}
	return &ri, resp.StatusCode, nil
}

// myUsers returns the announced round's users hosted by this client, in
// announcement order and with multiplicity (a user listed twice owes two
// reports). Announcement order is the same for every client, so each
// user's per-round randomness consumption is deterministic.
func (c *Client) myUsers(ri *RoundInfo) []int {
	if ri.Users == nil {
		users := make([]int, c.count)
		for i := range users {
			users[i] = c.first + i
		}
		return users
	}
	var users []int
	for _, u := range ri.Users {
		if u >= c.first && u < c.first+c.count {
			users = append(users, u)
		}
	}
	return users
}

// answer perturbs and posts this client's share of a round, chunked into
// batches. A 409 means the round closed before the post landed (timed out
// or completed via other clients' reports) — the client just moves on.
func (c *Client) answer(ri *RoundInfo) error {
	users := c.myUsers(ri)
	if len(users) == 0 {
		return nil
	}
	if ri.Numeric && c.fns.NumericReport == nil || !ri.Numeric && c.fns.Report == nil {
		return nil // cannot answer this round kind; the deadline prunes us
	}
	chunk := c.ChunkSize
	if chunk <= 0 {
		chunk = DefaultMaxBatch
	}
	roundCtx, _ := obs.ParseSpanContext(ri.Trace)
	for len(users) > 0 {
		n := min(chunk, len(users))
		sp := c.Tracer.Start("post", roundCtx, ri.Round)
		// End is idempotent: the happy path ends the span with its status
		// below, and this deferred end catches every abort path (Close
		// mid-retry, retry budget exhausted) so no span leaks unended.
		defer sp.End(map[string]any{"reports": n, "aborted": true})
		trace := sp.ContextOr(roundCtx).String()
		batch := reportBatch{Round: ri.Round, Token: ri.Token, Reports: make([]wireReport, 0, n)}
		for _, u := range users[:n] {
			var contribution collect.Contribution
			if ri.Numeric {
				contribution = collect.Contribution{Numeric: true, Value: c.fns.NumericReport(u, ri.T, ri.Eps)}
			} else {
				contribution = collect.Contribution{Report: c.fns.Report(u, ri.T, ri.Eps)}
			}
			batch.Reports = append(batch.Reports, encodeContribution(u, contribution))
		}
		users = users[n:]
		// Transport errors are retried: a lost response cannot double-fold
		// (the server's per-user take slots refuse the duplicate with 409,
		// which the client treats as "round closed"), and a replica
		// restarting under the post comes back within the backoff budget.
		bo, maxRetries := c.retry()
		status, err := c.post(batch, trace)
		for retries := 0; err != nil; status, err = c.post(batch, trace) {
			if c.stopped() {
				return nil
			}
			retries++
			if retries > maxRetries {
				return fmt.Errorf("serve: posting reports: giving up after %d retries: %w", retries-1, err)
			}
			if !c.sleep(bo.Next()) {
				return nil
			}
		}
		bo.Reset()
		sp.End(map[string]any{"reports": len(batch.Reports), "status": status})
		switch status {
		case http.StatusOK:
		case http.StatusConflict:
			return nil // round already closed; nothing more to do for it
		case http.StatusServiceUnavailable:
			return nil
		default:
			return fmt.Errorf("serve: /v1/report returned status %d", status)
		}
	}
	return nil
}

// post sends one report batch over the selected wire, negotiating per
// batch: a 415 on the binary wire falls back to JSON immediately (the
// same batch is re-posted; nothing of it folded) and permanently.
func (c *Client) post(batch reportBatch, trace string) (int, error) {
	if c.Wire == WireBinary && !c.jsonOnly {
		status, err := c.postAs(batch, ContentTypeBinary, trace)
		if err != nil || status != http.StatusUnsupportedMediaType {
			return status, err
		}
		c.jsonOnly = true
	}
	return c.postAs(batch, ContentTypeJSON, trace)
}

// postAs sends one report batch under the given content type.
func (c *Client) postAs(batch reportBatch, contentType, trace string) (int, error) {
	var (
		body []byte
		err  error
	)
	if contentType == ContentTypeBinary {
		body, err = encodeBinary(batch)
	} else {
		body, err = json.Marshal(batch)
	}
	if err != nil {
		return 0, err
	}
	ctx, cancel := c.ctx(30 * time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/report", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", contentType)
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
