package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHealthzLifecycle: the probe answers 503 until the first round is
// announced and 200 after — the gate orchestrators poll before pointing
// traffic (or a smoke test's clients) at a gateway process.
func TestHealthzLifecycle(t *testing.T) {
	h := &Health{}
	get := func() (int, string) {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
		var body struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("healthz body is not JSON: %v (%q)", err, rec.Body.String())
		}
		if body.Status == "" {
			t.Fatalf("healthz body carries no status: %q", rec.Body.String())
		}
		return rec.Code, body.Status
	}

	if code, status := get(); code != http.StatusServiceUnavailable || status != "starting" {
		t.Fatalf("before MarkReady: got %d %q, want 503 starting", code, status)
	}
	h.MarkReady()
	if code, status := get(); code != http.StatusOK || status != "ok" {
		t.Fatalf("after MarkReady: got %d %q, want 200 ok", code, status)
	}
	h.MarkReady() // idempotent
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("second MarkReady regressed the probe to %d", code)
	}
}

// TestHealthzMethodNotAllowed: the probe is GET-only.
func TestHealthzMethodNotAllowed(t *testing.T) {
	h := &Health{}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/healthz answered %d, want 405", rec.Code)
	}
}

// TestHealthzNilSafe: a nil probe never panics and never reports ready,
// mirroring the Metrics nil-safety convention.
func TestHealthzNilSafe(t *testing.T) {
	var h *Health
	h.MarkReady()
	if h.Ready() {
		t.Fatal("nil Health reports ready")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil Health answered %d, want 503", rec.Code)
	}
}

// TestBackendMarksHealthReady: announcing the first round flips the
// backend's probe, and the backend routes /v1/healthz itself.
func TestBackendMarksHealthReady(t *testing.T) {
	b, err := NewBackend(1)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Health = &Health{}
	ts := httptest.NewServer(b)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before any round: %d, want 503", resp.StatusCode)
	}
	if b.Health.Ready() {
		t.Fatal("backend ready before announcing a round")
	}
}
