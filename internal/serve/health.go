package serve

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Health is the gateway's readiness probe, served at GET /v1/healthz: 503
// with {"status":"starting"} until the process has announced its first
// collection round, 200 with {"status":"ok"} from then on. Orchestrators
// and the cluster smoke test gate on it instead of sleeping and hoping —
// a replica is only ready once it has joined its coordinator and seen a
// round, a coordinator once its shards partitioned the population and the
// first round went out.
//
// All methods are nil-safe, mirroring Metrics: a nil *Health never
// reports ready but never panics, so wiring it up is optional.
type Health struct {
	ready atomic.Bool
}

// MarkReady flips the probe to 200. It is idempotent and safe for
// concurrent use.
func (h *Health) MarkReady() {
	if h == nil {
		return
	}
	h.ready.Store(true)
}

// Ready reports whether MarkReady has been called.
func (h *Health) Ready() bool {
	return h != nil && h.ready.Load()
}

// ServeHTTP implements http.Handler for GET /v1/healthz.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "serve: %s /v1/healthz", r.Method)
		return
	}
	status := struct {
		Status string `json:"status"`
	}{Status: "ok"}
	if !h.Ready() {
		status.Status = "starting"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(status)
		return
	}
	writeJSON(w, status)
}
