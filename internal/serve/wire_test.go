package serve

import (
	"reflect"
	"strings"
	"testing"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
)

// TestWireRoundTripAllKinds is the regression test for the kindswitch
// finding in encodeContribution: the encode switch used to enumerate only
// the unary kinds, so a future kind with an auxiliary payload would have
// been dropped silently. Every registered kind must round-trip through the
// wire format bit-identically.
func TestWireRoundTripAllKinds(t *testing.T) {
	reports := []fo.Report{
		{Kind: fo.KindValue, Value: 3},
		{Kind: fo.KindUnary, Value: -1, Bits: []byte{1, 0, 0, 1, 0, 1, 1, 0}},
		{Kind: fo.KindPacked, Value: -1, Packed: []uint64{0xdeadbeef, 0x1}},
		{Kind: fo.KindHash, Value: 2, Seed: 0x9e3779b97f4a7c15},
		// Seed 0 is meaningful for both hash and cohort kinds: the kind
		// field, not a zero-seed heuristic, must drive decoding.
		{Kind: fo.KindHash, Value: 1, Seed: 0},
		{Kind: fo.KindCohort, Value: 1, Seed: 17},
		{Kind: fo.KindCohort, Value: 0, Seed: 0},
	}
	for _, r := range reports {
		w := encodeContribution(42, collect.Contribution{Report: r})
		if w.User != 42 || w.Kind != r.Kind.String() {
			t.Fatalf("%s: encoded envelope user=%d kind=%q", r.Kind, w.User, w.Kind)
		}
		c, err := w.decode(false)
		if err != nil {
			t.Fatalf("%s: decode: %v", r.Kind, err)
		}
		if !reflect.DeepEqual(c.Report, r) {
			t.Fatalf("%s: round trip changed the report: got %+v, want %+v", r.Kind, c.Report, r)
		}
	}
}

// TestWireEncodeUnknownKindPanics pins the failure mode for a kind the
// encoder does not know: a loud panic at the encode site, never a silently
// truncated report on the wire.
func TestWireEncodeUnknownKindPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("encoding an unknown kind did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "cannot encode report kind") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	encodeContribution(0, collect.Contribution{Report: fo.Report{Kind: fo.Kind(99)}})
}

// TestWireNumericRoundTrip covers the numeric envelope next to the
// categorical kinds.
func TestWireNumericRoundTrip(t *testing.T) {
	w := encodeContribution(7, collect.Contribution{Numeric: true, Value: -0.25})
	if w.Kind != "numeric" {
		t.Fatalf("numeric envelope kind %q", w.Kind)
	}
	c, err := w.decode(true)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Numeric || c.Value != -0.25 {
		t.Fatalf("numeric round trip got %+v", c)
	}
}
