package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
)

// cluster is an HTTP backend plus the client loops hosting its population.
type cluster struct {
	backend *Backend
	ts      *httptest.Server
	clients []*Client
	wg      sync.WaitGroup
}

// startCluster launches a backend for n users behind an httptest server,
// hosted by clients of the given sizes (sizes summing to n; nil means one
// client per user).
func startCluster(t *testing.T, n int, fns Funcs, sizes []int) *cluster {
	t.Helper()
	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 10 * time.Second
	c := &cluster{backend: backend, ts: httptest.NewServer(backend)}
	if sizes == nil {
		for i := 0; i < n; i++ {
			sizes = append(sizes, 1)
		}
	}
	first := 0
	for _, size := range sizes {
		cl, err := NewClient(c.ts.URL, first, size, fns)
		if err != nil {
			t.Fatal(err)
		}
		cl.PollWait = 2 * time.Second
		first += size
		c.clients = append(c.clients, cl)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := cl.Serve(); err != nil {
				t.Errorf("client serve loop: %v", err)
			}
		}()
	}
	if first != n {
		t.Fatalf("client sizes sum to %d, want %d", first, n)
	}
	return c
}

func (c *cluster) stop() {
	c.backend.Close()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.wg.Wait()
	c.ts.Close()
}

func conformanceSpecs() map[string]struct {
	spec  collecttest.Spec
	sizes []int
} {
	return map[string]struct {
		spec  collecttest.Spec
		sizes []int
	}{
		"GRR-batched":        {collecttest.Spec{N: 24, Oracle: fo.NewGRR(5), BaseSeed: 500, Numeric: true}, []int{1, 7, 16}},
		"OUE-packed-batched": {collecttest.Spec{N: 18, Oracle: fo.NewOUEPacked(100), BaseSeed: 600}, []int{9, 9}},
		"SUE-batched":        {collecttest.Spec{N: 12, Oracle: fo.NewSUE(9), BaseSeed: 650}, []int{12}},
		"OLH-single":         {collecttest.Spec{N: 6, Oracle: fo.NewOLH(8), BaseSeed: 700}, nil},
		"OLH-C-batched":      {collecttest.Spec{N: 20, Oracle: fo.NewOLHC(16), BaseSeed: 800}, []int{5, 15}},
	}
}

// TestConformanceHTTP is the acceptance bar: the HTTP backend produces
// bit-identical estimates to the in-process reference, across single-user
// and batched clients, for every report wire shape.
func TestConformanceHTTP(t *testing.T) {
	for name, tc := range conformanceSpecs() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			collecttest.Run(t, tc.spec, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := tc.spec.Reporters()
				c := startCluster(t, tc.spec.N, Funcs{Report: report, NumericReport: numeric}, tc.sizes)
				return c.backend, c.stop
			})
		})
	}
}

// TestConformanceHTTPStriped drives the HTTP backend with stripe-folding
// round aggregators: handler goroutines fold shard-locally and the
// estimates stay bit-identical.
func TestConformanceHTTPStriped(t *testing.T) {
	for name, tc := range conformanceSpecs() {
		tc := tc
		t.Run(name, func(t *testing.T) {
			collecttest.RunStriped(t, tc.spec, 4, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := tc.spec.Reporters()
				c := startCluster(t, tc.spec.N, Funcs{Report: report, NumericReport: numeric}, tc.sizes)
				return c.backend, c.stop
			})
		})
	}
}

// manualRound opens a round on a bare backend (no clients) and returns its
// announcement, so failure-path tests can post raw batches against it.
func manualRound(t *testing.T, backend *Backend, ts *httptest.Server, req collect.Request, sink collect.Sink) (*RoundInfo, chan error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- backend.Collect(req, sink) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/round?wait=100ms")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var ri RoundInfo
			if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			return &ri, done
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("round was never announced")
		}
	}
}

// postJSON posts a raw body to /v1/report and returns the status and the
// decoded error message (empty on 200).
func postJSON(t *testing.T, ts *httptest.Server, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, ""
	}
	var we wireError
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil {
		t.Fatalf("non-JSON error body (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, we.Error
}

// encodeBatch marshals a batch of GRR reports for the given users.
func encodeBatch(t *testing.T, ri *RoundInfo, users []int, value int) []byte {
	t.Helper()
	batch := reportBatch{Round: ri.Round, Token: ri.Token}
	for _, u := range users {
		batch.Reports = append(batch.Reports, encodeContribution(u, collect.Contribution{
			Report: fo.Report{Kind: fo.KindValue, Value: value},
		}))
	}
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestMalformedBody(t *testing.T) {
	backend, err := NewBackend(3)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 5 * time.Second
	ts := httptest.NewServer(backend)
	defer ts.Close()
	defer backend.Close()

	sink := &collect.SliceSink{}
	ri, done := manualRound(t, backend, ts, collect.Request{T: 1, Eps: 1}, sink)

	// Garbage JSON is a 400, and the round survives it.
	if status, msg := postJSON(t, ts, []byte("{not json")); status != http.StatusBadRequest || !strings.Contains(msg, "malformed") {
		t.Fatalf("malformed body: status %d, msg %q", status, msg)
	}
	// An unknown report kind is a 422.
	bad := fmt.Sprintf(`{"round":%d,"token":%q,"reports":[{"user":0,"kind":"wat"}]}`, ri.Round, ri.Token)
	if status, msg := postJSON(t, ts, []byte(bad)); status != http.StatusUnprocessableEntity || !strings.Contains(msg, "unknown report kind") {
		t.Fatalf("unknown kind: status %d, msg %q", status, msg)
	}
	// A numeric report in a frequency round is a 422.
	num := fmt.Sprintf(`{"round":%d,"token":%q,"reports":[{"user":0,"kind":"numeric","num":1}]}`, ri.Round, ri.Token)
	if status, msg := postJSON(t, ts, []byte(num)); status != http.StatusUnprocessableEntity || !strings.Contains(msg, "numeric report") {
		t.Fatalf("numeric-in-frequency: status %d, msg %q", status, msg)
	}
	// Valid reports still complete the round.
	if status, msg := postJSON(t, ts, encodeBatch(t, ri, []int{0, 1, 2}, 1)); status != http.StatusOK {
		t.Fatalf("valid batch after malformed ones: status %d, msg %q", status, msg)
	}
	if err := <-done; err != nil {
		t.Fatalf("round failed: %v", err)
	}
	if len(sink.Reports) != 3 {
		t.Fatalf("folded %d reports, want 3", len(sink.Reports))
	}
}

func TestOversizedBatch(t *testing.T) {
	backend, err := NewBackend(8)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 5 * time.Second
	backend.MaxBatch = 3
	ts := httptest.NewServer(backend)
	defer ts.Close()
	defer backend.Close()

	sink := &collect.SliceSink{}
	ri, done := manualRound(t, backend, ts, collect.Request{T: 1, Eps: 1}, sink)

	// 8 reports in one post exceed MaxBatch=3.
	if status, msg := postJSON(t, ts, encodeBatch(t, ri, []int{0, 1, 2, 3, 4, 5, 6, 7}, 0)); status != http.StatusRequestEntityTooLarge || !strings.Contains(msg, "exceeds the maximum") {
		t.Fatalf("oversized batch: status %d, msg %q", status, msg)
	}
	// Bodies beyond MaxBody are refused too.
	backend.MaxBody = 64
	if status, _ := postJSON(t, ts, encodeBatch(t, ri, []int{0, 1, 2}, 0)); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d", status)
	}
	backend.MaxBody = 0
	// Chunked within the cap, the round completes.
	for _, chunk := range [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7}} {
		if status, msg := postJSON(t, ts, encodeBatch(t, ri, chunk, 0)); status != http.StatusOK {
			t.Fatalf("chunk %v: status %d, msg %q", chunk, status, msg)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("round failed: %v", err)
	}
}

func TestStaleRoundToken(t *testing.T) {
	backend, err := NewBackend(2)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 5 * time.Second
	ts := httptest.NewServer(backend)
	defer ts.Close()
	defer backend.Close()

	// Round 1 completes normally.
	ri1, done := manualRound(t, backend, ts, collect.Request{T: 1, Eps: 1}, &collect.SliceSink{})
	if status, _ := postJSON(t, ts, encodeBatch(t, ri1, []int{0, 1}, 0)); status != http.StatusOK {
		t.Fatalf("round 1 batch: status %d", status)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Replaying round 1's token with no round open is refused.
	if status, msg := postJSON(t, ts, encodeBatch(t, ri1, []int{0}, 0)); status != http.StatusConflict || !strings.Contains(msg, "stale round token") {
		t.Fatalf("replay with no open round: status %d, msg %q", status, msg)
	}

	// Round 2 opens: round 1's token still cannot buy its way in, and a
	// fabricated token for round 2 is refused as well.
	sink := &collect.SliceSink{}
	ri2, done2 := manualRound(t, backend, ts, collect.Request{T: 2, Eps: 1}, sink)
	if ri2.Token == ri1.Token {
		t.Fatal("round tokens repeat")
	}
	if status, msg := postJSON(t, ts, encodeBatch(t, ri1, []int{0}, 0)); status != http.StatusConflict || !strings.Contains(msg, "stale round token") {
		t.Fatalf("replay into round 2: status %d, msg %q", status, msg)
	}
	forged := *ri2
	forged.Token = "deadbeef"
	if status, _ := postJSON(t, ts, encodeBatch(t, &forged, []int{0}, 0)); status != http.StatusConflict {
		t.Fatalf("forged token: status %d", status)
	}
	// A duplicate report for an already-reported user is refused.
	if status, _ := postJSON(t, ts, encodeBatch(t, ri2, []int{0}, 0)); status != http.StatusOK {
		t.Fatal("first report for user 0 refused")
	}
	if status, msg := postJSON(t, ts, encodeBatch(t, ri2, []int{0}, 0)); status != http.StatusConflict || !strings.Contains(msg, "not awaited") {
		t.Fatalf("duplicate report: status %d, msg %q", status, msg)
	}
	if status, _ := postJSON(t, ts, encodeBatch(t, ri2, []int{1}, 0)); status != http.StatusOK {
		t.Fatal("report for user 1 refused")
	}
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
	if len(sink.Reports) != 2 {
		t.Fatalf("round 2 folded %d reports, want 2", len(sink.Reports))
	}
}

func TestTimeoutPrunesSilentClients(t *testing.T) {
	backend, err := NewBackend(3)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 300 * time.Millisecond
	ts := httptest.NewServer(backend)
	defer ts.Close()
	defer backend.Close()

	// A "client" that long-polls the round but never reports: the round
	// must fail at the deadline naming the stragglers, not hang.
	ri, done := manualRound(t, backend, ts, collect.Request{T: 1, Eps: 1}, &collect.SliceSink{})
	if status, _ := postJSON(t, ts, encodeBatch(t, ri, []int{1}, 0)); status != http.StatusOK {
		t.Fatal("report for user 1 refused")
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "timed out") || !strings.Contains(err.Error(), "2/3") {
			t.Fatalf("timed-out round error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round with silent users hung past the deadline")
	}
	// Late reports into the pruned round are refused as stale.
	if status, msg := postJSON(t, ts, encodeBatch(t, ri, []int{0}, 0)); status != http.StatusConflict || !strings.Contains(msg, "stale round token") {
		t.Fatalf("late report after prune: status %d, msg %q", status, msg)
	}
}

func TestShutdownMidRoundDrains(t *testing.T) {
	backend, err := NewBackend(4)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 30 * time.Second
	ts := httptest.NewServer(backend)
	defer ts.Close()

	ri, done := manualRound(t, backend, ts, collect.Request{T: 1, Eps: 1}, &collect.SliceSink{})
	if status, _ := postJSON(t, ts, encodeBatch(t, ri, []int{2}, 0)); status != http.StatusOK {
		t.Fatal("report refused before shutdown")
	}

	// A long poll parked for the *next* round must come back when the
	// backend closes, not hang.
	pollDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/round?after=%d&wait=20s", ri.Round))
		if err != nil {
			pollDone <- -1
			return
		}
		resp.Body.Close()
		pollDone <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park

	backend.Close()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "closed mid-round") {
			t.Fatalf("mid-round shutdown error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collect hung across Close")
	}
	select {
	case status := <-pollDone:
		if status != http.StatusServiceUnavailable {
			t.Fatalf("parked poll status = %d, want 503", status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked long poll hung across Close")
	}
	// Everything is refused cleanly after Close.
	if status, _ := postJSON(t, ts, encodeBatch(t, ri, []int{0}, 0)); status != http.StatusServiceUnavailable {
		t.Fatalf("report after close: status %d", status)
	}
	if err := backend.Collect(collect.Request{T: 2, Eps: 1}, &collect.SliceSink{}); err == nil {
		t.Fatal("Collect after Close succeeded")
	}
	// ts.Close (deferred) proves the handler pool drained.
}

func TestRoundLongPollNoRound(t *testing.T) {
	backend, err := NewBackend(2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(backend)
	defer ts.Close()
	defer backend.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/round?wait=150ms")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("idle poll status = %d, want 204", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("idle poll returned after %v, want ~150ms park", elapsed)
	}
	// Bad parameters are 400s.
	for _, q := range []string{"?after=x", "?wait=x", "?wait=-1s"} {
		resp, err := http.Get(ts.URL + "/v1/round" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /v1/round%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestBackendValidation(t *testing.T) {
	if _, err := NewBackend(0); err == nil {
		t.Fatal("zero population accepted")
	}
	backend, err := NewBackend(2)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	if err := backend.Collect(collect.Request{T: 1, Eps: 0}, &collect.SliceSink{}); err == nil {
		t.Fatal("zero eps accepted")
	}
	if err := backend.Collect(collect.Request{T: 1, Users: []int{5}, Eps: 1}, &collect.SliceSink{}); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if _, err := NewClient("http://x", 0, 1, Funcs{}); err == nil {
		t.Fatal("client without report functions accepted")
	}
	if _, err := NewClient("http://x", 0, 0, Funcs{Report: func(int, int, float64) fo.Report { return fo.Report{} }}); err == nil {
		t.Fatal("non-positive user count accepted")
	}
}
