// Package serve runs LDP-IDS as a persistent HTTP service: an ingestion
// backend (Backend) that implements collect.Collector over plain HTTP, a
// live query layer (Snapshots) serving the current release and a
// Server-Sent-Events stream of every release, and Prometheus-style
// counters (Metrics). cmd/ldpids-gateway wires the three into one
// long-running aggregator process.
//
// The protocol is poll-and-post. Clients long-poll GET /v1/round for the
// next collection round; the announcement carries the timestamp, budget,
// requested users, and a fresh per-round token. They answer with batched
// POST /v1/report bodies — JSON envelopes whose unary payloads stay
// bit-packed (base64 of the packed words) — which the handlers decode and
// fold concurrently into shard-local aggregator stripes
// (fo.StripedAggregator via collect.StripedSink), so ingestion scales with
// cores instead of serializing through one Absorb loop. A round that has
// not heard from every requested user within Backend.Timeout fails,
// pruning slow or dead clients; reports carrying a completed or timed-out
// round's token are refused (409), so a captured batch cannot be replayed
// into a later round.
//
// The batch encoding is negotiated per POST via Content-Type. Next to the
// JSON default, application/x-ldpids-batch (ContentTypeBinary) carries the
// same batches as a flat little-endian frame whose packed payloads are raw
// words — no base64, no per-report JSON — which the server decodes into
// pooled scratch buffers with zero steady-state allocations; see binary.go
// for the frame layout. Unknown content types are refused with 415 and
// journaled without touching any counter, and Client falls back to JSON
// for the rest of the run after one 415. Both encodings decode to the same
// canonical batch before validation, folding, and journaling, so the wire
// choice cannot influence a released bit.
//
// Queries never block ingestion: mechanisms publish each release into the
// versioned Snapshots store as the round closes (mechanism.Hooked), and
// GET /v1/estimate / GET /v1/stream read from that store only.
//
// Like every backend, serve passes the collect/collecttest conformance
// suite: identical seeds produce bit-identical released histograms over
// HTTP, the in-process Sim, the Channel backend, and TCP.
package serve

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/history"
	"ldpids/internal/obs"
)

// Defaults for Backend knobs.
const (
	// DefaultTimeout bounds one collection round: requested users that
	// have not reported within it are pruned (the round fails).
	DefaultTimeout = 30 * time.Second
	// DefaultMaxBatch caps the reports accepted in one POST /v1/report.
	DefaultMaxBatch = 4096
	// DefaultMaxBody caps the byte size of one request body.
	DefaultMaxBody = 64 << 20
	// DefaultPollWait is the long-poll parking time of GET /v1/round when
	// the request names none.
	DefaultPollWait = 25 * time.Second
	// maxPollWait caps client-requested long-poll parking.
	maxPollWait = 60 * time.Second
)

// Backend is the HTTP ingestion backend: it implements collect.Collector
// by announcing each collection round to long-polling HTTP clients and
// folding their posted report batches into the round's sink as they
// arrive. Handlers decode and fold concurrently — shard-locally when the
// sink stripes — so ingestion scales with cores.
//
// Mount it on a mux at /v1/round and /v1/report (it routes by path), or
// use it directly as the root handler. Collect must be called serially,
// like every Collector; Close fails the in-flight round and refuses
// further work.
type Backend struct {
	// Timeout bounds each collection round. Zero selects DefaultTimeout.
	Timeout time.Duration
	// MaxBatch caps reports per POST. Zero selects DefaultMaxBatch.
	MaxBatch int
	// MaxBody caps request body bytes. Zero selects DefaultMaxBody.
	MaxBody int64
	// Metrics, when non-nil, counts folded reports, ingested bytes, and
	// round latencies.
	Metrics *Metrics
	// Health, when non-nil, is marked ready when the first round is
	// announced; ServeHTTP also routes GET /v1/healthz to it.
	Health *Health
	// History, when non-nil, receives the structured ingest log: one
	// record per round announcement, accepted or refused report batch,
	// and round close, replayable offline by cmd/ldpids-check. Nil (the
	// default) logs nothing.
	History *history.Log
	// Tracer, when non-nil, records a span per collection round and per
	// accepted report batch to the trace log. Tracing is observe-only:
	// span contexts ride headers and announcements but never touch round
	// state, randomness, or payload bytes.
	Tracer *obs.Tracer
	// Wire declares which report-batch encoding this deployment's clients
	// post (the server itself accepts both on every POST, negotiating per
	// batch by Content-Type): it selects the per-report framing constant
	// FrameOverhead bills, so communication totals stay comparable across
	// JSON and binary runs. Empty selects WireJSON.
	Wire Wire

	n int

	mu       sync.Mutex
	round    *round
	nextID   int64
	pinToken string          // next round's token when pinned via SetNextRound
	pinTrace obs.SpanContext // next round's parent span, pinned via SetNextTrace
	announce chan struct{}   // closed and replaced when a round opens
	closed   bool
	done     chan struct{}

	// tokens overrides round-token generation (benchmarks); nil means
	// crypto/rand.
	tokens func() string
}

// NewBackend returns an ingestion backend for a population of n users.
func NewBackend(n int) (*Backend, error) {
	if n < 1 {
		return nil, fmt.Errorf("serve: population must be positive, got %d", n)
	}
	return &Backend{
		n:        n,
		announce: make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// N implements collect.Collector.
func (b *Backend) N() int { return b.n }

// PreferredStripes implements collect.Striper: one stripe per CPU, since
// report batches decode and fold on concurrent handler goroutines.
func (b *Backend) PreferredStripes() int { return runtime.GOMAXPROCS(0) }

// binaryFrameOverhead approximates the envelope bytes the binary batch
// framing adds per report: user id (4), kind tag (1), and length or value
// field (4), with the per-batch header amortizing to ~0 across a batch —
// the binary sibling of internal/transport's gob constant.
const binaryFrameOverhead = 9

// FrameOverhead implements collect.Framed, billing the declared Wire's
// per-report framing: the JSON envelope — keys, punctuation, user id,
// token share, plus the 4/3 base64 inflation of binary payloads — or the
// binary framing's flat envelope bytes.
func (b *Backend) FrameOverhead(payload int) int {
	if b.Wire == WireBinary {
		return binaryFrameOverhead
	}
	return payload/3 + 48
}

// round is one in-flight collection round.
type round struct {
	id      int64
	token   string
	t       int
	eps     float64
	numeric bool
	users   []int // as announced; nil means all

	sink    collect.Sink
	striped collect.StripedSink // non-nil when folding shard-locally
	stripes int
	foldMu  sync.Mutex // serializes Absorb on non-striped sinks

	span  *obs.Span       // the round's trace span; nil when tracing is off
	trace obs.SpanContext // announced to clients so batch spans join the trace

	mu        sync.Mutex
	total     int         // requested report count (with multiplicity)
	pending   map[int]int // outstanding report count per requested user
	remaining int         // reports still to fold
	done      bool
	err       error
	complete  chan struct{}
	folders   sync.WaitGroup // in-flight handler folds
}

// newRound builds the round bookkeeping for a validated request.
func newRound(id int64, token string, req collect.Request, n int, sink collect.Sink) *round {
	rd := &round{
		id:       id,
		token:    token,
		t:        req.T,
		eps:      req.Eps,
		numeric:  req.Numeric,
		users:    req.Users,
		sink:     sink,
		complete: make(chan struct{}),
	}
	if ss, ok := sink.(collect.StripedSink); ok && !req.Numeric {
		if k := ss.Stripes(); k > 1 {
			rd.striped, rd.stripes = ss, k
		}
	}
	// A user listed several times owes that many reports, matching the
	// reference backend's request-order semantics.
	if req.Users == nil {
		rd.pending = make(map[int]int, n)
		for u := 0; u < n; u++ {
			rd.pending[u] = 1
		}
		rd.total = n
	} else {
		rd.pending = make(map[int]int, len(req.Users))
		for _, u := range req.Users {
			rd.pending[u]++
		}
		rd.total = len(req.Users)
	}
	rd.remaining = rd.total
	return rd
}

// finish closes the round exactly once with the given error (nil for a
// complete round). Later reports are refused as stale.
func (r *round) finish(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.done = true
	r.err = err
	close(r.complete)
}

// beginFold admits one handler into the round's fold section; it fails on
// rounds that already finished. endFold must follow.
func (r *round) beginFold() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return errors.New("serve: round already closed")
	}
	r.folders.Add(1)
	return nil
}

func (r *round) endFold() { r.folders.Done() }

// take claims one of user u's report slots: each requested user reports
// exactly as many times as the round listed them.
func (r *round) take(u int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return errors.New("serve: round already closed")
	}
	if r.pending[u] == 0 {
		return fmt.Errorf("serve: user %d not awaited this round (not requested, or already reported)", u)
	}
	r.pending[u]--
	if r.pending[u] == 0 {
		delete(r.pending, u)
	}
	return nil
}

// folded records one successfully folded report, finishing the round when
// it was the last one.
func (r *round) folded() {
	r.mu.Lock()
	r.remaining--
	last := r.remaining == 0
	r.mu.Unlock()
	if last {
		r.finish(nil)
	}
}

// missing reports how many of the round's requested reports have not
// arrived yet.
func (r *round) missing() (missing, requested int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range r.pending {
		missing += k
	}
	return missing, r.total
}

// fold absorbs one contribution: shard-locally into stripe u%stripes when
// the sink supports it, else serialized under foldMu.
func (r *round) fold(u int, c collect.Contribution) error {
	if r.striped != nil {
		return r.striped.AbsorbStripe(u%r.stripes, c)
	}
	r.foldMu.Lock()
	defer r.foldMu.Unlock()
	return r.sink.Absorb(c)
}

// token generates a fresh round token.
func (b *Backend) token() string {
	if b.tokens != nil {
		return b.tokens()
	}
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		panic(fmt.Sprintf("serve: reading random token: %v", err))
	}
	return hex.EncodeToString(buf[:])
}

// Collect implements collect.Collector: it opens a round, announces it to
// long-polling clients, and waits until every requested user's batch has
// been folded — or the deadline prunes the stragglers, or the backend
// closes mid-round. In-flight handler folds are drained before Collect
// returns, so the caller may use the sink immediately.
func (b *Backend) Collect(req collect.Request, sink collect.Sink) error {
	if err := req.Validate(b.n); err != nil {
		return err
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return errors.New("serve: backend closed")
	}
	if b.round != nil {
		b.mu.Unlock()
		return errors.New("serve: a collection round is already in progress")
	}
	b.nextID++
	token := b.pinToken
	b.pinToken = ""
	if token == "" {
		token = b.token()
	}
	parent := b.pinTrace
	b.pinTrace = obs.SpanContext{}
	rd := newRound(b.nextID, token, req, b.n, sink)
	// The round span (and the context it announces) exists before any
	// client can see the round, so every batch span can join its trace.
	rd.span = b.Tracer.Start("round", parent, rd.id)
	rd.trace = rd.span.ContextOr(parent)
	b.round = rd
	// The round record lands before the announcement (still under b.mu,
	// which every handler crosses to see the round), so no batch record
	// can precede its round in the log.
	rec := history.Record{Kind: history.KindRound, Round: rd.id, Token: rd.token,
		T: rd.t, Eps: rd.eps, Numeric: rd.numeric}
	if rd.users == nil {
		rec.All = true
	} else {
		rec.Users = rd.users
	}
	b.History.Append(rec)
	old := b.announce
	b.announce = make(chan struct{})
	close(old) // wake long-pollers
	b.mu.Unlock()
	b.Health.MarkReady()

	start := time.Now()
	if rd.total == 0 {
		rd.finish(nil) // empty round: nothing to wait for
	}
	timeout := b.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-rd.complete:
	case <-timer.C:
		missing, requested := rd.missing()
		rd.finish(fmt.Errorf("serve: round t=%d timed out after %v: %d/%d users did not report",
			req.T, timeout, missing, requested))
	case <-b.done:
		rd.finish(errors.New("serve: backend closed mid-round"))
	}
	rd.folders.Wait() // no fold may still touch the sink after we return

	b.mu.Lock()
	b.round = nil
	b.mu.Unlock()

	rd.mu.Lock()
	err := rd.err
	rd.mu.Unlock()
	// The close record lands after folders.Wait, so every accepted-batch
	// record (appended inside its fold section) precedes it in the log.
	if b.History != nil {
		crec := history.Record{Kind: history.KindClose, Round: rd.id, T: rd.t, OK: err == nil}
		if err != nil {
			crec.Err = err.Error()
		} else if !rd.numeric {
			if f, cErr := collect.SinkCounters(sink); cErr == nil {
				crec.Counters = history.FrameOf(f)
			}
		}
		b.History.Append(crec)
	}
	b.Metrics.observeRound(time.Since(start), err == nil)
	rd.span.End(map[string]any{"t": rd.t, "ok": err == nil})
	return err
}

// SetNextRound pins the id and token the next Collect announces, instead
// of the backend's own sequence. Cluster replicas use it to announce the
// coordinator's global round ids: device clients track rounds by a
// monotonically increasing watermark, so a replica that restarts (and
// would otherwise reset to id 1) must announce ids from the sequence the
// clients already saw, and reports must authenticate against the
// coordinator-minted token for exactly that round. The id must exceed
// every id this backend announced before; the token must be non-empty.
func (b *Backend) SetNextRound(id int64, token string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.round != nil {
		return errors.New("serve: cannot pin the next round while one is in flight")
	}
	if id <= b.nextID {
		return fmt.Errorf("serve: pinned round id %d is not above the last announced id %d", id, b.nextID)
	}
	if token == "" {
		return errors.New("serve: pinned round needs a non-empty token")
	}
	b.nextID = id - 1
	b.pinToken = token
	return nil
}

// SetNextTrace pins the parent span context the next Collect's round
// span joins, letting a cluster replica parent its rounds under the
// coordinator's trace. Like SetNextRound it applies to exactly one
// round; unlike it, pinning during an in-flight round is not an error —
// the context simply applies to the round after.
func (b *Backend) SetNextTrace(parent obs.SpanContext) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pinTrace = parent
}

// Close fails any in-flight round and refuses further rounds and requests.
// Shutting down the surrounding http.Server is the caller's job.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.closed {
		b.closed = true
		close(b.done)
	}
	return nil
}

// ---------------------------------------------------------------------------
// HTTP handlers.
// ---------------------------------------------------------------------------

// ServeHTTP implements http.Handler, routing /v1/round and /v1/report.
func (b *Backend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/round":
		b.handleRound(w, r)
	case "/v1/report":
		b.handleReport(w, r)
	case "/v1/healthz":
		b.Health.ServeHTTP(w, r)
	default:
		httpError(w, http.StatusNotFound, "serve: unknown path %s", r.URL.Path)
	}
}

// httpError writes the JSON error envelope.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(wireError{Error: fmt.Sprintf(format, args...)})
}

// writeJSON writes a 200 JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// currentRound snapshots the open round, the announce channel to wait on,
// and the closed flag.
func (b *Backend) currentRound() (rd *round, announce chan struct{}, closed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.round, b.announce, b.closed
}

// handleRound serves GET /v1/round?after=ID&wait=DURATION: it returns the
// open round once one with id > after exists, parking the request up to
// wait (long poll) and answering 204 when none opened in time.
func (b *Backend) handleRound(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "serve: %s /v1/round", r.Method)
		return
	}
	var after int64
	if s := r.URL.Query().Get("after"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &after); err != nil {
			httpError(w, http.StatusBadRequest, "serve: bad after parameter %q", s)
			return
		}
	}
	wait := DefaultPollWait
	if s := r.URL.Query().Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			httpError(w, http.StatusBadRequest, "serve: bad wait parameter %q", s)
			return
		}
		wait = min(d, maxPollWait)
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		rd, announce, closed := b.currentRound()
		if closed {
			httpError(w, http.StatusServiceUnavailable, "serve: backend closed")
			return
		}
		if rd != nil && rd.id > after {
			writeJSON(w, RoundInfo{
				Round: rd.id, T: rd.t, Eps: rd.eps, Numeric: rd.numeric,
				Token: rd.token, Users: rd.users, N: b.n,
				Trace: rd.trace.String(),
			})
			return
		}
		select {
		case <-announce:
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		case <-b.done:
			httpError(w, http.StatusServiceUnavailable, "serve: backend closed")
			return
		}
	}
}

// handleReport serves POST /v1/report: negotiate the batch encoding by
// Content-Type, decode, authenticate against the open round, and fold
// every report — shard-locally when the sink stripes. Unknown content
// types are refused with 415 before the body is read; clients advertising
// the binary wire fall back to JSON on seeing it.
func (b *Backend) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "serve: %s /v1/report", r.Method)
		return
	}
	if _, _, closed := b.currentRound(); closed {
		httpError(w, http.StatusServiceUnavailable, "serve: backend closed")
		return
	}
	maxBody := b.MaxBody
	if maxBody == 0 {
		maxBody = DefaultMaxBody
	}
	switch ct := mediaType(r.Header.Get("Content-Type")); ct {
	case "", ContentTypeJSON:
		b.handleReportJSON(w, r, maxBody)
	case ContentTypeBinary:
		b.handleReportBinary(w, r, maxBody)
	default:
		if b.History != nil {
			b.History.Append(history.Record{Kind: history.KindBatch, Verdict: history.VerdictRefused,
				Reason: history.ReasonUnsupportedWire, Status: http.StatusUnsupportedMediaType})
		}
		b.Metrics.addRefusal(history.ReasonUnsupportedWire)
		httpError(w, http.StatusUnsupportedMediaType,
			"serve: unsupported report content type %q (want %s or %s)", ct, ContentTypeJSON, ContentTypeBinary)
	}
}

// handleReportJSON folds one JSON report batch, the compatible default
// encoding.
func (b *Backend) handleReportJSON(w http.ResponseWriter, r *http.Request, maxBody int64) {
	body := &countingReader{inner: http.MaxBytesReader(w, r.Body, maxBody)}
	traceParent, _ := obs.ParseSpanContext(r.Header.Get(obs.TraceHeader))
	sp := b.Tracer.Start("batch", traceParent, 0)
	var batch reportBatch
	// refuse logs the batch verdict — including the prefix of reports
	// already folded when a mid-batch failure refuses the rest — and
	// answers the error. Logging happens before the handler returns, so
	// a refusal that folded reports is journaled before the deferred
	// endFold lets the round close.
	refuse := func(status int, reason string, folded int, format string, args ...any) {
		if b.History != nil {
			rec := history.Record{Kind: history.KindBatch, Verdict: history.VerdictRefused,
				Reason: reason, Status: status, Round: batch.Round, Token: batch.Token,
				Folded: folded, Bytes: body.n}
			if folded > 0 {
				rec.Reports = historyReports(batch.Reports[:folded])
			}
			b.History.Append(rec)
		}
		b.Metrics.addRefusal(reason)
		sp.End(map[string]any{"wire": wireLabel(WireJSON), "refused": reason})
		httpError(w, status, format, args...)
	}
	decodeStart := time.Now()
	if err := json.NewDecoder(body).Decode(&batch); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			refuse(http.StatusRequestEntityTooLarge, history.ReasonBodyTooLarge, 0, "serve: request body exceeds %d bytes", maxBody)
			return
		}
		refuse(http.StatusBadRequest, history.ReasonMalformed, 0, "serve: malformed report batch: %v", err)
		return
	}
	b.Metrics.observeStage(stageDecode, WireJSON, time.Since(decodeStart))
	maxBatch := b.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}
	if len(batch.Reports) > maxBatch {
		refuse(http.StatusRequestEntityTooLarge, history.ReasonBatchTooLarge, 0, "serve: batch of %d reports exceeds the maximum of %d", len(batch.Reports), maxBatch)
		return
	}

	rd, _, _ := b.currentRound()
	if rd == nil || batch.Round != rd.id ||
		subtle.ConstantTimeCompare([]byte(batch.Token), []byte(rd.token)) != 1 {
		refuse(http.StatusConflict, history.ReasonStaleToken, 0, "serve: stale round token (round %d is not open)", batch.Round)
		return
	}
	if err := rd.beginFold(); err != nil {
		refuse(http.StatusConflict, history.ReasonRoundClosed, 0, "serve: stale round token (round %d already closed)", batch.Round)
		return
	}
	defer rd.endFold()
	sp.SetRound(rd.id)
	if !traceParent.Valid() {
		// No header (e.g. a hand-rolled client): parent the batch span
		// under the round span so the trace stays connected.
		sp.SetParent(rd.trace)
	}

	foldStart := time.Now()
	for i, wr := range batch.Reports {
		c, err := wr.decode(rd.numeric)
		if err != nil {
			refuse(http.StatusUnprocessableEntity, history.ReasonBadReport, i, "serve: user %d: %v", wr.User, err)
			return
		}
		if err := rd.take(wr.User); err != nil {
			refuse(http.StatusConflict, history.ReasonNotAwaited, i, "%v", err)
			return
		}
		if err := rd.fold(wr.User, c); err != nil {
			// The sink rejected the report (wrong shape for the oracle):
			// the round cannot complete coherently, so it fails now.
			rd.finish(fmt.Errorf("serve: user %d: %w", wr.User, err))
			refuse(http.StatusUnprocessableEntity, history.ReasonBadReport, i, "serve: user %d: %v", wr.User, err)
			return
		}
		b.Metrics.addReport()
		rd.folded()
	}
	b.Metrics.observeStage(stageFold, WireJSON, time.Since(foldStart))
	if b.History != nil {
		journalStart := time.Now()
		b.History.Append(history.Record{Kind: history.KindBatch, Verdict: history.VerdictAccepted,
			Status: http.StatusOK, Round: batch.Round, Token: batch.Token,
			Reports: historyReports(batch.Reports), Folded: len(batch.Reports), Bytes: body.n})
		b.Metrics.observeStage(stageJournal, WireJSON, time.Since(journalStart))
	}
	b.Metrics.addBytes(body.n)
	b.Metrics.observeBatch(WireJSON, len(batch.Reports), body.n)
	sp.End(map[string]any{"wire": wireLabel(WireJSON), "reports": len(batch.Reports), "bytes": body.n})
	writeJSON(w, reportAck{Accepted: len(batch.Reports)})
}

// handleReportBinary folds one binary report batch. The steady-state path
// is allocation-free: the body lands in a pooled frame buffer, the whole
// framing is validated in one structural pass (so a broken batch folds
// nothing, like a JSON batch that fails to decode), and the fold pass
// decodes packed payloads into a pooled word buffer that goes straight to
// the sink — fo's aggregators do not retain payload slices. Only history
// journaling copies reports out of the pooled buffer.
func (b *Backend) handleReportBinary(w http.ResponseWriter, r *http.Request, maxBody int64) {
	body := &countingReader{inner: http.MaxBytesReader(w, r.Body, maxBody)}
	traceParent, _ := obs.ParseSpanContext(r.Header.Get(obs.TraceHeader))
	sp := b.Tracer.Start("batch", traceParent, 0)
	decodeStart := time.Now()
	bufp := frameBufPool.Get().(*[]byte)
	data, err := readFrame(body, *bufp)
	*bufp = data[:0]
	defer frameBufPool.Put(bufp)
	var batch binaryBatch
	// refuse mirrors the JSON handler's: it journals the batch verdict —
	// including the prefix of reports already folded when a mid-batch
	// failure refuses the rest — and answers the error.
	refuse := func(status int, reason string, folded int, format string, args ...any) {
		if b.History != nil {
			rec := history.Record{Kind: history.KindBatch, Verdict: history.VerdictRefused,
				Reason: reason, Status: status, Round: batch.round, Token: string(batch.token),
				Folded: folded, Bytes: body.n}
			if folded > 0 {
				rec.Reports = binaryHistoryReports(batch.reports, folded)
			}
			b.History.Append(rec)
		}
		b.Metrics.addRefusal(reason)
		sp.End(map[string]any{"wire": wireLabel(WireBinary), "refused": reason})
		httpError(w, status, format, args...)
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			refuse(http.StatusRequestEntityTooLarge, history.ReasonBodyTooLarge, 0, "serve: request body exceeds %d bytes", maxBody)
			return
		}
		refuse(http.StatusBadRequest, history.ReasonMalformed, 0, "serve: reading report batch: %v", err)
		return
	}
	batch, err = parseBinaryHeader(data)
	if err != nil {
		refuse(http.StatusBadRequest, history.ReasonMalformed, 0, "serve: malformed report batch: %v", err)
		return
	}
	maxBatch := b.MaxBatch
	if maxBatch == 0 {
		maxBatch = DefaultMaxBatch
	}
	// The count cap lands before the structural walk, so a lying count
	// cannot buy O(count) validation work.
	if batch.count > maxBatch {
		refuse(http.StatusRequestEntityTooLarge, history.ReasonBatchTooLarge, 0, "serve: batch of %d reports exceeds the maximum of %d", batch.count, maxBatch)
		return
	}
	if err := validateBinaryReports(batch.reports, batch.count); err != nil {
		refuse(http.StatusBadRequest, history.ReasonMalformed, 0, "serve: malformed report batch: %v", err)
		return
	}
	b.Metrics.observeStage(stageDecode, WireBinary, time.Since(decodeStart))

	rd, _, _ := b.currentRound()
	if rd == nil || batch.round != rd.id || !tokenEqual(batch.token, rd.token) {
		refuse(http.StatusConflict, history.ReasonStaleToken, 0, "serve: stale round token (round %d is not open)", batch.round)
		return
	}
	if err := rd.beginFold(); err != nil {
		refuse(http.StatusConflict, history.ReasonRoundClosed, 0, "serve: stale round token (round %d already closed)", batch.round)
		return
	}
	defer rd.endFold()
	sp.SetRound(rd.id)
	if !traceParent.Valid() {
		sp.SetParent(rd.trace)
	}

	// Pooled word scratch is only safe when the round folds through fo's
	// striped counters; any other sink may retain payload slices (e.g.
	// collect.SliceSink), so those rounds decode fresh ones.
	var scratch *[]uint64
	if rd.striped != nil {
		scratch = wordBufPool.Get().(*[]uint64)
		defer wordBufPool.Put(scratch)
	}
	foldStart := time.Now()
	off := 0
	for i := 0; i < batch.count; i++ {
		br, next, perr := parseBinaryReport(batch.reports, off)
		if perr != nil {
			refuse(http.StatusBadRequest, history.ReasonMalformed, i, "serve: malformed report batch: %v", perr)
			return // unreachable after validateBinaryReports
		}
		off = next
		c, err := br.contribution(rd.numeric, scratch)
		if err != nil {
			refuse(http.StatusUnprocessableEntity, history.ReasonBadReport, i, "serve: user %d: %v", br.user, err)
			return
		}
		if err := rd.take(br.user); err != nil {
			refuse(http.StatusConflict, history.ReasonNotAwaited, i, "%v", err)
			return
		}
		if err := rd.fold(br.user, c); err != nil {
			// The sink rejected the report (wrong shape for the oracle):
			// the round cannot complete coherently, so it fails now.
			rd.finish(fmt.Errorf("serve: user %d: %w", br.user, err))
			refuse(http.StatusUnprocessableEntity, history.ReasonBadReport, i, "serve: user %d: %v", br.user, err)
			return
		}
		b.Metrics.addReport()
		rd.folded()
	}
	b.Metrics.observeStage(stageFold, WireBinary, time.Since(foldStart))
	if b.History != nil {
		journalStart := time.Now()
		b.History.Append(history.Record{Kind: history.KindBatch, Verdict: history.VerdictAccepted,
			Status: http.StatusOK, Round: batch.round, Token: string(batch.token),
			Reports: binaryHistoryReports(batch.reports, batch.count), Folded: batch.count, Bytes: body.n})
		b.Metrics.observeStage(stageJournal, WireBinary, time.Since(journalStart))
	}
	b.Metrics.addBytes(body.n)
	b.Metrics.observeBatch(WireBinary, batch.count, body.n)
	sp.End(map[string]any{"wire": wireLabel(WireBinary), "reports": batch.count, "bytes": body.n})
	writeJSON(w, reportAck{Accepted: batch.count})
}

// countingReader counts the bytes read through it (ingested body bytes for
// the metrics).
type countingReader struct {
	inner interface{ Read([]byte) (int, error) }
	n     int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.n += int64(n)
	return n, err
}
