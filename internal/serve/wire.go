package serve

import (
	"encoding/binary"
	"fmt"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
)

// RoundInfo announces one open collection round to polling clients
// (GET /v1/round). Token authenticates reports into exactly this round: it
// is fresh per round, so a captured batch cannot be replayed into a later
// one.
type RoundInfo struct {
	// Round is the monotonically increasing round id.
	Round int64 `json:"round"`
	// T is the mechanism timestamp the round collects for.
	T int `json:"t"`
	// Eps is the round's privacy budget.
	Eps float64 `json:"eps"`
	// Numeric marks a numeric mean round instead of a frequency round.
	Numeric bool `json:"numeric,omitempty"`
	// Token must be echoed on every report batch for this round.
	Token string `json:"token"`
	// Users lists the requested user ids; null means the whole population.
	Users []int `json:"users"`
	// N is the population size.
	N int `json:"n"`
	// Trace is the round span's context (obs.SpanContext wire form),
	// present when the aggregator traces. Clients echo it as the
	// X-Ldpids-Trace header on report posts so batch spans join the
	// round's trace; it carries no protocol state.
	Trace string `json:"trace,omitempty"`
}

// wireReport is one user's perturbed contribution inside a report batch.
// Kind selects the payload exactly as fo.Kind does, plus "numeric" for mean
// rounds. Bit-packed unary payloads travel as base64 (encoding/json encodes
// []byte that way) of little-endian uint64 words.
type wireReport struct {
	User int    `json:"user"`
	Kind string `json:"kind"`
	// Value is the categorical payload (GRR value, OLH/OLH-C bucket; -1
	// for unary/packed reports, matching the in-memory representation).
	Value int `json:"value,omitempty"`
	// Seed is the OLH per-user seed or the OLH-C cohort index.
	Seed uint64 `json:"seed,omitempty"`
	// Bits is the byte-per-element unary payload (base64 on the wire).
	Bits []byte `json:"bits,omitempty"`
	// Packed is the bit-packed unary payload: little-endian uint64 words
	// (base64 on the wire).
	Packed []byte `json:"packed,omitempty"`
	// Num is the perturbed value of a numeric mean round.
	Num float64 `json:"num,omitempty"`
}

// reportBatch is the body of POST /v1/report: a batch of contributions for
// one round, authenticated by the round token.
type reportBatch struct {
	Round   int64        `json:"round"`
	Token   string       `json:"token"`
	Reports []wireReport `json:"reports"`
}

// reportAck is the success response to a report batch.
type reportAck struct {
	Accepted int `json:"accepted"`
}

// wireError is the JSON error envelope of every non-2xx response.
type wireError struct {
	Error string `json:"error"`
}

// historyReports converts wire reports into their history transcript
// form. The field layouts mirror each other (packed payloads are already
// little-endian word bytes on both sides), so this is a direct copy.
func historyReports(reports []wireReport) []history.Report {
	out := make([]history.Report, len(reports))
	for i, wr := range reports {
		out[i] = history.Report{User: wr.User, Kind: wr.Kind, Value: wr.Value,
			Seed: wr.Seed, Bits: wr.Bits, Packed: wr.Packed, Num: wr.Num}
	}
	return out
}

// packWords flattens uint64 words into little-endian bytes for the wire.
func packWords(words []uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

// unpackWords parses little-endian bytes back into uint64 words.
func unpackWords(b []byte) ([]uint64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("serve: packed payload of %d bytes is not a whole number of words", len(b))
	}
	words := make([]uint64, len(b)/8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return words, nil
}

// encodeContribution renders one contribution for user u on the wire.
func encodeContribution(u int, c collect.Contribution) wireReport {
	if c.Numeric {
		return wireReport{User: u, Kind: "numeric", Num: c.Value}
	}
	r := c.Report
	w := wireReport{User: u, Kind: r.Kind.String(), Value: r.Value, Seed: r.Seed}
	// Every registered kind is enumerated: a kind this switch does not
	// know would silently drop its auxiliary payload on the wire (the
	// PR 1 OLH seed-0 bug class), so adding a kind must extend it.
	switch r.Kind {
	case fo.KindValue, fo.KindHash, fo.KindCohort:
		// The whole payload already travels in Value/Seed.
	case fo.KindUnary:
		w.Bits = r.Bits
	case fo.KindPacked:
		w.Packed = packWords(r.Packed)
	default:
		panic(fmt.Sprintf("serve: cannot encode report kind %s", r.Kind))
	}
	return w
}

// decode parses a wire report back into a contribution. numeric says which
// round kind the report must answer; mismatches are rejected here, before
// the sink sees anything.
func (w wireReport) decode(numeric bool) (collect.Contribution, error) {
	if numeric {
		if w.Kind != "numeric" {
			return collect.Contribution{}, fmt.Errorf("serve: %s report in a numeric round", w.Kind)
		}
		return collect.Contribution{Numeric: true, Value: w.Num}, nil
	}
	r := fo.Report{Value: w.Value, Seed: w.Seed}
	switch w.Kind {
	case "value":
		r.Kind = fo.KindValue
	case "unary":
		r.Kind = fo.KindUnary
		r.Bits = w.Bits
	case "packed":
		r.Kind = fo.KindPacked
		words, err := unpackWords(w.Packed)
		if err != nil {
			return collect.Contribution{}, err
		}
		r.Packed = words
	case "hash":
		r.Kind = fo.KindHash
	case "cohort":
		r.Kind = fo.KindCohort
	case "numeric":
		return collect.Contribution{}, fmt.Errorf("serve: numeric report in a frequency round")
	default:
		return collect.Contribution{}, fmt.Errorf("serve: unknown report kind %q", w.Kind)
	}
	return collect.Contribution{Report: r}, nil
}
