package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
)

// TestAdversaryScheduleAudited runs a live backend under a hostile
// schedule — malformed bodies, forged/stale/replayed tokens, duplicate
// reports, oversized batches, a mid-post disconnect, a silent round —
// and proves two things: every attack was refused at the HTTP layer,
// and the resulting ingest history passes the offline checker (so no
// refused request influenced a counter), while a tampered copy of the
// same history fails it.
func TestAdversaryScheduleAudited(t *testing.T) {
	const n, d = 8, 4
	logPath := filepath.Join(t.TempDir(), "ingest.jsonl")
	hist, err := history.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	hist.Append(history.Record{Kind: history.KindConfig, Source: "gateway",
		N: n, D: d, Oracle: "GRR", W: 4, Budget: 4})

	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 10 * time.Second
	backend.MaxBatch = 16
	backend.History = hist
	ts := httptest.NewServer(backend)
	defer ts.Close()

	fns := Funcs{Report: func(id, t int, eps float64) fo.Report {
		return fo.Report{Kind: fo.KindValue, Value: id % d}
	}}
	// Honest clients host [0,4) and [5,8); the adversary hosts user 4,
	// so its attacks decide whether rounds complete.
	var (
		wg      sync.WaitGroup
		clients []*Client
	)
	for _, span := range [][2]int{{0, 4}, {5, 3}} {
		cl, err := NewClient(ts.URL, span[0], span[1], fns)
		if err != nil {
			t.Fatal(err)
		}
		cl.PollWait = 2 * time.Second
		clients = append(clients, cl)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Serve(); err != nil {
				t.Errorf("honest client: %v", err)
			}
		}()
	}
	adv, err := NewAdversary(ts.URL, 4, 1, fns, 42)
	if err != nil {
		t.Fatal(err)
	}

	oracle := fo.NewGRR(d)
	runRound := func(tt int) chan error {
		agg, err := oracle.NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			done <- backend.Collect(collect.Request{T: tt, Eps: 1}, collect.AggregatorSink{Agg: agg})
		}()
		return done
	}
	mustStatus := func(what string, got int, err error, want int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got != want {
			t.Fatalf("%s answered %d, want %d", what, got, want)
		}
	}

	// Round 1: pre-fold attacks, then an honest answer arming the
	// replay, then the replay itself.
	done1 := runRound(1)
	ri, err := adv.AwaitRound(0)
	if err != nil || ri == nil {
		t.Fatalf("awaiting round 1: ri=%v err=%v", ri, err)
	}
	st, err := adv.Malformed()
	mustStatus("malformed body", st, err, http.StatusBadRequest)
	st, err = adv.ForgeToken(ri)
	mustStatus("forged token", st, err, http.StatusConflict)
	st, err = adv.Oversized(ri, backend.MaxBatch)
	mustStatus("oversized batch", st, err, http.StatusRequestEntityTooLarge)
	st, err = adv.Answer(ri)
	mustStatus("honest answer", st, err, http.StatusOK)
	st, err = adv.Replay()
	mustStatus("replayed batch", st, err, http.StatusConflict)
	if err := <-done1; err != nil {
		t.Fatalf("round 1: %v", err)
	}

	// Round 2: cross-round replay, duplicate report (its first fold
	// covers the adversary's user), and a disconnect mid-post.
	done2 := runRound(2)
	ri2, err := adv.AwaitRound(ri.Round)
	if err != nil || ri2 == nil {
		t.Fatalf("awaiting round 2: ri=%v err=%v", ri2, err)
	}
	st, err = adv.StaleRound(ri2)
	mustStatus("stale-round batch", st, err, http.StatusConflict)
	// Binary-wire attacks: corrupted magic, a frame cut mid-word, and a
	// lying length field must all be refused structurally (400), and an
	// unknown content type turned away unread (415).
	st, err = adv.BinaryBadMagic(ri2)
	mustStatus("binary bad magic", st, err, http.StatusBadRequest)
	st, err = adv.BinaryTruncated(ri2)
	mustStatus("binary truncated frame", st, err, http.StatusBadRequest)
	st, err = adv.BinaryLengthLie(ri2)
	mustStatus("binary length lie", st, err, http.StatusBadRequest)
	resp, err := http.Post(ts.URL+"/v1/report", "application/x-unknown", strings.NewReader("?"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mustStatus("unknown content type", resp.StatusCode, nil, http.StatusUnsupportedMediaType)
	if err := adv.TruncatedPost(ri2); err != nil {
		t.Fatalf("truncated post: %v", err)
	}
	st, err = adv.DoubleReport(ri2, 4)
	mustStatus("duplicate report", st, err, http.StatusConflict)
	if err := <-done2; err != nil {
		t.Fatalf("round 2: %v", err)
	}

	// Round 3: the adversary disconnects for the whole round (never
	// answers); the deadline must fail the round rather than close it
	// short.
	backend.Timeout = 500 * time.Millisecond
	done3 := runRound(3)
	if err := <-done3; err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("silent adversary must time the round out, got %v", err)
	}

	backend.Close()
	for _, cl := range clients {
		cl.Close()
	}
	wg.Wait()

	// The truncated post's refusal lands asynchronously; wait for all 11
	// hostile requests to be journaled.
	const wantRefused = 11
	var recs []history.Record
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := hist.Err(); err != nil {
			t.Fatal(err)
		}
		if recs, err = history.ReadAll(logPath); err != nil {
			t.Fatal(err)
		}
		refused := 0
		for _, rec := range recs {
			if rec.Kind == history.KindBatch && rec.Verdict == history.VerdictRefused {
				refused++
			}
		}
		if refused >= wantRefused || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := hist.Close(); err != nil {
		t.Fatal(err)
	}

	res := history.Check(recs)
	if !res.OK() {
		t.Fatalf("adversarial history must still pass the checker, got %q", res.Violations)
	}
	s := res.Summary
	if s.RefusedBatches != wantRefused {
		t.Errorf("refused batches = %d, want %d (%v)", s.RefusedBatches, wantRefused, s.Refusals)
	}
	// Deterministic refusal reasons: the malformed body, the truncated
	// post, and the three binary-framing attacks decode-fail, the
	// oversize trips the batch cap, the forged and stale tokens fail
	// authentication, the duplicate report finds its slot consumed, and
	// the unknown content type is turned away unread.
	if s.Refusals[history.ReasonMalformed] != 5 {
		t.Errorf("malformed refusals = %d, want 5 (%v)", s.Refusals[history.ReasonMalformed], s.Refusals)
	}
	if s.Refusals[history.ReasonUnsupportedWire] != 1 {
		t.Errorf("unsupported-wire refusals = %d, want 1 (%v)", s.Refusals[history.ReasonUnsupportedWire], s.Refusals)
	}
	if s.Refusals[history.ReasonBatchTooLarge] != 1 {
		t.Errorf("batch-too-large refusals = %d, want 1 (%v)", s.Refusals[history.ReasonBatchTooLarge], s.Refusals)
	}
	if s.Refusals[history.ReasonStaleToken] < 2 {
		t.Errorf("stale-token refusals = %d, want >= 2 (%v)", s.Refusals[history.ReasonStaleToken], s.Refusals)
	}
	if s.Refusals[history.ReasonNotAwaited] < 1 {
		t.Errorf("not-awaited refusals = %d, want >= 1 (%v)", s.Refusals[history.ReasonNotAwaited], s.Refusals)
	}
	if s.Rounds != 3 || s.OKRounds != 2 {
		t.Errorf("rounds = %d ok = %d, want 3 and 2", s.Rounds, s.OKRounds)
	}
	// The duplicate report left an auditable partial fold.
	partial := false
	for _, rec := range recs {
		if rec.Kind == history.KindBatch && rec.Reason == history.ReasonNotAwaited && rec.Folded == 1 {
			partial = true
		}
	}
	if !partial {
		t.Error("duplicate report did not journal its folded prefix")
	}

	// Tampering with any accepted count must break the refold proof.
	for i := range recs {
		if recs[i].Kind == history.KindClose && recs[i].OK && recs[i].Counters != nil {
			recs[i].Counters.Counts[0]++
			break
		}
	}
	if history.Check(recs).OK() {
		t.Fatal("tampered counters must fail the checker")
	}
}

// TestAdversaryRefusalMetrics runs a refusal-only hostile schedule — no
// attack here ever folds a report — and asserts the gateway's per-reason
// refusal counters account for every attack while the fold counter stays
// at zero. Refusals must be observable without reading the journal.
func TestAdversaryRefusalMetrics(t *testing.T) {
	const n, d = 4, 4
	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 500 * time.Millisecond
	backend.MaxBatch = 8
	metrics := NewMetrics(nil)
	backend.Metrics = metrics
	ts := httptest.NewServer(backend)
	defer ts.Close()

	fns := Funcs{Report: func(id, t int, eps float64) fo.Report {
		return fo.Report{Kind: fo.KindValue, Value: id % d}
	}}
	adv, err := NewAdversary(ts.URL, 0, 1, fns, 7)
	if err != nil {
		t.Fatal(err)
	}

	oracle := fo.NewGRR(d)
	agg, err := oracle.NewAggregator(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- backend.Collect(collect.Request{T: 1, Eps: 1}, collect.AggregatorSink{Agg: agg})
	}()
	ri, err := adv.AwaitRound(0)
	if err != nil || ri == nil {
		t.Fatalf("awaiting round: ri=%v err=%v", ri, err)
	}
	mustStatus := func(what string, got int, err error, want int) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got != want {
			t.Fatalf("%s answered %d, want %d", what, got, want)
		}
	}
	st, err := adv.Malformed()
	mustStatus("malformed body", st, err, http.StatusBadRequest)
	st, err = adv.ForgeToken(ri)
	mustStatus("forged token", st, err, http.StatusConflict)
	st, err = adv.Oversized(ri, backend.MaxBatch)
	mustStatus("oversized batch", st, err, http.StatusRequestEntityTooLarge)
	resp, err := http.Post(ts.URL+"/v1/report", "application/x-unknown", strings.NewReader("?"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mustStatus("unknown content type", resp.StatusCode, nil, http.StatusUnsupportedMediaType)
	// Nobody honest answers; the round times out rather than folding.
	if err := <-done; err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("refusal-only round must time out, got %v", err)
	}
	backend.Close()

	count := func(reason string) float64 {
		v, _ := metrics.Registry().Value("ldpids_gateway_refusals_total", reason)
		return v
	}
	for _, reason := range []string{
		history.ReasonMalformed,
		history.ReasonStaleToken,
		history.ReasonBatchTooLarge,
		history.ReasonUnsupportedWire,
	} {
		if got := count(reason); got != 1 {
			t.Errorf("refusals{reason=%q} = %v, want 1", reason, got)
		}
	}
	if v, ok := metrics.Registry().Value("ldpids_gateway_reports_folded_total"); !ok || v != 0 {
		t.Errorf("reports folded = %v (ok=%v), want 0: refused requests must not fold", v, ok)
	}
}
