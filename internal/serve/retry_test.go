package serve

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
)

// flakyListener sacrifices specific accepted connections (closing them
// before the server reads a byte), so the client sees transport errors on
// exactly the requests that land on those connections.
type flakyListener struct {
	net.Listener
	mu      sync.Mutex
	drop    map[int]bool // 1-based accepted-connection indexes to kill
	seen    int
	dropped int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		l.seen++
		kill := l.drop[l.seen]
		if kill {
			l.dropped++
		}
		l.mu.Unlock()
		if !kill {
			return conn, nil
		}
		conn.Close()
	}
}

func (l *flakyListener) droppedConns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// TestClientRetriesFlakyListener: transport errors on both the poll and
// the post path are retried with backoff instead of killing the client —
// connections 1 (the first poll) and 3 (the first post) die under the
// request, and the round still completes with every user's report folded
// exactly once.
func TestClientRetriesFlakyListener(t *testing.T) {
	const n, d, eps = 2, 4, 1.0
	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	backend.Timeout = 20 * time.Second

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, drop: map[int]bool{1: true, 3: true}}
	srv := &http.Server{Handler: backend}
	srv.SetKeepAlivesEnabled(false) // one connection per request: the drop plan maps onto requests
	go srv.Serve(fl)
	defer srv.Close()

	oracle := fo.NewGRR(d)
	src := ldprand.New(11)
	var reportMu sync.Mutex
	cl, err := NewClient("http://"+ln.Addr().String(), 0, n, Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			reportMu.Lock()
			defer reportMu.Unlock()
			return oracle.Perturb(id%d, eps, src)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.PollWait = 250 * time.Millisecond
	cl.Retry = NewBackoff(2*time.Millisecond, 20*time.Millisecond, 1)
	cl.MaxRetries = 20
	serveErr := make(chan error, 1)
	go func() { serveErr <- cl.Serve() }()

	agg, err := oracle.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Collect(collect.Request{T: 1, Eps: eps}, collect.AggregatorSink{Agg: agg}); err != nil {
		t.Fatalf("round over the flaky listener failed: %v", err)
	}
	if got := agg.Reports(); got != n {
		t.Fatalf("folded %d reports, want %d", got, n)
	}
	if got := fl.droppedConns(); got != 2 {
		t.Fatalf("sacrificed %d connections, want 2 — the flake plan did not exercise the retry paths", got)
	}

	cl.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after retries and Close, want nil", err)
	}
}

// TestClientRetryBudgetExhausted: a dead address exhausts MaxRetries and
// surfaces the last transport error instead of spinning forever.
func TestClientRetryBudgetExhausted(t *testing.T) {
	// A listener that never accepts: dial succeeds, requests stall and die.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // now nothing listens: dials are refused immediately

	cl, err := NewClient("http://"+addr, 0, 1, Funcs{
		Report: func(id, ts int, eps float64) fo.Report { return fo.Report{Kind: fo.KindValue} },
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Retry = NewBackoff(time.Millisecond, 2*time.Millisecond, 2)
	cl.MaxRetries = 3
	defer cl.Close()
	if err := cl.Serve(); err == nil {
		t.Fatal("Serve returned nil against a refused address, want a give-up error")
	}
}

// TestSetNextRound: a pinned (id, token) pair is announced verbatim by
// the next Collect — the mechanism a cluster replica uses to keep device
// watermarks valid across replica restarts — and the pin API refuses
// regressions.
func TestSetNextRound(t *testing.T) {
	const n = 1
	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	defer backend.Close()
	backend.Timeout = 5 * time.Second

	if err := backend.SetNextRound(7, ""); err == nil {
		t.Fatal("empty pinned token accepted")
	}
	if err := backend.SetNextRound(0, "tok"); err == nil {
		t.Fatal("non-advancing pinned id accepted")
	}
	if err := backend.SetNextRound(7, "coordinator-token"); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(backend)
	defer ts.Close()
	oracle := fo.NewGRR(3)
	src := ldprand.New(3)
	cl, err := NewClient(ts.URL, 0, n, Funcs{
		Report: func(id, ts int, eps float64) fo.Report { return oracle.Perturb(0, 1.0, src) },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cl.Serve() }()
	defer cl.Close()

	seen := make(chan RoundInfo, 2)
	go func() {
		// Observe the announcements a fresh poller sees.
		observer, err := NewClient(ts.URL, 0, n, Funcs{
			Report: func(int, int, float64) fo.Report { return fo.Report{} },
		})
		if err != nil {
			return
		}
		defer observer.Close()
		var after int64
		for i := 0; i < 2; i++ {
			ri, status, err := observer.poll(after)
			if err != nil || status != http.StatusOK {
				return
			}
			seen <- *ri
			after = ri.Round
		}
	}()

	for i := 0; i < 2; i++ {
		agg, err := oracle.NewAggregator(1.0)
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(collect.Request{T: i + 1, Eps: 1.0}, collect.AggregatorSink{Agg: agg}); err != nil {
			t.Fatal(err)
		}
	}
	first := <-seen
	if first.Round != 7 || first.Token != "coordinator-token" {
		t.Fatalf("pinned round announced as (%d, %q), want (7, \"coordinator-token\")", first.Round, first.Token)
	}
	second := <-seen
	if second.Round != 8 {
		t.Fatalf("round after the pin has id %d, want 8 (the sequence continues from the pin)", second.Round)
	}
	if second.Token == "coordinator-token" {
		t.Fatal("the pinned token leaked into the following round")
	}

	cl.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}
