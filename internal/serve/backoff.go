package serve

import (
	"time"

	"ldpids/internal/ldprand"
)

// Backoff defaults.
const (
	// DefaultBackoffBase is the first retry delay.
	DefaultBackoffBase = 100 * time.Millisecond
	// DefaultBackoffCap bounds any single retry delay.
	DefaultBackoffCap = 3 * time.Second
	// DefaultMaxRetries bounds consecutive transient failures before a
	// client gives up (~1 minute at the default base and cap).
	DefaultMaxRetries = 30
)

// Backoff computes capped exponential retry delays with deterministic
// jitter: attempt k waits uniformly in [d/2, d) for d = min(base<<k, cap).
// The jitter source is ldprand (seeded, splittable), not math/rand or the
// wall clock, so retry schedules replay exactly under a fixed seed and the
// determinism analyzer's no-ambient-randomness rule holds everywhere the
// client stack is linked.
//
// A Backoff is not safe for concurrent use; give each retry loop its own.
type Backoff struct {
	base    time.Duration
	cap     time.Duration
	attempt int
	jitter  *ldprand.Source
}

// NewBackoff returns a Backoff over [base/2, cap) delays, jittered from
// the given seed. Non-positive base or cap select the defaults.
func NewBackoff(base, cap time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if cap <= 0 {
		cap = DefaultBackoffCap
	}
	if cap < base {
		cap = base
	}
	return &Backoff{base: base, cap: cap, jitter: ldprand.New(seed)}
}

// Next returns the next delay and advances the attempt counter.
func (b *Backoff) Next() time.Duration {
	d := b.cap
	// base << attempt, saturating at cap (and guarding shift overflow).
	if b.attempt < 40 {
		if shifted := b.base << uint(b.attempt); shifted > 0 && shifted < b.cap {
			d = shifted
		}
	}
	b.attempt++
	half := d / 2
	return half + time.Duration(b.jitter.Float64()*float64(half))
}

// Reset rewinds the attempt counter after a success, so the next failure
// starts from the base delay again. The jitter stream keeps advancing —
// rewinding it would replay identical delays, synchronizing retry storms.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
