package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/ldprand"
)

// Adversary is a hostile client for protocol testing: it hosts users
// like Client but, instead of a serve loop, exposes one method per
// attack — token replays, forged and stale tokens, duplicate reports,
// oversized batches, malformed bodies, mid-post disconnects, and
// binary-framing corruption (bad magic, truncated frames, lying length
// fields). Every
// attack returns the HTTP status the aggregator answered, so a test (or
// the offline checker, via the backend's ingest history) can prove each
// hostile request was refused and never influenced a counter. The
// adversary is deterministic: all randomness comes from its seed.
//
// Typical schedule: AwaitRound, Answer it honestly (arming Replay with
// the folded batch and StaleRound with the round's token), then fire
// attacks at the next round.
type Adversary struct {
	// PollWait is the long-poll parking time per AwaitRound. Zero
	// selects 10s.
	PollWait time.Duration

	base  string
	first int
	count int
	fns   Funcs
	src   *ldprand.Source
	hc    *http.Client

	last *RoundInfo   // most recently answered round (stale-token ammo)
	ammo *reportBatch // most recently folded batch (replay ammo)
}

// NewAdversary returns an adversary hosting users [first, first+count)
// against the aggregator at base. fns perturbs honest answers (attacks
// reuse their wire shape); seed drives forged tokens and report noise.
func NewAdversary(base string, first, count int, fns Funcs, seed uint64) (*Adversary, error) {
	if fns.Report == nil {
		return nil, fmt.Errorf("serve: adversary needs a report function")
	}
	if first < 0 || count < 1 {
		return nil, fmt.Errorf("serve: adversary needs a non-negative first id and positive count, got [%d,%d)", first, first+count)
	}
	if _, err := url.Parse(base); err != nil {
		return nil, fmt.Errorf("serve: bad base URL: %w", err)
	}
	return &Adversary{
		base:  base,
		first: first,
		count: count,
		fns:   fns,
		src:   ldprand.New(seed),
		hc:    &http.Client{},
	}, nil
}

// AwaitRound long-polls once for a round with id > after. It returns
// nil when the poll expires without a new round.
func (a *Adversary) AwaitRound(after int64) (*RoundInfo, error) {
	wait := a.PollWait
	if wait == 0 {
		wait = 10 * time.Second
	}
	u := fmt.Sprintf("%s/v1/round?after=%d&wait=%s", a.base, after, wait)
	resp, err := a.hc.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNoContent:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("serve: /v1/round returned status %d", resp.StatusCode)
	}
	var ri RoundInfo
	if err := json.NewDecoder(resp.Body).Decode(&ri); err != nil {
		return nil, fmt.Errorf("decoding round announcement: %w", err)
	}
	return &ri, nil
}

// myUsers mirrors Client.myUsers: the announced users this adversary
// hosts, in announcement order and with multiplicity.
func (a *Adversary) myUsers(ri *RoundInfo) []int {
	if ri.Users == nil {
		users := make([]int, a.count)
		for i := range users {
			users[i] = a.first + i
		}
		return users
	}
	var users []int
	for _, u := range ri.Users {
		if u >= a.first && u < a.first+a.count {
			users = append(users, u)
		}
	}
	return users
}

// batchFor perturbs one honest report batch for the round's hosted
// users (or an explicit user list, with multiplicity).
func (a *Adversary) batchFor(ri *RoundInfo, users []int) reportBatch {
	batch := reportBatch{Round: ri.Round, Token: ri.Token, Reports: make([]wireReport, 0, len(users))}
	for _, u := range users {
		c := collect.Contribution{Report: a.fns.Report(u, ri.T, ri.Eps)}
		batch.Reports = append(batch.Reports, encodeContribution(u, c))
	}
	return batch
}

// Answer posts the adversary's honest share of a round, arming Replay
// with the posted batch and StaleRound with the round's token. It
// returns the HTTP status (200 when the batch folded).
func (a *Adversary) Answer(ri *RoundInfo) (int, error) {
	batch := a.batchFor(ri, a.myUsers(ri))
	status, err := a.post(batch)
	if err != nil {
		return 0, err
	}
	a.last = ri
	a.ammo = &batch
	return status, nil
}

// Replay reposts the last honestly folded batch verbatim: a captured
// token replay. The aggregator must refuse it — the round's per-user
// slots are consumed (409 while the round is open) or its token is
// stale (409 after it closed) — and fold nothing.
func (a *Adversary) Replay() (int, error) {
	if a.ammo == nil {
		return 0, fmt.Errorf("serve: no folded batch to replay (call Answer first)")
	}
	return a.post(*a.ammo)
}

// ForgeToken posts an honest-looking batch for the open round under a
// random token the aggregator never issued. It must be refused (409)
// with nothing folded.
func (a *Adversary) ForgeToken(ri *RoundInfo) (int, error) {
	users := a.myUsers(ri)
	if len(users) == 0 {
		users = []int{a.first}
	}
	batch := a.batchFor(ri, users[:1])
	batch.Token = fmt.Sprintf("%016x%016x", a.src.Uint64(), a.src.Uint64())
	return a.post(batch)
}

// StaleRound posts a fresh batch under a previous round's id and token
// while ri is open: a cross-round replay. It must be refused (409) with
// nothing folded.
func (a *Adversary) StaleRound(ri *RoundInfo) (int, error) {
	if a.last == nil || a.last.Round >= ri.Round {
		return 0, fmt.Errorf("serve: no earlier round to go stale with (call Answer on a previous round first)")
	}
	users := a.myUsers(a.last)
	if len(users) == 0 {
		users = []int{a.first}
	}
	batch := a.batchFor(a.last, users[:1])
	return a.post(batch)
}

// DoubleReport posts the same hosted user twice in one batch. The first
// report consumes the user's slot and folds; the duplicate must be
// refused (409) without folding, leaving the batch a partial fold the
// history checker can audit.
func (a *Adversary) DoubleReport(ri *RoundInfo, user int) (int, error) {
	return a.post(a.batchFor(ri, []int{user, user}))
}

// Oversized posts a batch one report above the aggregator's per-post
// cap. It must be refused (413) before any report is examined.
func (a *Adversary) Oversized(ri *RoundInfo, maxBatch int) (int, error) {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	users := make([]int, maxBatch+1)
	for i := range users {
		users[i] = a.first + i%a.count
	}
	return a.post(a.batchFor(ri, users))
}

// Malformed posts a body that is not a report batch at all. It must be
// refused (400).
func (a *Adversary) Malformed() (int, error) {
	buf := make([]byte, 64)
	for i := range buf {
		buf[i] = byte(a.src.Uint64())
	}
	resp, err := a.hc.Post(a.base+"/v1/report", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// TruncatedPost opens a raw connection, sends a report-batch request
// whose Content-Length promises more than it delivers, and disconnects
// mid-body — a client dying mid-post. The aggregator must treat the
// truncated batch as malformed (400, read on a parallel connection by
// the caller's history check) and fold nothing from it.
func (a *Adversary) TruncatedPost(ri *RoundInfo) error {
	u, err := url.Parse(a.base)
	if err != nil {
		return err
	}
	body, err := json.Marshal(a.batchFor(ri, a.myUsers(ri)))
	if err != nil {
		return err
	}
	conn, err := net.DialTimeout("tcp", u.Host, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	// Promise the full batch, deliver half, hang up.
	half := body[:len(body)/2]
	_, err = fmt.Fprintf(conn, "POST /v1/report HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n%s",
		u.Host, len(body), half)
	return err
}

// post sends one report batch, returning the HTTP status.
func (a *Adversary) post(batch reportBatch) (int, error) {
	body, err := json.Marshal(batch)
	if err != nil {
		return 0, err
	}
	resp, err := a.hc.Post(a.base+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// ---------------------------------------------------------------------------
// Binary-wire attacks: each builds an honest binary batch for the round
// and corrupts exactly one framing property, so the refusal pins the
// specific validation that caught it.
// ---------------------------------------------------------------------------

// binaryAmmo encodes an honest binary batch for the round's hosted users.
func (a *Adversary) binaryAmmo(ri *RoundInfo) ([]byte, error) {
	users := a.myUsers(ri)
	if len(users) == 0 {
		users = []int{a.first}
	}
	return encodeBinary(a.batchFor(ri, users))
}

// postBinary sends raw bytes under the binary content type.
func (a *Adversary) postBinary(body []byte) (int, error) {
	resp, err := a.hc.Post(a.base+"/v1/report", ContentTypeBinary, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// BinaryBadMagic posts an honest binary batch whose magic bytes are
// corrupted. It must be refused (400) before any report is examined.
func (a *Adversary) BinaryBadMagic(ri *RoundInfo) (int, error) {
	body, err := a.binaryAmmo(ri)
	if err != nil {
		return 0, err
	}
	body[0] ^= 0xff
	return a.postBinary(body)
}

// BinaryTruncated posts an honest binary batch cut off mid-word — the
// Content-Length is honest for the truncated body, so the framing itself
// is the lie. It must be refused (400) with nothing folded, even though
// a prefix of its reports parses cleanly.
func (a *Adversary) BinaryTruncated(ri *RoundInfo) (int, error) {
	body, err := a.binaryAmmo(ri)
	if err != nil {
		return 0, err
	}
	if len(body) < 4 {
		return 0, fmt.Errorf("serve: binary batch too short to truncate")
	}
	return a.postBinary(body[:len(body)-3])
}

// BinaryLengthLie posts a binary batch whose packed report inflates its
// word-count field far past the bytes actually present. The bounds check
// must refuse it (400) instead of reading out of the frame.
func (a *Adversary) BinaryLengthLie(ri *RoundInfo) (int, error) {
	batch := reportBatch{Round: ri.Round, Token: ri.Token, Reports: []wireReport{
		{User: a.first, Kind: "packed", Value: -1, Packed: make([]byte, 8)},
	}}
	body, err := encodeBinary(batch)
	if err != nil {
		return 0, err
	}
	// The word count is the 4 bytes before the report's 8 payload bytes;
	// claim 2^30 words with one word present.
	binary.LittleEndian.PutUint32(body[len(body)-12:], 1<<30)
	return a.postBinary(body)
}
