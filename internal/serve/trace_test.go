package serve

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
	"ldpids/internal/obs"
)

// runObservedCollection drives three full scripted rounds over an HTTP
// cluster built from spec and returns every estimate. When tracePath is
// non-empty the backend and both clients trace into it and metrics are
// attached; otherwise the run is completely uninstrumented. The two
// configurations must be bit-identical: telemetry only observes.
func runObservedCollection(t *testing.T, spec collecttest.Spec, tracePath string) [][]float64 {
	t.Helper()
	report, _ := spec.Reporters()

	var (
		serverTracer *obs.Tracer
		clientTracer *obs.Tracer
	)
	if tracePath != "" {
		tlog, err := obs.CreateTraceLog(tracePath)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := tlog.Close(); err != nil {
				t.Errorf("closing trace log: %v", err)
			}
		}()
		serverTracer = obs.NewTracer("gateway", tlog)
		clientTracer = obs.NewTracer("client", tlog)
	}

	backend, err := NewBackend(spec.N)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 10 * time.Second
	if tracePath != "" {
		backend.Tracer = serverTracer
		backend.Metrics = NewMetrics(nil)
	}
	c := &cluster{backend: backend, ts: httptest.NewServer(backend)}
	defer c.stop()
	first := 0
	for _, size := range []int{spec.N / 2, spec.N - spec.N/2} {
		cl, err := NewClient(c.ts.URL, first, size, Funcs{Report: report})
		if err != nil {
			t.Fatal(err)
		}
		cl.PollWait = 2 * time.Second
		cl.Tracer = clientTracer // before Serve starts: no racing writes
		first += size
		c.clients = append(c.clients, cl)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			if err := cl.Serve(); err != nil {
				t.Errorf("client serve loop: %v", err)
			}
		}()
	}

	var estimates [][]float64
	for tt := 1; tt <= 3; tt++ {
		agg, err := spec.Oracle.NewAggregator(float64(spec.N))
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(collect.Request{T: tt, Eps: 1}, collect.AggregatorSink{Agg: agg}); err != nil {
			t.Fatalf("round %d: %v", tt, err)
		}
		est, err := agg.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, est)
	}
	return estimates
}

// TestTracingIsObserveOnly is the telemetry determinism guard: the same
// seeded population collected with full tracing and metrics enabled, and
// again with telemetry off, must produce bit-identical estimates — trace
// ids come from crypto/rand and never touch the seeded report streams.
// The traced run must also leave a connected trace: every span's parent
// resolves inside its trace, each round has exactly one root span, and
// client posts hang off gateway rounds.
func TestTracingIsObserveOnly(t *testing.T) {
	spec := collecttest.Spec{N: 12, Oracle: fo.NewGRR(5), BaseSeed: 4200}
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")

	traced := runObservedCollection(t, spec, tracePath)
	plain := runObservedCollection(t, spec, "")
	if len(traced) != len(plain) {
		t.Fatalf("round counts differ: %d vs %d", len(traced), len(plain))
	}
	for i := range traced {
		if len(traced[i]) != len(plain[i]) {
			t.Fatalf("round %d estimate lengths differ", i+1)
		}
		for j := range traced[i] {
			if traced[i][j] != plain[i][j] {
				t.Fatalf("round %d estimate[%d]: traced %v != plain %v — telemetry influenced the release",
					i+1, j, traced[i][j], plain[i][j])
			}
		}
	}

	spans, err := obs.ReadSpans(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("traced run wrote no spans")
	}
	byID := make(map[string]obs.SpanRecord, len(spans))
	names := make(map[string]int)
	srcs := make(map[string]bool)
	rootsPerTrace := make(map[string]int)
	for _, sp := range spans {
		if _, dup := byID[sp.Span]; dup {
			t.Fatalf("duplicate span id %s", sp.Span)
		}
		byID[sp.Span] = sp
		names[sp.Name]++
		srcs[sp.Src] = true
		if sp.Parent == "" {
			rootsPerTrace[sp.Trace]++
			if sp.Name != "round" || sp.Src != "gateway" {
				t.Errorf("root span is %s/%s, want gateway/round", sp.Src, sp.Name)
			}
		}
	}
	for _, name := range []string{"round", "batch", "post"} {
		if names[name] == 0 {
			t.Errorf("no %q spans recorded (names: %v)", name, names)
		}
	}
	if !srcs["gateway"] || !srcs["client"] {
		t.Errorf("span sources = %v, want both gateway and client", srcs)
	}
	if len(rootsPerTrace) != 3 {
		t.Errorf("distinct rooted traces = %d, want 3 (one per round)", len(rootsPerTrace))
	}
	for trace, roots := range rootsPerTrace {
		if roots != 1 {
			t.Errorf("trace %s has %d roots, want 1", trace, roots)
		}
	}
	// Connectivity: every non-root parent edge resolves to a span in the
	// same trace. Client posts therefore chain up to gateway rounds.
	for _, sp := range spans {
		if sp.Parent == "" {
			continue
		}
		parent, ok := byID[sp.Parent]
		if !ok {
			t.Errorf("span %s (%s/%s) parent %s not in trace log", sp.Span, sp.Src, sp.Name, sp.Parent)
			continue
		}
		if parent.Trace != sp.Trace {
			t.Errorf("span %s crosses traces: %s vs parent %s", sp.Span, sp.Trace, parent.Trace)
		}
	}
}
