package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// Snapshot is one published release: the estimate the mechanism released
// at timestamp T, stamped with a monotonically increasing version.
type Snapshot struct {
	// Version counts releases since the store was created, starting at 1.
	Version int64 `json:"version"`
	// T is the mechanism timestamp of the release.
	T int `json:"t"`
	// Estimate is the released histogram (or the one-element released
	// mean for numeric streams).
	Estimate []float64 `json:"estimate"`
}

// Snapshots is the versioned store behind the live query layer: the
// mechanism publishes each release as its round closes (mechanism.Hooked),
// queries read the latest snapshot, and SSE subscribers receive every
// release. Publish copies the estimate and never blocks on consumers —
// a subscriber that falls behind its buffer misses intermediate releases
// but always catches the next one — so queries never block ingestion.
//
// Mount it at /v1/estimate (latest snapshot as JSON; 404 before the first
// release) and /v1/stream (Server-Sent Events, one "release" event per
// published snapshot).
type Snapshots struct {
	// Metrics, when non-nil, counts published releases.
	Metrics *Metrics

	mu      sync.Mutex
	latest  *Snapshot
	nextSub int
	subs    map[int]chan Snapshot
}

// subBuffer is each subscriber's channel buffer; a consumer more than this
// many releases behind starts missing intermediate ones.
const subBuffer = 16

// NewSnapshots returns an empty snapshot store.
func NewSnapshots() *Snapshots {
	return &Snapshots{subs: make(map[int]chan Snapshot)}
}

// Publish stores a new release and fans it out to subscribers without
// blocking.
func (s *Snapshots) Publish(t int, estimate []float64) {
	snap := Snapshot{T: t, Estimate: append([]float64(nil), estimate...)}
	s.mu.Lock()
	if s.latest != nil {
		snap.Version = s.latest.Version + 1
	} else {
		snap.Version = 1
	}
	s.latest = &snap
	for _, ch := range s.subs {
		select {
		case ch <- snap:
		default: // slow consumer: skip this release rather than block
		}
	}
	s.mu.Unlock()
	s.Metrics.addRelease()
}

// Latest returns the most recent snapshot, if any release happened yet.
func (s *Snapshots) Latest() (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.latest == nil {
		return Snapshot{}, false
	}
	return *s.latest, true
}

// Subscribe registers a release subscriber; cancel unregisters it and
// closes the channel.
func (s *Snapshots) Subscribe() (<-chan Snapshot, func()) {
	ch := make(chan Snapshot, subBuffer)
	s.mu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.mu.Unlock()
	}
	return ch, cancel
}

// ServeHTTP implements http.Handler, routing /v1/estimate and /v1/stream.
func (s *Snapshots) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/estimate":
		s.handleEstimate(w, r)
	case "/v1/stream":
		s.handleStream(w, r)
	default:
		httpError(w, http.StatusNotFound, "serve: unknown path %s", r.URL.Path)
	}
}

// handleEstimate serves the latest release as JSON.
func (s *Snapshots) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "serve: %s /v1/estimate", r.Method)
		return
	}
	snap, ok := s.Latest()
	if !ok {
		httpError(w, http.StatusNotFound, "serve: no release published yet")
		return
	}
	writeJSON(w, snap)
}

// handleStream serves releases as Server-Sent Events: the latest snapshot
// immediately (so a new consumer has a starting state), then one "release"
// event per published snapshot until the client disconnects.
func (s *Snapshots) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "serve: %s /v1/stream", r.Method)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "serve: response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, cancel := s.Subscribe()
	defer cancel()
	send := func(snap Snapshot) bool {
		data, err := json.Marshal(snap)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: release\nid: %d\ndata: %s\n\n", snap.Version, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	lastSent := int64(0)
	if snap, ok := s.Latest(); ok {
		if !send(snap) {
			return
		}
		lastSent = snap.Version
	}
	for {
		select {
		case snap, ok := <-ch:
			if !ok {
				return
			}
			if snap.Version <= lastSent {
				continue
			}
			lastSent = snap.Version
			if !send(snap) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
