package serve

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
	"ldpids/internal/history"
	"ldpids/internal/ldprand"
)

// TestBinaryRoundTripAllKinds mirrors TestWireRoundTripAllKinds for the
// binary framing: every registered kind must survive encode, structural
// validation, and decode bit-identically, including the Value=-1 and
// Seed=0 conventions the JSON wire pins.
func TestBinaryRoundTripAllKinds(t *testing.T) {
	reports := []fo.Report{
		{Kind: fo.KindValue, Value: 3},
		{Kind: fo.KindUnary, Value: -1, Bits: []byte{1, 0, 0, 1, 0, 1, 1, 0}},
		{Kind: fo.KindPacked, Value: -1, Packed: []uint64{0xdeadbeef, 0x1}},
		{Kind: fo.KindHash, Value: 2, Seed: 0x9e3779b97f4a7c15},
		{Kind: fo.KindHash, Value: 1, Seed: 0},
		{Kind: fo.KindCohort, Value: 1, Seed: 17},
		{Kind: fo.KindCohort, Value: 0, Seed: 0},
	}
	batch := reportBatch{Round: 7, Token: "tok-0123456789abcdef"}
	for i, r := range reports {
		batch.Reports = append(batch.Reports, encodeContribution(100+i, collect.Contribution{Report: r}))
	}
	body, err := encodeBinary(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseBinaryHeader(body)
	if err != nil {
		t.Fatal(err)
	}
	if b.round != batch.Round || string(b.token) != batch.Token || b.count != len(reports) {
		t.Fatalf("header round-trip got round=%d token=%q count=%d", b.round, b.token, b.count)
	}
	if err := validateBinaryReports(b.reports, b.count); err != nil {
		t.Fatal(err)
	}
	off := 0
	for i, want := range reports {
		br, next, err := parseBinaryReport(b.reports, off)
		if err != nil {
			t.Fatalf("%s: parse: %v", want.Kind, err)
		}
		off = next
		if br.user != 100+i {
			t.Fatalf("%s: user %d, want %d", want.Kind, br.user, 100+i)
		}
		c, err := br.contribution(false, nil)
		if err != nil {
			t.Fatalf("%s: contribution: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(c.Report, want) {
			t.Fatalf("%s: round trip changed the report: got %+v, want %+v", want.Kind, c.Report, want)
		}
	}
	if off != len(b.reports) {
		t.Fatalf("%d trailing bytes after the last report", len(b.reports)-off)
	}
}

// TestBinaryNumericRoundTrip covers the numeric payload and both
// round-kind mismatch rejections.
func TestBinaryNumericRoundTrip(t *testing.T) {
	batch := reportBatch{Round: 1, Token: "t", Reports: []wireReport{
		encodeContribution(7, collect.Contribution{Numeric: true, Value: -0.25}),
	}}
	body, err := encodeBinary(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := parseBinaryHeader(body)
	if err != nil {
		t.Fatal(err)
	}
	br, _, err := parseBinaryReport(b.reports, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := br.contribution(true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Numeric || c.Value != -0.25 {
		t.Fatalf("numeric round trip got %+v", c)
	}
	if _, err := br.contribution(false, nil); err == nil {
		t.Fatal("numeric report in a frequency round must be rejected")
	}
	vr := binaryReport{kind: bwValue, value: 1}
	if _, err := vr.contribution(true, nil); err == nil {
		t.Fatal("value report in a numeric round must be rejected")
	}
}

// TestBinaryScratchDecode pins the zero-copy contract: with a scratch
// buffer, packed payloads decode into it (grown once, reused), and the
// decoded words match the allocating path exactly.
func TestBinaryScratchDecode(t *testing.T) {
	r := fo.Report{Kind: fo.KindPacked, Value: -1, Packed: []uint64{1, 0xffffffffffffffff, 42}}
	batch := reportBatch{Round: 1, Token: "t", Reports: []wireReport{
		encodeContribution(0, collect.Contribution{Report: r}),
	}}
	body, err := encodeBinary(batch)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := parseBinaryHeader(body)
	br, _, err := parseBinaryReport(b.reports, 0)
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]uint64, 0)
	c, err := br.contribution(false, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Report.Packed, r.Packed) {
		t.Fatalf("scratch decode got %v, want %v", c.Report.Packed, r.Packed)
	}
	if &scratch[0] != &c.Report.Packed[0] {
		t.Fatal("scratch decode did not reuse the scratch buffer")
	}
}

// TestBinaryEncodeRefusals pins the encoder's own validation: oversized
// tokens, out-of-range users, ragged packed payloads, and unknown kinds
// must fail at encode time, never produce a malformed frame.
func TestBinaryEncodeRefusals(t *testing.T) {
	long := make([]byte, 256)
	for _, tc := range []struct {
		name  string
		batch reportBatch
	}{
		{"oversized token", reportBatch{Token: string(long)}},
		{"negative user", reportBatch{Reports: []wireReport{{User: -1, Kind: "value"}}}},
		{"ragged packed", reportBatch{Reports: []wireReport{{Kind: "packed", Value: -1, Packed: make([]byte, 7)}}}},
		{"unknown kind", reportBatch{Reports: []wireReport{{Kind: "holographic"}}}},
	} {
		if _, err := encodeBinary(tc.batch); err == nil {
			t.Errorf("%s: encodeBinary accepted it", tc.name)
		}
	}
}

// TestParseWire covers the -wire flag values.
func TestParseWire(t *testing.T) {
	for s, want := range map[string]Wire{"": WireJSON, "json": WireJSON, "binary": WireBinary} {
		got, err := ParseWire(s)
		if err != nil || got != want {
			t.Errorf("ParseWire(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseWire("gob"); err == nil {
		t.Error("ParseWire accepted an unknown wire")
	}
}

// TestMediaType covers parameter stripping and case folding.
func TestMediaType(t *testing.T) {
	for ct, want := range map[string]string{
		"application/json":               "application/json",
		"application/json; charset=utf8": "application/json",
		" Application/X-LDPIDS-Batch ":   ContentTypeBinary,
		"":                               "",
		"text/plain;q=1":                 "text/plain",
	} {
		if got := mediaType(ct); got != want {
			t.Errorf("mediaType(%q) = %q, want %q", ct, got, want)
		}
	}
}

// TestBinaryWireFallback proves the 415 negotiation: a binary-wire client
// behind a server that does not speak the binary framing falls back to
// JSON on the same batch (nothing lost), stays on JSON afterwards, and
// every round still completes.
func TestBinaryWireFallback(t *testing.T) {
	const n, d = 4, 8
	backend, err := NewBackend(n)
	if err != nil {
		t.Fatal(err)
	}
	backend.Timeout = 10 * time.Second
	var binaryPosts atomic.Int64
	// A front end that predates the binary framing: 415 on the binary
	// content type, everything else straight through.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/report" && mediaType(r.Header.Get("Content-Type")) == ContentTypeBinary {
			binaryPosts.Add(1)
			http.Error(w, "no binary here", http.StatusUnsupportedMediaType)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer ts.Close()

	fns := Funcs{Report: func(id, t int, eps float64) fo.Report {
		return fo.Report{Kind: fo.KindValue, Value: id % d}
	}}
	cl, err := NewClient(ts.URL, 0, n, fns)
	if err != nil {
		t.Fatal(err)
	}
	cl.Wire = WireBinary
	cl.PollWait = 2 * time.Second
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := cl.Serve(); err != nil {
			t.Errorf("client: %v", err)
		}
	}()

	oracle := fo.NewGRR(d)
	for round := 1; round <= 2; round++ {
		agg, err := oracle.NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(collect.Request{T: round, Eps: 1}, collect.AggregatorSink{Agg: agg}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	backend.Close()
	cl.Close()
	wg.Wait()
	// Exactly one binary attempt: the first post negotiated down, and the
	// client never advertised binary again.
	if got := binaryPosts.Load(); got != 1 {
		t.Fatalf("binary posts = %d, want exactly 1 (negotiate once, then stay on JSON)", got)
	}
	if !cl.jsonOnly {
		t.Fatal("client did not latch the JSON fallback")
	}
}

// TestBinaryWireMatchesJSON runs the same deterministic packed round over
// both wires and demands bit-identical aggregator counters and identical
// canonical journal batches — the end-to-end equivalence the CI smoke
// jobs check at release-log granularity.
func TestBinaryWireMatchesJSON(t *testing.T) {
	const n, d = 6, 192
	fns := Funcs{Report: func(id, t int, eps float64) fo.Report {
		src := ldprand.New(uint64(id)<<32 | uint64(t))
		words := make([]uint64, (d+63)/64)
		for i := range words {
			words[i] = src.Uint64()
		}
		words[len(words)-1] &= (1 << (d % 64)) - 1
		return fo.Report{Kind: fo.KindPacked, Value: -1, Packed: words}
	}}

	run := func(wire Wire) (fo.CounterFrame, []history.Record) {
		logPath := filepath.Join(t.TempDir(), "ingest.jsonl")
		hist, err := history.Create(logPath)
		if err != nil {
			t.Fatal(err)
		}
		hist.Append(history.Record{Kind: history.KindConfig, Source: "gateway",
			N: n, D: d, Oracle: "OUE-packed", W: 4, Budget: 4})
		backend, err := NewBackend(n)
		if err != nil {
			t.Fatal(err)
		}
		backend.Timeout = 10 * time.Second
		backend.History = hist
		backend.Wire = wire
		ts := httptest.NewServer(backend)
		defer ts.Close()
		cl, err := NewClient(ts.URL, 0, n, fns)
		if err != nil {
			t.Fatal(err)
		}
		cl.Wire = wire
		cl.PollWait = 2 * time.Second
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := cl.Serve(); err != nil {
				t.Errorf("client: %v", err)
			}
		}()
		agg, err := fo.NewOUEPacked(d).NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := backend.Collect(collect.Request{T: 1, Eps: 1}, collect.AggregatorSink{Agg: agg}); err != nil {
			t.Fatal(err)
		}
		backend.Close()
		cl.Close()
		wg.Wait()
		if err := hist.Close(); err != nil {
			t.Fatal(err)
		}
		frame, err := fo.ExportCounters(agg)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := history.ReadAll(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if res := history.Check(recs); !res.OK() {
			t.Fatalf("%s-wire history fails the checker: %q", wire, res.Violations)
		}
		return frame, recs
	}

	jsonFrame, jsonRecs := run(WireJSON)
	binFrame, binRecs := run(WireBinary)
	if !reflect.DeepEqual(jsonFrame, binFrame) {
		t.Fatal("binary-wire counters differ from JSON-wire counters")
	}
	batches := func(recs []history.Record) [][]history.Report {
		var out [][]history.Report
		for _, rec := range recs {
			if rec.Kind == history.KindBatch && rec.Verdict == history.VerdictAccepted {
				out = append(out, rec.Reports)
			}
		}
		return out
	}
	if !reflect.DeepEqual(batches(jsonRecs), batches(binRecs)) {
		t.Fatal("journaled canonical batches differ across wires")
	}
}
