package transport

import (
	"encoding/gob"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/collect/collecttest"
	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/numeric"
	"ldpids/internal/serve"
	"ldpids/internal/stream"
)

// cluster is a loopback server plus the client processes hosting its
// population.
type cluster struct {
	srv     *Server
	clients []*Client
	wg      sync.WaitGroup
}

// startCluster launches a loopback server for n users answering through
// fns, sharding the population across connections of the given sizes
// (sizes summing to n; nil means one connection per user). Batching is
// therefore exercised whenever a size exceeds 1.
func startCluster(t *testing.T, n int, fns Funcs, sizes []int) *cluster {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	if sizes == nil {
		for i := 0; i < n; i++ {
			sizes = append(sizes, 1)
		}
	}
	c := &cluster{srv: srv}
	first := 0
	for _, size := range sizes {
		cl, err := NewClient(srv.Addr(), first, size, fns)
		if err != nil {
			t.Fatal(err)
		}
		first += size
		c.clients = append(c.clients, cl)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			_ = cl.Serve() // exits when the connection closes
		}()
	}
	if first != n {
		t.Fatalf("connection sizes sum to %d, want %d", first, n)
	}
	if err := srv.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *cluster) stop() {
	c.srv.Close()
	for _, cl := range c.clients {
		cl.Close()
	}
	c.wg.Wait()
}

// snapshotFuncs builds per-user deterministic reporters over oracle with
// per-user sources, users answering from fixed per-timestamp snapshots.
func snapshotFuncs(oracle fo.Oracle, snaps [][]int, baseSeed uint64, n int) Funcs {
	srcs := make([]*ldprand.Source, n)
	for u := range srcs {
		srcs[u] = ldprand.New(baseSeed + uint64(u))
	}
	return Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			return oracle.Perturb(snaps[ts-1][id], eps, srcs[id])
		},
	}
}

func TestConformanceTCP(t *testing.T) {
	// The acceptance bar: the TCP backend produces bit-identical estimates
	// to the in-process reference, across single-user and batched
	// connections.
	specs := map[string]struct {
		spec  collecttest.Spec
		sizes []int
	}{
		"GRR-batched":        {collecttest.Spec{N: 24, Oracle: fo.NewGRR(5), BaseSeed: 500, Numeric: true}, []int{1, 7, 16}},
		"OUE-packed-batched": {collecttest.Spec{N: 18, Oracle: fo.NewOUEPacked(100), BaseSeed: 600}, []int{9, 9}},
		"OLH-single":         {collecttest.Spec{N: 6, Oracle: fo.NewOLH(8), BaseSeed: 700}, nil},
		"OLH-C-batched":      {collecttest.Spec{N: 20, Oracle: fo.NewOLHC(16), BaseSeed: 800}, []int{5, 15}},
	}
	for name, tc := range specs {
		tc := tc
		t.Run(name, func(t *testing.T) {
			collecttest.Run(t, tc.spec, func(t *testing.T) (collect.Collector, func()) {
				report, numeric := tc.spec.Reporters()
				c := startCluster(t, tc.spec.N, Funcs{Report: report, NumericReport: numeric}, tc.sizes)
				return c.srv, c.stop
			})
		})
	}
}

func TestFullMechanismOverTCP(t *testing.T) {
	// Run LPA end-to-end over the network env: the mechanism only sees
	// FO reports from the wire.
	n, w, T := 120, 4, 12
	root := ldprand.New(54321)
	oracle := fo.NewGRR(2)
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	snaps := stream.Materialize(s, T)
	truth := stream.Histograms(snaps, 2)

	c := startCluster(t, n, snapshotFuncs(oracle, snaps, 1000, n), []int{40, 40, 40})
	defer c.stop()

	m, err := mechanism.NewLPA(mechanism.Params{
		Eps: 2, W: w, N: n, Oracle: oracle, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	env := collect.NewEnv(c.srv)
	var released [][]float64
	for ts := 1; ts <= T; ts++ {
		env.Advance(ts)
		r, err := m.Step(env)
		if err != nil {
			t.Fatalf("step %d: %v", ts, err)
		}
		released = append(released, r)
	}
	if len(released) != T {
		t.Fatal("missing releases")
	}
	// Releases should be in a sane range given truth stays near 0.075.
	for ts := range released {
		for k := range released[ts] {
			if math.Abs(released[ts][k]-truth[ts][k]) > 1.5 {
				t.Fatalf("wild release %v vs truth %v at t=%d", released[ts][k], truth[ts][k], ts+1)
			}
		}
	}
	// Population division over TCP: far fewer reports than n*T.
	stats := env.Stats()
	if stats.CFPU >= 1 {
		t.Fatalf("LPA CFPU %v over TCP should be << 1", stats.CFPU)
	}
}

func TestMeanMechanismOverTCP(t *testing.T) {
	// Acceptance: a numeric mean mechanism runs end-to-end over the TCP
	// backend — the "simulation-only" gap is closed.
	n, w, T := 300, 3, 9
	root := ldprand.New(99)
	pert := numeric.Duchi{}

	// Each user's true value drifts deterministically around 0.4.
	value := func(id, ts int) float64 {
		return 0.4 + 0.2*math.Sin(float64(id)+float64(ts)*0.5)
	}
	srcs := make([]*ldprand.Source, n)
	for u := range srcs {
		srcs[u] = ldprand.New(4000 + uint64(u))
	}
	c := startCluster(t, n, Funcs{
		NumericReport: func(id, ts int, eps float64) float64 {
			return pert.Perturb(value(id, ts), eps, srcs[id])
		},
	}, []int{100, 100, 100})
	defer c.stop()

	m, err := numeric.NewMeanLPU(numeric.MeanParams{
		Eps: 1, W: w, N: n, Perturber: pert, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	env := collect.NewEnv(c.srv)
	for ts := 1; ts <= T; ts++ {
		env.Advance(ts)
		mean, err := m.Step(env)
		if err != nil {
			t.Fatalf("t=%d: %v", ts, err)
		}
		// n/w = 100 reporters with Duchi at eps=1: stderr ≈ 0.22; stay
		// within 5 sigma of the true mean band around 0.4.
		if math.Abs(mean-0.4) > 1.2 {
			t.Fatalf("t=%d: released mean %v wildly off", ts, mean)
		}
	}
	stats := env.Stats()
	if stats.Reports != int64(T*(n/w)) {
		t.Fatalf("numeric rounds uploaded %d reports, want %d", stats.Reports, T*(n/w))
	}
	// Each 8-byte value is billed with the gob framing overhead on top.
	wantBytes := stats.Reports * int64(8+c.srv.FrameOverhead(8))
	if stats.Bytes != wantBytes {
		t.Fatalf("numeric rounds accounted %d bytes, want %d", stats.Bytes, wantBytes)
	}
}

// TestFrameOverheadAcrossTransports compares the per-report billing of
// every wire encoding the system speaks: the TCP server's gob framing,
// and the HTTP backend's JSON and binary batch framings. All three
// implement collect.Framed, so communication totals stay comparable —
// and the flat framings must bill a small constant envelope while the
// JSON estimate grows with the payload (base64 expansion plus the
// per-report envelope).
func TestFrameOverheadAcrossTransports(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	jsonBackend, err := serve.NewBackend(4)
	if err != nil {
		t.Fatal(err)
	}
	defer jsonBackend.Close()
	binBackend, err := serve.NewBackend(4)
	if err != nil {
		t.Fatal(err)
	}
	binBackend.Wire = serve.WireBinary
	defer binBackend.Close()

	var _ collect.Framed = srv
	var _ collect.Framed = jsonBackend

	// Payloads spanning the report shapes: a hash report's 8 bytes up to
	// a d=65536 packed payload's 8 KiB.
	for _, payload := range []int{8, 64, 8192} {
		gob := srv.FrameOverhead(payload)
		jsonOv := jsonBackend.FrameOverhead(payload)
		bin := binBackend.FrameOverhead(payload)
		if gob != 12 {
			t.Errorf("gob overhead at %d B = %d, want the constant 12", payload, gob)
		}
		if bin != 9 {
			t.Errorf("binary overhead at %d B = %d, want the constant 9", payload, bin)
		}
		if jsonOv != payload/3+48 {
			t.Errorf("json overhead at %d B = %d, want %d", payload, jsonOv, payload/3+48)
		}
		if !(bin < gob && gob < jsonOv) {
			t.Errorf("overhead ordering at %d B: binary %d, gob %d, json %d — want binary < gob < json",
				payload, bin, gob, jsonOv)
		}
	}
}

func TestCollectSubsetAndUnknownUser(t *testing.T) {
	n := 12
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	c := startCluster(t, n, snapshotFuncs(oracle, snaps, 1, n), []int{6, 6})
	defer c.stop()

	env := collect.NewEnv(c.srv)
	env.Advance(1)
	reports, err := env.Collect([]int{0, 5, 7}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("subset collect returned %d reports", len(reports))
	}
	if stats := env.Stats(); stats.Reports != 3 {
		t.Fatalf("comm recorded %d reports", stats.Reports)
	}
	if _, err := env.Collect([]int{99}, 1.0); err == nil {
		t.Fatal("unknown user accepted")
	}
	if _, err := env.Collect(nil, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
}

func TestWaitReadyTimeout(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.WaitReady(50 * time.Millisecond); err == nil {
		t.Fatal("WaitReady with no clients should time out")
	}
}

func TestDoubleRegistrationRejected(t *testing.T) {
	n := 4
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	c := startCluster(t, n, snapshotFuncs(oracle, snaps, 1, n), []int{4})
	defer c.stop()

	// A second client overlapping id 2: the server must reject the
	// registration with an explicit error, not a silent close.
	_, err := NewClient(c.srv.Addr(), 2, 1, Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			return fo.Report{Kind: fo.KindValue}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v", err)
	}
	// Out-of-range claims are rejected too.
	_, err = NewClient(c.srv.Addr(), n-1, 2, Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			return fo.Report{Kind: fo.KindValue}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "outside population") {
		t.Fatalf("out-of-range registration error = %v", err)
	}
}

func TestClientDisconnectMidRound(t *testing.T) {
	// A raw connection that registers, then closes as soon as a request
	// arrives: the round must error cleanly, and the next round must fail
	// fast because the dead connection was dropped from the registry.
	n := 3
	srv, err := NewServer("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Timeout = 2 * time.Second

	oracle := fo.NewGRR(2)
	src := ldprand.New(5)
	good, err := NewClient(srv.Addr(), 0, 2, Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			return oracle.Perturb(0, eps, src)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	go good.Serve()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{First: 2, Count: 1}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || ack.Err != "" {
		t.Fatalf("registration failed: %v %q", err, ack.Err)
	}
	go func() {
		var req request
		_ = dec.Decode(&req) // wait for the round to start...
		conn.Close()         // ...then die mid-round
	}()
	if err := srv.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	err = srv.Collect(collect.Request{T: 1, Eps: 1}, &collect.SliceSink{})
	if err == nil {
		t.Fatal("round with a dying client succeeded")
	}
	// The dead connection is gone from the registry: the next round fails
	// fast with a clean "not registered" error instead of reusing it.
	err = srv.Collect(collect.Request{T: 2, Eps: 1}, &collect.SliceSink{})
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("round after disconnect = %v, want not-registered error", err)
	}

	// A replacement client can reclaim the freed id without tripping the
	// ready latch (regression: re-registration after a drop used to
	// double-close readyCh and panic the server).
	replacement, err := NewClient(srv.Addr(), 2, 1, Funcs{
		Report: func(id, ts int, eps float64) fo.Report {
			return oracle.Perturb(1, eps, src)
		},
	})
	if err != nil {
		t.Fatalf("re-registration after drop: %v", err)
	}
	defer replacement.Close()
	go replacement.Serve()
	sink := &collect.SliceSink{}
	if err := srv.Collect(collect.Request{T: 3, Eps: 1}, sink); err != nil {
		t.Fatalf("round after re-registration: %v", err)
	}
	if len(sink.Reports) != n {
		t.Fatalf("round after re-registration folded %d reports, want %d", len(sink.Reports), n)
	}
}

func TestInBandErrorKeepsRegistration(t *testing.T) {
	// A frequency-only client asked for a numeric round reports an in-band
	// error; the connection must stay registered and serve later frequency
	// rounds (regression: application-level errors used to drop the conn).
	n := 2
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n), make([]int, n)}
	c := startCluster(t, n, snapshotFuncs(oracle, snaps, 1, n), []int{2})
	defer c.stop()

	err := c.srv.Collect(collect.Request{T: 1, Eps: 1, Numeric: true}, &collect.MeanSink{})
	if err == nil || !strings.Contains(err.Error(), "numeric") {
		t.Fatalf("numeric round against frequency-only client = %v", err)
	}
	sink := &collect.SliceSink{}
	if err := c.srv.Collect(collect.Request{T: 2, Eps: 1}, sink); err != nil {
		t.Fatalf("frequency round after in-band error: %v", err)
	}
	if len(sink.Reports) != n {
		t.Fatalf("folded %d reports after in-band error, want %d", len(sink.Reports), n)
	}
}

func TestRequestTimeout(t *testing.T) {
	// A client that registers but never answers: the round must return a
	// deadline error within Server.Timeout instead of hanging.
	n := 1
	srv, err := NewServer("127.0.0.1:0", n)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Timeout = 200 * time.Millisecond

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(hello{First: 0, Count: 1}); err != nil {
		t.Fatal(err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil || ack.Err != "" {
		t.Fatalf("registration failed: %v %q", err, ack.Err)
	}
	if err := srv.WaitReady(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		done <- srv.Collect(collect.Request{T: 1, Eps: 1}, &collect.SliceSink{})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("silent client round succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round with a silent client hung past the timeout")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("127.0.0.1:1", 0, 1, Funcs{}); err == nil {
		t.Fatal("client without report functions accepted")
	}
	if _, err := NewClient("127.0.0.1:1", 0, 0, Funcs{
		Report: func(id, ts int, eps float64) fo.Report { return fo.Report{} },
	}); err == nil {
		t.Fatal("non-positive user count accepted")
	}
}
