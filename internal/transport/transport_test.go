package transport

import (
	"math"
	"sync"
	"testing"
	"time"

	"ldpids/internal/fo"
	"ldpids/internal/ldprand"
	"ldpids/internal/mechanism"
	"ldpids/internal/stream"
)

// startCluster launches a loopback server plus n clients whose values come
// from the given per-timestamp snapshots.
func startCluster(t *testing.T, n int, oracle fo.Oracle, snapshots [][]int) (*Server, func()) {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", oracle, n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	clients := make([]*Client, n)
	for id := 0; id < n; id++ {
		id := id
		src := ldprand.New(uint64(1000 + id))
		value := func(ts int) int { return snapshots[ts-1][id] }
		perturb := func(v int, eps float64) fo.Report { return oracle.Perturb(v, eps, src) }
		c, err := NewClient(srv.Addr(), id, value, perturb)
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.Serve() // exits when connection closes
		}()
	}
	if err := srv.WaitReady(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		srv.Close()
		for _, c := range clients {
			c.Close()
		}
		wg.Wait()
	}
	return srv, cleanup
}

func TestCollectAllOverTCP(t *testing.T) {
	n := 60
	oracle := fo.NewGRR(2)
	// All users hold value 1 at every timestamp.
	snaps := [][]int{make([]int, n)}
	for i := range snaps[0] {
		snaps[0][i] = 1
	}
	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()

	srv.Advance(1)
	reports, err := srv.Collect(nil, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != n {
		t.Fatalf("got %d reports", len(reports))
	}
	est, err := oracle.Estimate(reports, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	// With eps=2 and 60 users, element 1 should dominate.
	if est[1] < 0.6 {
		t.Fatalf("estimate %v does not reflect all-ones population", est)
	}
}

func TestCollectStreamOverTCP(t *testing.T) {
	// The streaming fold must see every report and yield a sane estimate
	// without the server buffering a report slice.
	n := 60
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	for i := range snaps[0] {
		snaps[0][i] = 1
	}
	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()

	var env mechanism.StreamEnv = srv // compile-time interface check
	srv.Advance(1)
	agg, err := oracle.NewAggregator(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.CollectStream(nil, 2.0, agg); err != nil {
		t.Fatal(err)
	}
	if agg.Reports() != n {
		t.Fatalf("aggregator folded %d reports, want %d", agg.Reports(), n)
	}
	est, err := agg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est[1] < 0.6 {
		t.Fatalf("streamed estimate %v does not reflect all-ones population", est)
	}
	if stats := srv.CommStats(); stats.Reports != int64(n) || stats.Bytes == 0 {
		t.Fatalf("comm accounting missed the streamed round: %+v", stats)
	}
}

func TestCollectSubset(t *testing.T) {
	n := 30
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()

	srv.Advance(1)
	reports, err := srv.Collect([]int{0, 5, 7}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("subset collect returned %d reports", len(reports))
	}
	stats := srv.CommStats()
	if stats.Reports != 3 {
		t.Fatalf("comm recorded %d reports", stats.Reports)
	}
}

func TestCollectUnknownUser(t *testing.T) {
	n := 5
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()
	srv.Advance(1)
	if _, err := srv.Collect([]int{99}, 1.0); err == nil {
		t.Fatal("unknown user accepted")
	}
	if _, err := srv.Collect(nil, 0); err == nil {
		t.Fatal("zero eps accepted")
	}
}

func TestWaitReadyTimeout(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", fo.NewGRR(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.WaitReady(50 * time.Millisecond); err == nil {
		t.Fatal("WaitReady with no clients should time out")
	}
}

func TestFullMechanismOverTCP(t *testing.T) {
	// Run LPA end-to-end over the network env: the mechanism only sees
	// FO reports from the wire.
	n, w, T := 120, 4, 12
	root := ldprand.New(54321)
	oracle := fo.NewGRR(2)
	s := stream.NewBinaryStream(n, stream.DefaultSin(), root.Split())
	snaps := stream.Materialize(s, T)
	truth := stream.Histograms(snaps, 2)

	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()

	m, err := mechanism.NewLPA(mechanism.Params{
		Eps: 2, W: w, N: n, Oracle: oracle, Src: root.Split()})
	if err != nil {
		t.Fatal(err)
	}
	var released [][]float64
	for ts := 1; ts <= T; ts++ {
		srv.Advance(ts)
		r, err := m.Step(srv)
		if err != nil {
			t.Fatalf("step %d: %v", ts, err)
		}
		released = append(released, r)
	}
	if len(released) != T {
		t.Fatal("missing releases")
	}
	// Releases should be in a sane range given truth stays near 0.075.
	for ts := range released {
		for k := range released[ts] {
			if math.Abs(released[ts][k]-truth[ts][k]) > 1.5 {
				t.Fatalf("wild release %v vs truth %v at t=%d", released[ts][k], truth[ts][k], ts+1)
			}
		}
	}
	// Population division over TCP: far fewer reports than n*T.
	stats := srv.CommStats()
	if stats.CFPU >= 1 {
		t.Fatalf("LPA CFPU %v over TCP should be << 1", stats.CFPU)
	}
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	n := 2
	oracle := fo.NewGRR(2)
	snaps := [][]int{make([]int, n)}
	srv, cleanup := startCluster(t, n, oracle, snaps)
	defer cleanup()
	// A second client with id 0: the server must drop the connection.
	src := ldprand.New(9)
	c, err := NewClient(srv.Addr(), 0,
		func(ts int) int { return 0 },
		func(v int, eps float64) fo.Report { return oracle.Perturb(v, eps, src) })
	if err != nil {
		t.Fatal(err) // dial+register writes succeed; rejection is a close
	}
	defer c.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve() }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("duplicate client served successfully")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("duplicate client not disconnected")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("127.0.0.1:1", 0, nil, nil); err == nil {
		t.Fatal("nil callbacks accepted")
	}
}
