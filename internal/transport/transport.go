// Package transport runs the LDP-IDS collection protocol over real TCP
// connections: the aggregator (Server) implements collect.Collector by
// fanning batched report requests out to registered user clients, each of
// which perturbs its values locally — raw values never leave the client
// process. Drive mechanisms over it through collect.NewEnv(server).
//
// The wire format is length-delimited gob. One connection can host many
// users (a client process registers a contiguous id range), and the server
// sends a single batched request per connection per round, so a simulated
// population of thousands of users costs a handful of round-trips per
// timestamp instead of one per user. Both frequency rounds (fo.Report) and
// numeric mean rounds (perturbed float64) travel over the same protocol.
//
// Failure paths surface as errors, never hangs: registration conflicts are
// rejected with an explicit ack, per-round exchanges honor Server.Timeout,
// and a connection that dies mid-round is dropped from the registry so the
// next round fails fast.
//
// cmd/ldpids-server and cmd/ldpids-client wire the package into a runnable
// demo; the package tests exercise the full protocol — including the
// backend conformance suite — over loopback.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ldpids/internal/collect"
	"ldpids/internal/fo"
)

// DefaultTimeout bounds each per-connection round-trip (and registration
// handshake) unless Server.Timeout overrides it.
const DefaultTimeout = 30 * time.Second

// hello is the registration message a client sends on connect: it claims
// the contiguous user id range [First, First+Count).
type hello struct {
	First int
	Count int
}

// helloAck answers a registration. A non-empty Err means the claim was
// rejected (id out of range, or already registered).
type helloAck struct {
	Err string
}

// request asks a connection to report for its listed users at timestamp T
// with budget Eps. Users holds absolute ids, all owned by the connection.
// Numeric selects a numeric mean round instead of a frequency round.
type request struct {
	T       int
	Eps     float64
	Users   []int
	Numeric bool
}

// response carries one batch of perturbed contributions back to the
// aggregator, in the same order as request.Users. A non-empty Err reports
// a client-side failure for the whole batch.
type response struct {
	Reports []fo.Report
	Values  []float64
	Err     string
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

// Server is the aggregator side: it accepts client registrations and
// implements collect.Collector by fanning batched report requests out to
// client connections.
type Server struct {
	// Timeout bounds each per-connection request/response exchange. Zero
	// selects DefaultTimeout; negative disables deadlines.
	Timeout time.Duration

	ln net.Listener
	n  int

	mu         sync.Mutex
	conns      map[int]*clientConn // user id -> owning connection
	registered int
	ready      bool // readyCh closed (latches across drop/re-register)
	readyCh    chan struct{}
}

// clientConn is one registered client connection hosting a batch of users.
// Request/response exchanges are serialized per connection.
type clientConn struct {
	mu    sync.Mutex
	conn  net.Conn
	enc   *gob.Encoder
	dec   *gob.Decoder
	first int
	count int
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for a population of n
// users.
func NewServer(addr string, n int) (*Server, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: population must be positive, got %d", n)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		n:       n,
		conns:   make(map[int]*clientConn),
		readyCh: make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// N implements collect.Collector.
func (s *Server) N() int { return s.n }

// gobFrameOverhead approximates the wire bytes gob adds per report inside a
// batched response beyond the payload itself: field numbers and lengths for
// the populated Report fields plus the slice-element bookkeeping — roughly
// a dozen bytes regardless of payload size (the type descriptor is sent
// once per connection and amortizes to ~0).
const gobFrameOverhead = 12

// FrameOverhead implements collect.Framed: the per-contribution framing
// cost of the batched gob wire format, so communication metrics over TCP
// are comparable with other network backends instead of counting bare
// payload bytes.
func (s *Server) FrameOverhead(payload int) int { return gobFrameOverhead }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.register(conn)
	}
}

// register runs the registration handshake on a new connection: decode the
// hello, claim the id range, and ack. Rejected connections receive the
// reason before being closed. The connection's mutex is held from before
// it becomes visible to Collect until the ack is on the wire, so the ack
// always precedes the first round's request on the stream.
func (s *Server) register(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return
	}
	if h.Count == 0 {
		h.Count = 1 // single-user client
	}
	cc := &clientConn{conn: conn, enc: enc, dec: dec, first: h.First, count: h.Count}
	cc.mu.Lock()
	if err := s.claim(cc, h); err != nil {
		cc.mu.Unlock()
		_ = enc.Encode(helloAck{Err: err.Error()})
		conn.Close()
		return
	}
	err := enc.Encode(helloAck{})
	cc.mu.Unlock()
	if err != nil {
		s.drop(cc)
	}
}

// claim validates and records a registration under the server lock. The
// hello comes off the network: bounds are checked without trusting the
// arithmetic (First+Count could overflow).
func (s *Server) claim(cc *clientConn, h hello) error {
	if h.First < 0 || h.Count < 1 || h.First >= s.n || h.Count > s.n-h.First {
		return fmt.Errorf("transport: id range starting at %d (count %d) outside population [0,%d)",
			h.First, h.Count, s.n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := h.First; id < h.First+h.Count; id++ {
		if s.conns[id] != nil {
			return fmt.Errorf("transport: user %d already registered", id)
		}
	}
	for id := h.First; id < h.First+h.Count; id++ {
		s.conns[id] = cc
	}
	s.registered += h.Count
	if s.registered == s.n && !s.ready {
		s.ready = true
		close(s.readyCh)
	}
	return nil
}

// WaitReady blocks until all n users have registered or the timeout
// elapses.
func (s *Server) WaitReady(timeout time.Duration) error {
	select {
	case <-s.readyCh:
		return nil
	case <-time.After(timeout):
		s.mu.Lock()
		got := s.registered
		s.mu.Unlock()
		return fmt.Errorf("transport: only %d/%d users registered after %v", got, s.n, timeout)
	}
}

// batch is one connection's share of a round.
type batch struct {
	cc    *clientConn
	users []int
}

// batches groups the round's users by owning connection, preserving first-
// appearance order, under the server lock.
func (s *Server) batches(users []int) ([]batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if users == nil {
		users = make([]int, s.n)
		for id := range users {
			users[id] = id
		}
	}
	var out []batch
	index := make(map[*clientConn]int)
	for _, id := range users {
		cc := s.conns[id]
		if cc == nil {
			return nil, fmt.Errorf("transport: user %d not registered", id)
		}
		i, ok := index[cc]
		if !ok {
			i = len(out)
			index[cc] = i
			out = append(out, batch{cc: cc})
		}
		out[i].users = append(out[i].users, id)
	}
	return out, nil
}

// drop removes a failed connection from the registry and closes it, so the
// next round fails fast with "not registered" instead of reusing a dead
// socket.
func (s *Server) drop(cc *clientConn) {
	s.mu.Lock()
	for id, c := range s.conns {
		if c == cc {
			delete(s.conns, id)
			s.registered--
		}
	}
	s.mu.Unlock()
	cc.conn.Close()
}

// appError is a client-reported, in-band failure: the connection answered
// with a complete (if unusable) response, so the stream is still in sync
// and the registration stays valid.
type appError struct{ msg string }

func (e appError) Error() string { return e.msg }

// exchange runs one batched request/response round-trip on a connection.
// Transport failures (encode/decode errors, deadline expiry) come back as
// plain errors; client-reported failures come back as appError.
func (s *Server) exchange(cc *clientConn, req request) (*response, error) {
	timeout := s.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if timeout > 0 {
		cc.conn.SetDeadline(time.Now().Add(timeout))
		defer cc.conn.SetDeadline(time.Time{})
	}
	if err := cc.enc.Encode(req); err != nil {
		return nil, err
	}
	var resp response
	if err := cc.dec.Decode(&resp); err != nil {
		return nil, err
	}
	if resp.Err != "" {
		return nil, appError{msg: resp.Err}
	}
	want := len(req.Users)
	if req.Numeric {
		if len(resp.Values) != want {
			return nil, appError{msg: fmt.Sprintf("transport: batch returned %d values, want %d", len(resp.Values), want)}
		}
	} else if len(resp.Reports) != want {
		return nil, appError{msg: fmt.Sprintf("transport: batch returned %d reports, want %d", len(resp.Reports), want)}
	}
	return &resp, nil
}

// Collect implements collect.Collector: the round is split into one
// batched request per client connection, exchanges run concurrently, and
// contributions fold into sink as each batch arrives (Absorb calls are
// serialized). A connection that fails mid-round is dropped from the
// registry and the round returns its error.
func (s *Server) Collect(req collect.Request, sink collect.Sink) error {
	if err := req.Validate(s.n); err != nil {
		return err
	}
	bs, err := s.batches(req.Users)
	if err != nil {
		return err
	}
	var (
		sinkMu sync.Mutex
		wg     sync.WaitGroup
	)
	errs := make([]error, len(bs))
	for i := range bs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := bs[i]
			resp, err := s.exchange(b.cc, request{
				T: req.T, Eps: req.Eps, Users: b.users, Numeric: req.Numeric,
			})
			if err != nil {
				// Only a broken stream costs the connection its
				// registration; in-band client failures leave it usable.
				var app appError
				if !errors.As(err, &app) {
					s.drop(b.cc)
				}
				errs[i] = fmt.Errorf("transport: users %v: %w", b.users, err)
				return
			}
			sinkMu.Lock()
			defer sinkMu.Unlock()
			for j := range b.users {
				c := collect.Contribution{Numeric: req.Numeric}
				if req.Numeric {
					c.Value = resp.Values[j]
				} else {
					c.Report = resp.Reports[j]
				}
				if err := sink.Absorb(c); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close shuts the server and all client connections down.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cc := range s.conns {
		cc.conn.Close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

// Funcs holds a client process's local randomizers. Report answers
// frequency rounds; NumericReport answers numeric mean rounds. A nil
// function rejects that round kind with a clean protocol error. Both
// receive the absolute user id, the timestamp, and the round budget; the
// user's true value stays inside the client process.
type Funcs struct {
	Report        func(id, t int, eps float64) fo.Report
	NumericReport func(id, t int, eps float64) float64
}

// Client hosts a contiguous range of users on one aggregator connection
// and answers batched report requests by perturbing locally.
type Client struct {
	conn net.Conn
	// enc/dec are created once at registration: gob buffers ahead on the
	// connection, so the handshake and serve loop must share them.
	enc   *gob.Encoder
	dec   *gob.Decoder
	first int
	count int
	fns   Funcs
}

// NewClient connects to the aggregator at addr and registers users
// [first, first+count). It returns an error if the aggregator rejects the
// registration (out-of-range ids, or ids already registered).
func NewClient(addr string, first, count int, fns Funcs) (*Client, error) {
	if fns.Report == nil && fns.NumericReport == nil {
		return nil, errors.New("transport: client needs at least one report function")
	}
	if count < 1 {
		return nil, fmt.Errorf("transport: client needs a positive user count, got %d", count)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	conn.SetDeadline(time.Now().Add(DefaultTimeout))
	if err := enc.Encode(hello{First: first, Count: count}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	if ack.Err != "" {
		conn.Close()
		return nil, fmt.Errorf("transport: register: %s", ack.Err)
	}
	conn.SetDeadline(time.Time{})
	return &Client{conn: conn, enc: enc, dec: dec, first: first, count: count, fns: fns}, nil
}

// answer builds the response for one batched request.
func (c *Client) answer(req request) response {
	var resp response
	if req.Numeric {
		resp.Values = make([]float64, 0, len(req.Users))
	} else {
		resp.Reports = make([]fo.Report, 0, len(req.Users))
	}
	for _, id := range req.Users {
		if id < c.first || id >= c.first+c.count {
			return response{Err: fmt.Sprintf("transport: user %d not hosted by this client", id)}
		}
		if req.Numeric {
			if c.fns.NumericReport == nil {
				return response{Err: "transport: client does not support numeric rounds"}
			}
			resp.Values = append(resp.Values, c.fns.NumericReport(id, req.T, req.Eps))
		} else {
			if c.fns.Report == nil {
				return response{Err: "transport: client does not support frequency rounds"}
			}
			resp.Reports = append(resp.Reports, c.fns.Report(id, req.T, req.Eps))
		}
	}
	return resp
}

// Serve answers batched report requests until the connection closes.
func (c *Client) Serve() error {
	for {
		var req request
		if err := c.dec.Decode(&req); err != nil {
			return err
		}
		if err := c.enc.Encode(c.answer(req)); err != nil {
			return err
		}
	}
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
