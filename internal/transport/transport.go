// Package transport runs the LDP-IDS collection protocol over real TCP
// connections: an aggregator (Server) implements mechanism.Env by issuing
// report requests to registered user clients, each of which perturbs its
// current value locally — raw values never leave the client process. The
// wire format is length-delimited gob.
//
// This is the distributed counterpart of the in-process simulation runner;
// cmd/ldpids-server and cmd/ldpids-client wire it into a runnable demo, and
// the package tests exercise the full protocol over loopback.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ldpids/internal/comm"
	"ldpids/internal/fo"
)

// hello is the registration message a client sends on connect.
type hello struct {
	ID int
}

// request asks a client to report its value at timestamp T with budget Eps.
type request struct {
	T   int
	Eps float64
}

// response carries one perturbed report back to the aggregator.
type response struct {
	Report fo.Report
}

// Server is the aggregator side: it accepts client registrations and
// implements mechanism.Env by fanning report requests out to clients.
type Server struct {
	ln      net.Listener
	oracle  fo.Oracle
	counter *comm.Counter

	mu      sync.Mutex
	clients map[int]*clientConn
	t       int
	n       int

	readyCh chan struct{}
}

// clientConn is one registered client connection. Request/response pairs
// are serialized per connection.
type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// NewServer listens on addr (e.g. "127.0.0.1:0") for a population of n
// users reporting through the given oracle.
func NewServer(addr string, oracle fo.Oracle, n int) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{
		ln:      ln,
		oracle:  oracle,
		counter: comm.NewCounter(n),
		clients: make(map[int]*clientConn),
		n:       n,
		readyCh: make(chan struct{}),
	}
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go s.register(conn)
	}
}

func (s *Server) register(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	var h hello
	if err := dec.Decode(&h); err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.ID < 0 || h.ID >= s.n || s.clients[h.ID] != nil {
		conn.Close()
		return
	}
	s.clients[h.ID] = &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: dec}
	if len(s.clients) == s.n {
		close(s.readyCh)
	}
}

// WaitReady blocks until all n users have registered or the timeout
// elapses.
func (s *Server) WaitReady(timeout time.Duration) error {
	select {
	case <-s.readyCh:
		return nil
	case <-time.After(timeout):
		s.mu.Lock()
		got := len(s.clients)
		s.mu.Unlock()
		return fmt.Errorf("transport: only %d/%d users registered after %v", got, s.n, timeout)
	}
}

// Advance moves the server to timestamp t and opens a new communication
// accounting period. The driver must call it once per timestamp before
// the mechanism's Step.
func (s *Server) Advance(t int) {
	s.mu.Lock()
	s.t = t
	s.mu.Unlock()
	s.counter.BeginTimestamp()
}

// T implements mechanism.Env.
func (s *Server) T() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t
}

// N implements mechanism.Env.
func (s *Server) N() int { return s.n }

// gather fans a report request out to every listed user (nil = all) and
// hands each response to sink as it arrives. sink is called under an
// internal mutex, so it may mutate shared state without further locking;
// responses arrive in unspecified order.
func (s *Server) gather(users []int, eps float64, sink func(fo.Report) error) (count, bytes int, err error) {
	if eps <= 0 {
		return 0, 0, fmt.Errorf("transport: collect with non-positive eps %v", eps)
	}
	s.mu.Lock()
	t := s.t
	if users == nil {
		users = make([]int, 0, len(s.clients))
		for id := range s.clients {
			users = append(users, id)
		}
	}
	conns := make([]*clientConn, len(users))
	for i, id := range users {
		cc := s.clients[id]
		if cc == nil {
			s.mu.Unlock()
			return 0, 0, fmt.Errorf("transport: user %d not registered", id)
		}
		conns[i] = cc
	}
	s.mu.Unlock()

	var sinkMu sync.Mutex
	errs := make([]error, len(users))
	var wg sync.WaitGroup
	for i := range conns {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := conns[i]
			cc.mu.Lock()
			defer cc.mu.Unlock()
			if err := cc.enc.Encode(request{T: t, Eps: eps}); err != nil {
				errs[i] = err
				return
			}
			var resp response
			if err := cc.dec.Decode(&resp); err != nil {
				errs[i] = err
				return
			}
			sinkMu.Lock()
			defer sinkMu.Unlock()
			count++
			bytes += resp.Report.Size()
			errs[i] = sink(resp.Report)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("transport: user %d: %w", users[i], err)
		}
	}
	return count, bytes, nil
}

// Collect implements mechanism.Env: it requests a perturbed report from
// every listed user (nil = all) and gathers the responses.
func (s *Server) Collect(users []int, eps float64) ([]fo.Report, error) {
	n := len(users)
	if users == nil {
		n = s.n
	}
	reports := make([]fo.Report, 0, n)
	count, bytes, err := s.gather(users, eps, func(r fo.Report) error {
		reports = append(reports, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.counter.Observe(count, bytes)
	return reports, nil
}

// CollectStream implements mechanism.StreamEnv: each report is folded into
// agg as it comes off the wire, so the aggregator never buffers the
// round's reports. Aggregation is order-independent integer counting, so
// the arrival order over TCP does not affect the estimate.
func (s *Server) CollectStream(users []int, eps float64, agg fo.Aggregator) error {
	count, bytes, err := s.gather(users, eps, agg.Add)
	if err != nil {
		return err
	}
	s.counter.Observe(count, bytes)
	return nil
}

// CommStats returns the accumulated communication statistics.
func (s *Server) CommStats() comm.Stats { return s.counter.Stats() }

// Close shuts the server and all client connections down.
func (s *Server) Close() error {
	err := s.ln.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, cc := range s.clients {
		cc.conn.Close()
	}
	return err
}

// ---------------------------------------------------------------------------
// Client.
// ---------------------------------------------------------------------------

// Perturber is the client-side randomizer: it perturbs the user's true
// value with the given budget. fo.Oracle satisfies the perturbation
// contract through a bound source; see NewClient.
type Perturber func(value int, eps float64) fo.Report

// Client is one user's device: it registers with the aggregator and
// answers report requests by perturbing its current value locally.
type Client struct {
	conn    net.Conn
	id      int
	value   func(t int) int
	perturb Perturber
}

// NewClient connects to the aggregator at addr as user id. value returns
// the user's TRUE value at a timestamp (it stays inside this process);
// perturb applies the local randomizer.
func NewClient(addr string, id int, value func(t int) int, perturb Perturber) (*Client, error) {
	if value == nil || perturb == nil {
		return nil, errors.New("transport: client needs value and perturb functions")
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	if err := gob.NewEncoder(conn).Encode(hello{ID: id}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: register: %w", err)
	}
	return &Client{conn: conn, id: id, value: value, perturb: perturb}, nil
}

// Serve answers report requests until the connection closes.
func (c *Client) Serve() error {
	dec := gob.NewDecoder(c.conn)
	enc := gob.NewEncoder(c.conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return err
		}
		rep := c.perturb(c.value(req.T), req.Eps)
		if err := enc.Encode(response{Report: rep}); err != nil {
			return err
		}
	}
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
