package fo

import (
	"fmt"
	"math"
	"math/bits"
)

// Aggregator folds perturbed reports into O(d) server-side state as they
// arrive, so the aggregator never retains an O(n·d) report slice. Add all
// reports of one collection round (same oracle, same eps), then call
// Estimate. The count arithmetic is shared with the batch
// Oracle.Estimate, so streaming and batch aggregation produce exactly
// identical estimates. An Aggregator is not safe for concurrent use;
// serialize Add calls.
type Aggregator interface {
	// Add folds one report into the aggregate counters. It rejects
	// reports whose Kind or shape does not match the oracle.
	Add(r Report) error
	// Reports returns the number of reports folded so far.
	Reports() int
	// Estimate returns the unbiased per-element frequency estimates from
	// the folded counters. It returns ErrNoReports before any Add.
	Estimate() ([]float64, error)
}

// packedWords returns the number of uint64 words holding d packed bits.
func packedWords(d int) int { return (d + 63) / 64 }

// PackBits converts a byte-per-element unary payload into the bit-packed
// wire format: bit k of the word array is bits[k].
func PackBits(unaryBits []byte) []uint64 {
	words := make([]uint64, packedWords(len(unaryBits)))
	for k, b := range unaryBits {
		if b != 0 {
			words[k>>6] |= 1 << (uint(k) & 63)
		}
	}
	return words
}

// UnpackBits expands a bit-packed unary payload back into one byte per
// domain element.
func UnpackBits(words []uint64, d int) []byte {
	out := make([]byte, d)
	for k := range out {
		if words[k>>6]&(1<<(uint(k)&63)) != 0 {
			out[k] = 1
		}
	}
	return out
}

// batchEstimate implements the batch Estimate of every oracle by folding
// the slice through the oracle's streaming aggregator, guaranteeing the
// two paths share count math exactly.
func batchEstimate(o Oracle, reports []Report, eps float64) ([]float64, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	agg, err := o.NewAggregator(eps)
	if err != nil {
		return nil, err
	}
	for _, r := range reports {
		if err := agg.Add(r); err != nil {
			return nil, err
		}
	}
	return agg.Estimate()
}

// finishEstimate is the shared unbiased estimator finish: counts are raw
// per-element report counts, n the number of reports, and (p, q) the
// scheme's keep/flip probabilities.
func finishEstimate(counts []int64, n int, p, q float64) ([]float64, error) {
	if n == 0 {
		return nil, ErrNoReports
	}
	nn := float64(n)
	est := make([]float64, len(counts))
	for k, c := range counts {
		est[k] = (float64(c)/nn - q) / (p - q)
	}
	return est, nil
}

// countCore is the counter state shared by every built-in aggregator: raw
// per-element counts, the report total, and the scheme's (p, q)
// probabilities. Keeping it in one place gives all schemes a common
// Estimate finish and lets ShardedAggregator merge per-shard counters
// exactly (integer addition commutes, so shard layout cannot change the
// estimate).
type countCore struct {
	p, q   float64
	n      int
	counts []int64
}

// Reports implements the corresponding Aggregator method for embedders.
func (c *countCore) Reports() int { return c.n }

// Estimate implements the corresponding Aggregator method for embedders.
func (c *countCore) Estimate() ([]float64, error) {
	return finishEstimate(c.counts, c.n, c.p, c.q)
}

// core exposes the counter state to countCore.mergeShard.
func (c *countCore) core() *countCore { return c }

// mergeShard implements shardMergeable: it folds another count-based
// shard's counters into c.
func (c *countCore) mergeShard(o Aggregator) error {
	oc, ok := o.(interface{ core() *countCore })
	if !ok {
		return fmt.Errorf("fo: cannot merge %T into a count-based aggregator", o)
	}
	c.n += oc.core().n
	for k, v := range oc.core().counts {
		c.counts[k] += v
	}
	return nil
}

// shardMergeable is satisfied by every built-in aggregator (via countCore
// or cohortCore); ShardedAggregator needs it to merge per-shard counters
// at Estimate time. Merging is plain integer addition of same-shape
// counters, so it commutes and shard layout cannot change the estimate.
type shardMergeable interface {
	Aggregator
	// mergeShard folds the counters of another aggregator of the same
	// oracle and budget into the receiver.
	mergeShard(o Aggregator) error
}

// ---------------------------------------------------------------------------
// GRR aggregator.
// ---------------------------------------------------------------------------

type grrAggregator struct {
	d int
	countCore
}

// NewAggregator implements Oracle.
func (g *GRR) NewAggregator(eps float64) (Aggregator, error) {
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	p, q := g.probs(eps)
	return &grrAggregator{d: g.d, countCore: countCore{p: p, q: q, counts: make([]int64, g.d)}}, nil
}

func (a *grrAggregator) Add(r Report) error {
	if r.Kind != KindValue {
		return fmt.Errorf("fo: GRR aggregator got %s report, want value", r.Kind)
	}
	if r.Value < 0 || r.Value >= a.d {
		return fmt.Errorf("fo: GRR report value %d outside domain [0,%d)", r.Value, a.d)
	}
	a.counts[r.Value]++
	a.n++
	return nil
}

// ---------------------------------------------------------------------------
// Unary (OUE/SUE) aggregator: accepts both wire formats.
// ---------------------------------------------------------------------------

type unaryAggregator struct {
	d    int
	name string
	countCore
	packed *packedAccumulator // lazily allocated on the first packed report
}

// NewAggregator implements Oracle for both unary schemes. The aggregator
// accepts byte-per-element (KindUnary) and bit-packed (KindPacked) reports
// interchangeably; the packed count loop walks only the set bits of each
// word (math/bits), so sparse OUE reports fold far faster than the byte
// scan.
func (u *unary) NewAggregator(eps float64) (Aggregator, error) {
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	p, q := u.probs(eps)
	return &unaryAggregator{d: u.d, name: u.name, countCore: countCore{p: p, q: q, counts: make([]int64, u.d)}}, nil
}

func (a *unaryAggregator) Add(r Report) error {
	switch r.Kind {
	case KindUnary:
		if len(r.Bits) != a.d {
			return fmt.Errorf("fo: %s report has %d bits, want %d", a.name, len(r.Bits), a.d)
		}
		for k, b := range r.Bits {
			if b != 0 {
				a.counts[k]++
			}
		}
	case KindPacked:
		if len(r.Packed) != packedWords(a.d) {
			return fmt.Errorf("fo: %s packed report has %d words, want %d",
				a.name, len(r.Packed), packedWords(a.d))
		}
		if tail := uint(a.d) & 63; tail != 0 {
			if stray := r.Packed[len(r.Packed)-1] >> tail; stray != 0 {
				return fmt.Errorf("fo: %s packed report sets bits beyond domain %d", a.name, a.d)
			}
		}
		if a.packed == nil {
			a.packed = newPackedAccumulator(len(r.Packed))
		}
		a.packed.add(r.Packed)
		if a.packed.depth > maxPlaneDepth-batchReports {
			a.packed.flushInto(a.counts)
		}
	default:
		return fmt.Errorf("fo: %s aggregator got %s report, want unary or packed", a.name, r.Kind)
	}
	a.n++
	return nil
}

// flush drains any pending packed-report planes into the flat counters.
// Every read of a.counts outside Add must flush first.
func (a *unaryAggregator) flush() {
	if a.packed != nil {
		a.packed.flushInto(a.counts)
	}
}

// Estimate implements Aggregator, flushing pending packed planes so the
// shared countCore finish sees complete counters.
func (a *unaryAggregator) Estimate() ([]float64, error) {
	a.flush()
	return a.countCore.Estimate()
}

// core shadows countCore.core so mergeShard (on either side of a merge)
// reads flushed counters.
func (a *unaryAggregator) core() *countCore {
	a.flush()
	return &a.countCore
}

// exportFrame shadows countCore.exportFrame: shipped frames must carry
// flushed counters.
func (a *unaryAggregator) exportFrame() (CounterFrame, error) {
	a.flush()
	return a.countCore.exportFrame()
}

// maxPlaneDepth is the packed-report capacity of one set of bit planes:
// with 8 planes per word, 255 one-bit additions cannot carry out of the
// top plane. Planes drain whenever another full batch could overflow
// them, so depth never exceeds maxPlaneDepth.
const maxPlaneDepth = 255

// batchReports is the carry-save batch width: reports are buffered and
// folded into the planes batchReports at a time through an adder tree.
const batchReports = 8

// packedAccumulator folds bit-packed unary reports by vertical counting:
// instead of walking the set bits of every report into the flat int64
// counters (O(d) random increments per report at OUE densities), it keeps
// 8 bit-planes per packed word — plane i holds bit i of 64 lane counters.
// Reports buffer in groups of batchReports; a carry-save adder tree
// (Harley–Seal counting) compresses each full group into a 4-bit vertical
// sum per word in straight-line register arithmetic, and only that sum
// ripples into the planes — one plane pass per 8 reports instead of one
// branchy ripple walk per report. Planes drain into the flat counters
// before they can overflow and before any counter read. The drained
// result is the exact per-element sum, so vertical counting is a pure
// reordering of integer additions and cannot change any estimate bit.
type packedAccumulator struct {
	depth  int      // reports folded into planes since the last flush
	nbuf   int      // reports buffered and not yet folded, < batchReports
	buf    []uint64 // batchReports report slots of len(planes)/8 words each
	planes []uint64 // 8 planes per word: planes[8*w+i] is plane i of word w
}

func newPackedAccumulator(words int) *packedAccumulator {
	return &packedAccumulator{
		buf:    make([]uint64, batchReports*words),
		planes: make([]uint64, 8*words),
	}
}

// add buffers one validated packed report, folding a full batch through
// the adder tree. The caller flushes when depth nears maxPlaneDepth.
func (p *packedAccumulator) add(words []uint64) {
	copy(p.buf[p.nbuf*len(words):], words)
	p.nbuf++
	if p.nbuf == batchReports {
		p.foldBatch()
	}
}

// foldBatch compresses the batchReports buffered reports into the planes:
// a carry-save adder tree counts the 8 one-bit inputs of every lane into
// a 4-bit vertical sum, which then ripples into the planes once.
func (p *packedAccumulator) foldBatch() {
	nw := len(p.planes) / 8
	b := p.buf
	for wi := 0; wi < nw; wi++ {
		x0, x1, x2, x3 := b[wi], b[nw+wi], b[2*nw+wi], b[3*nw+wi]
		x4, x5, x6, x7 := b[4*nw+wi], b[5*nw+wi], b[6*nw+wi], b[7*nw+wi]
		// Three carry-save adders reduce the eight weight-1 inputs to
		// two weight-1 bits and three weight-2 carries ...
		t := x0 ^ x1
		a0 := t ^ x2
		a1 := (x0 & x1) | (t & x2)
		t = x3 ^ x4
		b0 := t ^ x5
		b1 := (x3 & x4) | (t & x5)
		t = x6 ^ x7
		c0 := t ^ a0
		c1 := (x6 & x7) | (t & a0)
		// ... a half adder finishes weight 1 ...
		s0 := b0 ^ c0
		d1 := b0 & c0
		// ... and the weight-2 and weight-4 layers compress the carries
		// into one bit per weight: (s0, s1, s2, s3) is the 4-bit count.
		t = a1 ^ b1
		e1 := t ^ c1
		e2 := (a1 & b1) | (t & c1)
		s1 := e1 ^ d1
		f2 := e1 & d1
		s2 := e2 ^ f2
		s3 := e2 & f2
		// Ripple the 4-bit lane counts into the planes in one pass.
		pl := p.planes[8*wi : 8*wi+8 : 8*wi+8]
		t = pl[0]
		pl[0] = t ^ s0
		carry := t & s0
		t = pl[1]
		u := t ^ s1
		pl[1] = u ^ carry
		carry = (t & s1) | (u & carry)
		t = pl[2]
		u = t ^ s2
		pl[2] = u ^ carry
		carry = (t & s2) | (u & carry)
		t = pl[3]
		u = t ^ s3
		pl[3] = u ^ carry
		carry = (t & s3) | (u & carry)
		for i := 4; carry != 0; i++ {
			t = pl[i]
			pl[i] = t ^ carry
			carry = t & carry
		}
	}
	p.nbuf = 0
	p.depth += batchReports
}

// addSingle folds one buffered report into the planes with a word-wide
// ripple carry; flushInto uses it for the partial batch left in the
// buffer.
func (p *packedAccumulator) addSingle(words []uint64) {
	p.depth++
	for wi, w := range words {
		if w == 0 {
			continue
		}
		pl := p.planes[8*wi : 8*wi+8 : 8*wi+8]
		for i := 0; w != 0; i++ {
			pl[i], w = pl[i]^w, pl[i]&w
		}
	}
}

// flushInto drains the buffered reports and the planes into flat
// per-element counters and resets them.
func (p *packedAccumulator) flushInto(counts []int64) {
	nw := len(p.planes) / 8
	for j := 0; j < p.nbuf; j++ {
		p.addSingle(p.buf[j*nw : (j+1)*nw])
	}
	p.nbuf = 0
	if p.depth == 0 {
		return
	}
	for wi := 0; wi < nw; wi++ {
		pl := p.planes[8*wi : 8*wi+8]
		base := wi << 6
		for i, plane := range pl {
			weight := int64(1) << uint(i)
			for ; plane != 0; plane &= plane - 1 {
				counts[base+bits.TrailingZeros64(plane)] += weight
			}
			pl[i] = 0
		}
	}
	p.depth = 0
}

// ---------------------------------------------------------------------------
// OLH aggregator.
// ---------------------------------------------------------------------------

type olhAggregator struct {
	d int
	g int
	countCore
}

// NewAggregator implements Oracle.
func (o *OLH) NewAggregator(eps float64) (Aggregator, error) {
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	g := o.g(eps)
	e := math.Exp(eps)
	return &olhAggregator{
		d: o.d,
		g: g,
		countCore: countCore{
			p:      e / (e + float64(g) - 1),
			q:      1.0 / float64(g),
			counts: make([]int64, o.d),
		},
	}, nil
}

func (a *olhAggregator) Add(r Report) error {
	if r.Kind != KindHash {
		return fmt.Errorf("fo: OLH aggregator got %s report, want hash", r.Kind)
	}
	if r.Value < 0 || r.Value >= a.g {
		return fmt.Errorf("fo: OLH report bucket %d outside [0,%d)", r.Value, a.g)
	}
	for k := 0; k < a.d; k++ {
		if olhHash(r.Seed, k, a.g) == r.Value {
			a.counts[k]++
		}
	}
	a.n++
	return nil
}

// ---------------------------------------------------------------------------
// OLH-C aggregator: O(1) fold into a k×g cohort count matrix.
// ---------------------------------------------------------------------------

// cohortCore is the counter state of cohort-hashed aggregation, the
// matrix-shaped sibling of countCore: instead of per-element counts it
// holds a row-major k×g matrix of (cohort, bucket) report counts, folded
// in O(1) per report. Estimate reconstructs per-element support counts
// through the oracle's precomputed cohort×element bucket table — element
// v's support is Σ_c matrix[c][table[c][v]] — and finishes with the shared
// unbiased estimator. Like countCore it is integer state, so shards merge
// by plain addition and a sharded fold is bit-identical to an unsharded
// one.
type cohortCore struct {
	p, q    float64
	k, g, d int
	n       int
	matrix  []int64 // row-major k×g: matrix[c*g+b] counts reports (c, b)
	table   func() []int32
}

// NewAggregator implements Oracle. Add is O(1) in the domain size; the
// O(k·d) per-element reconstruction is deferred to Estimate.
func (o *OLHC) NewAggregator(eps float64) (Aggregator, error) {
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	g := olhG(eps)
	e := math.Exp(eps)
	return &olhcAggregator{cohortCore{
		p:      e / (e + float64(g) - 1),
		q:      1.0 / float64(g),
		k:      o.k,
		g:      g,
		d:      o.d,
		matrix: make([]int64, o.k*g),
		table:  func() []int32 { return o.bucketTable(g) },
	}}, nil
}

type olhcAggregator struct {
	cohortCore
}

func (a *olhcAggregator) Add(r Report) error {
	if r.Kind != KindCohort {
		return fmt.Errorf("fo: OLH-C aggregator got %s report, want cohort", r.Kind)
	}
	if r.Seed >= uint64(a.k) {
		return fmt.Errorf("fo: OLH-C report cohort %d outside [0,%d)", r.Seed, a.k)
	}
	if r.Value < 0 || r.Value >= a.g {
		return fmt.Errorf("fo: OLH-C report bucket %d outside [0,%d)", r.Value, a.g)
	}
	a.matrix[int(r.Seed)*a.g+r.Value]++
	a.n++
	return nil
}

// Reports implements Aggregator.
func (c *cohortCore) Reports() int { return c.n }

// Estimate implements Aggregator: per-element support counts from the
// cohort matrix and bucket table, then the shared unbiased finish with
// q = 1/g (a non-matching element collides with the reported bucket with
// probability 1/g in expectation, exactly as in OLH).
func (c *cohortCore) Estimate() ([]float64, error) {
	if c.n == 0 {
		return nil, ErrNoReports
	}
	table := c.table()
	support := make([]int64, c.d)
	for co := 0; co < c.k; co++ {
		row := c.matrix[co*c.g : (co+1)*c.g]
		buckets := table[co*c.d : (co+1)*c.d]
		for v, b := range buckets {
			support[v] += row[b]
		}
	}
	return finishEstimate(support, c.n, c.p, c.q)
}

// ccore exposes the matrix state to cohortCore.mergeShard, mirroring
// countCore.core: any aggregator embedding a cohortCore merges
// structurally, not just the built-in olhcAggregator.
func (c *cohortCore) ccore() *cohortCore { return c }

// mergeShard implements shardMergeable.
func (c *cohortCore) mergeShard(o Aggregator) error {
	oc, ok := o.(interface{ ccore() *cohortCore })
	if !ok {
		return fmt.Errorf("fo: cannot merge %T into a cohort-based aggregator", o)
	}
	c.n += oc.ccore().n
	for i, v := range oc.ccore().matrix {
		c.matrix[i] += v
	}
	return nil
}
