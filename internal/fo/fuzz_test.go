package fo

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"
)

// FuzzPackedReportParsing drives the packed-word report path with
// arbitrary wire bytes, exactly as an HTTP body would deliver them:
// little-endian words, folded into a packed-unary aggregator. The
// aggregator must never panic — undersized payloads, stray bits beyond
// the domain, and garbage words are all errors — and any payload it
// accepts must round-trip bit-exactly through UnpackBits/PackBits.
func FuzzPackedReportParsing(f *testing.F) {
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0}, uint16(8))
	f.Add([]byte{0xff, 0xff, 0, 0, 0, 0, 0, 0}, uint16(16))
	f.Add(bytes.Repeat([]byte{0xaa}, 16), uint16(100))
	f.Add([]byte{}, uint16(2))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0x80}, uint16(63))
	f.Fuzz(func(t *testing.T, data []byte, d16 uint16) {
		d := int(d16)
		if d < 2 || d > 1<<12 {
			t.Skip() // oracle constructors require 2 <= d; cap keeps folds fast
		}
		if len(data)%8 != 0 {
			t.Skip() // serve's unpackWords refuses partial words before fo sees them
		}
		words := make([]uint64, len(data)/8)
		for i := range words {
			words[i] = binary.LittleEndian.Uint64(data[8*i:])
		}
		agg, err := NewOUEPacked(d).NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := agg.Add(Report{Kind: KindPacked, Value: -1, Packed: words}); err != nil {
			return // refused payloads are fine; panics are not
		}
		// Accepted payloads are well-formed: the unpack/pack round-trip
		// must be the identity.
		repacked := PackBits(UnpackBits(words, d))
		if len(repacked) != len(words) {
			t.Fatalf("round-trip changed word count: %d != %d", len(repacked), len(words))
		}
		for i := range words {
			if repacked[i] != words[i] {
				t.Fatalf("round-trip changed word %d: %#x != %#x", i, repacked[i], words[i])
			}
		}
	})
}

// FuzzCounterFrameGob decodes arbitrary bytes as a gob CounterFrame —
// the cluster shipment wire format — then validates and merges it. A
// hostile replica must never be able to panic the coordinator: decode
// failures, validation failures, and shape mismatches are all errors.
func FuzzCounterFrameGob(f *testing.F) {
	seed := func(fr CounterFrame) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(fr); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(CounterFrame{Shape: FrameCounts, N: 3, Counts: []int64{1, 0, 2, 0}}))
	f.Add(seed(CounterFrame{Shape: FrameCohort, N: 2, K: 2, G: 2, Counts: []int64{1, 0, 0, 1}}))
	f.Add(seed(CounterFrame{Shape: FrameShape(9), N: -1, Counts: []int64{}}))
	f.Add([]byte("not a gob stream"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr CounterFrame
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&fr); err != nil {
			return
		}
		if err := fr.Validate(); err != nil {
			return
		}
		// A structurally valid frame still has to match the receiving
		// aggregator; mismatches must error, not corrupt or panic.
		agg, err := NewGRR(4).NewAggregator(1)
		if err != nil {
			t.Fatal(err)
		}
		if err := MergeCounters(agg, fr); err != nil {
			return
		}
		if _, err := ExportCounters(agg); err != nil {
			t.Fatalf("merged frame cannot re-export: %v", err)
		}
	})
}
