package fo

import (
	"strings"
	"sync"
	"testing"

	"ldpids/internal/ldprand"
)

// TestStripedMatchesPlain folds the same report stream concurrently into a
// StripedAggregator (by user-id stripe) and serially into the plain
// aggregator: the estimates must be bit-identical for every oracle, because
// integer counter addition commutes.
func TestStripedMatchesPlain(t *testing.T) {
	oracles := map[string]Oracle{
		"GRR":        NewGRR(6),
		"OUE-packed": NewOUEPacked(130),
		"SUE":        NewSUE(9),
		"OLH":        NewOLH(12),
		"OLH-C":      NewOLHC(16),
	}
	const n, eps = 400, 1.0
	for name, o := range oracles {
		o := o
		t.Run(name, func(t *testing.T) {
			src := ldprand.New(42)
			reports := make([]Report, n)
			for u := range reports {
				reports[u] = o.Perturb(u%o.Domain(), eps, src)
			}

			plain, err := o.NewAggregator(eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if err := plain.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			want, err := plain.Estimate()
			if err != nil {
				t.Fatal(err)
			}

			striped, err := NewStripedAggregator(o, eps, 7)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for u := range reports {
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					if err := striped.AddStripe(u%striped.Stripes(), reports[u]); err != nil {
						t.Error(err)
					}
				}(u)
			}
			wg.Wait()
			if striped.Reports() != n {
				t.Fatalf("striped folded %d reports, want %d", striped.Reports(), n)
			}
			got, err := striped.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("estimate diverged at k=%d: striped %v, plain %v", k, got[k], want[k])
				}
			}
			// Estimate is terminal and repeatable.
			if striped.Reports() != n {
				t.Fatalf("post-merge report count %d, want %d", striped.Reports(), n)
			}
			again, err := striped.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				if again[k] != want[k] {
					t.Fatalf("repeated estimate diverged at k=%d", k)
				}
			}
			if err := striped.Add(reports[0]); err == nil {
				t.Fatal("Add after Estimate succeeded")
			}
		})
	}
}

// TestStripedConcurrentAdd exercises the round-robin Add path from many
// goroutines: every report must land exactly once.
func TestStripedConcurrentAdd(t *testing.T) {
	o := NewGRR(4)
	striped, err := NewStripedAggregator(o, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const n = 600
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := striped.Add(Report{Kind: KindValue, Value: i % 4}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if striped.Reports() != n {
		t.Fatalf("folded %d reports, want %d", striped.Reports(), n)
	}
	est, err := striped.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != 4 {
		t.Fatalf("estimate length %d, want 4", len(est))
	}
}

func TestStripedErrors(t *testing.T) {
	striped, err := NewStripedAggregator(NewGRR(4), 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := striped.AddStripe(5, Report{Kind: KindValue}); err == nil || !strings.Contains(err.Error(), "stripe") {
		t.Fatalf("out-of-range stripe error = %v", err)
	}
	// Validation errors from the underlying aggregator surface directly.
	if err := striped.AddStripe(0, Report{Kind: KindHash}); err == nil {
		t.Fatal("mismatched report kind accepted")
	}
	if _, err := NewStripedAggregator(NewGRR(4), 0, 2); err == nil {
		t.Fatal("zero eps accepted")
	}
	// stripes < 1 selects one per CPU.
	s, err := NewStripedAggregator(NewGRR(4), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stripes() < 1 {
		t.Fatalf("default stripes %d", s.Stripes())
	}
}

// TestStripedReportsDuringEstimate hammers Reports from many goroutines
// while Estimate merges and while post-merge reads land on stripe 0 — the
// stripelock finding: the merged fast path of Reports used to read stripe
// 0's counters outside the stripe's locked region. Run under -race.
func TestStripedReportsDuringEstimate(t *testing.T) {
	o := NewGRR(4)
	striped, err := NewStripedAggregator(o, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := striped.Add(Report{Kind: KindValue, Value: i % 4}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 100; i++ {
				if got := striped.Reports(); got != n {
					t.Errorf("Reports() = %d, want %d", got, n)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		if _, err := striped.Estimate(); err != nil {
			t.Error(err)
		}
	}()
	close(start)
	wg.Wait()
}
