package fo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// errStripedEstimated reports an Add after Estimate.
var errStripedEstimated = errors.New("fo: striped aggregator already estimated")

// StripedAggregator is the concurrent shard fold entry point: per-stripe
// counter sets guarded by per-stripe locks, so many producer goroutines —
// HTTP ingestion handlers, per-user device goroutines — fold reports in
// parallel from wherever they already run, instead of funneling every
// report through one serialized Absorb loop or ShardedAggregator's worker
// channels. It is the sink-side dual of ShardedAggregator: ShardedAggregator
// brings its own goroutines to a serial report stream; StripedAggregator
// brings lock-striped counters to an already-concurrent report stream.
//
// All methods are safe for concurrent use. AddStripe(i, r) folds into
// stripe i (callers spread load by hashing, e.g. user id modulo Stripes);
// Add round-robins across stripes. Estimate merges the stripes exactly as
// ShardedAggregator does — integer counter addition commutes — so a striped
// fold is bit-identical to the plain Aggregator on the same reports,
// regardless of stripe assignment or interleaving. Estimate is terminal:
// later Adds fail; repeated Estimates return the same result.
type StripedAggregator struct {
	// mu is write-held by Estimate and read-held by the fold paths, so no
	// fold is in flight while stripes merge.
	mu      sync.RWMutex
	merged  bool
	stripes []lockedStripe
	next    atomic.Uint64
}

// lockedStripe is one stripe's private counters plus its fold lock.
type lockedStripe struct {
	mu  sync.Mutex
	agg shardMergeable //ldpids:guardedby mu concurrent folds tear the counters unless every access is inside the stripe's locked region
}

// NewStripedAggregator returns a concurrent aggregator for reports
// perturbed with budget eps, striped across the given number of counter
// sets (stripes < 1 selects one per CPU). The oracle's aggregator must be
// one of the built-in counter-based implementations.
func NewStripedAggregator(o Oracle, eps float64, stripes int) (*StripedAggregator, error) {
	if stripes < 1 {
		stripes = runtime.GOMAXPROCS(0)
	}
	s := &StripedAggregator{stripes: make([]lockedStripe, stripes)}
	for i := range s.stripes {
		agg, err := o.NewAggregator(eps)
		if err != nil {
			return nil, err
		}
		sm, ok := agg.(shardMergeable)
		if !ok {
			return nil, fmt.Errorf("fo: %s aggregator %T does not support striped merging", o.Name(), agg)
		}
		//ldpids:unshared s has not been returned yet, so no goroutine can reach this stripe
		s.stripes[i].agg = sm
	}
	return s, nil
}

// Stripes returns the number of stripes.
func (s *StripedAggregator) Stripes() int { return len(s.stripes) }

// AddStripe folds one report into stripe i. It is safe to call from many
// goroutines at once, including on the same stripe.
func (s *StripedAggregator) AddStripe(i int, r Report) error {
	if i < 0 || i >= len(s.stripes) {
		return fmt.Errorf("fo: stripe %d outside [0,%d)", i, len(s.stripes))
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.merged {
		return errStripedEstimated
	}
	st := &s.stripes[i]
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.agg.Add(r)
}

// Add implements Aggregator by dispatching the report to the next stripe
// round-robin. Unlike the plain aggregators it is safe for concurrent use.
func (s *StripedAggregator) Add(r Report) error {
	i := int((s.next.Add(1) - 1) % uint64(len(s.stripes)))
	return s.AddStripe(i, r)
}

// Reports implements Aggregator: the number of reports folded so far
// across all stripes.
func (s *StripedAggregator) Reports() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.merged {
		// All counters live in stripe 0 after the merge. Taking its lock
		// keeps every read of stripe state inside a stripe's locked
		// region (stripelock analyzer), instead of relying on the merged
		// flag to prove no fold can be in flight.
		st := &s.stripes[0]
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.agg.Reports()
	}
	total := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		total += st.agg.Reports()
		st.mu.Unlock()
	}
	return total
}

// Estimate implements Aggregator: it merges the stripe counters (waiting
// out any in-flight folds) and finishes with the shared unbiased estimator.
// Further Adds fail after the first Estimate; repeated Estimates return the
// same result.
func (s *StripedAggregator) Estimate() ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.merged {
		s.merged = true
		for i := range s.stripes[1:] {
			if err := s.stripes[0].agg.mergeShard(s.stripes[i+1].agg); err != nil {
				return nil, err
			}
		}
	}
	return s.stripes[0].agg.Estimate()
}
