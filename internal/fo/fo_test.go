package fo

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ldpids/internal/ldprand"
)

// perturbAll perturbs n synthetic users drawn from trueFreq and returns
// their reports.
func perturbAll(o Oracle, trueVals []int, eps float64, src *ldprand.Source) []Report {
	reports := make([]Report, len(trueVals))
	for i, v := range trueVals {
		reports[i] = o.Perturb(v, eps, src)
	}
	return reports
}

// synthValues draws n values from the given frequency vector.
func synthValues(freq []float64, n int, src *ldprand.Source) []int {
	cdf := make([]float64, len(freq))
	acc := 0.0
	for i, f := range freq {
		acc += f
		cdf[i] = acc
	}
	vals := make([]int, n)
	for i := range vals {
		u := src.Float64()
		for k, c := range cdf {
			if u <= c {
				vals[i] = k
				break
			}
		}
	}
	return vals
}

func oracles(d int) []Oracle {
	// OLH-C uses an oversized cohort count here: these tests run tiny
	// domains with concentrated frequencies, where the O(1/√k)
	// cohort-sampling term is at its largest relative to the tight shared
	// tolerances. The default cohort count is exercised by the dedicated
	// OLH-C tests in cohort_test.go.
	return []Oracle{
		NewGRR(d), NewOUE(d), NewSUE(d), NewOLH(d),
		NewOLHCCohorts(d, 1024), NewOUEPacked(d), NewSUEPacked(d),
	}
}

func TestUnbiasedness(t *testing.T) {
	// Average of estimates over repetitions must converge to the truth.
	src := ldprand.New(101)
	d := 5
	trueFreq := []float64{0.4, 0.3, 0.15, 0.1, 0.05}
	const n = 2000
	const reps = 60
	for _, o := range oracles(d) {
		sum := make([]float64, d)
		for r := 0; r < reps; r++ {
			vals := synthValues(trueFreq, n, src)
			est, err := o.Estimate(perturbAll(o, vals, 1.0, src), 1.0)
			if err != nil {
				t.Fatalf("%s: %v", o.Name(), err)
			}
			for k := range sum {
				sum[k] += est[k]
			}
		}
		for k := range sum {
			mean := sum[k] / reps
			if math.Abs(mean-trueFreq[k]) > 0.03 {
				t.Errorf("%s: element %d mean estimate %.4f, want %.4f",
					o.Name(), k, mean, trueFreq[k])
			}
		}
	}
}

func TestEstimateSumsToOne(t *testing.T) {
	// GRR and OLH estimates sum to ~1 structurally; unary schemes only in
	// expectation. Check within loose statistical bounds for all.
	src := ldprand.New(103)
	d := 8
	trueFreq := make([]float64, d)
	for i := range trueFreq {
		trueFreq[i] = 1.0 / float64(d)
	}
	for _, o := range oracles(d) {
		vals := synthValues(trueFreq, 5000, src)
		est, err := o.Estimate(perturbAll(o, vals, 1.5, src), 1.5)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, e := range est {
			sum += e
		}
		if math.Abs(sum-1) > 0.25 {
			t.Errorf("%s: estimate sum %.4f far from 1", o.Name(), sum)
		}
	}
}

func TestGRRProbabilities(t *testing.T) {
	g := NewGRR(4)
	p, q := g.probs(1.0)
	e := math.E
	wantP := e / (e + 3)
	wantQ := 1 / (e + 3)
	if math.Abs(p-wantP) > 1e-12 || math.Abs(q-wantQ) > 1e-12 {
		t.Fatalf("probs (%v,%v) want (%v,%v)", p, q, wantP, wantQ)
	}
	if math.Abs(p/q-e) > 1e-9 {
		t.Fatalf("p/q = %v violates e^eps", p/q)
	}
}

func TestGRRPerturbationRates(t *testing.T) {
	// Empirical keep-rate must match p.
	src := ldprand.New(107)
	g := NewGRR(6)
	eps := 1.2
	p, _ := g.probs(eps)
	const n = 100000
	kept := 0
	for i := 0; i < n; i++ {
		if g.Perturb(3, eps, src).Value == 3 {
			kept++
		}
	}
	got := float64(kept) / n
	if math.Abs(got-p) > 0.01 {
		t.Fatalf("empirical keep rate %v, want %v", got, p)
	}
}

func TestGRRPerturbOthersUniform(t *testing.T) {
	src := ldprand.New(109)
	g := NewGRR(5)
	eps := 0.5
	counts := make([]int, 5)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Perturb(0, eps, src).Value]++
	}
	// Values 1..4 should be hit roughly equally.
	others := counts[1:]
	mean := 0.0
	for _, c := range others {
		mean += float64(c)
	}
	mean /= 4
	for k, c := range others {
		if math.Abs(float64(c)-mean) > 5*math.Sqrt(mean) {
			t.Fatalf("non-true value %d count %d deviates from mean %v", k+1, c, mean)
		}
	}
}

func TestVarianceMatchesEmpirical(t *testing.T) {
	// Closed-form Variance must match the empirical variance of estimates.
	src := ldprand.New(113)
	d := 4
	trueFreq := []float64{0.5, 0.25, 0.15, 0.10}
	const n = 1000
	const reps = 300
	eps := 1.0
	for _, o := range oracles(d) {
		var ests [][]float64
		for r := 0; r < reps; r++ {
			vals := synthValues(trueFreq, n, src)
			est, err := o.Estimate(perturbAll(o, vals, eps, src), eps)
			if err != nil {
				t.Fatal(err)
			}
			ests = append(ests, est)
		}
		for k := 0; k < d; k++ {
			mean, m2 := 0.0, 0.0
			for _, e := range ests {
				mean += e[k]
			}
			mean /= reps
			for _, e := range ests {
				m2 += (e[k] - mean) * (e[k] - mean)
			}
			empirical := m2 / (reps - 1)
			// Empirical variance also includes sampling variance of the
			// underlying data (≈ f(1-f)/n), subtract it.
			sampling := trueFreq[k] * (1 - trueFreq[k]) / float64(n)
			empirical -= sampling
			want := o.Variance(eps, n, trueFreq[k])
			if want <= 0 {
				t.Fatalf("%s: non-positive variance %v", o.Name(), want)
			}
			if math.Abs(empirical-want)/want > 0.35 {
				t.Errorf("%s elem %d: empirical var %.3e, formula %.3e",
					o.Name(), k, empirical, want)
			}
		}
	}
}

func TestVarianceApproxCloseToExactSmallF(t *testing.T) {
	g := NewGRR(10)
	exact := g.Variance(1.0, 10000, 0.01)
	approx := g.VarianceApprox(1.0, 10000)
	if approx > exact {
		t.Fatalf("approx %v exceeds exact %v with positive fk", approx, exact)
	}
	if (exact-approx)/exact > 0.5 {
		t.Fatalf("approx %v too far from exact %v at fk=0.01", approx, exact)
	}
}

func TestVarianceMonotoneInEpsAndN(t *testing.T) {
	for _, o := range oracles(8) {
		v1 := o.VarianceApprox(0.5, 1000)
		v2 := o.VarianceApprox(1.0, 1000)
		v3 := o.VarianceApprox(2.0, 1000)
		if !(v1 > v2 && v2 > v3) {
			t.Errorf("%s: variance not decreasing in eps: %v %v %v", o.Name(), v1, v2, v3)
		}
		w1 := o.VarianceApprox(1.0, 100)
		w2 := o.VarianceApprox(1.0, 1000)
		if !(w1 > w2) {
			t.Errorf("%s: variance not decreasing in n: %v %v", o.Name(), w1, w2)
		}
	}
}

func TestVarianceInfiniteAtZeroUsers(t *testing.T) {
	for _, o := range oracles(4) {
		if !math.IsInf(o.VarianceApprox(1.0, 0), 1) {
			t.Errorf("%s: variance at n=0 should be +Inf", o.Name())
		}
	}
}

func TestPopulationVsBudgetDivision(t *testing.T) {
	// The core inequality behind the paper (Theorem 6.1):
	// V(eps, N/w) < V(eps/w, N) for all tested oracles and w>1.
	for _, o := range oracles(16) {
		for _, w := range []int{2, 5, 20, 50} {
			N := 100000
			pop := o.VarianceApprox(1.0, N/w)
			bud := o.VarianceApprox(1.0/float64(w), N)
			if pop >= bud {
				t.Errorf("%s w=%d: population division variance %v not below budget division %v",
					o.Name(), w, pop, bud)
			}
		}
	}
}

func TestEstimateErrors(t *testing.T) {
	g := NewGRR(3)
	if _, err := g.Estimate(nil, 1.0); err != ErrNoReports {
		t.Fatalf("want ErrNoReports, got %v", err)
	}
	if _, err := g.Estimate([]Report{{Value: 0}}, 0); err != ErrBadEpsilon {
		t.Fatalf("want ErrBadEpsilon, got %v", err)
	}
	if _, err := g.Estimate([]Report{{Value: 99}}, 1.0); err == nil {
		t.Fatal("out-of-domain report not rejected")
	}
	u := NewOUE(3)
	if _, err := u.Estimate([]Report{{Kind: KindUnary, Bits: []byte{1}}}, 1.0); err == nil {
		t.Fatal("short unary report not rejected")
	}
	if _, err := u.Estimate([]Report{{Kind: KindValue, Value: 1}}, 1.0); err == nil {
		t.Fatal("wrong-kind report not rejected by unary aggregation")
	}
	o := NewOLH(3)
	if _, err := o.Estimate([]Report{{Kind: KindValue, Value: 0}}, 1.0); err == nil {
		t.Fatal("non-hash report not rejected by OLH aggregation")
	}
}

func TestPerturbPanicsOutOfDomain(t *testing.T) {
	src := ldprand.New(1)
	for _, o := range oracles(4) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: out-of-domain Perturb did not panic", o.Name())
				}
			}()
			o.Perturb(4, 1.0, src)
		}()
	}
}

func TestNewRegistry(t *testing.T) {
	names := Names()
	want := []string{"GRR", "OUE", "SUE", "OLH", "OLH-C", "OUE-packed", "SUE-packed"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	// Every canonical name dispatches, in every case variant, to an oracle
	// that reports the canonical name back.
	for _, name := range names {
		for _, alias := range []string{name, strings.ToLower(name), strings.ToUpper(name)} {
			o, err := New(alias, 5)
			if err != nil || o == nil {
				t.Fatalf("New(%q): %v", alias, err)
			}
			if o.Name() != name {
				t.Fatalf("New(%q).Name() = %q, want %q", alias, o.Name(), name)
			}
			if o.Domain() != 5 {
				t.Fatalf("New(%q) domain %d", alias, o.Domain())
			}
		}
	}
	if _, err := New("nope", 5); err == nil {
		t.Fatal("unknown oracle accepted")
	} else if !strings.Contains(err.Error(), "OLH-C") {
		t.Fatalf("unknown-oracle error %q does not list the known names", err)
	}
}

func TestBestSelection(t *testing.T) {
	// Small domain: GRR. Large domain: OUE.
	if o := Best(3, 1.0); o.Name() != "GRR" {
		t.Fatalf("Best(3, 1.0) = %s, want GRR", o.Name())
	}
	if o := Best(500, 1.0); o.Name() != "OUE" {
		t.Fatalf("Best(500, 1.0) = %s, want OUE", o.Name())
	}
	// Best must indeed have lower variance.
	for _, d := range []int{3, 10, 100, 500} {
		for _, eps := range []float64{0.5, 1, 2} {
			best := Best(d, eps)
			var other Oracle
			if best.Name() == "GRR" {
				other = NewOUE(d)
			} else {
				other = NewGRR(d)
			}
			if best.VarianceApprox(eps, 1000) > other.VarianceApprox(eps, 1000)*1.01 {
				t.Errorf("Best(%d, %v) = %s has higher variance than %s",
					d, eps, best.Name(), other.Name())
			}
		}
	}
}

func TestOLHHashStability(t *testing.T) {
	// Same (seed, value, g) must always map to the same bucket, and the
	// distribution over buckets must be near-uniform.
	h1 := olhHash(12345, 7, 8)
	h2 := olhHash(12345, 7, 8)
	if h1 != h2 {
		t.Fatal("olhHash not deterministic")
	}
	counts := make([]int, 8)
	for seed := uint64(1); seed <= 80000; seed++ {
		counts[olhHash(seed, 3, 8)]++
	}
	want := 10000.0
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d non-uniform", b, c)
		}
	}
}

func TestReportSize(t *testing.T) {
	if (Report{Kind: KindValue, Value: 3}).Size() != 4 {
		t.Fatal("categorical report size")
	}
	if (Report{Kind: KindUnary, Bits: make([]byte, 10)}).Size() != 14 {
		t.Fatal("unary report size")
	}
	if (Report{Kind: KindPacked, Packed: make([]uint64, 2)}).Size() != 20 {
		t.Fatal("packed unary report size")
	}
	if (Report{Kind: KindHash, Value: 2, Seed: 9}).Size() != 12 {
		t.Fatal("OLH report size")
	}
	// The kind is authoritative: an OLH report whose random per-user seed
	// happens to be 0 still costs 12 bytes (the pre-Kind format inferred
	// "categorical" from Seed == 0 and undercounted it as 4).
	if (Report{Kind: KindHash, Value: 2, Seed: 0}).Size() != 12 {
		t.Fatal("OLH report with zero seed misclassified")
	}
	// Cohort reports carry a small public cohort index instead of an 8-byte
	// private seed, so they are cheaper on the wire than OLH.
	if (Report{Kind: KindCohort, Value: 2, Seed: 7}).Size() != 8 {
		t.Fatal("OLH-C report size")
	}
	if (Report{Kind: KindCohort, Value: 2, Seed: 0}).Size() != 8 {
		t.Fatal("OLH-C report with cohort 0 misclassified")
	}
	// A kind this version does not know costs the 4-byte header: the
	// accounting layer must keep working on logs written by newer versions.
	// KindValue hits its own explicit case, not this fallback (kindswitch
	// analyzer: every registered kind is enumerated).
	if (Report{Kind: Kind(99), Value: 2, Seed: 7}).Size() != 4 {
		t.Fatal("unknown-kind report size")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindValue:  "value",
		KindUnary:  "unary",
		KindPacked: "packed",
		KindHash:   "hash",
		KindCohort: "cohort",
		Kind(99):   "kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", uint8(k), got, want)
		}
	}
}

func TestDomainPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGRR(1) },
		func() { NewOUE(0) },
		func() { NewSUE(-3) },
		func() { NewOLH(1) },
		func() { NewOLHC(1) },
		func() { NewOLHCCohorts(5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("domain < 2 accepted")
				}
			}()
			f()
		}()
	}
}

func TestQuickGRRRoundTripInDomain(t *testing.T) {
	src := ldprand.New(127)
	f := func(vRaw uint8, dRaw uint8, epsRaw uint8) bool {
		d := int(dRaw%30) + 2
		v := int(vRaw) % d
		eps := 0.1 + float64(epsRaw%40)/10
		g := NewGRR(d)
		r := g.Perturb(v, eps, src)
		return r.Value >= 0 && r.Value < d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnaryBitsWellFormed(t *testing.T) {
	src := ldprand.New(131)
	f := func(vRaw uint8, dRaw uint8) bool {
		d := int(dRaw%30) + 2
		v := int(vRaw) % d
		o := NewOUE(d)
		r := o.Perturb(v, 1.0, src)
		if len(r.Bits) != d {
			return false
		}
		for _, b := range r.Bits {
			if b > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGRRPerturb(b *testing.B) {
	src := ldprand.New(1)
	g := NewGRR(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Perturb(i%100, 1.0, src)
	}
}

func BenchmarkOUEPerturb(b *testing.B) {
	src := ldprand.New(1)
	o := NewOUE(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = o.Perturb(i%100, 1.0, src)
	}
}

func BenchmarkGRREstimate10k(b *testing.B) {
	src := ldprand.New(1)
	g := NewGRR(50)
	reports := make([]Report, 10000)
	for i := range reports {
		reports[i] = g.Perturb(i%50, 1.0, src)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Estimate(reports, 1.0); err != nil {
			b.Fatal(err)
		}
	}
}
