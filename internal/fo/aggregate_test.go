package fo

import (
	"testing"
	"testing/quick"

	"ldpids/internal/ldprand"
)

// allOracles returns every registered oracle for domain size d, keyed for
// error messages.
func allOracles(d int) []Oracle {
	return []Oracle{
		NewGRR(d), NewOUE(d), NewSUE(d), NewOLH(d),
		NewOUEPacked(d), NewSUEPacked(d),
	}
}

// TestStreamingMatchesBatch asserts the satellite property: folding
// reports one at a time through Aggregator.Add yields EXACTLY the batch
// Estimate(reports, eps) result — same count math, bit-identical floats —
// for all oracles on a spread of domain sizes.
func TestStreamingMatchesBatch(t *testing.T) {
	src := ldprand.New(2024)
	for _, d := range []int{2, 5, 64, 130} {
		for _, o := range allOracles(d) {
			eps := 1.0
			reports := make([]Report, 500)
			for i := range reports {
				reports[i] = o.Perturb(i%d, eps, src)
			}
			batch, err := o.Estimate(reports, eps)
			if err != nil {
				t.Fatalf("%s d=%d: batch: %v", o.Name(), d, err)
			}
			agg, err := o.NewAggregator(eps)
			if err != nil {
				t.Fatalf("%s d=%d: %v", o.Name(), d, err)
			}
			for _, r := range reports {
				if err := agg.Add(r); err != nil {
					t.Fatalf("%s d=%d: add: %v", o.Name(), d, err)
				}
			}
			if got := agg.Reports(); got != len(reports) {
				t.Fatalf("%s d=%d: aggregator folded %d reports, want %d", o.Name(), d, got, len(reports))
			}
			stream, err := agg.Estimate()
			if err != nil {
				t.Fatalf("%s d=%d: stream: %v", o.Name(), d, err)
			}
			for k := range batch {
				if stream[k] != batch[k] {
					t.Fatalf("%s d=%d elem %d: streaming %v != batch %v",
						o.Name(), d, k, stream[k], batch[k])
				}
			}
		}
	}
}

// TestPackedPerturbMatchesUnpacked asserts that with identical randomness
// the packed client emits exactly the same bit pattern as the byte-wise
// client, for both unary schemes.
func TestPackedPerturbMatchesUnpacked(t *testing.T) {
	for _, scheme := range []struct {
		name          string
		plain, packed Oracle
	}{
		{"OUE", NewOUE(100), NewOUEPacked(100)},
		{"SUE", NewSUE(100), NewSUEPacked(100)},
	} {
		srcA := ldprand.New(7)
		srcB := ldprand.New(7)
		for i := 0; i < 200; i++ {
			v := i % 100
			a := scheme.plain.Perturb(v, 1.0, srcA)
			b := scheme.packed.Perturb(v, 1.0, srcB)
			if a.Kind != KindUnary || b.Kind != KindPacked {
				t.Fatalf("%s: kinds %v/%v", scheme.name, a.Kind, b.Kind)
			}
			got := UnpackBits(b.Packed, 100)
			for k := range a.Bits {
				if a.Bits[k] != got[k] {
					t.Fatalf("%s report %d: bit %d differs", scheme.name, i, k)
				}
			}
		}
	}
}

// TestPackedAggregationEquivalence is the satellite property test: packed
// and unpacked encodings of the SAME unary payloads aggregate to exactly
// equal estimates (shared integer count math, exact float equality).
func TestPackedAggregationEquivalence(t *testing.T) {
	src := ldprand.New(33)
	f := func(dRaw uint8, nRaw uint8) bool {
		d := int(dRaw)%150 + 2
		n := int(nRaw)%40 + 1
		o := NewOUE(d)
		plain := make([]Report, n)
		packed := make([]Report, n)
		for i := range plain {
			plain[i] = o.Perturb(i%d, 1.0, src)
			packed[i] = Report{Kind: KindPacked, Value: -1, Packed: PackBits(plain[i].Bits)}
		}
		ep, err1 := o.Estimate(plain, 1.0)
		eq, err2 := o.Estimate(packed, 1.0)
		if err1 != nil || err2 != nil {
			return false
		}
		for k := range ep {
			if ep[k] != eq[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPackRoundTrip checks PackBits/UnpackBits are inverse for arbitrary
// bit vectors.
func TestPackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		got := UnpackBits(PackBits(bits), len(bits))
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedReportSizeRatio pins the wire win: at d=1024 a packed unary
// report is ~7.8x smaller than the byte-per-element format (asymptotically
// 8x).
func TestPackedReportSizeRatio(t *testing.T) {
	const d = 1024
	src := ldprand.New(5)
	plain := NewOUE(d).Perturb(3, 1.0, src)
	packed := NewOUEPacked(d).Perturb(3, 1.0, src)
	if plain.Size() != d+4 {
		t.Fatalf("plain size %d", plain.Size())
	}
	if packed.Size() != 8*(d/64)+4 {
		t.Fatalf("packed size %d", packed.Size())
	}
	if ratio := float64(plain.Size()) / float64(packed.Size()); ratio < 7.5 {
		t.Fatalf("packed compression ratio %.2f, want ~8x", ratio)
	}
}

// TestAggregatorValidation covers aggregator-level error paths.
func TestAggregatorValidation(t *testing.T) {
	if _, err := NewGRR(4).NewAggregator(0); err != ErrBadEpsilon {
		t.Fatalf("zero eps: %v", err)
	}
	agg, err := NewOUE(70).NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Estimate(); err != ErrNoReports {
		t.Fatalf("empty aggregator estimate: %v", err)
	}
	if err := agg.Add(Report{Kind: KindPacked, Packed: make([]uint64, 1)}); err == nil {
		t.Fatal("short packed report accepted")
	}
	// A stray bit beyond the domain must be rejected, not silently counted.
	bad := make([]uint64, packedWords(70))
	bad[1] = 1 << 20 // bit 84 >= d=70
	if err := agg.Add(Report{Kind: KindPacked, Packed: bad}); err == nil {
		t.Fatal("stray high bit accepted")
	}
	g, err := NewGRR(4).NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(Report{Kind: KindHash, Value: 1, Seed: 3}); err == nil {
		t.Fatal("hash report accepted by GRR aggregator")
	}
}

// BenchmarkUnaryAggregateBytes folds 10k byte-per-element OUE reports.
func BenchmarkUnaryAggregateBytes(b *testing.B) {
	benchmarkUnaryAggregate(b, NewOUE(1024))
}

// BenchmarkUnaryAggregatePacked folds 10k bit-packed OUE reports: the
// word-wise set-bit walk touches ~q·d counters per report instead of
// scanning all d bytes.
func BenchmarkUnaryAggregatePacked(b *testing.B) {
	benchmarkUnaryAggregate(b, NewOUEPacked(1024))
}

func benchmarkUnaryAggregate(b *testing.B, o Oracle) {
	src := ldprand.New(1)
	reports := make([]Report, 10000)
	bytes := 0
	for i := range reports {
		reports[i] = o.Perturb(i%o.Domain(), 1.0, src)
		bytes += reports[i].Size()
	}
	b.ReportMetric(float64(bytes)/float64(len(reports)), "bytes/report")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		agg, err := o.NewAggregator(1.0)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reports {
			if err := agg.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := agg.Estimate(); err != nil {
			b.Fatal(err)
		}
	}
}
