package fo

// Post-processing of frequency-oracle estimates. Raw FO estimates are
// unbiased but unconstrained: elements may be negative or exceed 1 and the
// vector need not sum to 1. Post-processing (free under DP by the
// post-processing theorem) projects estimates back onto the simplex.
// Norm-Sub is the standard choice (Wang et al., "Locally Differentially
// Private Protocols for Frequency Estimation" follow-ups): clip negatives
// to zero and shift the positives by a common delta so the total is 1.

// PostProcess names an estimate post-processing method.
type PostProcess int

const (
	// PostNone leaves the unbiased estimate untouched.
	PostNone PostProcess = iota
	// PostClip clamps each element into [0, 1] independently (biased,
	// but never re-distributes mass).
	PostClip
	// PostNormSub clips negatives and uniformly subtracts/adds mass
	// across the remaining positive elements until the vector sums to 1
	// (the standard "Norm-Sub" simplex projection).
	PostNormSub
)

// String returns the method name.
func (p PostProcess) String() string {
	switch p {
	case PostNone:
		return "none"
	case PostClip:
		return "clip"
	case PostNormSub:
		return "norm-sub"
	default:
		return "unknown"
	}
}

// Apply post-processes est in place and returns it.
func (p PostProcess) Apply(est []float64) []float64 {
	switch p {
	case PostClip:
		for k, v := range est {
			if v < 0 {
				est[k] = 0
			} else if v > 1 {
				est[k] = 1
			}
		}
	case PostNormSub:
		normSub(est)
	}
	return est
}

// normSub projects est onto the probability simplex: iteratively clip
// negatives to zero and spread the deficit/excess uniformly over the
// currently-positive support until the vector sums to one.
func normSub(est []float64) {
	d := len(est)
	if d == 0 {
		return
	}
	const maxIter = 64
	for iter := 0; iter < maxIter; iter++ {
		sum := 0.0
		pos := 0
		for _, v := range est {
			if v > 0 {
				sum += v
				pos++
			}
		}
		if pos == 0 {
			// Degenerate: everything clipped; fall back to uniform.
			u := 1.0 / float64(d)
			for k := range est {
				est[k] = u
			}
			return
		}
		delta := (1 - sum) / float64(pos)
		changed := false
		for k, v := range est {
			switch {
			case v < 0:
				est[k] = 0
				changed = true
			case v > 0:
				est[k] = v + delta
				if est[k] < 0 {
					changed = true
				}
			}
		}
		if !changed && abs(sumOf(est)-1) < 1e-12 {
			return
		}
	}
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
