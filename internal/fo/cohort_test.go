package fo

import (
	"math"
	"testing"

	"ldpids/internal/ldprand"
)

// naiveOLHCEstimate is the O(n·d) reference semantics of cohort-hashed
// aggregation: for every report, scan the whole domain and count the
// elements whose bucket under the report's cohort seed matches the
// reported bucket — exactly what the OLH aggregator does, with the cohort
// seed in place of the per-user seed. The production cohortCore must be
// bit-identical to this.
func naiveOLHCEstimate(t *testing.T, o *OLHC, reports []Report, eps float64) []float64 {
	t.Helper()
	g := olhG(eps)
	e := math.Exp(eps)
	p := e / (e + float64(g) - 1)
	q := 1.0 / float64(g)
	counts := make([]int64, o.d)
	for _, r := range reports {
		if r.Kind != KindCohort {
			t.Fatalf("unexpected %s report", r.Kind)
		}
		seed := cohortSeed(int(r.Seed))
		for v := 0; v < o.d; v++ {
			if olhHash(seed, v, g) == r.Value {
				counts[v]++
			}
		}
	}
	est, err := finishEstimate(counts, len(reports), p, q)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestOLHCMatchesNaiveReference(t *testing.T) {
	// The O(1)-fold matrix aggregation must be bit-identical to the naive
	// O(n·d) per-report domain scan it replaces.
	src := ldprand.New(211)
	for _, eps := range []float64{0.5, 1.0, 2.5} {
		o := NewOLHC(37)
		reports := make([]Report, 400)
		for i := range reports {
			reports[i] = o.Perturb(i%37, eps, src)
		}
		got, err := o.Estimate(reports, eps)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveOLHCEstimate(t, o, reports, eps)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("eps=%v: estimate diverged at k=%d: matrix %v, naive %v",
					eps, k, got[k], want[k])
			}
		}
	}
}

func TestOLHCReportShape(t *testing.T) {
	src := ldprand.New(223)
	o := NewOLHC(50)
	g := olhG(1.0)
	seen := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		r := o.Perturb(i%50, 1.0, src)
		if r.Kind != KindCohort {
			t.Fatalf("Perturb kind = %s, want cohort", r.Kind)
		}
		if r.Seed >= uint64(o.Cohorts()) {
			t.Fatalf("cohort %d outside [0,%d)", r.Seed, o.Cohorts())
		}
		if r.Value < 0 || r.Value >= g {
			t.Fatalf("bucket %d outside [0,%d)", r.Value, g)
		}
		if r.Size() != 8 {
			t.Fatalf("OLH-C report size %d, want 8", r.Size())
		}
		seen[r.Seed] = true
	}
	// 2000 draws over 128 cohorts: essentially every cohort must appear.
	if len(seen) < o.Cohorts()/2 {
		t.Fatalf("only %d of %d cohorts drawn", len(seen), o.Cohorts())
	}
}

func TestOLHCUnbiasedDefaultCohorts(t *testing.T) {
	// Mean estimate over repetitions converges to the truth at the default
	// cohort count. The tolerance leaves room for the O(1/√k)
	// cohort-sampling term, which does not average out across reps (the
	// cohort seeds are fixed) but is small at k = DefaultCohorts.
	// Frequencies are moderately concentrated, as in OLH-C's target regime
	// (large domains, spread-out mass): the bias term scales with
	// √(Σ_v f_v²), so a tiny domain with one dominant element would need a
	// looser bound — and GRR/OLH are the right oracles there anyway.
	src := ldprand.New(227)
	d := 64
	trueFreq := make([]float64, d)
	trueFreq[3] = 0.1
	rest := 0.9 / float64(d-1)
	for k := range trueFreq {
		if k != 3 {
			trueFreq[k] = rest
		}
	}
	o := NewOLHC(d)
	const n = 3000
	const reps = 40
	sum := make([]float64, d)
	for r := 0; r < reps; r++ {
		vals := synthValues(trueFreq, n, src)
		est, err := o.Estimate(perturbAll(o, vals, 1.0, src), 1.0)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sum {
			sum[k] += est[k]
		}
	}
	for k := range sum {
		mean := sum[k] / reps
		if math.Abs(mean-trueFreq[k]) > 0.04 {
			t.Errorf("element %d mean estimate %.4f, want %.4f", k, mean, trueFreq[k])
		}
	}
}

func TestOLHCVarianceMatchesFormula(t *testing.T) {
	// Acceptance: the documented variance formula (the OLH approximation
	// 4e^ε/(n(e^ε-1)^2), carried over because the GRR-over-g core is
	// identical) matches the empirical variance of OLH-C estimates within
	// tolerance.
	src := ldprand.New(229)
	d := 32
	eps := 1.0
	trueFreq := make([]float64, d)
	for k := range trueFreq {
		trueFreq[k] = 1.0 / float64(d)
	}
	o := NewOLHC(d)
	const n = 1000
	const reps = 300
	ests := make([][]float64, 0, reps)
	for r := 0; r < reps; r++ {
		vals := synthValues(trueFreq, n, src)
		est, err := o.Estimate(perturbAll(o, vals, eps, src), eps)
		if err != nil {
			t.Fatal(err)
		}
		ests = append(ests, est)
	}
	want := o.VarianceApprox(eps, n)
	for k := 0; k < d; k++ {
		mean, m2 := 0.0, 0.0
		for _, e := range ests {
			mean += e[k]
		}
		mean /= reps
		for _, e := range ests {
			m2 += (e[k] - mean) * (e[k] - mean)
		}
		empirical := m2/(reps-1) - trueFreq[k]*(1-trueFreq[k])/float64(n)
		if math.Abs(empirical-want)/want > 0.35 {
			t.Errorf("elem %d: empirical var %.3e, formula %.3e", k, empirical, want)
		}
	}
}

func TestOLHCAggregatorRejects(t *testing.T) {
	o := NewOLHC(10)
	agg, err := o.NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := olhG(1.0)
	if err := agg.Add(Report{Kind: KindValue, Value: 1}); err == nil {
		t.Error("wrong-kind report accepted")
	}
	if err := agg.Add(Report{Kind: KindCohort, Value: 0, Seed: uint64(o.Cohorts())}); err == nil {
		t.Error("out-of-range cohort accepted")
	}
	if err := agg.Add(Report{Kind: KindCohort, Value: g, Seed: 0}); err == nil {
		t.Error("out-of-range bucket accepted")
	}
	if err := agg.Add(Report{Kind: KindCohort, Value: -1, Seed: 0}); err == nil {
		t.Error("negative bucket accepted")
	}
	if _, err := o.NewAggregator(0); err != ErrBadEpsilon {
		t.Errorf("zero eps: got %v, want ErrBadEpsilon", err)
	}
	if _, err := agg.Estimate(); err != ErrNoReports {
		t.Errorf("empty estimate: got %v, want ErrNoReports", err)
	}
}

func TestOLHCRepeatedEstimatesIdentical(t *testing.T) {
	// The bucket table is cached on the oracle across aggregators and
	// rounds; estimates must not depend on who built it first.
	src := ldprand.New(233)
	o := NewOLHC(20)
	reports := make([]Report, 150)
	for i := range reports {
		reports[i] = o.Perturb(i%20, 1.0, src)
	}
	first, err := o.Estimate(reports, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := o.Estimate(reports, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range first {
		if first[k] != second[k] {
			t.Fatalf("repeated estimate diverged at k=%d", k)
		}
	}
}

// benchFold measures the server-side fold of n pre-perturbed reports.
func benchFold(b *testing.B, o Oracle, d int) {
	src := ldprand.New(1)
	const n = 256
	reports := make([]Report, n)
	for i := range reports {
		reports[i] = o.Perturb(i%d, 1.0, src)
	}
	agg, err := o.NewAggregator(1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := agg.Add(reports[i%n]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOLHFold64k(b *testing.B)  { benchFold(b, NewOLH(65536), 65536) }
func BenchmarkOLHCFold64k(b *testing.B) { benchFold(b, NewOLHC(65536), 65536) }
