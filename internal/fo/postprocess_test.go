package fo

import (
	"math"
	"testing"
	"testing/quick"

	"ldpids/internal/ldprand"
)

func TestPostNoneIdentity(t *testing.T) {
	est := []float64{-0.1, 0.5, 0.7}
	got := PostNone.Apply(append([]float64(nil), est...))
	for k := range est {
		if got[k] != est[k] {
			t.Fatal("PostNone modified estimate")
		}
	}
}

func TestPostClip(t *testing.T) {
	got := PostClip.Apply([]float64{-0.2, 0.5, 1.3})
	want := []float64{0, 0.5, 1}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("clip %v want %v", got, want)
		}
	}
}

func TestNormSubSimpleCase(t *testing.T) {
	// (-0.1, 0.5, 0.4): clip -0.1, remaining sum 0.9, add 0.05 each.
	got := PostNormSub.Apply([]float64{-0.1, 0.5, 0.4})
	if got[0] != 0 {
		t.Fatalf("negative not clipped: %v", got)
	}
	if math.Abs(got[1]-0.55) > 1e-9 || math.Abs(got[2]-0.45) > 1e-9 {
		t.Fatalf("norm-sub %v", got)
	}
}

func TestNormSubAlreadyOnSimplex(t *testing.T) {
	got := PostNormSub.Apply([]float64{0.25, 0.25, 0.5})
	want := []float64{0.25, 0.25, 0.5}
	for k := range want {
		if math.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("simplex point moved: %v", got)
		}
	}
}

func TestNormSubAllNegative(t *testing.T) {
	got := PostNormSub.Apply([]float64{-1, -2, -3, -4})
	for _, v := range got {
		if math.Abs(v-0.25) > 1e-9 {
			t.Fatalf("degenerate fallback not uniform: %v", got)
		}
	}
}

func TestNormSubEmpty(t *testing.T) {
	if got := PostNormSub.Apply(nil); len(got) != 0 {
		t.Fatal("empty input")
	}
}

func TestNormSubPropertySimplex(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		est := make([]float64, len(raw))
		for i, r := range raw {
			est[i] = float64(r) / 32
		}
		got := PostNormSub.Apply(est)
		sum := 0.0
		for _, v := range got {
			if v < -1e-9 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormSubImprovesMSEOnNoisyEstimates(t *testing.T) {
	// On real FO output, projecting onto the simplex should not hurt
	// (and typically helps) MSE against the truth.
	src := ldprand.New(303)
	d := 10
	trueFreq := make([]float64, d)
	trueFreq[0] = 0.55
	for k := 1; k < d; k++ {
		trueFreq[k] = 0.05
	}
	o := NewGRR(d)
	const reps = 50
	rawMSE, ppMSE := 0.0, 0.0
	for r := 0; r < reps; r++ {
		vals := synthValues(trueFreq, 500, src)
		est, err := o.Estimate(perturbAll(o, vals, 0.5, src), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		pp := PostNormSub.Apply(append([]float64(nil), est...))
		for k := range est {
			rawMSE += (est[k] - trueFreq[k]) * (est[k] - trueFreq[k])
			ppMSE += (pp[k] - trueFreq[k]) * (pp[k] - trueFreq[k])
		}
	}
	if ppMSE > rawMSE*1.02 {
		t.Fatalf("norm-sub increased MSE: raw %v vs pp %v", rawMSE, ppMSE)
	}
}

func TestPostProcessString(t *testing.T) {
	if PostNone.String() != "none" || PostClip.String() != "clip" ||
		PostNormSub.String() != "norm-sub" || PostProcess(99).String() != "unknown" {
		t.Fatal("String names")
	}
}
