package fo

import (
	"math"
	"testing"

	"ldpids/internal/ldprand"
)

// packedReports perturbs n packed OUE reports for domain d.
func packedReports(o Oracle, n, d int, src *ldprand.Source) []Report {
	reports := make([]Report, n)
	for i := range reports {
		reports[i] = o.Perturb(i%d, 1.0, src)
	}
	return reports
}

// TestPackedAccumulatorBitIdentical proves vertical bit-plane counting is
// a pure reordering of integer additions: folding packed reports through
// the plane accumulator (including partial planes pending at read time)
// yields counters and estimates bit-identical to the byte-per-element
// unary path on the same payloads, across flush boundaries, exportFrame,
// and mergeShard.
func TestPackedAccumulatorBitIdentical(t *testing.T) {
	const d = 131 // odd tail word exercises the partial last word
	o := NewOUEPacked(d)
	// 3*maxPlaneDepth+17 reports: several full flushes plus a pending
	// partial set of planes at every read below.
	reports := packedReports(o, 3*maxPlaneDepth+17, d, ldprand.New(11))

	packedAgg, err := o.NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	unaryAgg, err := NewOUE(d).NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := packedAgg.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := unaryAgg.Add(Report{Kind: KindUnary, Value: -1, Bits: UnpackBits(r.Packed, d)}); err != nil {
			t.Fatal(err)
		}
	}

	// exportFrame with pending planes must carry the full counters.
	pf, err := ExportCounters(packedAgg)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := ExportCounters(unaryAgg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pf.Counts) != len(uf.Counts) {
		t.Fatalf("frame shapes differ: %d vs %d", len(pf.Counts), len(uf.Counts))
	}
	for k := range pf.Counts {
		if pf.Counts[k] != uf.Counts[k] {
			t.Fatalf("counts[%d] = %d via planes, %d via bytes", k, pf.Counts[k], uf.Counts[k])
		}
	}

	want, err := unaryAgg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := packedAgg.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("estimate[%d] = %v via planes, %v via bytes", k, got[k], want[k])
		}
	}
}

// TestPackedAccumulatorMergePending folds packed reports into two
// aggregators and merges them while both still hold pending planes: the
// merge must see flushed counters on both sides.
func TestPackedAccumulatorMergePending(t *testing.T) {
	const d = 64
	o := NewOUEPacked(d)
	src := ldprand.New(5)
	reports := packedReports(o, 2*maxPlaneDepth+31, d, src)

	reference, err := o.NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := NewStripedAggregator(o, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reports {
		if err := reference.Add(r); err != nil {
			t.Fatal(err)
		}
		// Uneven stripe spread: every stripe ends with pending planes.
		if err := striped.AddStripe(i%3, r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := reference.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	got, err := striped.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("estimate lengths differ: %d vs %d", len(got), len(want))
	}
	for k := range want {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("estimate[%d] = %v striped, %v plain", k, got[k], want[k])
		}
	}
	if got, want := striped.Reports(), len(reports); got != want {
		t.Fatalf("striped folded %d reports, want %d", got, want)
	}
}
