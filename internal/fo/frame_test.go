package fo

import (
	"math"
	"strings"
	"testing"

	"ldpids/internal/ldprand"
)

// frameOracles returns one oracle per counter shape family, covering every
// report wire kind.
func frameOracles() map[string]Oracle {
	return map[string]Oracle{
		"GRR":        NewGRR(7),
		"OUE":        NewOUE(9),
		"OUE-packed": NewOUEPacked(70),
		"SUE":        NewSUE(6),
		"OLH":        NewOLH(8),
		"OLH-C":      NewOLHCCohorts(16, 4),
	}
}

// TestFrameMergeBitIdentical is the cluster's correctness core: folding a
// report stream into several aggregators, exporting their frames, and
// merging them into one aggregator must estimate bit-identically to
// folding every report into a single aggregator — for every oracle, and
// regardless of how the stream was partitioned.
func TestFrameMergeBitIdentical(t *testing.T) {
	const n, eps = 120, 1.0
	for name, o := range frameOracles() {
		t.Run(name, func(t *testing.T) {
			src := ldprand.New(77)
			reports := make([]Report, n)
			for u := range reports {
				reports[u] = o.Perturb(u%o.Domain(), eps, src)
			}

			reference, err := o.NewAggregator(eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range reports {
				if err := reference.Add(r); err != nil {
					t.Fatal(err)
				}
			}
			want, err := reference.Estimate()
			if err != nil {
				t.Fatal(err)
			}

			// Partition the stream into three uneven shards.
			merged, err := o.NewAggregator(eps)
			if err != nil {
				t.Fatal(err)
			}
			for _, bounds := range [][2]int{{0, 17}, {17, 80}, {80, n}} {
				shard, err := o.NewAggregator(eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range reports[bounds[0]:bounds[1]] {
					if err := shard.Add(r); err != nil {
						t.Fatal(err)
					}
				}
				frame, err := ExportCounters(shard)
				if err != nil {
					t.Fatal(err)
				}
				if err := frame.Validate(); err != nil {
					t.Fatalf("exported frame invalid: %v", err)
				}
				if err := MergeCounters(merged, frame); err != nil {
					t.Fatal(err)
				}
			}
			got, err := merged.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("estimate length %d, want %d", len(got), len(want))
			}
			for k := range got {
				if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
					t.Fatalf("element %d: merged estimate %v != reference %v", k, got[k], want[k])
				}
			}
		})
	}
}

// TestFrameExportCopies: later folds must not alias an exported frame.
func TestFrameExportCopies(t *testing.T) {
	o := NewGRR(4)
	agg, err := o.NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(Report{Kind: KindValue, Value: 2}); err != nil {
		t.Fatal(err)
	}
	frame, err := ExportCounters(agg)
	if err != nil {
		t.Fatal(err)
	}
	if err := agg.Add(Report{Kind: KindValue, Value: 2}); err != nil {
		t.Fatal(err)
	}
	if frame.N != 1 || frame.Counts[2] != 1 {
		t.Fatalf("exported frame mutated by a later fold: %+v", frame)
	}
}

// TestFrameStripedExport: a StripedAggregator exports the sum of its
// stripes — before Estimate from all stripes, after Estimate from the
// merged stripe — and both match the plain aggregator's frame.
func TestFrameStripedExport(t *testing.T) {
	const n, eps = 60, 0.8
	o := NewOUEPacked(40)
	src := ldprand.New(5)
	reports := make([]Report, n)
	for u := range reports {
		reports[u] = o.Perturb(u%o.Domain(), eps, src)
	}
	plain, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := NewStripedAggregator(o, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u, r := range reports {
		if err := plain.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := striped.AddStripe(u%striped.Stripes(), r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ExportCounters(plain)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ExportCounters(striped)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "before Estimate", before, want)
	if _, err := striped.Estimate(); err != nil {
		t.Fatal(err)
	}
	after, err := ExportCounters(striped)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, "after Estimate", after, want)
}

// assertFramesEqual fails the test unless the two frames are identical.
func assertFramesEqual(t *testing.T, label string, got, want CounterFrame) {
	t.Helper()
	if got.Shape != want.Shape || got.N != want.N || got.K != want.K || got.G != want.G {
		t.Fatalf("%s: frame header %+v, want %+v", label, got, want)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("%s: %d counters, want %d", label, len(got.Counts), len(want.Counts))
	}
	for i := range got.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Fatalf("%s: counter %d is %d, want %d", label, i, got.Counts[i], want.Counts[i])
		}
	}
}

// TestFrameStripedMerge: merging a frame into a StripedAggregator is
// bit-identical to folding the frame's reports directly, and fails after
// Estimate.
func TestFrameStripedMerge(t *testing.T) {
	const eps = 1.2
	o := NewGRR(5)
	src := ldprand.New(9)

	remote, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := NewStripedAggregator(o, eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 50; u++ {
		r := o.Perturb(u%o.Domain(), eps, src)
		var local Aggregator = striped
		if u%2 == 0 {
			local = remote // "remote" shard half
		}
		if err := local.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := reference.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	frame, err := ExportCounters(remote)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeCounters(striped, frame); err != nil {
		t.Fatal(err)
	}
	got, err := striped.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	want, err := reference.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range got {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("element %d: %v != %v", k, got[k], want[k])
		}
	}
	if err := MergeCounters(striped, frame); err == nil {
		t.Fatal("merge after Estimate succeeded; want error")
	}
}

// TestFrameValidate covers the structural failure modes, above all the
// zero shape: a frame that was never explicitly shaped must not pass.
func TestFrameValidate(t *testing.T) {
	cases := map[string]CounterFrame{
		"zero shape":        {N: 3, Counts: make([]int64, 4)},
		"unknown shape":     {Shape: FrameShape(99), Counts: make([]int64, 4)},
		"negative count":    {Shape: FrameCounts, N: -1, Counts: make([]int64, 4)},
		"counts with dims":  {Shape: FrameCounts, K: 2, G: 2, Counts: make([]int64, 4)},
		"cohort bad dims":   {Shape: FrameCohort, K: 0, G: 4, Counts: nil},
		"cohort wrong size": {Shape: FrameCohort, K: 2, G: 3, Counts: make([]int64, 5)},
	}
	for name, f := range cases {
		if err := f.Validate(); err == nil {
			t.Errorf("%s: Validate passed; want error", name)
		}
	}
	ok := CounterFrame{Shape: FrameCounts, N: 2, Counts: make([]int64, 4)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid counts frame rejected: %v", err)
	}
}

// TestFrameShapeMismatch: shape and dimension mismatches are refused by
// MergeCounters, not silently mis-added.
func TestFrameShapeMismatch(t *testing.T) {
	grr, err := NewGRR(4).NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	olhc, err := NewOLHCCohorts(8, 4).NewAggregator(1.0)
	if err != nil {
		t.Fatal(err)
	}
	cohortFrame, err := ExportCounters(olhc)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeCounters(grr, cohortFrame); err == nil || !strings.Contains(err.Error(), "cohort") {
		t.Fatalf("cohort frame merged into GRR aggregator: %v", err)
	}
	countsFrame, err := ExportCounters(grr)
	if err != nil {
		t.Fatal(err)
	}
	if err := MergeCounters(olhc, countsFrame); err == nil {
		t.Fatal("counts frame merged into OLH-C aggregator")
	}
	wrong := CounterFrame{Shape: FrameCounts, N: 1, Counts: make([]int64, 9)}
	if err := MergeCounters(grr, wrong); err == nil {
		t.Fatal("length-mismatched frame merged")
	}
}
