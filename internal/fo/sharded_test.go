package fo

import (
	"strings"
	"testing"

	"ldpids/internal/ldprand"
)

// foldBoth feeds identical report streams to a plain and a sharded
// aggregator and returns both estimates.
func foldBoth(t *testing.T, o Oracle, eps float64, shards, n int, seed uint64) (plain, sharded []float64) {
	t.Helper()
	pa, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := NewShardedAggregator(o, eps, shards)
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.New(seed)
	d := o.Domain()
	for i := 0; i < n; i++ {
		r := o.Perturb(i%d, eps, src)
		if err := pa.Add(r); err != nil {
			t.Fatal(err)
		}
		if err := sa.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	plain, err = pa.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err = sa.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return plain, sharded
}

func TestShardedConformance(t *testing.T) {
	// Acceptance: sharded vs unsharded estimates are bit-identical for
	// every oracle family and shard count.
	d := 129 // exercises the packed-word tail
	oracles := []Oracle{
		NewGRR(d), NewOUE(d), NewSUE(d), NewOLH(d), NewOLHC(d),
		NewOUEPacked(d), NewSUEPacked(d),
	}
	for _, o := range oracles {
		for _, shards := range []int{1, 3, 8} {
			plain, sharded := foldBoth(t, o, 1.0, shards, 500, 42)
			for k := range plain {
				if plain[k] != sharded[k] {
					t.Fatalf("%s shards=%d: estimate diverged at k=%d: %v != %v",
						o.Name(), shards, k, sharded[k], plain[k])
				}
			}
		}
	}
}

func TestShardedReportsAndTerminalEstimate(t *testing.T) {
	o := NewOUEPacked(256)
	sa, err := NewShardedAggregator(o, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.New(7)
	for i := 0; i < 40; i++ {
		if err := sa.Add(o.Perturb(i%256, 1.0, src)); err != nil {
			t.Fatal(err)
		}
	}
	if sa.Reports() != 40 {
		t.Fatalf("Reports() = %d, want 40", sa.Reports())
	}
	a, err := sa.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sa.Estimate() // repeated Estimate is stable
	if err != nil {
		t.Fatal(err)
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("repeated Estimate changed the result")
		}
	}
	if err := sa.Add(Report{Kind: KindValue}); err == nil {
		t.Fatal("Add after Estimate accepted")
	}
}

func TestShardedSurfacesShardErrors(t *testing.T) {
	o := NewGRR(4)
	sa, err := NewShardedAggregator(o, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A report of the wrong kind poisons its shard; the error must surface
	// at Estimate (and on later Adds), never hang.
	if err := sa.Add(Report{Kind: KindUnary, Bits: make([]byte, 4)}); err != nil {
		t.Fatalf("async Add returned validation error early: %v", err)
	}
	for i := 0; i < 300; i++ {
		if err := sa.Add(Report{Kind: KindValue, Value: i % 4}); err != nil {
			break // error surfaced on a later Add: acceptable
		}
	}
	if _, err := sa.Estimate(); err == nil || !strings.Contains(err.Error(), "GRR aggregator") {
		t.Fatalf("shard error not surfaced at Estimate: %v", err)
	}
}

func TestShardedClose(t *testing.T) {
	o := NewGRR(3)
	sa, err := NewShardedAggregator(o, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.New(11)
	for i := 0; i < 10; i++ {
		if err := sa.Add(o.Perturb(i%3, 1.0, src)); err != nil {
			t.Fatal(err)
		}
	}
	sa.Close()
	sa.Close() // idempotent
	if err := sa.Add(Report{Kind: KindValue}); err == nil {
		t.Fatal("Add after Close accepted")
	}
	// Estimate after Close still merges and finishes.
	est, err := sa.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := foldBothReference(t, o, 1.0, 10, 11)
	for k := range want {
		if est[k] != want[k] {
			t.Fatalf("estimate after Close diverged at k=%d", k)
		}
	}
}

// foldBothReference folds the same deterministic report stream into a
// plain aggregator.
func foldBothReference(t *testing.T, o Oracle, eps float64, n int, seed uint64) ([]float64, error) {
	t.Helper()
	pa, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	src := ldprand.New(seed)
	d := o.Domain()
	for i := 0; i < n; i++ {
		if err := pa.Add(o.Perturb(i%d, eps, src)); err != nil {
			t.Fatal(err)
		}
	}
	return pa.Estimate()
}

func TestShardedEmpty(t *testing.T) {
	sa, err := NewShardedAggregator(NewGRR(2), 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Estimate(); err != ErrNoReports {
		t.Fatalf("empty sharded estimate: %v, want ErrNoReports", err)
	}
	if _, err := NewShardedAggregator(NewGRR(2), 0, 2); err == nil {
		t.Fatal("bad eps accepted")
	}
}

func BenchmarkShardedAggregator(b *testing.B) {
	const d = 4096
	o := NewOUEPacked(d)
	src := ldprand.New(3)
	reports := make([]Report, 2000)
	for i := range reports {
		reports[i] = o.Perturb(i%d, 1.0, src)
	}
	for _, shards := range []int{1, 4} {
		name := "shards=1"
		if shards == 4 {
			name = "shards=4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sa, _ := NewShardedAggregator(o, 1.0, shards)
				for _, r := range reports {
					_ = sa.Add(r)
				}
				if _, err := sa.Estimate(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
