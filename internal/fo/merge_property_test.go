package fo

import (
	"testing"

	"ldpids/internal/ldprand"
)

// foldShard folds one shard of reports into a fresh aggregator and
// exports its counter frame.
func foldShard(t *testing.T, o Oracle, eps float64, reports []Report) CounterFrame {
	t.Helper()
	agg, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if err := agg.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	f, err := ExportCounters(agg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mergeFrames merges frames, in order, into a fresh aggregator and
// exports the combined counter state.
func mergeFrames(t *testing.T, o Oracle, eps float64, frames []CounterFrame) CounterFrame {
	t.Helper()
	agg, err := o.NewAggregator(eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := MergeCounters(agg, f); err != nil {
			t.Fatal(err)
		}
	}
	out, err := ExportCounters(agg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// framesEqual compares two frames bit-exactly.
func framesEqual(a, b CounterFrame) bool {
	if a.Shape != b.Shape || a.N != b.N || a.K != b.K || a.G != b.G || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i, v := range a.Counts {
		if v != b.Counts[i] {
			return false
		}
	}
	return true
}

// TestMergeCountersCommutativeAssociative is the property behind the
// cluster's bit-identity claim and the history checker's refold proof:
// for every registered oracle, partitioning a report stream into random
// shards and merging their frames in any order (commutativity) and any
// grouping (associativity) reproduces, bit-exactly, the counters of
// folding every report into one aggregator.
func TestMergeCountersCommutativeAssociative(t *testing.T) {
	const n, eps, trials = 150, 0.8, 6
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			d := 16
			if name == "OLH-C" {
				d = 32 // exercise a non-trivial cohort matrix
			}
			o, err := New(name, d)
			if err != nil {
				t.Fatal(err)
			}
			src := ldprand.New(0x1d71d5 + uint64(len(name)))
			reports := make([]Report, n)
			for u := range reports {
				reports[u] = o.Perturb(u%o.Domain(), eps, src)
			}
			reference := foldShard(t, o, eps, reports)

			for trial := 0; trial < trials; trial++ {
				// Random partition: each report lands in one of k shards.
				k := 2 + src.Intn(5)
				shards := make([][]Report, k)
				for _, r := range reports {
					s := src.Intn(k)
					shards[s] = append(shards[s], r)
				}
				frames := make([]CounterFrame, k)
				for i, shard := range shards {
					frames[i] = foldShard(t, o, eps, shard)
				}

				// Commutativity: merge the frames in a random order.
				order := src.Perm(k)
				permuted := make([]CounterFrame, k)
				for i, j := range order {
					permuted[i] = frames[j]
				}
				if got := mergeFrames(t, o, eps, permuted); !framesEqual(got, reference) {
					t.Fatalf("trial %d: merging %d shards in order %v diverged from the single fold", trial, k, order)
				}

				// Associativity: repeatedly merge two random frames into
				// one until a single frame remains — a random merge tree.
				tree := append([]CounterFrame(nil), frames...)
				for len(tree) > 1 {
					i := src.Intn(len(tree))
					j := src.Intn(len(tree) - 1)
					if j >= i {
						j++
					}
					merged := mergeFrames(t, o, eps, []CounterFrame{tree[i], tree[j]})
					if i < j {
						i, j = j, i
					}
					tree[i] = tree[len(tree)-1] // drop both inputs, keep the merge
					tree = tree[:len(tree)-1]
					tree[j] = merged
				}
				if !framesEqual(tree[0], reference) {
					t.Fatalf("trial %d: a random merge tree over %d shards diverged from the single fold", trial, k)
				}
			}
		})
	}
}
