package fo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ShardedAggregator fans report folding across parallel shard goroutines,
// each owning a private counter set built from the same oracle; Estimate
// merges the per-shard counters (countCore element counts or cohortCore
// matrices) and finishes with the shared estimator. Integer counter
// addition commutes, so a sharded fold is bit-identical to the unsharded
// Aggregator on the same reports regardless of shard count or scheduling —
// the conformance suite asserts this for every oracle.
//
// Use it when the per-report fold is expensive at large d (unary bit scans,
// OLH's O(d) hash inversion): Add costs one channel send and the O(d) work
// proceeds on the shard goroutines. Like the plain aggregators it is not
// safe for concurrent use — serialize Add calls — and Estimate is terminal:
// it drains the shards, and later Adds fail. Call Close when abandoning an
// aggregator without estimating, or the shard goroutines leak.
type ShardedAggregator struct {
	shards []shardMergeable
	ch     []chan Report
	wg     sync.WaitGroup

	next    int
	added   int
	drained bool
	merged  bool

	mu  sync.Mutex // guards err between Add callers and shard workers
	err error
}

// errShardedDrained reports an Add after Estimate.
var errShardedDrained = errors.New("fo: sharded aggregator already estimated")

// NewShardedAggregator returns an aggregator for reports perturbed with
// budget eps that folds across the given number of shards (shards < 1
// selects one per CPU). The oracle's aggregator must be one of the
// built-in counter-based implementations.
func NewShardedAggregator(o Oracle, eps float64, shards int) (*ShardedAggregator, error) {
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	s := &ShardedAggregator{
		shards: make([]shardMergeable, shards),
		ch:     make([]chan Report, shards),
	}
	for i := range s.shards {
		agg, err := o.NewAggregator(eps)
		if err != nil {
			return nil, err
		}
		sm, ok := agg.(shardMergeable)
		if !ok {
			return nil, fmt.Errorf("fo: %s aggregator %T does not support sharded merging", o.Name(), agg)
		}
		s.shards[i] = sm
		s.ch[i] = make(chan Report, 128)
		s.wg.Add(1)
		go s.fold(i)
	}
	return s, nil
}

// fold is shard i's worker loop: it folds its stripe of the report stream
// into its private counters, recording the first validation error and
// draining the rest so Add never blocks on a poisoned shard.
func (s *ShardedAggregator) fold(i int) {
	defer s.wg.Done()
	for r := range s.ch[i] {
		if err := s.shards[i].Add(r); err != nil {
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
			for range s.ch[i] {
			}
			return
		}
	}
}

// firstErr returns the first error recorded by any shard worker.
func (s *ShardedAggregator) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Add implements Aggregator by dispatching the report to the next shard
// round-robin. Shape validation happens on the shard goroutine, so an
// invalid report may surface on a later Add or at Estimate.
func (s *ShardedAggregator) Add(r Report) error {
	if s.drained {
		return errShardedDrained
	}
	if err := s.firstErr(); err != nil {
		return err
	}
	s.ch[s.next] <- r
	s.next = (s.next + 1) % len(s.ch)
	s.added++
	return nil
}

// Reports implements Aggregator: the number of reports dispatched so far.
func (s *ShardedAggregator) Reports() int { return s.added }

// drain closes the shard channels and waits for the workers to exit
// (idempotent).
func (s *ShardedAggregator) drain() {
	if s.drained {
		return
	}
	s.drained = true
	for _, ch := range s.ch {
		close(ch)
	}
	s.wg.Wait()
}

// Close releases the shard goroutines without estimating. Estimate also
// releases them, so Close is only needed when abandoning an aggregator
// before Estimate (e.g. a collection round that failed mid-way); it is
// safe to call in either order.
func (s *ShardedAggregator) Close() { s.drain() }

// Estimate implements Aggregator: it drains the shards, merges their
// counters, and finishes with the shared unbiased estimator. Further Adds
// fail after the first Estimate; repeated Estimates return the same result.
func (s *ShardedAggregator) Estimate() ([]float64, error) {
	s.drain()
	if err := s.firstErr(); err != nil {
		return nil, err
	}
	if !s.merged {
		s.merged = true
		for _, sh := range s.shards[1:] {
			if err := s.shards[0].mergeShard(sh); err != nil {
				return nil, err
			}
		}
	}
	return s.shards[0].Estimate()
}
