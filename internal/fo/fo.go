// Package fo implements local-differential-privacy frequency oracles (FOs):
// client-side randomizers plus server-side unbiased frequency estimators
// over a finite categorical domain Ω = {0, ..., d-1}.
//
// The oracles provided are Generalized Randomized Response (GRR), Optimized
// Unary Encoding (OUE), Symmetric Unary Encoding (SUE, the basic RAPPOR
// randomizer), and Optimized Local Hashing (OLH). Every oracle exposes its
// closed-form estimation variance V(ε, n), which the adaptive LDP-IDS
// mechanisms use to compute potential publication error (paper Eq. 2 / §5.3).
package fo

import (
	"errors"
	"fmt"
	"math"

	"ldpids/internal/ldprand"
)

// Report is one user's perturbed contribution. Exactly one of the fields is
// meaningful, depending on the oracle: Value for GRR, Bits for unary
// encodings, and (Seed, Value) for OLH where Value holds the hashed report.
type Report struct {
	// Value is a categorical report (GRR: perturbed item; OLH: perturbed
	// hash bucket).
	Value int
	// Bits is a perturbed unary-encoded vector (OUE/SUE).
	Bits []byte
	// Seed carries the per-user hash seed for OLH reports.
	Seed uint64
}

// Size returns the wire size of the report in bytes, used by the
// communication accounting layer. Categorical reports cost 4 bytes; unary
// reports cost one byte per domain element plus header; OLH costs 12.
func (r Report) Size() int {
	switch {
	case r.Bits != nil:
		return len(r.Bits) + 4
	case r.Seed != 0:
		return 12
	default:
		return 4
	}
}

// Oracle is a frequency oracle protocol: a client-side perturbation and a
// server-side aggregation that yields an unbiased frequency estimate.
type Oracle interface {
	// Name returns the protocol's short name ("GRR", "OUE", ...).
	Name() string
	// Perturb randomizes a single user's true value v ∈ [0, d) with
	// privacy budget eps, drawing randomness from src.
	Perturb(v int, eps float64, src *ldprand.Source) Report
	// Estimate aggregates perturbed reports into an unbiased estimate of
	// the frequency (fraction in [0,1], possibly outside after noise) of
	// each domain element. The reports must all have been produced with
	// the same eps.
	Estimate(reports []Report, eps float64) ([]float64, error)
	// Variance returns the estimator's per-element variance for n users
	// and budget eps when the element's true frequency is fk (exact
	// form; paper Eq. 2 for GRR).
	Variance(eps float64, n int, fk float64) float64
	// VarianceApprox returns the frequency-independent approximation
	// (fk → 0) used for potential-publication-error computation.
	VarianceApprox(eps float64, n int) float64
	// Domain returns the domain size d the oracle was built for.
	Domain() int
}

// Common construction errors.
var (
	ErrNoReports  = errors.New("fo: no reports to aggregate")
	ErrBadEpsilon = errors.New("fo: privacy budget must be positive")
)

func checkDomain(d int) {
	if d < 2 {
		panic(fmt.Sprintf("fo: domain size must be >= 2, got %d", d))
	}
}

// ---------------------------------------------------------------------------
// GRR: Generalized Randomized Response (direct encoding).
// ---------------------------------------------------------------------------

// GRR implements Generalized Randomized Response over a domain of size d.
// A user reports the true value with probability p = e^ε/(e^ε+d-1) and any
// other fixed value with probability q = 1/(e^ε+d-1).
type GRR struct {
	d int
}

// NewGRR returns a GRR oracle for domain size d (d >= 2).
func NewGRR(d int) *GRR {
	checkDomain(d)
	return &GRR{d: d}
}

// Name implements Oracle.
func (g *GRR) Name() string { return "GRR" }

// Domain implements Oracle.
func (g *GRR) Domain() int { return g.d }

// probs returns (p, q) for budget eps.
func (g *GRR) probs(eps float64) (p, q float64) {
	e := math.Exp(eps)
	p = e / (e + float64(g.d) - 1)
	q = 1 / (e + float64(g.d) - 1)
	return p, q
}

// Perturb implements Oracle.
func (g *GRR) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= g.d {
		panic(fmt.Sprintf("fo: GRR value %d outside domain [0,%d)", v, g.d))
	}
	p, _ := g.probs(eps)
	if src.Bernoulli(p) {
		return Report{Value: v}
	}
	// Uniform over the d-1 other values.
	o := src.Intn(g.d - 1)
	if o >= v {
		o++
	}
	return Report{Value: o}
}

// Estimate implements Oracle.
func (g *GRR) Estimate(reports []Report, eps float64) ([]float64, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	counts := make([]float64, g.d)
	for _, r := range reports {
		if r.Value < 0 || r.Value >= g.d {
			return nil, fmt.Errorf("fo: GRR report value %d outside domain [0,%d)", r.Value, g.d)
		}
		counts[r.Value]++
	}
	n := float64(len(reports))
	p, q := g.probs(eps)
	est := make([]float64, g.d)
	for k := range counts {
		est[k] = (counts[k]/n - q) / (p - q)
	}
	return est, nil
}

// Variance implements Oracle (paper Eq. 2):
//
//	Var = (d-2+e^ε)/(n(e^ε-1)^2) + fk(d-2)/(n(e^ε-1))
func (g *GRR) Variance(eps float64, n int, fk float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	d := float64(g.d)
	nn := float64(n)
	return (d-2+e)/(nn*(e-1)*(e-1)) + fk*(d-2)/(nn*(e-1))
}

// VarianceApprox implements Oracle: the fk→0 simplification
// (d-2+e^ε)/(n(e^ε-1)^2) used by the paper for err.
func (g *GRR) VarianceApprox(eps float64, n int) float64 {
	return g.Variance(eps, n, 0)
}

// ---------------------------------------------------------------------------
// Unary encodings: SUE (basic RAPPOR) and OUE.
// ---------------------------------------------------------------------------

// unary is the shared implementation of unary-encoding oracles. A user
// encodes value v as a d-bit one-hot vector and flips each bit
// independently: a 1-bit stays 1 with probability p, a 0-bit becomes 1 with
// probability q.
type unary struct {
	d     int
	name  string
	probs func(eps float64) (p, q float64)
}

func (u *unary) Name() string { return u.name }
func (u *unary) Domain() int  { return u.d }

func (u *unary) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= u.d {
		panic(fmt.Sprintf("fo: %s value %d outside domain [0,%d)", u.name, v, u.d))
	}
	p, q := u.probs(eps)
	bits := make([]byte, u.d)
	if src.Bernoulli(p) {
		bits[v] = 1
	}
	// The d-1 non-true bits are 1 independently with probability q.
	// Instead of d-1 Bernoulli draws, jump between set bits with
	// geometric skips: expected work O(q·d) instead of O(d).
	if q > 0 {
		logq := math.Log(1 - q)
		pos := 0 // index in the flattened space of non-true positions
		for {
			// Geometric(q): failures before the next success.
			ufl := src.Float64()
			if ufl >= 1 {
				ufl = math.Nextafter(1, 0)
			}
			pos += int(math.Log(1-ufl) / logq)
			if pos >= u.d-1 {
				break
			}
			real := pos
			if real >= v {
				real++
			}
			bits[real] = 1
			pos++
		}
	}
	return Report{Value: -1, Bits: bits}
}

func (u *unary) Estimate(reports []Report, eps float64) ([]float64, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	counts := make([]float64, u.d)
	for _, r := range reports {
		if len(r.Bits) != u.d {
			return nil, fmt.Errorf("fo: %s report has %d bits, want %d", u.name, len(r.Bits), u.d)
		}
		for k, b := range r.Bits {
			if b != 0 {
				counts[k]++
			}
		}
	}
	n := float64(len(reports))
	p, q := u.probs(eps)
	est := make([]float64, u.d)
	for k := range counts {
		est[k] = (counts[k]/n - q) / (p - q)
	}
	return est, nil
}

// variance for any (p,q) unary scheme:
//
//	Var = q(1-q) / (n (p-q)^2) + fk (p(1-p) - q(1-q)) / (n (p-q)^2)
func (u *unary) Variance(eps float64, n int, fk float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	p, q := u.probs(eps)
	nn := float64(n)
	den := nn * (p - q) * (p - q)
	return q*(1-q)/den + fk*(p*(1-p)-q*(1-q))/den
}

func (u *unary) VarianceApprox(eps float64, n int) float64 {
	return u.Variance(eps, n, 0)
}

// SUE is Symmetric Unary Encoding (basic RAPPOR): p = e^{ε/2}/(e^{ε/2}+1),
// q = 1-p.
type SUE struct{ unary }

// NewSUE returns an SUE oracle for domain size d.
func NewSUE(d int) *SUE {
	checkDomain(d)
	return &SUE{unary{d: d, name: "SUE", probs: func(eps float64) (float64, float64) {
		e := math.Exp(eps / 2)
		return e / (e + 1), 1 / (e + 1)
	}}}
}

// OUE is Optimized Unary Encoding: p = 1/2, q = 1/(e^ε+1), which minimizes
// estimator variance among unary schemes, giving Var ≈ 4e^ε/(n(e^ε-1)^2).
type OUE struct{ unary }

// NewOUE returns an OUE oracle for domain size d.
func NewOUE(d int) *OUE {
	checkDomain(d)
	return &OUE{unary{d: d, name: "OUE", probs: func(eps float64) (float64, float64) {
		return 0.5, 1 / (math.Exp(eps) + 1)
	}}}
}

// ---------------------------------------------------------------------------
// OLH: Optimized Local Hashing.
// ---------------------------------------------------------------------------

// OLH implements Optimized Local Hashing. Each user hashes their value into
// g = ⌊e^ε⌋+1 buckets with a per-user seed and runs GRR over the buckets;
// the server counts, for each domain element, the reports whose hash bucket
// matches that element under the reporter's seed.
type OLH struct {
	d int
}

// NewOLH returns an OLH oracle for domain size d.
func NewOLH(d int) *OLH {
	checkDomain(d)
	return &OLH{d: d}
}

// Name implements Oracle.
func (o *OLH) Name() string { return "OLH" }

// Domain implements Oracle.
func (o *OLH) Domain() int { return o.d }

func (o *OLH) g(eps float64) int {
	g := int(math.Floor(math.Exp(eps))) + 1
	if g < 2 {
		g = 2
	}
	return g
}

// olhHash maps (seed, value) to a bucket in [0, g). It is a 64-bit
// mix of the seed and value (stdlib-only stand-in for xxhash).
func olhHash(seed uint64, v int, g int) int {
	x := seed ^ (uint64(v)+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(g))
}

// Perturb implements Oracle.
func (o *OLH) Perturb(v int, eps float64, src *ldprand.Source) Report {
	if v < 0 || v >= o.d {
		panic(fmt.Sprintf("fo: OLH value %d outside domain [0,%d)", v, o.d))
	}
	g := o.g(eps)
	seed := src.Uint64()
	if seed == 0 {
		seed = 1 // 0 is reserved to mean "no seed" in Report
	}
	h := olhHash(seed, v, g)
	// GRR over the g buckets.
	e := math.Exp(eps)
	p := e / (e + float64(g) - 1)
	out := h
	if !src.Bernoulli(p) {
		out = src.Intn(g - 1)
		if out >= h {
			out++
		}
	}
	return Report{Value: out, Seed: seed}
}

// Estimate implements Oracle.
func (o *OLH) Estimate(reports []Report, eps float64) ([]float64, error) {
	if len(reports) == 0 {
		return nil, ErrNoReports
	}
	if eps <= 0 {
		return nil, ErrBadEpsilon
	}
	g := o.g(eps)
	e := math.Exp(eps)
	p := e / (e + float64(g) - 1)
	q := 1.0 / float64(g)
	counts := make([]float64, o.d)
	for _, r := range reports {
		if r.Seed == 0 {
			return nil, errors.New("fo: OLH report missing hash seed")
		}
		if r.Value < 0 || r.Value >= g {
			return nil, fmt.Errorf("fo: OLH report bucket %d outside [0,%d)", r.Value, g)
		}
		for k := 0; k < o.d; k++ {
			if olhHash(r.Seed, k, g) == r.Value {
				counts[k]++
			}
		}
	}
	n := float64(len(reports))
	est := make([]float64, o.d)
	for k := range counts {
		est[k] = (counts[k]/n - q) / (p - q)
	}
	return est, nil
}

// Variance implements Oracle. For OLH the well-known approximation is
// 4e^ε/(n(e^ε-1)^2); the fk-dependent term is second-order and omitted.
func (o *OLH) Variance(eps float64, n int, fk float64) float64 {
	return o.VarianceApprox(eps, n)
}

// VarianceApprox implements Oracle.
func (o *OLH) VarianceApprox(eps float64, n int) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	e := math.Exp(eps)
	return 4 * e / (float64(n) * (e - 1) * (e - 1))
}

// ---------------------------------------------------------------------------
// Registry and adaptive selection.
// ---------------------------------------------------------------------------

// New constructs an oracle by name ("GRR", "OUE", "SUE", "OLH") for domain
// size d. It returns an error for unknown names.
func New(name string, d int) (Oracle, error) {
	switch name {
	case "GRR", "grr":
		return NewGRR(d), nil
	case "OUE", "oue":
		return NewOUE(d), nil
	case "SUE", "sue":
		return NewSUE(d), nil
	case "OLH", "olh":
		return NewOLH(d), nil
	default:
		return nil, fmt.Errorf("fo: unknown oracle %q", name)
	}
}

// Best returns the lower-variance oracle between GRR and OUE for the given
// (d, ε), following the standard d < 3e^ε+2 rule.
func Best(d int, eps float64) Oracle {
	if float64(d) < 3*math.Exp(eps)+2 {
		return NewGRR(d)
	}
	return NewOUE(d)
}
